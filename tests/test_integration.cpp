// End-to-end integration: miniature versions of the bench experiments,
// checking that measured behaviour is consistent with the paper's claims at
// small scale (full-scale reproduction lives in bench/).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/random_walk.hpp"
#include "core/bounds.hpp"
#include "core/duality.hpp"
#include "core/estimators.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/stats.hpp"
#include "spectral/spectral.hpp"

namespace cobra::core {
namespace {

TEST(Integration, Thm11BoundHoldsOnHeterogeneousFamilies) {
  // Measured p95 cover time <= bound with constant 1 at these sizes (the
  // bound's constants are generous; this guards against gross regressions).
  rng::Rng grng = rng::make_stream(818181, 0);
  const graph::Graph cases[] = {
      graph::path(128),      graph::cycle(128),   graph::star(128),
      graph::binary_tree(127), graph::lollipop(12, 32),
      graph::connected_erdos_renyi(128, 2.0, grng)};
  for (const auto& g : cases) {
    const auto samples = estimate_cobra_cover(g, ProcessOptions{}, 0, 24,
                                              rng::derive_seed(1, 1),
                                              10'000'000);
    ASSERT_EQ(samples.timeouts, 0u) << g.name();
    const double p95 = sim::quantile(samples.rounds, 0.95);
    const double bound =
        bound_thm11_general(g.num_vertices(), g.num_edges(), g.max_degree());
    // The theorem's constant is 16(C+4); testing with constant 2 already
    // guards regressions while leaving room for frontier-speed families
    // (cycles cover in ~n rounds vs the bound's m + dmax^2 ln n = n + O(1)).
    EXPECT_LE(p95, 2 * bound) << g.name() << ": p95 " << p95 << " vs "
                              << bound;
  }
}

TEST(Integration, Thm12BoundHoldsOnRegularGraphs) {
  rng::Rng grng = rng::make_stream(828282, 0);
  for (const std::uint32_t r : {3u, 4u, 8u}) {
    const graph::Graph g = graph::connected_random_regular(128, r, grng);
    const auto info = spectral::compute_lambda(g);
    ASSERT_LT(info.lambda, 1.0);
    const auto samples = estimate_cobra_cover(g, ProcessOptions{}, 0, 24,
                                              rng::derive_seed(2, r),
                                              1'000'000);
    ASSERT_EQ(samples.timeouts, 0u);
    const double p95 = sim::quantile(samples.rounds, 0.95);
    const double bound =
        bound_thm12_regular(g.num_vertices(), r, info.lambda);
    EXPECT_LE(p95, bound) << "r=" << r;
  }
}

TEST(Integration, CobraBeatsSingleRandomWalkOnCycle) {
  // The motivation experiment: branching reduces cover time dramatically.
  const graph::Graph g = graph::cycle(128);
  const auto cobra_samples = estimate_cobra_cover(
      g, ProcessOptions{}, 0, 16, rng::derive_seed(3, 0), 1'000'000);
  ASSERT_EQ(cobra_samples.timeouts, 0u);
  std::vector<double> walk_times;
  for (int rep = 0; rep < 16; ++rep) {
    auto rng = rng::make_stream(rng::derive_seed(3, 1),
                                static_cast<std::uint64_t>(rep));
    walk_times.push_back(static_cast<double>(
        baselines::random_walk_cover(g, 0, rng, 1u << 26).steps));
  }
  EXPECT_LT(sim::mean(cobra_samples.rounds) * 10, sim::mean(walk_times));
}

TEST(Integration, LazyCobraCoversHypercubeNearLogCubedBound) {
  // The paper's hypercube example: Thm 1.2 gives O(log^3 n) with the lazy
  // process (gap 1/d). Check measured cover <= (r/gap + r^2) ln n.
  const std::uint32_t d = 7;
  const graph::Graph g = graph::hypercube(d);
  ProcessOptions opt;
  opt.laziness = 0.5;
  const auto samples = estimate_cobra_cover(g, opt, 0, 16,
                                            rng::derive_seed(4, 0), 100000);
  ASSERT_EQ(samples.timeouts, 0u);
  const double lambda = spectral::lambda_lazy_hypercube(d);
  const double bound = bound_thm12_regular(g.num_vertices(), d, lambda);
  EXPECT_LE(sim::quantile(samples.rounds, 0.95), bound);
}

TEST(Integration, DualityOnMidSizeGraph) {
  rng::Rng grng = rng::make_stream(838383, 1);
  const graph::Graph g = graph::connected_random_regular(40, 3, grng);
  const std::vector<graph::VertexId> c_set = {1, 17};
  const auto est = check_duality(g, 0, c_set, 5, ProcessOptions{}, 600,
                                 rng::derive_seed(5, 0));
  EXPECT_EQ(est.coupled_disagreements, 0u);
  const auto k1 = static_cast<std::uint64_t>(est.cobra_miss * 600 + 0.5);
  const auto k2 = static_cast<std::uint64_t>(est.bips_miss * 600 + 0.5);
  EXPECT_LT(std::fabs(sim::two_proportion_z(k1, 600, k2, 600)), 4.5);
}

TEST(Integration, InfectionAndCoverScaleTogether) {
  // Theorems 1.4/1.5 transfer BIPS infection bounds to COBRA cover bounds;
  // on a fixed graph the two quantities should be the same order.
  const graph::Graph g = graph::torus_power(8, 2);  // 64-vertex torus
  const auto cover = estimate_cobra_cover(g, ProcessOptions{}, 0, 24,
                                          rng::derive_seed(6, 0), 1'000'000);
  const auto infect = estimate_bips_infection(g, BipsOptions{}, 0, 24,
                                              rng::derive_seed(6, 1),
                                              1'000'000);
  ASSERT_EQ(cover.timeouts, 0u);
  ASSERT_EQ(infect.timeouts, 0u);
  const double ratio =
      sim::mean(cover.rounds) / sim::mean(infect.rounds);
  EXPECT_GT(ratio, 0.1);
  EXPECT_LT(ratio, 10.0);
}

TEST(Integration, CoverRespectsLowerBoundEverywhere) {
  rng::Rng grng = rng::make_stream(848484, 0);
  const graph::Graph cases[] = {graph::complete(64), graph::cycle(64),
                                graph::hypercube(6),
                                graph::connected_random_regular(64, 3, grng)};
  for (const auto& g : cases) {
    const auto diam = graph::diameter_estimate(g);
    const double lower = bound_lower(g.num_vertices(), diam.value);
    const auto samples = estimate_cobra_cover(g, ProcessOptions{}, 0, 16,
                                              rng::derive_seed(7, 0),
                                              1'000'000);
    ASSERT_EQ(samples.timeouts, 0u);
    for (const double r : samples.rounds)
      EXPECT_GE(r, std::floor(lower)) << g.name();
  }
}

}  // namespace
}  // namespace cobra::core
