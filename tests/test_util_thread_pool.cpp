#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cobra::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  auto f1 = pool.submit([] { return 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 7);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for_index(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for_index(0, [](std::size_t) {
    FAIL() << "must not be called";
  }));
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManySmallTasksSum) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i)
    futures.push_back(pool.submit([&total, i] {
      total.fetch_add(i, std::memory_order_relaxed);
    }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(total.load(), 5050);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex m;
  pool.parallel_for_index(10, [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(m);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order.size(), 10u);
}

}  // namespace
}  // namespace cobra::util
