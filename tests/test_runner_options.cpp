#include "runner/options.hpp"

#include <gtest/gtest.h>

#include "util/env.hpp"

namespace cobra::runner {
namespace {

std::optional<std::string> parse(std::vector<std::string> args,
                                 RunnerOptions& options) {
  return parse_args(args, options);
}

TEST(RunnerOptions, DefaultsAreUnset) {
  RunnerOptions o;
  EXPECT_EQ(parse({}, o), std::nullopt);
  EXPECT_FALSE(o.scale.has_value());
  EXPECT_FALSE(o.seed.has_value());
  EXPECT_FALSE(o.threads.has_value());
  EXPECT_FALSE(o.kernel_threads.has_value());
  EXPECT_FALSE(o.engine.has_value());
  EXPECT_EQ(o.out_dir, "bench_results");
  EXPECT_EQ(o.shard_index, 1);
  EXPECT_EQ(o.shard_count, 1);
  EXPECT_FALSE(o.resume);
  EXPECT_FALSE(o.list);
  EXPECT_EQ(o.max_cells, -1);
  EXPECT_TRUE(o.positional.empty());
  EXPECT_EQ(o.jobs, 0);
  EXPECT_TRUE(o.costs.empty());
  EXPECT_DOUBLE_EQ(o.heartbeat_timeout, 300.0);
  EXPECT_EQ(o.max_restarts, 3);
  EXPECT_EQ(o.inject_kill, 0);
}

TEST(RunnerOptions, ParsesSweepFlags) {
  RunnerOptions o;
  ASSERT_EQ(parse({"sweep", "families", "-j", "8", "--costs",
                   "old/families.costs", "--heartbeat-timeout", "45.5",
                   "--max-restarts", "5", "--inject-kill", "2"},
                  o),
            std::nullopt);
  EXPECT_EQ(o.jobs, 8);
  EXPECT_EQ(o.costs, "old/families.costs");
  EXPECT_DOUBLE_EQ(o.heartbeat_timeout, 45.5);
  EXPECT_EQ(o.max_restarts, 5);
  EXPECT_EQ(o.inject_kill, 2);

  RunnerOptions eq;
  ASSERT_EQ(parse({"--jobs=16"}, eq), std::nullopt);
  EXPECT_EQ(eq.jobs, 16);
}

TEST(RunnerOptions, RejectsInvalidSweepFlags) {
  RunnerOptions o;
  EXPECT_NE(parse({"-j", "0"}, o), std::nullopt);
  EXPECT_NE(parse({"-j", "9999"}, o), std::nullopt);
  EXPECT_NE(parse({"-j", "four"}, o), std::nullopt);
  EXPECT_NE(parse({"--costs"}, o), std::nullopt);
  EXPECT_NE(parse({"--heartbeat-timeout", "-1"}, o), std::nullopt);
  EXPECT_NE(parse({"--max-restarts", "-2"}, o), std::nullopt);
  EXPECT_NE(parse({"--inject-kill", "0"}, o), std::nullopt);
}

TEST(RunnerOptions, ParsesEverySpaceSeparatedFlag) {
  RunnerOptions o;
  ASSERT_EQ(parse({"run", "families", "--scale", "0.5", "--seed", "42",
                   "--threads", "8", "--out-dir", "sweep", "--shard", "2/8",
                   "--resume", "--filter", "fam", "--max-cells", "3"},
                  o),
            std::nullopt);
  EXPECT_EQ(o.positional, (std::vector<std::string>{"run", "families"}));
  EXPECT_DOUBLE_EQ(o.scale.value(), 0.5);
  EXPECT_EQ(o.seed.value(), 42u);
  EXPECT_EQ(o.threads.value(), 8);
  EXPECT_EQ(o.out_dir, "sweep");
  EXPECT_EQ(o.shard_index, 2);
  EXPECT_EQ(o.shard_count, 8);
  EXPECT_TRUE(o.resume);
  EXPECT_EQ(o.filter, "fam");
  EXPECT_EQ(o.max_cells, 3);
}

TEST(RunnerOptions, EngineFlagValidatedAtParseTime) {
  for (const std::string name : {"reference", "sparse", "dense", "auto"}) {
    RunnerOptions o;
    ASSERT_EQ(parse({"--engine", name}, o), std::nullopt) << name;
    EXPECT_EQ(o.engine.value(), name);
  }
  // The alias is canonicalised so journals match either spelling.
  RunnerOptions alias;
  ASSERT_EQ(parse({"--engine", "fast"}, alias), std::nullopt);
  EXPECT_EQ(alias.engine.value(), "auto");
  RunnerOptions o;
  EXPECT_TRUE(parse({"--engine", "warp"}, o).has_value());
  EXPECT_TRUE(parse({"--engine"}, o).has_value());  // missing value
  RunnerOptions eq;
  ASSERT_EQ(parse({"--engine=dense"}, eq), std::nullopt);
  EXPECT_EQ(eq.engine.value(), "dense");
}

TEST(RunnerOptions, KernelThreadsFlagValidatedAtParseTime) {
  RunnerOptions o;
  ASSERT_EQ(parse({"--kernel-threads", "8"}, o), std::nullopt);
  EXPECT_EQ(o.kernel_threads.value(), 8);
  RunnerOptions eq;
  ASSERT_EQ(parse({"--kernel-threads=256"}, eq), std::nullopt);
  EXPECT_EQ(eq.kernel_threads.value(), 256);
  for (const std::string bad : {"0", "-1", "257", "four", "1.5", ""}) {
    RunnerOptions r;
    EXPECT_NE(parse({"--kernel-threads", bad}, r), std::nullopt) << bad;
  }
  RunnerOptions missing;
  EXPECT_NE(parse({"--kernel-threads"}, missing), std::nullopt);
}

TEST(RunnerOptions, KernelThreadsFlagReachesTheSessionDefault) {
  util::clear_env_overrides();
  RunnerOptions o;
  ASSERT_EQ(parse({"--kernel-threads", "3"}, o), std::nullopt);
  apply_env_overrides(o);
  EXPECT_EQ(util::kernel_threads(), 3);
  util::clear_env_overrides();
  EXPECT_EQ(util::kernel_threads(), 1);
}

TEST(RunnerOptions, ParsesEqualsSyntax) {
  RunnerOptions o;
  ASSERT_EQ(parse({"--scale=0.25", "--shard=3/4", "--out-dir=x"}, o),
            std::nullopt);
  EXPECT_DOUBLE_EQ(o.scale.value(), 0.25);
  EXPECT_EQ(o.shard_index, 3);
  EXPECT_EQ(o.shard_count, 4);
  EXPECT_EQ(o.out_dir, "x");
}

TEST(RunnerOptions, HelpAliases) {
  for (const std::string flag : {"-h", "--help", "help"}) {
    RunnerOptions o;
    ASSERT_EQ(parse({flag}, o), std::nullopt) << flag;
    EXPECT_TRUE(o.help) << flag;
  }
}

TEST(RunnerOptions, RejectsInvalidShards) {
  for (const std::string spec :
       {"0/4", "5/4", "-1/4", "2", "2/", "/4", "a/b", "1/0"}) {
    RunnerOptions o;
    EXPECT_NE(parse({"--shard", spec}, o), std::nullopt) << spec;
  }
  // Valid edge: i == k.
  RunnerOptions o;
  EXPECT_EQ(parse({"--shard", "4/4"}, o), std::nullopt);
}

TEST(RunnerOptions, RejectsBadValues) {
  RunnerOptions o;
  EXPECT_NE(parse({"--scale", "0"}, o), std::nullopt);
  EXPECT_NE(parse({"--scale", "-1"}, o), std::nullopt);
  EXPECT_NE(parse({"--scale", "abc"}, o), std::nullopt);
  EXPECT_NE(parse({"--seed", "1.5"}, o), std::nullopt);
  EXPECT_NE(parse({"--threads", "0"}, o), std::nullopt);
  EXPECT_NE(parse({"--max-cells", "-2"}, o), std::nullopt);
  EXPECT_NE(parse({"--out-dir", ""}, o), std::nullopt);
}

TEST(RunnerOptions, RejectsMissingValueAtEnd) {
  for (const std::string flag :
       {"--scale", "--seed", "--threads", "--out-dir", "--shard",
        "--filter", "--max-cells"}) {
    RunnerOptions o;
    EXPECT_NE(parse({flag}, o), std::nullopt) << flag;
  }
}

TEST(RunnerOptions, RejectsUnknownFlagsAndValuedBooleans) {
  RunnerOptions o;
  EXPECT_NE(parse({"--frobnicate"}, o), std::nullopt);
  EXPECT_NE(parse({"--resume=yes"}, o), std::nullopt);
  EXPECT_NE(parse({"--list=1"}, o), std::nullopt);
}

TEST(RunnerOptions, FlagValueMayLookLikeAFlag) {
  RunnerOptions o;
  ASSERT_EQ(parse({"--seed", "-7"}, o), std::nullopt);
  EXPECT_EQ(o.seed.value(), static_cast<std::uint64_t>(-7));
}

TEST(RunnerOptions, OverridesWinOverEnvironment) {
  util::clear_env_overrides();
  RunnerOptions o;
  ASSERT_EQ(parse({"--scale", "0.125", "--seed", "99", "--threads", "2"},
                  o),
            std::nullopt);
  apply_env_overrides(o);
  EXPECT_DOUBLE_EQ(util::scale(), 0.125);
  EXPECT_EQ(util::global_seed(), 99u);
  EXPECT_EQ(util::max_threads(), 2);
  util::clear_env_overrides();
}

TEST(RunnerOptions, UnsetFlagsLeaveEnvDefaults) {
  util::clear_env_overrides();
  const double env_scale = util::scale();
  RunnerOptions o;
  ASSERT_EQ(parse({"run"}, o), std::nullopt);
  apply_env_overrides(o);
  EXPECT_DOUBLE_EQ(util::scale(), env_scale);
  util::clear_env_overrides();
}

TEST(RunnerOptions, UsageMentionsEveryFlag) {
  const std::string text = usage();
  for (const std::string flag :
       {"--scale", "--seed", "--threads", "--kernel-threads", "--out-dir",
        "--shard", "--resume", "--filter", "--list", "--max-cells",
        "--help", "--jobs", "--costs", "--heartbeat-timeout",
        "--max-restarts", "--inject-kill"}) {
    EXPECT_NE(text.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
}  // namespace cobra::runner
