#include "graph/random_generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "rng/stream.hpp"
#include "util/assert.hpp"

namespace cobra::graph {
namespace {

rng::Rng test_rng(std::uint64_t salt) { return rng::make_stream(777, salt); }

TEST(ErdosRenyi, EdgeCountConcentrates) {
  auto rng = test_rng(1);
  const VertexId n = 400;
  const double p = 0.05;
  const double expected =
      p * static_cast<double>(n) * (n - 1) / 2.0;  // ~3990
  double total = 0.0;
  constexpr int kSamples = 20;
  for (int s = 0; s < kSamples; ++s)
    total += static_cast<double>(erdos_renyi_gnp(n, p, rng).num_edges());
  const double mean = total / kSamples;
  // sd of one sample ~ sqrt(expected) ~ 63; mean of 20 has sd ~ 14.
  EXPECT_NEAR(mean, expected, 5 * std::sqrt(expected / kSamples));
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  auto rng = test_rng(2);
  EXPECT_EQ(erdos_renyi_gnp(50, 0.0, rng).num_edges(), 0u);
  const Graph dense = erdos_renyi_gnp(50, 1.0, rng);
  EXPECT_EQ(dense.num_edges(), 50u * 49 / 2);
}

TEST(ErdosRenyi, NoSelfLoopsOrDuplicates) {
  auto rng = test_rng(3);
  // Graph construction itself validates simplicity; build a few.
  for (int i = 0; i < 5; ++i)
    EXPECT_NO_THROW(erdos_renyi_gnp(200, 0.1, rng));
}

TEST(ErdosRenyi, SmallProbabilityStillWorks) {
  auto rng = test_rng(4);
  const Graph g = erdos_renyi_gnp(1000, 1e-5, rng);
  EXPECT_LT(g.num_edges(), 60u);  // expected ~5
}

TEST(ConnectedErdosRenyi, ProducesConnectedGraph) {
  auto rng = test_rng(5);
  const Graph g = connected_erdos_renyi(300, 2.0, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_vertices(), 300u);
}

TEST(RandomRegular, ExactDegrees) {
  auto rng = test_rng(6);
  for (const std::uint32_t r : {1u, 2u, 3u, 4u, 8u, 16u}) {
    const VertexId n = (r % 2 == 0) ? 101 : 100;  // n*r must be even
    const Graph g = random_regular(n, r, rng);
    EXPECT_TRUE(g.is_regular()) << "r=" << r;
    EXPECT_EQ(g.max_degree(), r) << "r=" << r;
    EXPECT_EQ(g.num_edges(), static_cast<std::uint64_t>(n) * r / 2);
  }
}

TEST(RandomRegular, LargeDegreeUsesRepairPath) {
  auto rng = test_rng(7);
  // r = 24: pairing rejection would essentially never succeed, so this
  // exercises the switch-repair fallback.
  const Graph g = random_regular(200, 24, rng);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 24u);
}

TEST(RandomRegular, RejectsOddProduct) {
  auto rng = test_rng(8);
  EXPECT_THROW(random_regular(7, 3, rng), util::CheckError);
  EXPECT_THROW(random_regular(5, 5, rng), util::CheckError);
}

TEST(ConnectedRandomRegular, Connected) {
  auto rng = test_rng(9);
  const Graph g = connected_random_regular(150, 3, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.is_regular());
}

TEST(WattsStrogatz, PreservesEdgeCount) {
  auto rng = test_rng(10);
  const VertexId n = 120;
  const std::uint32_t k = 6;
  for (const double beta : {0.0, 0.1, 0.5, 1.0}) {
    const Graph g = watts_strogatz(n, k, beta, rng);
    EXPECT_EQ(g.num_edges(), static_cast<std::uint64_t>(n) * k / 2)
        << "beta=" << beta;
  }
}

TEST(WattsStrogatz, BetaZeroIsRingLattice) {
  auto rng = test_rng(11);
  const Graph g = watts_strogatz(30, 4, 0.0, rng);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 29));
  EXPECT_TRUE(g.has_edge(0, 28));
}

TEST(WattsStrogatz, RewiringShrinksDiameter) {
  auto rng = test_rng(12);
  const Graph lattice = watts_strogatz(256, 4, 0.0, rng);
  const Graph small_world = watts_strogatz(256, 4, 0.3, rng);
  ASSERT_TRUE(is_connected(lattice));
  if (is_connected(small_world)) {
    EXPECT_LT(*exact_diameter(small_world), *exact_diameter(lattice));
  }
}

TEST(BarabasiAlbert, StructureAndConnectivity) {
  auto rng = test_rng(13);
  const Graph g = barabasi_albert(500, 3, rng);
  EXPECT_EQ(g.num_vertices(), 500u);
  // Seed star has 3 edges; each of the 496 later vertices adds 3.
  EXPECT_EQ(g.num_edges(), 3u + 496u * 3u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(g.min_degree(), 1u);
}

TEST(BarabasiAlbert, HubsEmerge) {
  auto rng = test_rng(14);
  const Graph g = barabasi_albert(800, 2, rng);
  // Preferential attachment produces a max degree far above the mean (~4).
  EXPECT_GT(g.max_degree(), 20u);
}

TEST(RandomGenerators, DeterministicGivenStream) {
  auto rng1 = test_rng(15);
  auto rng2 = test_rng(15);
  const Graph a = random_regular(60, 3, rng1);
  const Graph b = random_regular(60, 3, rng2);
  EXPECT_EQ(a.edges(), b.edges());
}

}  // namespace
}  // namespace cobra::graph
