#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/stream.hpp"
#include "util/assert.hpp"

namespace cobra::sim {
namespace {

TEST(Stats, MeanVarianceKnownValues) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> xs = {5, 1, 3, 2, 4};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Stats, SummarySingleton) {
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(Stats, LinearFitPerfectLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 2.0);
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitNoisyR2BelowOne) {
  std::vector<double> xs, ys;
  auto rng = rng::make_stream(212, 0);
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 10.0 * (rng.uniform01() - 0.5));
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.1);
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(Stats, LogLogFitRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x = 2; x <= 1024; x *= 2) {
    xs.push_back(x);
    ys.push_back(0.7 * std::pow(x, 1.5));
  }
  const LinearFit fit = loglog_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 1.5, 1e-10);
  EXPECT_NEAR(std::exp(fit.intercept), 0.7, 1e-10);
}

TEST(Stats, LogLogRejectsNonPositive) {
  EXPECT_THROW(loglog_fit({1.0, -2.0}, {1.0, 1.0}), util::CheckError);
  EXPECT_THROW(loglog_fit({1.0, 2.0}, {0.0, 1.0}), util::CheckError);
}

TEST(Stats, WilsonIntervalProperties) {
  const Interval ci = wilson_interval(50, 100);
  EXPECT_TRUE(ci.contains(0.5));
  EXPECT_GT(ci.low, 0.3);
  EXPECT_LT(ci.high, 0.7);
  // Extremes stay in [0, 1].
  const Interval zero = wilson_interval(0, 100);
  EXPECT_GE(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);
  const Interval one = wilson_interval(100, 100);
  EXPECT_LE(one.high, 1.0);
  EXPECT_LT(one.low, 1.0);
}

TEST(Stats, WilsonNarrowsWithSamples) {
  const Interval small = wilson_interval(5, 10);
  const Interval large = wilson_interval(500, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(Stats, IntervalOverlap) {
  const Interval a{0.1, 0.3}, b{0.25, 0.5}, c{0.4, 0.6};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(c));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Stats, TwoProportionZ) {
  EXPECT_DOUBLE_EQ(two_proportion_z(50, 100, 50, 100), 0.0);
  EXPECT_GT(two_proportion_z(90, 100, 50, 100), 5.0);
  EXPECT_LT(two_proportion_z(50, 100, 90, 100), -5.0);
  EXPECT_DOUBLE_EQ(two_proportion_z(0, 50, 0, 70), 0.0);  // degenerate
}

TEST(Stats, BootstrapCiContainsTrueMean) {
  auto rng = rng::make_stream(213, 0);
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(rng.uniform01());
  auto ci_rng = rng::make_stream(214, 0);
  const Interval ci = bootstrap_mean_ci(xs, 500, 0.05, ci_rng);
  EXPECT_TRUE(ci.contains(mean(xs)));
  EXPECT_LT(ci.high - ci.low, 0.15);
}

TEST(Stats, PreconditionsThrow) {
  EXPECT_THROW(mean({}), util::CheckError);
  EXPECT_THROW(variance({1.0}), util::CheckError);
  EXPECT_THROW(quantile({}, 0.5), util::CheckError);
  EXPECT_THROW(quantile({1.0}, 1.5), util::CheckError);
}

}  // namespace
}  // namespace cobra::sim
