#include "graph/product.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "spectral/dense.hpp"
#include "util/assert.hpp"

namespace cobra::graph {
namespace {

TEST(CartesianProduct, StructuralCounts) {
  const Graph g1 = cycle(5);
  const Graph g2 = path(3);
  const Graph p = cartesian_product(g1, g2);
  EXPECT_EQ(p.num_vertices(), 15u);
  // m = m1*n2 + m2*n1 = 5*3 + 2*5 = 25.
  EXPECT_EQ(p.num_edges(), 25u);
  EXPECT_TRUE(is_connected(p));
}

TEST(CartesianProduct, DegreesAdd) {
  const Graph g1 = star(4);   // degrees 3,1,1,1
  const Graph g2 = cycle(3);  // degrees 2
  const Graph p = cartesian_product(g1, g2);
  for (VertexId u1 = 0; u1 < 4; ++u1)
    for (VertexId u2 = 0; u2 < 3; ++u2)
      EXPECT_EQ(p.degree(u1 + 4 * u2), g1.degree(u1) + g2.degree(u2));
}

TEST(CartesianProduct, K2PowerIsHypercube) {
  const Graph k2 = complete(2);
  const Graph q4 = cartesian_power(k2, 4);
  const Graph reference = hypercube(4);
  EXPECT_EQ(q4.num_vertices(), reference.num_vertices());
  EXPECT_EQ(q4.num_edges(), reference.num_edges());
  // Same degree sequence and diameter (isomorphic in fact; the id encoding
  // of cartesian_power is exactly binary, so the edge sets coincide).
  EXPECT_EQ(q4.edges(), reference.edges());
}

TEST(CartesianProduct, CyclePowerIsTorus) {
  const Graph c5 = cycle(5);
  const Graph t = cartesian_power(c5, 2);
  const Graph reference = torus_power(5, 2);
  EXPECT_EQ(t.num_vertices(), reference.num_vertices());
  EXPECT_EQ(t.num_edges(), reference.num_edges());
  EXPECT_EQ(*exact_diameter(t), *exact_diameter(reference));
}

TEST(CartesianProduct, PowerOneIsIdentity) {
  const Graph g = petersen();
  const Graph p = cartesian_power(g, 1);
  EXPECT_EQ(p.edges(), g.edges());
}

TEST(CartesianProduct, SpectralProductRule) {
  // Walk spectrum of the product of regular graphs = all weighted means.
  const Graph g1 = cycle(4);      // walk eigenvalues {1, 0, 0, -1}
  const Graph g2 = complete(3);   // {1, -1/2, -1/2}
  const Graph p = cartesian_product(g1, g2);
  const auto spectrum = spectral::walk_spectrum_dense(p);

  std::vector<double> expected;
  const auto s1 = spectral::walk_spectrum_dense(g1);
  const auto s2 = spectral::walk_spectrum_dense(g2);
  for (const double mu1 : s1)
    for (const double mu2 : s2)
      expected.push_back(cartesian_walk_eigenvalue(mu1, 2, mu2, 2));
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(spectrum.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(spectrum[i], expected[i], 1e-9);
}

TEST(TensorProduct, StructuralCounts) {
  const Graph g1 = cycle(5);
  const Graph g2 = complete(3);
  const Graph t = tensor_product(g1, g2);
  EXPECT_EQ(t.num_vertices(), 15u);
  // Each vertex has degree d1*d2 = 2*2 = 4.
  EXPECT_TRUE(t.is_regular());
  EXPECT_EQ(t.max_degree(), 4u);
  // Both factors non-bipartite (odd cycle, K_3) -> connected.
  EXPECT_TRUE(is_connected(t));
}

TEST(TensorProduct, BipartiteFactorDisconnects) {
  // Tensor of two bipartite graphs is disconnected (two parity classes).
  const Graph t = tensor_product(cycle(4), cycle(6));
  EXPECT_GT(count_components(t), 1u);
}

TEST(TensorProduct, SpectralProductRule) {
  const Graph g1 = complete(3);
  const Graph g2 = petersen();
  const Graph t = tensor_product(g1, g2);
  const auto spectrum = spectral::walk_spectrum_dense(t);
  std::vector<double> expected;
  for (const double mu1 : spectral::walk_spectrum_dense(g1))
    for (const double mu2 : spectral::walk_spectrum_dense(g2))
      expected.push_back(tensor_walk_eigenvalue(mu1, mu2));
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(spectrum.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(spectrum[i], expected[i], 1e-9);
}

TEST(Products, SizeGuards) {
  const Graph big = cycle(70000);
  EXPECT_THROW(cartesian_product(big, big), util::CheckError);
}

}  // namespace
}  // namespace cobra::graph
