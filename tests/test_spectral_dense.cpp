#include "spectral/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "graph/generators.hpp"

namespace cobra::spectral {
namespace {

TEST(Jacobi, DiagonalMatrixUnchanged) {
  DenseSymmetric a(3);
  a.at(0, 0) = 3.0;
  a.at(1, 1) = -1.0;
  a.at(2, 2) = 0.5;
  const auto eig = jacobi_eigenvalues(a);
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], -1.0, 1e-12);
  EXPECT_NEAR(eig[1], 0.5, 1e-12);
  EXPECT_NEAR(eig[2], 3.0, 1e-12);
}

TEST(Jacobi, TwoByTwoClosedForm) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  DenseSymmetric a(2);
  a.at(0, 0) = 2.0;
  a.at(1, 1) = 2.0;
  a.set_symmetric(0, 1, 1.0);
  const auto eig = jacobi_eigenvalues(a);
  EXPECT_NEAR(eig[0], 1.0, 1e-12);
  EXPECT_NEAR(eig[1], 3.0, 1e-12);
}

TEST(Jacobi, TraceAndSumPreserved) {
  DenseSymmetric a(5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i; j < 5; ++j)
      a.set_symmetric(i, j, std::sin(static_cast<double>(i * 7 + j + 1)));
  double trace = 0.0;
  for (std::size_t i = 0; i < 5; ++i) trace += a.at(i, i);
  const auto eig = jacobi_eigenvalues(a);
  double sum = 0.0;
  for (const double e : eig) sum += e;
  EXPECT_NEAR(sum, trace, 1e-10);
}

TEST(WalkSpectrum, CompleteGraph) {
  // P(K_n) has eigenvalues 1 and -1/(n-1) (multiplicity n-1).
  const auto eig = walk_spectrum_dense(graph::complete(6));
  ASSERT_EQ(eig.size(), 6u);
  EXPECT_NEAR(eig.back(), 1.0, 1e-10);
  for (std::size_t i = 0; i + 1 < eig.size(); ++i)
    EXPECT_NEAR(eig[i], -0.2, 1e-10);
}

TEST(WalkSpectrum, CycleCosines) {
  const graph::VertexId n = 8;
  const auto eig = walk_spectrum_dense(graph::cycle(n));
  // Eigenvalues are cos(2 pi k / n), k = 0..n-1 (with multiplicities).
  std::vector<double> expected;
  for (graph::VertexId k = 0; k < n; ++k)
    expected.push_back(std::cos(2.0 * std::numbers::pi * k / n));
  std::sort(expected.begin(), expected.end());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(eig[i], expected[i], 1e-10);
}

TEST(WalkSpectrum, PetersenKnownSpectrum) {
  // Adjacency spectrum {3, 1^5, (-2)^4} -> walk spectrum {1, (1/3)^5,
  // (-2/3)^4}.
  const auto eig = walk_spectrum_dense(graph::petersen());
  ASSERT_EQ(eig.size(), 10u);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(eig[i], -2.0 / 3.0, 1e-10);
  for (int i = 4; i < 9; ++i) EXPECT_NEAR(eig[i], 1.0 / 3.0, 1e-10);
  EXPECT_NEAR(eig[9], 1.0, 1e-10);
}

TEST(WalkSpectrum, HypercubeSpectrum) {
  // Q_d walk eigenvalues: (d - 2k)/d with multiplicity binom(d, k).
  const std::uint32_t d = 4;
  const auto eig = walk_spectrum_dense(graph::hypercube(d));
  ASSERT_EQ(eig.size(), 16u);
  EXPECT_NEAR(eig.front(), -1.0, 1e-10);
  EXPECT_NEAR(eig.back(), 1.0, 1e-10);
  // Second largest is 1 - 2/d = 0.5 (multiplicity 4).
  EXPECT_NEAR(eig[14], 0.5, 1e-10);
  EXPECT_NEAR(eig[11], 0.5, 1e-10);
}

TEST(WalkSpectrum, StarIsPlusMinusOneAndZeros) {
  const auto eig = walk_spectrum_dense(graph::star(7));
  ASSERT_EQ(eig.size(), 7u);
  EXPECT_NEAR(eig.front(), -1.0, 1e-10);
  EXPECT_NEAR(eig.back(), 1.0, 1e-10);
  for (std::size_t i = 1; i + 1 < eig.size(); ++i)
    EXPECT_NEAR(eig[i], 0.0, 1e-10);
}

TEST(WalkSpectrum, BipartiteSymmetry) {
  // Bipartite graphs have spectra symmetric about 0.
  const auto eig = walk_spectrum_dense(graph::complete_bipartite(3, 4));
  const std::size_t n = eig.size();
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(eig[i], -eig[n - 1 - i], 1e-10);
}

}  // namespace
}  // namespace cobra::spectral
