#include "spectral/tridiag.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "spectral/dense.hpp"
#include "util/assert.hpp"

namespace cobra::spectral {
namespace {

TEST(Tridiag, EmptyAndSingleton) {
  EXPECT_TRUE(tridiagonal_eigenvalues({}, {}).empty());
  const auto one = tridiagonal_eigenvalues({4.2}, {});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 4.2);
}

TEST(Tridiag, DiagonalOnly) {
  const auto eig = tridiagonal_eigenvalues({3.0, -1.0, 2.0}, {0.0, 0.0});
  EXPECT_NEAR(eig[0], -1.0, 1e-12);
  EXPECT_NEAR(eig[1], 2.0, 1e-12);
  EXPECT_NEAR(eig[2], 3.0, 1e-12);
}

TEST(Tridiag, PathAdjacencyClosedForm) {
  // Tridiagonal with zero diagonal and unit off-diagonal (path adjacency)
  // has eigenvalues 2 cos(k pi / (n+1)), k = 1..n.
  const std::size_t n = 12;
  std::vector<double> diag(n, 0.0), off(n - 1, 1.0);
  const auto eig = tridiagonal_eigenvalues(diag, off);
  std::vector<double> expected;
  for (std::size_t k = 1; k <= n; ++k)
    expected.push_back(
        2.0 * std::cos(static_cast<double>(k) * std::numbers::pi /
                       static_cast<double>(n + 1)));
  std::sort(expected.begin(), expected.end());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(eig[i], expected[i], 1e-10);
}

TEST(Tridiag, MatchesJacobiOnRandomTridiagonal) {
  const std::size_t n = 20;
  std::vector<double> diag(n), off(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    diag[i] = std::sin(static_cast<double>(3 * i + 1));
  for (std::size_t i = 0; i + 1 < n; ++i)
    off[i] = std::cos(static_cast<double>(2 * i + 5));

  DenseSymmetric a(n);
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) = diag[i];
  for (std::size_t i = 0; i + 1 < n; ++i) a.set_symmetric(i, i + 1, off[i]);

  const auto ql = tridiagonal_eigenvalues(diag, off);
  const auto jacobi = jacobi_eigenvalues(a);
  ASSERT_EQ(ql.size(), jacobi.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ql[i], jacobi[i], 1e-9);
}

TEST(Tridiag, RejectsBadSizes) {
  EXPECT_THROW(tridiagonal_eigenvalues({1.0, 2.0}, {}),
               util::CheckError);
}

}  // namespace
}  // namespace cobra::spectral
