// Supervised distributed sweeps: kill-one-worker / reassign / auto-merge
// round trips byte-compared against an unsharded run, weighted-slice
// balance properties, and restart-budget exhaustion.
//
// This binary is its own worker fleet: invoked as `<self> run ...` it
// registers the synthetic experiment and hands over to the cobra CLI
// (see main() at the bottom), so supervise_experiment() can fork/exec it
// exactly like the real `cobra` binary — hermetically, with cells whose
// rows are a deterministic function of (seed, cell).
#include "runner/supervisor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/spec.hpp"
#include "rng/stream.hpp"
#include "runner/cli.hpp"
#include "runner/journal.hpp"
#include "runner/registry.hpp"
#include "runner/sweep.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace cobra::runner {
namespace {

namespace fs = std::filesystem;

constexpr int kCells = 8;
constexpr char kExperiment[] = "synthetic_sup";

// Worker-side fault injection for the wedge test: when this env var
// points at a path and the marker file does not exist yet, cell c0
// creates it and then hangs far past any test timeout — so the cell
// hangs exactly once, and the respawned worker sails through.
constexpr char kHangEnv[] = "COBRA_SYNTH_HANG_ONCE";

// Makes cell c0 honestly slow (sleeps this many milliseconds on every
// run) — the discriminator between "long cell" and "wedged worker".
constexpr char kSlowEnv[] = "COBRA_SYNTH_SLOW_MS";

ExperimentDef make_synthetic() {
  ExperimentDef def;
  def.name = kExperiment;
  def.description = "deterministic two-table supervisor test experiment";
  def.tables = {
      {"synthetic_sup_main", "main table", {"cell", "i", "value"}},
      {"synthetic_sup_aux", "aux table", {"cell", "j"}}};
  def.cells = [] {
    std::vector<CellDef> cells;
    for (int i = 0; i < kCells; ++i) {
      std::string id = "c";
      id += std::to_string(i);
      cells.push_back(
          {id, i < 4 ? "first" : "second",
           [i, id](CellContext& ctx) {
             if (i == 0) {
               const std::string marker =
                   util::env_string(kHangEnv, "");
               if (!marker.empty() && !fs::exists(marker)) {
                 std::ofstream(marker) << "hanging\n";
                 std::this_thread::sleep_for(std::chrono::seconds(60));
               }
               const auto slow_ms = util::env_int(kSlowEnv, 0);
               if (slow_ms > 0) {
                 std::this_thread::sleep_for(
                     std::chrono::milliseconds(slow_ms));
               }
             }
             const std::uint64_t seed = util::global_seed();
             const auto value = rng::derive_seed(seed, i);
             ctx.row().add(id)
                 .add(static_cast<std::int64_t>(i))
                 .add(static_cast<double>(value % 1000) / 7.0, 2);
             ctx.table(1);
             for (int j = 0; j < i % 3; ++j) {
               ctx.row().add(id).add(static_cast<std::int64_t>(j));
             }
           }});
    }
    return cells;
  };
  return def;
}

constexpr char kSpecExperiment[] = "spec_sup";

// A miniature of the real `workload` experiment: cells come from the
// --graphs/COBRA_GRAPHS spec list, rows derive from the graph fingerprint
// — so a sweep whose supervisor pre-baked the specs to .cgr files (and
// whose workers therefore mmap them via file: specs) must be
// byte-identical to the in-process reference run.
ExperimentDef make_spec_driven() {
  ExperimentDef def;
  def.name = kSpecExperiment;
  def.description = "spec-driven supervisor test experiment";
  def.uses_graph_specs = true;
  def.tables = {
      {"spec_sup_main", "per-graph rows", {"graph", "n", "m", "value"}}};
  def.cells = [] {
    std::vector<CellDef> cells;
    for (const std::string& spec :
         graph::split_graph_specs(util::graphs())) {
      const std::string label = graph::graph_spec_label(spec);
      cells.push_back(
          {label, label, [spec, label](CellContext& ctx) {
             const auto g = graph::shared_graph(spec);
             const auto value =
                 rng::derive_seed(util::global_seed(), g->fingerprint());
             ctx.row().add(label)
                 .add(static_cast<std::uint64_t>(g->num_vertices()))
                 .add(g->num_edges())
                 .add(static_cast<double>(value % 1000) / 7.0, 2);
           }});
    }
    return cells;
  };
  return def;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::set_seed_override(4242);
    dir_ = fs::path(::testing::TempDir()) /
           ("supervisor_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()
                    ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    std::error_code ec;
    self_ = fs::read_symlink("/proc/self/exe", ec).string();
    ASSERT_FALSE(ec) << ec.message();
  }
  void TearDown() override {
    util::clear_env_overrides();
    fs::remove_all(dir_);
  }

  /// The unsharded in-process reference run (console off).
  void run_reference() {
    SweepConfig config;
    config.out_dir = (dir_ / "full").string();
    config.console = false;
    run_experiment(make_synthetic(), config);
  }

  SupervisorConfig config(const std::string& sub, int workers) {
    SupervisorConfig c;
    c.out_dir = (dir_ / sub).string();
    c.workers = workers;
    c.worker_binary = self_;
    c.poll_interval_s = 0.01;
    c.log = &log_;
    return c;
  }

  void expect_byte_identical(const std::string& sub) {
    for (const char* table :
         {"synthetic_sup_main.csv", "synthetic_sup_aux.csv"}) {
      EXPECT_EQ(slurp((dir_ / "full" / table).string()),
                slurp((dir_ / sub / table).string()))
          << sub << " " << table;
    }
  }

  fs::path dir_;
  std::string self_;
  std::ostringstream log_;
};

TEST_F(SupervisorTest, SupervisedSweepMatchesUnshardedRun) {
  run_reference();
  const SupervisorResult result =
      supervise_experiment(make_synthetic(), config("swept", 3));
  EXPECT_EQ(result.workers, 3);
  EXPECT_EQ(result.restarts_total, 0);
  EXPECT_EQ(result.merge.shard_count, 3);
  EXPECT_EQ(result.merge.rows_per_table,
            (std::vector<std::size_t>{8, 7}));
  expect_byte_identical("swept");
  // The merge archived the cost model for weighted re-sharding.
  EXPECT_TRUE(fs::exists(
      costs_path_for((dir_ / "swept").string(), kExperiment)));
}

TEST_F(SupervisorTest, KilledWorkerIsReassignedAndMergeIsByteIdentical) {
  run_reference();
  SupervisorConfig c = config("killed", 3);
  c.inject_kill_shard = 2;  // SIGKILL after its first journaled cell
  const SupervisorResult result =
      supervise_experiment(make_synthetic(), c);
  EXPECT_GE(result.restarts_total, 1);
  EXPECT_GE(result.shards[1].restarts, 1);
  EXPECT_NE(log_.str().find("killed by signal 9"), std::string::npos)
      << log_.str();
  EXPECT_NE(log_.str().find("respawning shard 2/3"), std::string::npos)
      << log_.str();
  expect_byte_identical("killed");
  // The respawned worker resumed the journal instead of restarting it:
  // the shard's journal holds its full slice exactly once.
  const auto [header, entries] = Journal::read(
      Journal::path_for((dir_ / "killed").string(), kExperiment, 2, 3));
  EXPECT_EQ(entries.size(),
            shard_slice(kCells, 2, 3).size());
}

TEST_F(SupervisorTest, WedgedWorkerIsKilledAndReassigned) {
  run_reference();  // before arming the hang, which cell c0 checks
  const std::string marker = (dir_ / "hang.marker").string();
  ASSERT_EQ(setenv(kHangEnv, marker.c_str(), 1), 0);
  SupervisorConfig c = config("wedged", 2);
  c.heartbeat_timeout_s = 1.0;
  c.max_restarts = 5;
  SupervisorResult result;
  try {
    result = supervise_experiment(make_synthetic(), c);
  } catch (...) {
    unsetenv(kHangEnv);
    throw;
  }
  unsetenv(kHangEnv);
  EXPECT_TRUE(fs::exists(marker));  // the hang really happened
  EXPECT_GE(result.restarts_total, 1);
  EXPECT_NE(log_.str().find("wedged"), std::string::npos) << log_.str();
  expect_byte_identical("wedged");
}

TEST_F(SupervisorTest, RestartBudgetExhaustionAbortsWithTheWorkerLog) {
  // Workers run an experiment name this binary's registry does not have,
  // so every spawn exits 2 immediately and the budget drains.
  ExperimentDef def = make_synthetic();
  def.name = "not_registered_anywhere";
  SupervisorConfig c = config("budget", 2);
  c.max_restarts = 1;
  try {
    supervise_experiment(def, c);
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("giving up"), std::string::npos) << what;
    EXPECT_NE(what.find("worker log"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown experiment"), std::string::npos) << what;
  }
}

TEST_F(SupervisorTest, WorkersBeyondCellCountGetEmptySlicesAndComplete) {
  run_reference();
  const SupervisorResult result =
      supervise_experiment(make_synthetic(), config("sparse", 10));
  EXPECT_EQ(result.restarts_total, 0);
  EXPECT_EQ(result.shards[9].cells, 0u);
  expect_byte_identical("sparse");
}

TEST_F(SupervisorTest, WeightedCostsSweepStaysByteIdentical) {
  run_reference();
  // A heavy-tailed cost model: c0 dwarfs everything else, so LPT must
  // isolate it while round-robin would pack 4 cells onto its shard.
  const std::string costs = (dir_ / "model.costs").string();
  {
    std::vector<JournalEntry> entries;
    for (int i = 0; i < kCells; ++i) {
      // Two steps: GCC 12's -Wrestrict misfires on "c" + to_string(i).
      JournalEntry entry;
      entry.cell_id = "c";
      entry.cell_id += std::to_string(i);
      entry.wall_us = i == 0 ? 100000u : 10u;
      entries.push_back(std::move(entry));
    }
    write_costs_file(costs, entries);
  }
  const auto cells = make_synthetic().cells();
  const auto heavy = slice_for(cells, 1, 2, costs);
  const auto rest = slice_for(cells, 2, 2, costs);
  // One of the two shards holds exactly {c0}; the other holds the rest.
  const auto& with_c0 =
      std::find(heavy.begin(), heavy.end(), 0u) != heavy.end() ? heavy
                                                               : rest;
  EXPECT_EQ(with_c0, (std::vector<std::size_t>{0}));
  EXPECT_EQ(heavy.size() + rest.size(), cells.size());

  SupervisorConfig c = config("weighted", 2);
  c.costs_path = costs;
  const SupervisorResult result =
      supervise_experiment(make_synthetic(), c);
  EXPECT_EQ(result.costs_path, costs);
  expect_byte_identical("weighted");
}

TEST_F(SupervisorTest, SlowCellWithCostModelIsNotFalselyDeclaredWedged) {
  run_reference();  // env unset: the reference run stays fast
  // The model knows c0 is heavy (3 s), so the per-shard wedge threshold
  // is floored at 3x that — far above the 0.4 s base timeout that would
  // otherwise kill the honest 1.2 s cell on every respawn until the
  // budget drained and the sweep aborted.
  const std::string costs = (dir_ / "slow.costs").string();
  {
    std::vector<JournalEntry> entries;
    for (int i = 0; i < kCells; ++i) {
      // Two steps: GCC 12's -Wrestrict misfires on "c" + to_string(i).
      JournalEntry entry;
      entry.cell_id = "c";
      entry.cell_id += std::to_string(i);
      entry.wall_us = i == 0 ? 3'000'000u : 10u;
      entries.push_back(std::move(entry));
    }
    write_costs_file(costs, entries);
  }
  ASSERT_EQ(setenv(kSlowEnv, "1200", 1), 0);
  SupervisorConfig c = config("slow", 2);
  c.costs_path = costs;
  c.heartbeat_timeout_s = 0.4;
  c.max_restarts = 1;
  SupervisorResult result;
  try {
    result = supervise_experiment(make_synthetic(), c);
  } catch (...) {
    unsetenv(kSlowEnv);
    throw;
  }
  unsetenv(kSlowEnv);
  EXPECT_EQ(result.restarts_total, 0);
  expect_byte_identical("slow");
}

TEST_F(SupervisorTest, MissingCostsFileFallsBackToRoundRobin) {
  run_reference();
  SupervisorConfig c = config("fallback", 2);
  c.costs_path = (dir_ / "never_written.costs").string();
  const SupervisorResult result =
      supervise_experiment(make_synthetic(), c);
  EXPECT_TRUE(result.costs_path.empty());
  EXPECT_NE(log_.str().find("round-robin"), std::string::npos)
      << log_.str();
  expect_byte_identical("fallback");
}

TEST_F(SupervisorTest, RefusesAnOutDirWithJournalsOfAnotherShardCount) {
  // A plain unsharded run leaves <exp>.1of1.journal behind; sweeping the
  // same directory at -j 2 must refuse up front, not burn the whole
  // sweep and fail in the final merge's shard-count check.
  SweepConfig ref;
  ref.out_dir = (dir_ / "reused").string();
  ref.console = false;
  run_experiment(make_synthetic(), ref);

  try {
    supervise_experiment(make_synthetic(), config("reused", 2));
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("different shard count"), std::string::npos)
        << what;
    EXPECT_NE(what.find("1of1.journal"), std::string::npos) << what;
    EXPECT_NE(what.find("--out-dir"), std::string::npos) << what;
  }
  // No worker ever started, so nothing was respawned or merged.
  EXPECT_EQ(log_.str().find("worker pid"), std::string::npos);

  // Matching shard counts are not conflicts: re-sweeping the same
  // directory at the same -j resumes the completed journals and merges.
  run_reference();
  const SupervisorResult again =
      supervise_experiment(make_synthetic(), config("resweep", 2));
  EXPECT_EQ(again.restarts_total, 0);
  supervise_experiment(make_synthetic(), config("resweep", 2));
  expect_byte_identical("resweep");
}

TEST_F(SupervisorTest, SpecDrivenSweepPrebakesGraphsForItsWorkers) {
  util::set_graphs_override("cycle_12,petersen,torus_3_d2");
  SweepConfig ref;
  ref.out_dir = (dir_ / "full").string();
  ref.console = false;
  run_experiment(make_spec_driven(), ref);

  const SupervisorResult result =
      supervise_experiment(make_spec_driven(), config("spec", 4));
  EXPECT_EQ(result.restarts_total, 0);
  EXPECT_EQ(result.merge.rows_per_table, (std::vector<std::size_t>{3}));
  // The supervisor baked each synthetic spec to one shared .cgr and the
  // worker command line references them as file: specs — all four
  // workers mmap the same on-disk CSRs.
  EXPECT_TRUE(fs::exists(dir_ / "spec" / "graphs" / "cycle_12.cgr"));
  EXPECT_TRUE(fs::exists(dir_ / "spec" / "graphs" / "petersen.cgr"));
  EXPECT_TRUE(fs::exists(dir_ / "spec" / "graphs" / "torus_3_d2.cgr"));
  EXPECT_NE(log_.str().find("pre-baked graph cycle_12"),
            std::string::npos)
      << log_.str();
  // Fingerprint-derived rows: baked file: sources reproduce the
  // in-process reference bit for bit.
  EXPECT_EQ(slurp((dir_ / "full" / "spec_sup_main.csv").string()),
            slurp((dir_ / "spec" / "spec_sup_main.csv").string()));
}

TEST_F(SupervisorTest, RejectsInvalidConfigurations) {
  SupervisorConfig bad_workers = config("invalid", 0);
  EXPECT_THROW(supervise_experiment(make_synthetic(), bad_workers),
               util::CheckError);
  SupervisorConfig bad_inject = config("invalid", 2);
  bad_inject.inject_kill_shard = 3;
  EXPECT_THROW(supervise_experiment(make_synthetic(), bad_inject),
               util::CheckError);
  SupervisorConfig no_binary = config("invalid", 2);
  no_binary.worker_binary.clear();
  EXPECT_THROW(supervise_experiment(make_synthetic(), no_binary),
               util::CheckError);
}

// -------- weighted_shard_slice unit properties --------

TEST(WeightedShardSlice, PartitionsDisjointlyInEnumerationOrder) {
  const std::vector<std::uint64_t> costs = {7, 3, 9, 1, 4, 4, 2, 8, 6, 5};
  std::vector<int> seen(costs.size(), 0);
  for (int s = 1; s <= 3; ++s) {
    const auto slice = weighted_shard_slice(costs, s, 3);
    EXPECT_TRUE(std::is_sorted(slice.begin(), slice.end()));
    for (const std::size_t i : slice) ++seen[i];
    // Deterministic: the same call yields the same slice.
    EXPECT_EQ(slice, weighted_shard_slice(costs, s, 3));
  }
  EXPECT_EQ(seen, std::vector<int>(costs.size(), 1));
}

TEST(WeightedShardSlice, KeepsTheLptBalanceGuarantee) {
  // Heavy-tailed costs: LPT keeps max load <= mean + max cost, while
  // round-robin by enumeration position piles extras onto shard 1.
  const std::vector<std::uint64_t> costs = {1000, 1, 1, 1, 1, 1, 1, 1};
  const auto load = [&costs](const std::vector<std::size_t>& slice) {
    std::uint64_t total = 0;
    for (const std::size_t i : slice) total += costs[i];
    return total;
  };
  const std::uint64_t sum =
      std::accumulate(costs.begin(), costs.end(), std::uint64_t{0});
  std::uint64_t weighted_max = 0, round_robin_max = 0;
  for (int s = 1; s <= 2; ++s) {
    weighted_max =
        std::max(weighted_max, load(weighted_shard_slice(costs, s, 2)));
    round_robin_max =
        std::max(round_robin_max, load(shard_slice(costs.size(), s, 2)));
  }
  EXPECT_LE(weighted_max, sum / 2 + 1000);  // mean load + max cost
  EXPECT_LT(weighted_max, round_robin_max);
  EXPECT_EQ(weighted_max, 1000u);  // the heavy cell ends up alone
}

TEST(WeightedShardSlice, SingleShardOwnsEverything) {
  const std::vector<std::uint64_t> costs = {5, 2, 9};
  EXPECT_EQ(weighted_shard_slice(costs, 1, 1),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_THROW(weighted_shard_slice(costs, 2, 1), util::CheckError);
}

}  // namespace
}  // namespace cobra::runner

/// Worker mode: `<test binary> run synthetic_sup --shard i/k ...` makes
/// this binary behave like the `cobra` CLI over the synthetic registry,
/// so the supervisor tests can spawn real worker processes hermetically.
int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "run") {
    cobra::runner::Registry::instance().add(
        cobra::runner::make_synthetic());
    cobra::runner::Registry::instance().add(
        cobra::runner::make_spec_driven());
    return cobra::runner::cli_main(argc - 1, argv + 1);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
