#include "rng/discrete.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cobra::rng {
namespace {

TEST(AliasTable, NormalisesProbabilities) {
  AliasTable t({1.0, 3.0});
  EXPECT_DOUBLE_EQ(t.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(t.probability(1), 0.75);
}

TEST(AliasTable, SingleOutcome) {
  AliasTable t({5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t.sample(rng), 0u);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  AliasTable t({0.0, 1.0, 0.0, 2.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const auto s = t.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTable, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable t(weights);
  Rng rng(3);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[t.sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 10.0;
    const double observed = static_cast<double>(counts[i]) / kDraws;
    EXPECT_NEAR(observed, expected, 0.01) << "outcome " << i;
  }
}

TEST(AliasTable, UniformWeightsAreUniform) {
  AliasTable t(std::vector<double>(10, 1.0));
  Rng rng(4);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[t.sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, kDraws / 10, 600);
}

TEST(AliasTable, RejectsBadInput) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), util::CheckError);
  EXPECT_THROW(AliasTable({0.0, 0.0}), util::CheckError);
  EXPECT_THROW(AliasTable({1.0, -1.0}), util::CheckError);
}

TEST(AliasTable, SampleWordIsDeterministic) {
  AliasTable t({1.0, 2.0, 3.0});
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t word = rng.next_u64();
    const std::uint32_t first = t.sample_word(word);
    EXPECT_LT(first, 3u);
    EXPECT_EQ(t.sample_word(word), first);  // pure function of the word
  }
}

TEST(AliasTable, SampleWordFrequenciesMatchWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable t(weights);
  Rng rng(7);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[t.sample_word(rng.next_u64())];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 10.0;
    const double observed = static_cast<double>(counts[i]) / kDraws;
    EXPECT_NEAR(observed, expected, 0.01) << "outcome " << i;
  }
}

TEST(AliasTable, SampleWordUniformCoversAllColumns) {
  // With uniform weights every acceptance threshold is 1, so sample_word
  // reduces to the fixed-point column pick — check the edges map sanely.
  AliasTable t(std::vector<double>(7, 1.0));
  EXPECT_EQ(t.sample_word(0ull), 0u);
  EXPECT_EQ(t.sample_word(~0ull), 6u);
  Rng rng(8);
  std::vector<int> counts(7, 0);
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++counts[t.sample_word(rng.next_u64())];
  for (const int c : counts) EXPECT_NEAR(c, kDraws / 7, 700);
}

TEST(AliasTable, HighlySkewedWeights) {
  AliasTable t({1e-6, 1.0});
  Rng rng(5);
  int rare = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i)
    if (t.sample(rng) == 0) ++rare;
  // Expected ~0.1 hits; allow a small count but not a systematic excess.
  EXPECT_LT(rare, 10);
}

}  // namespace
}  // namespace cobra::rng
