#include "rng/philox.hpp"

#include <gtest/gtest.h>

#include <set>

#include "rng/stream.hpp"

namespace cobra::rng {
namespace {

// Known-answer vectors from the Random123 distribution (kat_vectors,
// philox4x32 with 10 rounds).
TEST(Philox, KnownAnswerZeros) {
  const PhiloxBlock out = philox4x32({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(out.x[0], 0x6627e8d5u);
  EXPECT_EQ(out.x[1], 0xe169c58du);
  EXPECT_EQ(out.x[2], 0xbc57ac4cu);
  EXPECT_EQ(out.x[3], 0x9b00dbd8u);
}

TEST(Philox, KnownAnswerAllOnes) {
  const PhiloxBlock out = philox4x32(
      {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
      {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(out.x[0], 0x408f276du);
  EXPECT_EQ(out.x[1], 0x41c83b0eu);
  EXPECT_EQ(out.x[2], 0xa20bc7c6u);
  EXPECT_EQ(out.x[3], 0x6d5451fdu);
}

TEST(Philox, KnownAnswerPiDigits) {
  const PhiloxBlock out = philox4x32(
      {0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
      {0xa4093822u, 0x299f31d0u});
  EXPECT_EQ(out.x[0], 0xd16cfe09u);
  EXPECT_EQ(out.x[1], 0x94fdccebu);
  EXPECT_EQ(out.x[2], 0x5001e420u);
  EXPECT_EQ(out.x[3], 0x24126ea1u);
}

TEST(Philox, IsAFunctionOfInputs) {
  const PhiloxBlock a = philox4x32({1, 2, 3, 4}, {5, 6});
  const PhiloxBlock b = philox4x32({1, 2, 3, 4}, {5, 6});
  EXPECT_EQ(a.x, b.x);
  const PhiloxBlock c = philox4x32({1, 2, 3, 5}, {5, 6});
  EXPECT_NE(a.x, c.x);
}

TEST(PhiloxRng, DeterministicPerStream) {
  PhiloxRng a(123, 7), b(123, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(PhiloxRng, StreamsAreDisjoint) {
  PhiloxRng a(123, 0), b(123, 1);
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 4096; ++i) from_a.insert(a.next());
  int collisions = 0;
  for (int i = 0; i < 4096; ++i)
    if (from_a.count(b.next()) != 0) ++collisions;
  EXPECT_EQ(collisions, 0);
}

TEST(PhiloxRng, DifferentSeedsDiffer) {
  PhiloxRng a(1, 0), b(2, 0);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(MakeStream, ReproducibleAndStreamDependent) {
  Rng a = make_stream(42, 3);
  Rng b = make_stream(42, 3);
  Rng c = make_stream(42, 4);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MakeStream, MeanOfManyStreamsIsUnbiased) {
  // First output of 10k distinct streams should average ~2^63.
  long double sum = 0.0L;
  constexpr int kStreams = 10000;
  for (int s = 0; s < kStreams; ++s) {
    Rng rng = make_stream(99, static_cast<std::uint64_t>(s));
    sum += static_cast<long double>(rng.next_u64());
  }
  const long double mean = sum / kStreams;
  const long double half = 9.2233720368547758e18L;  // 2^63
  EXPECT_NEAR(static_cast<double>(mean / half), 1.0, 0.05);
}

TEST(DeriveSeed, DistinctSaltsGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t salt = 0; salt < 1000; ++salt)
    seeds.insert(derive_seed(12345, salt));
  EXPECT_EQ(seeds.size(), 1000u);
}

}  // namespace
}  // namespace cobra::rng
