// The telemetry substrate: metrics-mode parsing, registry slot semantics
// (thread-local, drained at quiescence, exited threads fold into the
// retired slots), snapshot diff/merge monoid laws, and the canonical
// JSON/JSONL serializer whose write → parse → re-emit round trip is
// byte-identical.
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/assert.hpp"
#include "util/env.hpp"

namespace cobra::util {
namespace {

// ---------------------------------------------------------------------------
// Modes

TEST(MetricsMode, ParseAndNameRoundTrip) {
  for (const char* name : {"off", "summary", "rounds"})
    EXPECT_STREQ(metrics_mode_name(parse_metrics_mode(name)), name);
  EXPECT_THROW(parse_metrics_mode("verbose"), CheckError);
  EXPECT_THROW(parse_metrics_mode(""), CheckError);
}

TEST(MetricsMode, SessionModeFollowsOverride) {
  clear_env_overrides();
  EXPECT_FALSE(metrics_collecting());  // default is off
  set_metrics_override("summary");
  EXPECT_EQ(metrics_mode(), MetricsMode::kSummary);
  EXPECT_TRUE(metrics_collecting());
  set_metrics_override("rounds");
  EXPECT_EQ(metrics_mode(), MetricsMode::kRounds);
  clear_env_overrides();
  EXPECT_EQ(metrics_mode(), MetricsMode::kOff);
}

// ---------------------------------------------------------------------------
// Registry

TEST(MetricsRegistry, RegistrationIsIdempotentAndKindChecked) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  const MetricId a = reg.counter("test.reg.idempotent");
  EXPECT_EQ(reg.counter("test.reg.idempotent"), a);
  EXPECT_THROW(reg.gauge("test.reg.idempotent"), CheckError);
  EXPECT_THROW(reg.histogram("test.reg.idempotent"), CheckError);
  EXPECT_THROW(reg.counter(""), CheckError);
}

TEST(MetricsRegistry, DrainFoldsAndResets) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.drain(true);  // isolate from other tests
  const MetricId c = reg.counter("test.reg.count");
  const MetricId g = reg.gauge("test.reg.peak");
  reg.add(c, 3);
  reg.add(c);
  reg.gauge_max(g, 7);
  reg.gauge_max(g, 5);  // lower value must not regress the high-water mark

  MetricsSnapshot snap = reg.drain(true);
  EXPECT_EQ(snap.value_of("test.reg.count"), 4u);
  EXPECT_EQ(snap.value_of("test.reg.peak"), 7u);
  // The reset zeroed the slots: a fresh drain omits the (zero) entries.
  MetricsSnapshot empty = reg.drain(true);
  EXPECT_EQ(empty.find("test.reg.count"), nullptr);
  EXPECT_EQ(empty.find("test.reg.peak"), nullptr);
}

TEST(MetricsRegistry, HistogramBucketsByBitWidth) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.drain(true);
  const MetricId h = reg.histogram("test.reg.hist");
  reg.observe(h, 0);    // bucket 0
  reg.observe(h, 1);    // bucket 1
  reg.observe(h, 2);    // bucket 2: [2, 4)
  reg.observe(h, 3);    // bucket 2
  reg.observe(h, 100);  // bucket 7: [64, 128)

  const MetricsSnapshot snap = reg.drain(true);
  const MetricValue* v = snap.find("test.reg.hist");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->kind, MetricKind::kHistogram);
  ASSERT_EQ(v->buckets.size(), kHistogramBuckets);
  EXPECT_EQ(v->buckets[0], 1u);
  EXPECT_EQ(v->buckets[1], 1u);
  EXPECT_EQ(v->buckets[2], 2u);
  EXPECT_EQ(v->buckets[7], 1u);
}

TEST(MetricsRegistry, FoldsThreadsAndSurvivesThreadExit) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.drain(true);
  const MetricId c = reg.counter("test.reg.threads");
  const MetricId g = reg.gauge("test.reg.threads_peak");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Hot-loop style: resolve the slot pointer once, bump it raw.
      std::uint64_t* slots = reg.local_slots();
      for (std::uint64_t i = 0; i < kPerThread; ++i) slots[c] += 1;
      reg.gauge_max(g, static_cast<std::uint64_t>(t + 1));
    });
  }
  for (std::thread& t : threads) t.join();
  // Every thread has exited: its slots folded into the retired store, so
  // nothing is lost even though the thread-local arrays are gone.
  const MetricsSnapshot snap = reg.drain(true);
  EXPECT_EQ(snap.value_of("test.reg.threads"), kThreads * kPerThread);
  EXPECT_EQ(snap.value_of("test.reg.threads_peak"),
            static_cast<std::uint64_t>(kThreads));
}

// ---------------------------------------------------------------------------
// Snapshot algebra

MetricsSnapshot make_snapshot(
    std::vector<std::tuple<std::string, MetricKind, std::uint64_t>>
        entries) {
  MetricsSnapshot snap;
  for (auto& [name, kind, value] : entries) {
    MetricValue v;
    v.name = name;
    v.kind = kind;
    if (kind == MetricKind::kHistogram) {
      v.buckets.assign(kHistogramBuckets, 0);
      v.buckets[1] = value;
    } else {
      v.value = value;
    }
    snap.values.push_back(std::move(v));
  }
  return snap;
}

TEST(MetricsSnapshot, DiffSubtractsCountersKeepsGauges) {
  const MetricsSnapshot before = make_snapshot(
      {{"a", MetricKind::kCounter, 10}, {"p", MetricKind::kGauge, 9}});
  const MetricsSnapshot after = make_snapshot(
      {{"a", MetricKind::kCounter, 15},
       {"b", MetricKind::kCounter, 2},
       {"p", MetricKind::kGauge, 12}});
  const MetricsSnapshot d = diff(after, before);
  EXPECT_EQ(d.value_of("a"), 5u);
  EXPECT_EQ(d.value_of("b"), 2u);
  EXPECT_EQ(d.value_of("p"), 12u);  // gauges keep `after`'s mark
  // Subtraction saturates at zero and zero entries drop.
  const MetricsSnapshot z =
      diff(before, make_snapshot({{"a", MetricKind::kCounter, 99}}));
  EXPECT_EQ(z.find("a"), nullptr);
  EXPECT_EQ(z.value_of("p"), 9u);
}

TEST(MetricsSnapshot, MergeIsACommutativeMonoid) {
  const MetricsSnapshot a = make_snapshot(
      {{"c", MetricKind::kCounter, 3},
       {"g", MetricKind::kGauge, 10},
       {"h", MetricKind::kHistogram, 2}});
  const MetricsSnapshot b = make_snapshot(
      {{"c", MetricKind::kCounter, 4},
       {"g", MetricKind::kGauge, 7},
       {"x", MetricKind::kCounter, 1}});
  const MetricsSnapshot c = make_snapshot({{"g", MetricKind::kGauge, 20}});

  const MetricsSnapshot ab = merge(a, b);
  EXPECT_EQ(ab.value_of("c"), 7u);    // counters add
  EXPECT_EQ(ab.value_of("g"), 10u);   // gauges max
  EXPECT_EQ(ab.value_of("x"), 1u);
  EXPECT_EQ(ab.find("h")->buckets[1], 2u);  // histograms add buckets

  // Commutativity and associativity, observed through the serializer.
  EXPECT_EQ(snapshot_to_json(merge(a, b)), snapshot_to_json(merge(b, a)));
  EXPECT_EQ(snapshot_to_json(merge(merge(a, b), c)),
            snapshot_to_json(merge(a, merge(b, c))));
  // The empty snapshot is the identity.
  EXPECT_EQ(snapshot_to_json(merge(a, MetricsSnapshot{})),
            snapshot_to_json(a));
  EXPECT_EQ(snapshot_to_json(merge(MetricsSnapshot{}, a)),
            snapshot_to_json(a));
}

TEST(MetricsSnapshot, MergeRejectsKindMismatch) {
  const MetricsSnapshot a = make_snapshot({{"m", MetricKind::kCounter, 1}});
  const MetricsSnapshot b = make_snapshot({{"m", MetricKind::kGauge, 1}});
  EXPECT_THROW(merge(a, b), CheckError);
  EXPECT_THROW(diff(a, b), CheckError);
}

// ---------------------------------------------------------------------------
// Canonical JSON / JSONL

TEST(MetricsJson, RoundTripIsByteIdentical) {
  const MetricsSnapshot snap = make_snapshot(
      {{"kernel.rounds", MetricKind::kCounter, 42},
       {"kernel.frontier_peak", MetricKind::kGauge, 1u << 20},
       {"kernel.frontier_size", MetricKind::kHistogram, 17},
       {"rng.alias_builds", MetricKind::kCounter, 3}});
  const std::string json = snapshot_to_json(snap);
  EXPECT_EQ(snapshot_to_json(snapshot_from_json(json)), json);

  const std::string line = snapshot_to_jsonl(snap);
  EXPECT_EQ(line.rfind("{\"v\":1,", 0), 0u) << line;
  EXPECT_EQ(snapshot_to_jsonl(snapshot_from_jsonl(line)), line);
}

TEST(MetricsJson, EmptySnapshotAndSections) {
  EXPECT_EQ(snapshot_to_json(MetricsSnapshot{}), "{}");
  EXPECT_EQ(snapshot_to_jsonl(MetricsSnapshot{}), "{\"v\":1}");
  EXPECT_TRUE(snapshot_from_jsonl("{\"v\":1}").empty());
  // A counters-only snapshot omits the gauge/histogram sections.
  const std::string json = snapshot_to_json(
      make_snapshot({{"c", MetricKind::kCounter, 1}}));
  EXPECT_EQ(json, "{\"counters\":{\"c\":1}}");
}

TEST(MetricsJson, RejectsMalformedInput) {
  EXPECT_THROW(snapshot_from_json("{"), CheckError);
  EXPECT_THROW(snapshot_from_json("[]"), CheckError);
  EXPECT_THROW(snapshot_from_json("{} trailing"), CheckError);
  EXPECT_THROW(snapshot_from_json("{\"counters\":{\"c\":-1}}"), CheckError);
  EXPECT_THROW(snapshot_from_json("{\"counters\":[1]}"), CheckError);
  EXPECT_THROW(
      snapshot_from_json("{\"histograms\":{\"h\":{\"999\":1}}}"),
      CheckError);
  EXPECT_THROW(snapshot_from_jsonl("{\"v\":2}"), CheckError);  // bad version
  EXPECT_THROW(snapshot_from_jsonl("{}"), CheckError);         // no version
}

TEST(MetricsJson, QuoteEscapes) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  // Escaped strings survive a parse.
  const JsonValue v = parse_json(json_quote("tab\there \"q\" \\"));
  EXPECT_EQ(v.text, "tab\there \"q\" \\");
}

TEST(MetricsJson, ParserHandlesDocumentShapes) {
  const JsonValue doc =
      parse_json("{\"a\":1,\"b\":[2,3],\"c\":{\"d\":\"x\"},\"e\":null}");
  EXPECT_EQ(doc.uint_or("a", 0), 1u);
  ASSERT_NE(doc.find("b"), nullptr);
  EXPECT_EQ(doc.find("b")->array.size(), 2u);
  EXPECT_EQ(doc.find("c")->find("d")->text, "x");
  EXPECT_EQ(doc.find("e")->type, JsonValue::Type::kNull);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(parse_json("18446744073709551616"), CheckError);  // overflow
}

}  // namespace
}  // namespace cobra::util
