#include "core/restart.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "sim/stats.hpp"
#include "util/assert.hpp"

namespace cobra::core {
namespace {

TEST(Restart, ExpectationBoundFormula) {
  EXPECT_DOUBLE_EQ(restart_expectation_bound(100.0, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(restart_expectation_bound(100.0, 0.5), 200.0);
  EXPECT_THROW(restart_expectation_bound(100.0, 1.0), util::CheckError);
  EXPECT_THROW(restart_expectation_bound(0.0, 0.5), util::CheckError);
}

TEST(Restart, CompletesWithinFirstEpochWhenGenerous) {
  const graph::Graph g = graph::complete(64);
  CobraProcess p(g);
  auto rng = rng::make_stream(9292, 0);
  p.reset(graph::VertexId{0});
  const auto r = run_cover_with_restarts(p, rng, /*epoch_rounds=*/1000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.epochs, 1u);
  EXPECT_LE(r.total_rounds, 1000u);
}

TEST(Restart, TinyEpochsStillTerminate) {
  // Epochs of 1 round degenerate to plain stepping; the scheme must still
  // finish and count epochs = total rounds.
  const graph::Graph g = graph::cycle(16);
  CobraProcess p(g);
  auto rng = rng::make_stream(9293, 0);
  p.reset(graph::VertexId{0});
  const auto r = run_cover_with_restarts(p, rng, 1);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.epochs, r.total_rounds);
}

TEST(Restart, EpochBudgetRespected) {
  const graph::Graph g = graph::cycle(64);
  CobraProcess p(g);
  auto rng = rng::make_stream(9294, 0);
  p.reset(graph::VertexId{0});
  const auto r = run_cover_with_restarts(p, rng, /*epoch_rounds=*/2,
                                         /*max_epochs=*/3);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.epochs, 3u);
  EXPECT_EQ(r.total_rounds, 6u);
}

TEST(Restart, MeanEpochsMatchGeometricPrediction) {
  // With epoch length = the q-quantile of the cover distribution, the mean
  // number of epochs should be close to 1/q (geometric with success q) —
  // slightly better because later epochs start from a large visited set.
  const graph::Graph g = graph::torus_power(9, 2);
  constexpr int kReps = 300;

  // Calibrate the median.
  std::vector<double> covers;
  for (int rep = 0; rep < kReps; ++rep) {
    auto rng = rng::make_stream(9295, static_cast<std::uint64_t>(rep));
    CobraProcess p(g);
    p.reset(graph::VertexId{0});
    covers.push_back(static_cast<double>(*p.run_until_cover(rng, 100000)));
  }
  const auto epoch =
      static_cast<std::uint64_t>(sim::quantile(covers, 0.5));

  std::vector<double> epochs;
  for (int rep = 0; rep < kReps; ++rep) {
    auto rng = rng::make_stream(9296, static_cast<std::uint64_t>(rep));
    CobraProcess p(g);
    p.reset(graph::VertexId{0});
    const auto r = run_cover_with_restarts(p, rng, epoch);
    EXPECT_TRUE(r.completed);
    epochs.push_back(static_cast<double>(r.epochs));
  }
  // Success probability per epoch ~ 0.5 => mean epochs <= 2 + slack; and it
  // must exceed 1 (the median leaves ~half the runs unfinished).
  const double mean_epochs = sim::mean(epochs);
  EXPECT_GT(mean_epochs, 1.05);
  EXPECT_LT(mean_epochs, 2.5);
}

}  // namespace
}  // namespace cobra::core
