#include <gtest/gtest.h>

#include <cmath>

#include "baselines/flooding.hpp"
#include "baselines/pull_gossip.hpp"
#include "baselines/push_gossip.hpp"
#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "sim/stats.hpp"

namespace cobra::baselines {
namespace {

TEST(PullGossip, CoversCompleteGraph) {
  const graph::Graph g = graph::complete(128);
  for (int rep = 0; rep < 20; ++rep) {
    auto rng = rng::make_stream(411, static_cast<std::uint64_t>(rep));
    const auto r = pull_gossip_cover(g, 0, rng, 10000);
    ASSERT_TRUE(r.completed);
    // Pull on K_n: slow start (each round one expected new adopter until
    // the informed set grows), then doubling; generous cap.
    EXPECT_LE(r.rounds, 400u);
  }
}

TEST(PullGossip, SynchronousSemantics) {
  // On P_3 = 0-1-2 with start 0, vertex 2 cannot be informed in round 1
  // (its only neighbour 1 is uninformed at the round start).
  const graph::Graph g = graph::path(3);
  for (int rep = 0; rep < 200; ++rep) {
    auto rng = rng::make_stream(412, static_cast<std::uint64_t>(rep));
    const auto r = pull_gossip_cover(g, 0, rng, 10000);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.rounds, 2u);
  }
}

TEST(PushPull, FasterThanEitherAloneOnStar) {
  // Star from a leaf: push alone needs the centre to draw each leaf
  // (coupon collector); pull alone informs the centre then all leaves pull
  // within a couple of rounds. Push-pull ~ pull.
  const graph::Graph g = graph::star(64);
  constexpr int kReps = 60;
  std::vector<double> push_r, pull_r, pp_r;
  for (int rep = 0; rep < kReps; ++rep) {
    auto r1 = rng::make_stream(413, static_cast<std::uint64_t>(rep));
    push_r.push_back(static_cast<double>(
        push_gossip_cover(g, 1, r1, 1u << 20).rounds));
    auto r2 = rng::make_stream(414, static_cast<std::uint64_t>(rep));
    pull_r.push_back(static_cast<double>(
        pull_gossip_cover(g, 1, r2, 1u << 20).rounds));
    auto r3 = rng::make_stream(415, static_cast<std::uint64_t>(rep));
    pp_r.push_back(static_cast<double>(
        push_pull_gossip_cover(g, 1, r3, 1u << 20).rounds));
  }
  EXPECT_LT(sim::mean(pull_r), sim::mean(push_r));
  EXPECT_LE(sim::mean(pp_r), sim::mean(pull_r) + 1.0);
}

TEST(PushPull, LogarithmicOnComplete) {
  const graph::Graph g = graph::complete(512);
  for (int rep = 0; rep < 20; ++rep) {
    auto rng = rng::make_stream(416, static_cast<std::uint64_t>(rep));
    const auto r = push_pull_gossip_cover(g, 0, rng, 1000);
    ASSERT_TRUE(r.completed);
    EXPECT_LE(r.rounds, 30u);  // ~ log2 n + O(log log n)
  }
}

TEST(Flooding, RoundsEqualEccentricityExactly) {
  struct Case {
    graph::Graph g;
    graph::VertexId start;
  };
  const Case cases[] = {
      {graph::path(17), 0},
      {graph::cycle(12), 3},
      {graph::hypercube(5), 0},
      {graph::star(9), 4},
      {graph::petersen(), 0},
  };
  for (const auto& c : cases) {
    const auto r = flooding_cover(c.g, c.start, 1u << 20);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.rounds, *graph::eccentricity(c.g, c.start)) << c.g.name();
  }
}

TEST(Flooding, TransmissionCountMatchesDefinition) {
  // On K_4 from vertex 0: round 1 sends d(0) = 3 messages, done.
  const auto r = flooding_cover(graph::complete(4), 0, 100);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.transmissions, 3u);
}

TEST(Flooding, DisconnectedGraphReported) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const graph::Graph g = std::move(b).build();
  const auto r = flooding_cover(g, 0, 100);
  EXPECT_FALSE(r.completed);
}

TEST(Flooding, IsTheRoundLowerEnvelope) {
  // No protocol can beat flooding in rounds; check vs push gossip.
  const graph::Graph g = graph::torus_power(7, 2);
  const auto flood = flooding_cover(g, 0, 1u << 20);
  for (int rep = 0; rep < 10; ++rep) {
    auto rng = rng::make_stream(417, static_cast<std::uint64_t>(rep));
    const auto push = push_gossip_cover(g, 0, rng, 1u << 20);
    ASSERT_TRUE(push.completed);
    EXPECT_GE(push.rounds, flood.rounds);
  }
}

}  // namespace
}  // namespace cobra::baselines
