#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace cobra::graph {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  return std::move(b).build("triangle");
}

TEST(Graph, BasicCounts) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree_sum(), 6u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.min_degree(), 2u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.name(), "triangle");
}

TEST(Graph, NeighborsSortedAndSymmetric) {
  const Graph g = triangle();
  for (VertexId u = 0; u < 3; ++u) {
    const auto nbrs = g.neighbors(u);
    EXPECT_EQ(nbrs.size(), 2u);
    for (std::size_t j = 1; j < nbrs.size(); ++j)
      EXPECT_LT(nbrs[j - 1], nbrs[j]);
    for (const VertexId v : nbrs) EXPECT_TRUE(g.has_edge(v, u));
  }
}

TEST(Graph, HasEdge) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(Graph, NeighborByIndex) {
  const Graph g = triangle();
  EXPECT_EQ(g.neighbor(0, 0), 1u);
  EXPECT_EQ(g.neighbor(0, 1), 2u);
}

TEST(Graph, SetDegree) {
  const Graph g = triangle();
  const std::vector<VertexId> s = {0, 1};
  EXPECT_EQ(g.set_degree(s), 4u);
  const std::vector<VertexId> all = {0, 1, 2};
  EXPECT_EQ(g.set_degree(all), g.degree_sum());
}

TEST(Graph, EdgesListsEachEdgeOnce) {
  const Graph g = triangle();
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), 3u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Graph, ConstructorValidation) {
  // Self-loop rejected.
  EXPECT_THROW(Graph({0, 2}, {0, 0}), util::CheckError);
  // Offsets/adjacency mismatch rejected.
  EXPECT_THROW(Graph({0, 1}, {0, 1}), util::CheckError);
  // Unsorted adjacency rejected.
  EXPECT_THROW(Graph({0, 2, 3, 5}, {2, 1, 0, 0, 0}), util::CheckError);
  // Out-of-range neighbour rejected.
  EXPECT_THROW(Graph({0, 1, 2}, {5, 0}), util::CheckError);
}

TEST(Graph, IrregularDegreeStats) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_FALSE(g.is_regular());
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, FingerprintIsStructural) {
  // Same structure -> same digest (regardless of name or build path);
  // different structure -> different digest. This keys the spectral cache.
  const Graph a = cycle(32);
  Graph b = cycle(32);
  b.set_name("renamed");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), a.fingerprint());  // stable across calls

  EXPECT_NE(a.fingerprint(), cycle(33).fingerprint());
  EXPECT_NE(a.fingerprint(), path(32).fingerprint());
  EXPECT_NE(a.fingerprint(), complete(32).fingerprint());

  GraphBuilder tri(3);
  tri.add_edge(0, 1);
  tri.add_edge(1, 2);
  tri.add_edge(0, 2);
  EXPECT_EQ((std::move(tri).build()).fingerprint(),
            complete(3).fingerprint());
}

}  // namespace
}  // namespace cobra::graph
