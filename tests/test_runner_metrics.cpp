// Run-level telemetry: sidecar record round trips, last-record-per-cell
// recovery semantics, sweep status snapshots, and the two end-to-end
// guarantees the metrics modes make — archives stay byte-identical no
// matter what `--metrics` is set to (collection never consumes
// randomness), and the archived sidecars are deterministic in content
// and order across shardings.
#include "runner/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/bips.hpp"
#include "core/cobra.hpp"
#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "runner/registry.hpp"
#include "runner/sweep.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"
#include "util/metrics.hpp"

namespace cobra::runner {
namespace {

namespace fs = std::filesystem;

CellMetricsRecord make_record() {
  CellMetricsRecord record;
  record.cell_id = "d=4";
  record.mode = "rounds";
  record.wall_us = 1234;
  util::MetricValue counter;
  counter.name = "kernel.rounds";
  counter.kind = util::MetricKind::kCounter;
  counter.value = 17;
  util::MetricValue gauge;
  gauge.name = "kernel.frontier_peak";
  gauge.kind = util::MetricKind::kGauge;
  gauge.value = 96;
  record.snapshot.values = {std::move(gauge), std::move(counter)};
  std::sort(record.snapshot.values.begin(), record.snapshot.values.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  record.rounds = {{3, 5, 4, 0}, {3, 11, 6, 1}};
  return record;
}

TEST(CellMetricsRecord, JsonlRoundTripIsByteIdentical) {
  const CellMetricsRecord record = make_record();
  const std::string line = record_to_jsonl(record);
  EXPECT_EQ(line.rfind("{\"v\":1,\"cell\":\"d=4\"", 0), 0u) << line;
  const CellMetricsRecord parsed = record_from_jsonl(line);
  EXPECT_EQ(parsed.cell_id, record.cell_id);
  EXPECT_EQ(parsed.mode, record.mode);
  EXPECT_EQ(parsed.wall_us, record.wall_us);
  ASSERT_EQ(parsed.rounds.size(), 2u);
  EXPECT_EQ(parsed.rounds[1].frontier, 11u);
  EXPECT_EQ(record_to_jsonl(parsed), line);

  // Empty sections are omitted, and still round-trip.
  CellMetricsRecord bare;
  bare.cell_id = "c0";
  bare.mode = "summary";
  const std::string bare_line = record_to_jsonl(bare);
  EXPECT_EQ(bare_line.find("metrics"), std::string::npos) << bare_line;
  EXPECT_EQ(bare_line.find("rounds\""), std::string::npos) << bare_line;
  EXPECT_EQ(record_to_jsonl(record_from_jsonl(bare_line)), bare_line);
}

TEST(CellMetricsRecord, ParserRejectsMalformedLines) {
  EXPECT_THROW(record_from_jsonl("{\"v\":9,\"cell\":\"c0\"}"),
               util::CheckError);
  EXPECT_THROW(record_from_jsonl("{\"v\":1}"), util::CheckError);  // no cell
  EXPECT_THROW(record_from_jsonl("{\"v\":1,\"cell\":\"c0\","
                                 "\"rounds\":[[1,2,3]]}"),  // 3-tuple
               util::CheckError);
  EXPECT_THROW(record_from_jsonl("not json"), util::CheckError);
}

TEST(MetricsSidecar, PathNaming) {
  EXPECT_EQ(metrics_sidecar_path("out", "exp", 1, 1),
            "out/exp.metrics.jsonl");
  EXPECT_EQ(metrics_sidecar_path("out", "exp", 2, 4),
            "out/exp.2of4.metrics.jsonl");
}

class TelemetryFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("telemetry_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()
                    ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    util::clear_env_overrides();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(TelemetryFileTest, SidecarKeepsTheLastRecordPerCell) {
  const std::string path = (dir_ / "x.metrics.jsonl").string();
  EXPECT_TRUE(read_metrics_sidecar(path).empty());  // missing file is fine

  CellMetricsRecord first = make_record();
  first.cell_id = "c0";
  first.wall_us = 1;
  CellMetricsRecord other = make_record();
  other.cell_id = "c1";
  CellMetricsRecord rerun = make_record();
  rerun.cell_id = "c0";
  rerun.wall_us = 2;  // the cell re-ran after a crash; this record wins
  append_metrics_record(path, first);
  append_metrics_record(path, other);
  append_metrics_record(path, rerun);

  const auto records = read_metrics_sidecar(path);
  ASSERT_EQ(records.size(), 2u);
  std::map<std::string, std::uint64_t> wall;
  for (const CellMetricsRecord& r : records) wall[r.cell_id] = r.wall_us;
  EXPECT_EQ(wall.at("c0"), 2u);
  EXPECT_EQ(wall.at("c1"), 1234u);

  // A corrupted line fails loudly, naming the file.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"v\":1,\"cell\":\n";
  }
  try {
    read_metrics_sidecar(path);
    FAIL() << "expected util::CheckError";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

TEST_F(TelemetryFileTest, OrderRecordsDedupsAndFollowsEnumeration) {
  std::vector<CellMetricsRecord> records;
  for (const char* id : {"c2", "c0", "stale", "c1", "c0"}) {
    CellMetricsRecord r;
    r.cell_id = id;
    r.wall_us = records.size();  // distinguish the two c0 records
    records.push_back(std::move(r));
  }
  const auto ordered =
      order_records(std::move(records), {"c0", "c1", "c2"});
  ASSERT_EQ(ordered.size(), 3u);  // "stale" dropped, c0 deduped
  EXPECT_EQ(ordered[0].cell_id, "c0");
  EXPECT_EQ(ordered[0].wall_us, 4u);  // the later duplicate won
  EXPECT_EQ(ordered[1].cell_id, "c1");
  EXPECT_EQ(ordered[2].cell_id, "c2");

  // write → read preserves the compacted order.
  const std::string path = (dir_ / "ordered.metrics.jsonl").string();
  write_metrics_sidecar(path, ordered);
  const auto reread = read_metrics_sidecar(path);
  ASSERT_EQ(reread.size(), 3u);
  EXPECT_EQ(reread[0].cell_id, "c0");
  EXPECT_EQ(reread[2].cell_id, "c2");
}

TEST_F(TelemetryFileTest, SweepStatusRoundTrips) {
  const std::string path = sweep_status_path(dir_.string(), "exp");
  EXPECT_EQ(path, (dir_ / "exp.sweep.status").string());
  EXPECT_FALSE(read_sweep_status(path).has_value());  // missing file

  SweepStatus status;
  status.experiment = "exp";
  status.shard_count = 2;
  status.shards = {{1, 4242, 1, 0, "running", 3, 5},
                   {2, -1, 0, 0, "complete", 4, 4}};
  write_sweep_status(path, status);

  const auto read = read_sweep_status(path);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->experiment, "exp");
  EXPECT_EQ(read->shard_count, 2);
  ASSERT_EQ(read->shards.size(), 2u);
  EXPECT_EQ(read->shards[0].pid, 4242);
  EXPECT_EQ(read->shards[0].restarts, 1);
  EXPECT_EQ(read->shards[0].state, "running");
  EXPECT_EQ(read->shards[0].cells_done, 3u);
  EXPECT_EQ(read->shards[0].cells_total, 5u);
  EXPECT_EQ(read->shards[1].pid, -1);
  EXPECT_EQ(read->shards[1].state, "complete");

  {
    std::ofstream out(path, std::ios::trunc);
    out << "not-a-status\tv1\n";
  }
  EXPECT_THROW(read_sweep_status(path), util::CheckError);
}

// ---------------------------------------------------------------------------
// End-to-end: archives are mode-invariant and sidecars deterministic.

constexpr int kCells = 6;

/// A miniature real experiment: each cell runs a fixed-seed COBRA cover
/// on a hypercube and reports the cover round — so the kernel's
/// instrumented paths genuinely execute, and any metrics-induced
/// perturbation of the trajectory would change the archived CSV.
ExperimentDef make_cover_experiment() {
  ExperimentDef def;
  def.name = "coversmoke";
  def.description = "fixed-seed cover rounds for telemetry tests";
  def.tables = {{"coversmoke_cover", "cover rounds", {"cell", "round"}}};
  def.cells = [] {
    std::vector<CellDef> cells;
    for (int i = 0; i < kCells; ++i) {
      std::string id = "rep";
      id += std::to_string(i);
      cells.push_back({id, "cover", [i, id](CellContext& ctx) {
                         const graph::Graph g = graph::hypercube(6);
                         core::CobraProcess p(g);
                         rng::Rng rng =
                             rng::make_stream(util::global_seed(),
                                              static_cast<std::uint64_t>(i));
                         p.reset(graph::VertexId{0});
                         const auto cover = p.run_until_cover(rng, 100000);
                         COBRA_CHECK(cover.has_value());
                         ctx.row().add(id).add(
                             static_cast<std::int64_t>(*cover));
                       }});
    }
    return cells;
  };
  return def;
}

class MetricsRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::set_seed_override(777);
    dir_ = fs::path(::testing::TempDir()) /
           ("metricsrun_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()
                    ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    util::clear_env_overrides();
    fs::remove_all(dir_);
  }

  SweepConfig config(const std::string& sub, int i = 1, int k = 1) {
    SweepConfig c;
    c.out_dir = (dir_ / sub).string();
    c.shard_index = i;
    c.shard_count = k;
    c.console = false;
    return c;
  }

  std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  fs::path dir_;
};

TEST_F(MetricsRunTest, ModesDoNotPerturbArchivesAndRoundsArchivesRounds) {
  const ExperimentDef def = make_cover_experiment();

  // Baseline: metrics off. No sidecar is written.
  run_experiment(def, config("off"));
  EXPECT_FALSE(
      fs::exists(dir_ / "off/coversmoke.metrics.jsonl"));

  util::set_metrics_override("summary");
  run_experiment(def, config("summary"));
  util::set_metrics_override("rounds");
  run_experiment(def, config("rounds"));

  // The headline guarantee: identical archive bytes in every mode.
  const std::string baseline =
      slurp((dir_ / "off/coversmoke_cover.csv").string());
  EXPECT_EQ(baseline,
            slurp((dir_ / "summary/coversmoke_cover.csv").string()));
  EXPECT_EQ(baseline,
            slurp((dir_ / "rounds/coversmoke_cover.csv").string()));

  // Summary mode archives per-cell kernel totals, no trajectories.
  const auto summary = read_metrics_sidecar(
      (dir_ / "summary/coversmoke.metrics.jsonl").string());
  ASSERT_EQ(summary.size(), static_cast<std::size_t>(kCells));
  for (const CellMetricsRecord& r : summary) {
    EXPECT_EQ(r.mode, "summary");
    EXPECT_GT(r.snapshot.value_of("kernel.rounds"), 0u) << r.cell_id;
    EXPECT_GT(r.snapshot.value_of("kernel.first_visits"), 0u) << r.cell_id;
    EXPECT_TRUE(r.rounds.empty()) << r.cell_id;
  }

  // Rounds mode adds the per-round trajectory; same totals semantics.
  const auto rounds = read_metrics_sidecar(
      (dir_ / "rounds/coversmoke.metrics.jsonl").string());
  ASSERT_EQ(rounds.size(), static_cast<std::size_t>(kCells));
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const CellMetricsRecord& r = rounds[i];
    EXPECT_EQ(r.mode, "rounds");
    ASSERT_FALSE(r.rounds.empty()) << r.cell_id;
    // Trajectory length and totals are consistent with the counters —
    // and the counters agree with the summary-mode run of the same cell.
    EXPECT_EQ(r.rounds.size(), r.snapshot.value_of("kernel.rounds"))
        << r.cell_id;
    std::uint64_t newly = 0;
    for (const core::RoundStat& s : r.rounds) newly += s.newly;
    EXPECT_EQ(newly, r.snapshot.value_of("kernel.first_visits"))
        << r.cell_id;
    EXPECT_EQ(r.cell_id, summary[i].cell_id);
    EXPECT_EQ(util::snapshot_to_json(r.snapshot),
              util::snapshot_to_json(summary[i].snapshot))
        << r.cell_id;
  }
  // A completed run compacts the sidecar into journal (= enumeration)
  // order with exactly one record per cell.
  for (int i = 0; i < kCells; ++i)
    EXPECT_EQ(rounds[static_cast<std::size_t>(i)].cell_id,
              "rep" + std::to_string(i));
}

TEST_F(MetricsRunTest, ShardedSidecarsMergeToTheUnshardedContent) {
  const ExperimentDef def = make_cover_experiment();
  util::set_metrics_override("rounds");
  run_experiment(def, config("full"));

  for (int i = 1; i <= 3; ++i)
    EXPECT_TRUE(run_experiment(def, config("sharded", i, 3)).complete());
  merge_experiment(def, (dir_ / "sharded").string(), nullptr);

  // Shard CSVs merged byte-identical (the existing guarantee)...
  EXPECT_EQ(slurp((dir_ / "full/coversmoke_cover.csv").string()),
            slurp((dir_ / "sharded/coversmoke_cover.csv").string()));

  // ...and the merged sidecar holds the same cells in the same order
  // with identical metric payloads (wall_us is timing, not compared).
  const auto full = read_metrics_sidecar(
      (dir_ / "full/coversmoke.metrics.jsonl").string());
  const auto merged = read_metrics_sidecar(
      (dir_ / "sharded/coversmoke.metrics.jsonl").string());
  ASSERT_EQ(full.size(), merged.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].cell_id, merged[i].cell_id);
    EXPECT_EQ(util::snapshot_to_json(full[i].snapshot),
              util::snapshot_to_json(merged[i].snapshot))
        << full[i].cell_id;
    ASSERT_EQ(full[i].rounds.size(), merged[i].rounds.size());
    for (std::size_t t = 0; t < full[i].rounds.size(); ++t) {
      EXPECT_EQ(full[i].rounds[t].frontier, merged[i].rounds[t].frontier);
      EXPECT_EQ(full[i].rounds[t].newly, merged[i].rounds[t].newly);
    }
  }
}

TEST_F(MetricsRunTest, FreshRunReplacesAStaleSidecar) {
  const ExperimentDef def = make_cover_experiment();
  util::set_metrics_override("summary");
  SweepConfig partial = config("restart");
  partial.max_cells = 2;
  run_experiment(def, partial);
  const std::string sidecar =
      (dir_ / "restart/coversmoke.metrics.jsonl").string();
  EXPECT_EQ(read_metrics_sidecar(sidecar).size(), 2u);

  // No --resume: the journal restarts, and so must the sidecar — no
  // stale records from the abandoned run may survive.
  run_experiment(def, config("restart"));
  const auto records = read_metrics_sidecar(sidecar);
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kCells));
  for (int i = 0; i < kCells; ++i)
    EXPECT_EQ(records[static_cast<std::size_t>(i)].cell_id,
              "rep" + std::to_string(i));
}

// ---------------------------------------------------------------------------
// Core-level mode invariance, per engine and per process.

/// The first-visit round of every vertex under a fixed stream — the full
/// observable trajectory of one cover run.
std::vector<std::uint64_t> cobra_first_visits(core::Engine engine,
                                              std::uint64_t seed) {
  const graph::Graph g = graph::hypercube(6);
  core::ProcessOptions opt;
  opt.engine = engine;
  core::CobraProcess p(g, opt);
  rng::Rng rng = rng::make_stream(seed, 0);
  p.reset(graph::VertexId{0});
  std::vector<std::uint64_t> rounds(g.num_vertices(), ~0ull);
  rounds[0] = 0;
  while (!p.all_visited()) {
    COBRA_CHECK(p.round() < 100000);
    p.step(rng);
    for (graph::VertexId u = 0; u < g.num_vertices(); ++u)
      if (rounds[u] == ~0ull && p.is_visited(u)) rounds[u] = p.round();
  }
  return rounds;
}

std::vector<std::uint64_t> bips_infection_curve(core::Engine engine,
                                                std::uint64_t seed) {
  const graph::Graph g = graph::hypercube(6);
  core::BipsOptions opt;
  opt.process.engine = engine;
  core::BipsProcess p(g, graph::VertexId{0}, opt);
  rng::Rng rng = rng::make_stream(seed, 0);
  std::vector<std::uint64_t> curve;
  for (int t = 0; t < 40; ++t) curve.push_back(p.step(rng));
  return curve;
}

TEST_F(MetricsRunTest, RoundsModeDoesNotPerturbAnyEngine) {
  using core::Engine;
  for (const Engine e : {Engine::kReference, Engine::kSparse,
                         Engine::kDense, Engine::kAuto}) {
    util::clear_env_overrides();
    const auto cobra_off = cobra_first_visits(e, 4321);
    const auto bips_off = bips_infection_curve(e, 4321);
    util::set_metrics_override("rounds");
    EXPECT_EQ(cobra_first_visits(e, 4321), cobra_off)
        << core::engine_name(e);
    EXPECT_EQ(bips_infection_curve(e, 4321), bips_off)
        << core::engine_name(e);
  }
  // Leave no session blocks behind for other tests.
  core::drain_cell_metrics();
  util::clear_env_overrides();
}

}  // namespace
}  // namespace cobra::runner
