// Theorem 1.3 is the paper's bridge between COBRA and BIPS; these tests
// verify it three ways:
//   1. exactly, per sampled selection table (the coupling in the proof),
//   2. statistically, with independent Monte-Carlo estimates of both sides,
//   3. against the exact small-n BIPS distribution (closed numbers).
#include "core/duality.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bips_exact.hpp"
#include "core/cobra.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/stats.hpp"

namespace cobra::core {
namespace {

struct DualityCase {
  std::string name;
  graph::Graph g;
  graph::VertexId v;
  std::vector<graph::VertexId> c_set;
  std::uint64_t rounds;
};

std::vector<DualityCase> duality_cases() {
  rng::Rng rng = rng::make_stream(616, 0);
  std::vector<DualityCase> cases;
  cases.push_back({"petersen", graph::petersen(), 0, {7}, 3});
  cases.push_back({"cycle7", graph::cycle(7), 2, {5, 6}, 4});
  cases.push_back({"path6", graph::path(6), 0, {5}, 5});
  cases.push_back({"star6", graph::star(6), 3, {0, 5}, 2});
  cases.push_back({"complete5", graph::complete(5), 1, {0}, 1});
  cases.push_back(
      {"gnp", graph::connected_erdos_renyi(12, 2.5, rng), 4, {0, 11}, 3});
  cases.push_back({"vInC", graph::cycle(5), 2, {2, 3}, 2});  // v ∈ C edge case
  return cases;
}

TEST(Duality, CoupledIndicatorsAgreeForEverySampledTable) {
  // The proof's coupling: same ω, time-reversed. Exact, not statistical.
  for (const auto& tc : duality_cases()) {
    ProcessOptions opt;
    for (int rep = 0; rep < 300; ++rep) {
      auto rng = rng::make_stream(717, static_cast<std::uint64_t>(rep));
      const SelectionTable table(tc.g, tc.rounds, opt, rng);
      const bool cobra_side =
          cobra_visits_with_table(tc.g, tc.c_set, tc.v, table);
      const bool bips_side =
          bips_infects_with_table(tc.g, tc.v, tc.c_set, table);
      ASSERT_EQ(cobra_side, bips_side)
          << tc.name << " rep " << rep << ": coupling identity violated";
    }
  }
}

TEST(Duality, CoupledIndicatorsAgreeWithRhoBranching) {
  // Theorem 1.3 holds for any b = 1 + rho (paper Section 1).
  ProcessOptions opt;
  opt.branching = Branching::one_plus_rho(0.4);
  const graph::Graph g = graph::petersen();
  const std::vector<graph::VertexId> c_set = {3, 8};
  for (int rep = 0; rep < 300; ++rep) {
    auto rng = rng::make_stream(818, static_cast<std::uint64_t>(rep));
    const SelectionTable table(g, 4, opt, rng);
    EXPECT_EQ(cobra_visits_with_table(g, c_set, 0, table),
              bips_infects_with_table(g, 0, c_set, table));
  }
}

TEST(Duality, CoupledIndicatorsAgreeWithLaziness) {
  ProcessOptions opt;
  opt.laziness = 0.5;
  const graph::Graph g = graph::cycle(6);  // bipartite: laziness matters
  const std::vector<graph::VertexId> c_set = {3};
  for (int rep = 0; rep < 300; ++rep) {
    auto rng = rng::make_stream(919, static_cast<std::uint64_t>(rep));
    const SelectionTable table(g, 5, opt, rng);
    EXPECT_EQ(cobra_visits_with_table(g, c_set, 0, table),
              bips_infects_with_table(g, 0, c_set, table));
  }
}

TEST(Duality, MonteCarloSidesStatisticallyEqual) {
  for (const auto& tc : duality_cases()) {
    ProcessOptions opt;
    const auto est =
        check_duality(tc.g, tc.v, tc.c_set, tc.rounds, opt, 2000, 2020);
    EXPECT_EQ(est.coupled_disagreements, 0u) << tc.name;
    const auto k1 = static_cast<std::uint64_t>(
        est.cobra_miss * static_cast<double>(est.replicates) + 0.5);
    const auto k2 = static_cast<std::uint64_t>(
        est.bips_miss * static_cast<double>(est.replicates) + 0.5);
    const double z =
        sim::two_proportion_z(k1, est.replicates, k2, est.replicates);
    EXPECT_LT(std::fabs(z), 4.5)
        << tc.name << ": cobra " << est.cobra_miss << " bips "
        << est.bips_miss;
  }
}

TEST(Duality, CobraSurvivalMatchesExactBips) {
  // P̂(Hit(v) > T | C_0 = C), estimated from COBRA runs, must match the
  // EXACT number from the BIPS subset DP (Theorem 1.3).
  const graph::Graph g = graph::petersen();
  const graph::VertexId v = 0;
  const std::vector<graph::VertexId> c_set = {6};
  ProcessOptions opt;
  for (const std::uint64_t T : {1ull, 2ull, 4ull}) {
    const double exact = bips_exact_miss_probability(g, v, c_set, T, opt);
    constexpr int kReps = 3000;
    int misses = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      auto rng = rng::make_stream(2121 + T, static_cast<std::uint64_t>(rep));
      CobraProcess p(g, opt);
      p.reset(std::span<const graph::VertexId>(c_set.data(), c_set.size()));
      if (!p.run_until_hit(rng, v, T).has_value()) ++misses;
    }
    const auto ci = sim::wilson_interval(static_cast<std::uint64_t>(misses),
                                         kReps, 3.5);
    EXPECT_TRUE(ci.contains(exact))
        << "T=" << T << " exact=" << exact << " ci=[" << ci.low << ","
        << ci.high << "]";
  }
}

TEST(Duality, VInCMakesBothSidesCertain) {
  // If v ∈ C then Hit(v) = 0 <= T and A_T ∩ C ⊇ {v}: both sides are
  // deterministic.
  const graph::Graph g = graph::cycle(8);
  ProcessOptions opt;
  const std::vector<graph::VertexId> c_set = {3, 4};
  const auto est = check_duality(g, 3, c_set, 2, opt, 200, 11);
  EXPECT_EQ(est.coupled_disagreements, 0u);
  EXPECT_DOUBLE_EQ(est.cobra_miss, 0.0);
  EXPECT_DOUBLE_EQ(est.bips_miss, 0.0);
}

TEST(SelectionTable, ShapeAndValidity) {
  const graph::Graph g = graph::petersen();
  ProcessOptions opt;
  auto rng = rng::make_stream(3030, 0);
  const SelectionTable table(g, 5, opt, rng);
  EXPECT_EQ(table.rounds(), 5u);
  EXPECT_EQ(table.num_vertices(), 10u);
  for (std::uint64_t t = 1; t <= 5; ++t)
    for (graph::VertexId u = 0; u < 10; ++u) {
      const auto sel = table.selections(u, t);
      EXPECT_EQ(sel.size(), 2u);  // b = 2, no laziness
      for (const auto w : sel) EXPECT_TRUE(g.has_edge(u, w));
    }
}

TEST(SelectionTable, RhoBranchingVariableFanout) {
  const graph::Graph g = graph::cycle(6);
  ProcessOptions opt;
  opt.branching = Branching::one_plus_rho(0.5);
  auto rng = rng::make_stream(3131, 0);
  const SelectionTable table(g, 50, opt, rng);
  std::size_t ones = 0, twos = 0;
  for (std::uint64_t t = 1; t <= 50; ++t)
    for (graph::VertexId u = 0; u < 6; ++u) {
      const auto k = table.selections(u, t).size();
      ASSERT_TRUE(k == 1 || k == 2);
      (k == 1 ? ones : twos) += 1;
    }
  // rho = 0.5: both fan-outs should occur roughly equally (300 slots).
  EXPECT_GT(ones, 90u);
  EXPECT_GT(twos, 90u);
}

}  // namespace
}  // namespace cobra::core
