#include "core/trace.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "util/assert.hpp"

namespace cobra::core {
namespace {

TEST(CobraTrace, RecordsEveryRound) {
  const graph::Graph g = graph::complete(32);
  auto rng = rng::make_stream(7171, 0);
  const auto trace =
      run_cobra_trace(g, ProcessOptions{}, 0, 100000, rng);
  ASSERT_TRUE(trace.covered);
  ASSERT_GE(trace.rounds.size(), 2u);
  EXPECT_EQ(trace.rounds.front().round, 0u);
  EXPECT_EQ(trace.rounds.front().visited, 1u);
  EXPECT_EQ(trace.rounds.front().active, 1u);
  // Rounds are consecutive; visited is monotone; transmissions monotone.
  for (std::size_t i = 1; i < trace.rounds.size(); ++i) {
    EXPECT_EQ(trace.rounds[i].round, trace.rounds[i - 1].round + 1);
    EXPECT_GE(trace.rounds[i].visited, trace.rounds[i - 1].visited);
    EXPECT_GE(trace.rounds[i].transmissions,
              trace.rounds[i - 1].transmissions);
    EXPECT_EQ(trace.rounds[i].visited - trace.rounds[i - 1].visited,
              trace.rounds[i].new_visits);
  }
  EXPECT_EQ(trace.rounds.back().visited, g.num_vertices());
}

TEST(CobraTrace, RoundsToFraction) {
  const graph::Graph g = graph::complete(64);
  auto rng = rng::make_stream(7172, 0);
  const auto trace = run_cobra_trace(g, ProcessOptions{}, 0, 100000, rng);
  ASSERT_TRUE(trace.covered);
  const auto t50 = trace.rounds_to_fraction(0.5, 64);
  const auto t100 = trace.rounds_to_fraction(1.0, 64);
  EXPECT_LE(t50, t100);
  EXPECT_EQ(t100, trace.rounds.back().round);
}

TEST(CobraTrace, ProfileOrdering) {
  const graph::Graph g = graph::torus_power(9, 2);
  auto rng = rng::make_stream(7173, 0);
  const auto trace = run_cobra_trace(g, ProcessOptions{}, 0, 100000, rng);
  ASSERT_TRUE(trace.covered);
  const auto profile = summarize_trace(trace, g.num_vertices());
  EXPECT_LE(profile.to_half, profile.to_ninety);
  EXPECT_LE(profile.to_ninety, profile.to_cover);
  EXPECT_GE(profile.peak_active, 1u);
  EXPECT_LE(profile.peak_active, g.num_vertices());
  EXPECT_GE(profile.tail_fraction, 0.0);
  EXPECT_LE(profile.tail_fraction, 1.0);
}

TEST(CobraTrace, UncoveredTraceFlagged) {
  const graph::Graph g = graph::cycle(128);
  auto rng = rng::make_stream(7174, 0);
  const auto trace = run_cobra_trace(g, ProcessOptions{}, 0, 3, rng);
  EXPECT_FALSE(trace.covered);
  EXPECT_THROW(summarize_trace(trace, g.num_vertices()), util::CheckError);
}

TEST(CobraTrace, PeakActiveBoundedByDoubling) {
  const graph::Graph g = graph::complete(128);
  auto rng = rng::make_stream(7175, 0);
  const auto trace = run_cobra_trace(g, ProcessOptions{}, 0, 100000, rng);
  for (std::size_t i = 1; i < trace.rounds.size(); ++i)
    EXPECT_LE(trace.rounds[i].active, 2 * trace.rounds[i - 1].active);
}

}  // namespace
}  // namespace cobra::core
