#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace cobra::core {
namespace {

TEST(Bounds, Thm11Formula) {
  // m + dmax^2 ln n.
  EXPECT_NEAR(bound_thm11_general(100, 200, 5),
              200.0 + 25.0 * std::log(100.0), 1e-9);
}

TEST(Bounds, Thm11DominatedByEdgesOnSparseBoundedDegree) {
  // Cycle: m = n, dmax = 2 -> bound ~ n + 4 ln n = O(n).
  const double b = bound_thm11_general(1 << 20, 1 << 20, 2);
  EXPECT_LT(b, 1.1 * static_cast<double>(1 << 20));
}

TEST(Bounds, Thm12Formula) {
  // (r/(1-lambda) + r^2) ln n.
  EXPECT_NEAR(bound_thm12_regular(100, 4, 0.5),
              (4.0 / 0.5 + 16.0) * std::log(100.0), 1e-9);
  EXPECT_THROW(bound_thm12_regular(100, 4, 1.0), util::CheckError);
}

TEST(Bounds, Thm12ImprovesPodc16ForSmallGap) {
  // When 1 - lambda = o(1/sqrt(r)) the new bound wins; check a concrete
  // instance: r = 100, gap = 0.01 (so 1/gap^3 = 1e6 vs r/gap = 1e4).
  const std::uint64_t n = 1 << 16;
  const double lambda = 0.99;
  EXPECT_LT(bound_thm12_regular(n, 100, lambda),
            bound_podc16_regular(n, lambda));
}

TEST(Bounds, Podc16WinsForLargeGapSmallDegreeRegime) {
  // Conversely with r^2 >> 1/gap^2 the old bound can be smaller:
  // r = 1000, gap = 0.5.
  const std::uint64_t n = 1 << 16;
  EXPECT_GT(bound_thm12_regular(n, 1000, 0.5),
            bound_podc16_regular(n, 0.5));
}

TEST(Bounds, HypercubeHierarchyLog8Log4Log3) {
  // The paper's flagship example: Q_d with r = log2 n, gap = Theta(1/log n),
  // phi = Theta(1/log n):
  //   SPAA'16 O(log^8 n) >> PODC'16 O(log^4 n) >> Thm 1.2 O(log^3 n).
  const std::uint32_t d = 14;
  const std::uint64_t n = 1ull << d;
  const double gap = 1.0 / static_cast<double>(d);  // lazy hypercube gap
  const double lambda = 1.0 - gap;
  const double phi = 1.0 / static_cast<double>(d);  // Theta(1/log n)
  const double b_new = bound_thm12_regular(n, d, lambda);
  const double b_podc = bound_podc16_regular(n, lambda);
  const double b_spaa = bound_spaa16_regular(n, d, phi);
  EXPECT_LT(b_new, b_podc);
  EXPECT_LT(b_podc, b_spaa);
}

TEST(Bounds, GeneralBoundHierarchy) {
  // Thm 1.1's O(n^2 log n) improves SPAA'16's O(n^{11/4} log n) for every n:
  // with m <= n^2/2 and dmax <= n, thm11 <= n^2(1/2 + ln n).
  for (const std::uint64_t n : {1ull << 8, 1ull << 12, 1ull << 16}) {
    const double worst_thm11 = bound_thm11_general(n, n * (n - 1) / 2,
                                                   static_cast<std::uint32_t>(n - 1));
    EXPECT_LT(worst_thm11, bound_spaa16_general(n));
  }
}

TEST(Bounds, GridBounds) {
  EXPECT_NEAR(bound_spaa16_grid(1u << 10, 2), 4.0 * 32.0, 1e-9);
  EXPECT_NEAR(bound_dutta_grid(1u << 10, 2), 32.0, 1e-9);
}

TEST(Bounds, DuttaFormulas) {
  EXPECT_NEAR(bound_dutta_complete(1024), std::log(1024.0), 1e-12);
  EXPECT_NEAR(bound_dutta_expander(1024),
              std::log(1024.0) * std::log(1024.0), 1e-12);
}

TEST(Bounds, LowerBound) {
  EXPECT_DOUBLE_EQ(bound_lower(1024, 4), 10.0);   // log2 dominates
  EXPECT_DOUBLE_EQ(bound_lower(1024, 50), 50.0);  // diameter dominates
}

TEST(Bounds, RhoScaling) {
  EXPECT_DOUBLE_EQ(rho_scaling(1.0), 1.0);
  EXPECT_DOUBLE_EQ(rho_scaling(0.5), 4.0);
  EXPECT_DOUBLE_EQ(rho_scaling(0.1), 100.0);
  EXPECT_THROW(rho_scaling(0.0), util::CheckError);
}

TEST(Bounds, GapCondition) {
  // gap 0.5 on n = 1024: sqrt(ln n / n) ~ 0.082, condition holds for C = 1.
  EXPECT_TRUE(gap_condition_holds(1024, 0.5));
  // gap 0.001 fails.
  EXPECT_FALSE(gap_condition_holds(1024, 0.999));
}

TEST(Bounds, ReportAppliesTheRightBounds) {
  const auto regular = bound_report(graph::petersen(), 2.0 / 3.0, 0.4, 2, {});
  bool has_thm12 = false;
  for (const auto& b : regular)
    if (b.name.find("thm1.2") != std::string::npos) {
      EXPECT_TRUE(b.applicable);
      has_thm12 = true;
    }
  EXPECT_TRUE(has_thm12);

  const auto irregular =
      bound_report(graph::star(10), {}, {}, 2, {});
  for (const auto& b : irregular) {
    if (b.name.find("thm1.2") != std::string::npos) {
      EXPECT_FALSE(b.applicable);
    }
  }
}

TEST(Bounds, MonotoneInN) {
  double prev11 = 0.0, prev_spaa = 0.0;
  for (std::uint64_t n = 16; n <= 1 << 16; n <<= 2) {
    const double b11 = bound_thm11_general(n, n, 3);
    const double bs = bound_spaa16_general(n);
    EXPECT_GT(b11, prev11);
    EXPECT_GT(bs, prev_spaa);
    prev11 = b11;
    prev_spaa = bs;
  }
}

}  // namespace
}  // namespace cobra::core
