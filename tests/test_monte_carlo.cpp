#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace cobra::sim {
namespace {

TEST(MonteCarlo, EveryReplicateRunsExactlyOnce) {
  constexpr std::uint64_t kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_replicates(kCount, 1, [&](std::uint64_t i, rng::Rng&) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(MonteCarlo, ResultsIndependentOfExecutionOrder) {
  // The per-replicate streams are keyed by (seed, replicate): two runs of
  // the same experiment must agree bitwise even though thread interleaving
  // differs.
  auto body = [](std::uint64_t, rng::Rng& rng) {
    double acc = 0.0;
    for (int i = 0; i < 100; ++i) acc += rng.uniform01();
    return acc;
  };
  const auto a = run_replicates(200, 7, body);
  const auto b = run_replicates(200, 7, body);
  EXPECT_EQ(a, b);
}

TEST(MonteCarlo, SeedSelectsDifferentStreams) {
  auto body = [](std::uint64_t, rng::Rng& rng) { return rng.uniform01(); };
  const auto a = run_replicates(50, 1, body);
  const auto b = run_replicates(50, 2, body);
  EXPECT_NE(a, b);
}

TEST(MonteCarlo, ReplicatesGetDistinctStreams) {
  const auto values = run_replicates(
      1000, 3, [](std::uint64_t, rng::Rng& rng) { return rng.uniform01(); });
  std::set<double> unique(values.begin(), values.end());
  EXPECT_GT(unique.size(), 990u);  // collisions would signal stream reuse
}

TEST(MonteCarlo, ZeroReplicatesIsNoop) {
  EXPECT_NO_THROW(parallel_replicates(0, 1, [](std::uint64_t, rng::Rng&) {
    FAIL() << "must not run";
  }));
}

TEST(MonteCarlo, WorkerCountPositive) {
  EXPECT_GE(worker_count(), 1);
}

}  // namespace
}  // namespace cobra::sim
