// Engine-equivalence guarantees of the baselines' port onto the frontier
// kernel (core/frontier_kernel.hpp), mirroring tests/test_cobra_engines.cpp:
// for every protocol, reference/sparse/dense/auto produce bit-for-bit
// identical results at a fixed seed — golden-seed outcomes on path, cycle,
// hypercube and random-regular fixtures — because all randomness is keyed
// by (round key, entity) and destinations share one alias-table mapping.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "baselines/flooding.hpp"
#include "baselines/multi_walk.hpp"
#include "baselines/pull_gossip.hpp"
#include "baselines/push_gossip.hpp"
#include "baselines/random_walk.hpp"
#include "core/frontier_kernel.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"

namespace cobra::baselines {
namespace {

constexpr core::Engine kAllEngines[] = {
    core::Engine::kReference, core::Engine::kSparse, core::Engine::kDense,
    core::Engine::kAuto};

std::vector<graph::Graph> fixture_graphs() {
  rng::Rng gen = rng::make_stream(4004, 999);
  std::vector<graph::Graph> graphs;
  graphs.push_back(graph::path(48));
  graphs.push_back(graph::cycle(64));
  graphs.push_back(graph::hypercube(7));
  graphs.push_back(graph::connected_random_regular(256, 6, gen));
  return graphs;
}

BaselineOptions engine_options(core::Engine e) {
  BaselineOptions opt;
  opt.engine = e;
  return opt;
}

TEST(BaselineEngines, PushGossipBitForBitAcrossEngines) {
  for (const graph::Graph& g : fixture_graphs()) {
    std::map<core::Engine, std::pair<std::uint64_t, std::uint64_t>> results;
    for (const core::Engine e : kAllEngines) {
      rng::Rng rng = rng::make_stream(11, g.num_vertices());
      const GossipResult r =
          push_gossip_cover(g, 0, rng, 1u << 22, engine_options(e));
      ASSERT_TRUE(r.completed);
      results[e] = {r.rounds, r.transmissions};
    }
    for (const core::Engine e : kAllEngines)
      EXPECT_EQ(results[core::Engine::kReference], results[e])
          << g.name() << "/" << core::engine_name(e);
  }
}

TEST(BaselineEngines, PullGossipBitForBitAcrossEngines) {
  for (const graph::Graph& g : fixture_graphs()) {
    std::map<core::Engine, std::pair<std::uint64_t, std::uint64_t>> results;
    for (const core::Engine e : kAllEngines) {
      rng::Rng rng = rng::make_stream(22, g.num_vertices());
      const PullResult r =
          pull_gossip_cover(g, 0, rng, 1u << 22, engine_options(e));
      ASSERT_TRUE(r.completed);
      results[e] = {r.rounds, r.transmissions};
    }
    for (const core::Engine e : kAllEngines)
      EXPECT_EQ(results[core::Engine::kReference], results[e])
          << g.name() << "/" << core::engine_name(e);
  }
}

TEST(BaselineEngines, PushPullGossipBitForBitAcrossEngines) {
  for (const graph::Graph& g : fixture_graphs()) {
    std::map<core::Engine, std::pair<std::uint64_t, std::uint64_t>> results;
    for (const core::Engine e : kAllEngines) {
      rng::Rng rng = rng::make_stream(33, g.num_vertices());
      const PullResult r =
          push_pull_gossip_cover(g, 0, rng, 1u << 22, engine_options(e));
      ASSERT_TRUE(r.completed);
      results[e] = {r.rounds, r.transmissions};
    }
    for (const core::Engine e : kAllEngines)
      EXPECT_EQ(results[core::Engine::kReference], results[e])
          << g.name() << "/" << core::engine_name(e);
  }
}

TEST(BaselineEngines, FloodingIdenticalAcrossEnginesAndMatchesEccentricity) {
  for (const graph::Graph& g : fixture_graphs()) {
    std::map<core::Engine, std::pair<std::uint64_t, std::uint64_t>> results;
    for (const core::Engine e : kAllEngines) {
      const FloodingResult r =
          flooding_cover(g, 0, 1u << 22, engine_options(e));
      ASSERT_TRUE(r.completed);
      results[e] = {r.rounds, r.transmissions};
    }
    for (const core::Engine e : kAllEngines)
      EXPECT_EQ(results[core::Engine::kReference], results[e])
          << g.name() << "/" << core::engine_name(e);
  }
  // Sanity anchor: on the path from one end, flooding takes n-1 rounds.
  const graph::Graph p = graph::path(32);
  EXPECT_EQ(flooding_cover(p, 0, 1u << 20).rounds, 31u);
}

TEST(BaselineEngines, WalksIdenticalAcrossEngines) {
  // Particle processes have no frontier; the engines must coincide
  // trivially (identical draws, identical trajectory).
  for (const graph::Graph& g : fixture_graphs()) {
    std::map<core::Engine, std::uint64_t> walk, multi;
    for (const core::Engine e : kAllEngines) {
      rng::Rng rng1 = rng::make_stream(44, g.num_vertices());
      walk[e] =
          random_walk_cover(g, 0, rng1, 1u << 24, engine_options(e)).steps;
      rng::Rng rng2 = rng::make_stream(55, g.num_vertices());
      multi[e] =
          multi_walk_cover(g, 0, 8, rng2, 1u << 22, engine_options(e)).rounds;
    }
    for (const core::Engine e : kAllEngines) {
      EXPECT_EQ(walk[core::Engine::kReference], walk[e]) << g.name();
      EXPECT_EQ(multi[core::Engine::kReference], multi[e]) << g.name();
    }
  }
}

TEST(BaselineEngines, GossipPerRoundSizeSequencesIdenticalAcrossEngines) {
  // Stronger than final aggregates: running push/pull gossip truncated at
  // every horizon k pins the per-round informed-set-size sequence
  // (transmissions after k rounds are partial sums of |informed| resp.
  // |uninformed|), so the whole trajectory must agree round by round.
  for (const graph::Graph& g : fixture_graphs()) {
    for (std::uint64_t k = 1; k <= 24; k += 4) {
      std::map<core::Engine, std::pair<std::uint64_t, std::uint64_t>> push;
      std::map<core::Engine, std::pair<std::uint64_t, std::uint64_t>> pull;
      for (const core::Engine e : kAllEngines) {
        rng::Rng r1 = rng::make_stream(77, g.num_vertices());
        const GossipResult gp =
            push_gossip_cover(g, 0, r1, k, engine_options(e));
        push[e] = {gp.rounds, gp.transmissions};
        rng::Rng r2 = rng::make_stream(78, g.num_vertices());
        const PullResult gl =
            pull_gossip_cover(g, 0, r2, k, engine_options(e));
        pull[e] = {gl.rounds, gl.transmissions};
      }
      for (const core::Engine e : kAllEngines) {
        EXPECT_EQ(push[core::Engine::kReference], push[e])
            << g.name() << " horizon " << k;
        EXPECT_EQ(pull[core::Engine::kReference], pull[e])
            << g.name() << " horizon " << k;
      }
    }
  }
}

TEST(BaselineEngines, SharedSamplerReproducesPerCallResults) {
  rng::Rng gen = rng::make_stream(4004, 7);
  const graph::Graph g = graph::connected_random_regular(128, 4, gen);
  const auto sampler = std::make_shared<const core::NeighborSampler>(g, 0.0);
  BaselineOptions own = engine_options(core::Engine::kAuto);
  BaselineOptions shared = own;
  shared.sampler = sampler;
  {
    rng::Rng r1 = rng::make_stream(66, 0);
    rng::Rng r2 = rng::make_stream(66, 0);
    EXPECT_EQ(push_gossip_cover(g, 0, r1, 1u << 20, own).rounds,
              push_gossip_cover(g, 0, r2, 1u << 20, shared).rounds);
  }
  {
    rng::Rng r1 = rng::make_stream(67, 0);
    rng::Rng r2 = rng::make_stream(67, 0);
    EXPECT_EQ(random_walk_cover(g, 0, r1, 1u << 22, own).steps,
              random_walk_cover(g, 0, r2, 1u << 22, shared).steps);
  }
}

TEST(BaselineEngines, DenseEnginesUseDenseRoundsWhereItMatters) {
  // Not just equal results: the dense paths must actually engage. Push
  // gossip saturates its informed frontier, so a forced-dense run and an
  // auto run on a dense-friendly graph both exercise the bitset path
  // (results already asserted identical above); here we pin the auto
  // switch through the kernel directly.
  const graph::Graph g = graph::complete(512);
  core::FrontierKernel::Config cfg;
  cfg.engine = core::Engine::kAuto;
  core::FrontierKernel kernel(g, cfg);
  const graph::VertexId one[] = {0};
  kernel.assign(one);
  EXPECT_FALSE(kernel.begin_round(kernel.density_score(1)));
  kernel.commit(core::FrontierKernel::Commit::kReplace);
  EXPECT_TRUE(kernel.begin_round(kernel.density_score(512)));
}

}  // namespace
}  // namespace cobra::baselines
