#include <gtest/gtest.h>

#include "core/bips.hpp"
#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "sim/stats.hpp"
#include "util/assert.hpp"

namespace cobra::core {
namespace {

TEST(MultiSourceBips, SourcesAlwaysInfected) {
  const graph::Graph g = graph::cycle(16);
  BipsProcess p(g, 0);
  const std::vector<graph::VertexId> sources = {2, 9, 14};
  p.reset(std::span<const graph::VertexId>(sources.data(), sources.size()));
  EXPECT_EQ(p.infected_count(), 3u);
  auto rng = rng::make_stream(611, 0);
  for (int t = 0; t < 30; ++t) {
    p.step(rng);
    for (const auto s : sources) {
      EXPECT_TRUE(p.is_infected(s));
      EXPECT_TRUE(p.is_source(s));
    }
  }
  EXPECT_FALSE(p.is_source(0));
  EXPECT_EQ(p.sources(), sources);  // sorted, deduplicated
}

TEST(MultiSourceBips, DuplicatesDeduplicated) {
  const graph::Graph g = graph::petersen();
  BipsProcess p(g, 0);
  const std::vector<graph::VertexId> sources = {4, 4, 1, 1, 4};
  p.reset(std::span<const graph::VertexId>(sources.data(), sources.size()));
  EXPECT_EQ(p.sources().size(), 2u);
  EXPECT_EQ(p.infected_count(), 2u);
  EXPECT_EQ(p.source(), 1u);  // first source = smallest after sort
}

TEST(MultiSourceBips, SingleSourceResetUnchangedBehaviour) {
  const graph::Graph g = graph::cycle(9);
  BipsProcess p(g, 5);
  EXPECT_EQ(p.source(), 5u);
  EXPECT_EQ(p.sources().size(), 1u);
  auto rng = rng::make_stream(612, 0);
  const auto t = p.run_until_full(rng, 100000);
  EXPECT_TRUE(t.has_value());
}

TEST(MultiSourceBips, MoreSourcesInfectFasterOnAverage) {
  const graph::Graph g = graph::cycle(48);
  constexpr int kReps = 200;
  auto mean_time = [&](const std::vector<graph::VertexId>& sources,
                       std::uint64_t seed) {
    std::vector<double> times;
    for (int rep = 0; rep < kReps; ++rep) {
      auto rng = rng::make_stream(seed, static_cast<std::uint64_t>(rep));
      BipsProcess p(g, 0);
      p.reset(std::span<const graph::VertexId>(sources.data(),
                                               sources.size()));
      times.push_back(static_cast<double>(*p.run_until_full(rng, 1000000)));
    }
    return sim::mean(times);
  };
  const double one = mean_time({0}, 613);
  const double four = mean_time({0, 12, 24, 36}, 614);
  EXPECT_LT(four, one);
}

TEST(MultiSourceBips, CandidateSetIncludesAllExposedSources) {
  const graph::Graph g = graph::path(8);
  BipsProcess p(g, 0);
  const std::vector<graph::VertexId> sources = {0, 7};
  p.reset(std::span<const graph::VertexId>(sources.data(), sources.size()));
  const auto candidates = p.candidate_set();
  // Both sources have uninfected neighbours, so both are candidates, as are
  // the neighbours 1 and 6.
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 0u),
            candidates.end());
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 7u),
            candidates.end());
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 1u),
            candidates.end());
}

TEST(MultiSourceBips, BothKernelsSupportMultiSource) {
  const graph::Graph g = graph::torus_power(5, 2);
  const std::vector<graph::VertexId> sources = {0, 12};
  for (const auto kernel :
       {BipsKernel::kSampling, BipsKernel::kProbability}) {
    BipsOptions opt;
    opt.kernel = kernel;
    BipsProcess p(g, 0, opt);
    p.reset(std::span<const graph::VertexId>(sources.data(),
                                             sources.size()));
    auto rng = rng::make_stream(615, kernel == BipsKernel::kSampling ? 0 : 1);
    const auto t = p.run_until_full(rng, 100000);
    ASSERT_TRUE(t.has_value());
    p.step(rng);
    EXPECT_TRUE(p.fully_infected());  // absorbing with sources present
  }
}

TEST(MultiSourceBips, EmptySourceSetRejected) {
  const graph::Graph g = graph::cycle(5);
  BipsProcess p(g, 0);
  EXPECT_THROW(p.reset(std::span<const graph::VertexId>{}),
               util::CheckError);
}

TEST(MultiSourceBips, AllVerticesSourcesIsInstantlyFull) {
  const graph::Graph g = graph::cycle(6);
  BipsProcess p(g, 0);
  std::vector<graph::VertexId> all = {0, 1, 2, 3, 4, 5};
  p.reset(std::span<const graph::VertexId>(all.data(), all.size()));
  EXPECT_TRUE(p.fully_infected());
  auto rng = rng::make_stream(616, 0);
  EXPECT_EQ(*p.run_until_full(rng, 10), 0u);
}

}  // namespace
}  // namespace cobra::core
