#include "core/azuma.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/stream.hpp"
#include "util/assert.hpp"

namespace cobra::core {
namespace {

TEST(Azuma, Lemma21Values) {
  EXPECT_DOUBLE_EQ(azuma_tail_lemma21(0.0), 1.0);
  EXPECT_NEAR(azuma_tail_lemma21(2.0), std::exp(-2.0), 1e-15);
  EXPECT_LT(azuma_tail_lemma21(6.0), 2e-8);
}

TEST(Azuma, Lemma21MonotoneDecreasing) {
  double prev = 2.0;
  for (double d = 0.0; d <= 10.0; d += 0.5) {
    const double tail = azuma_tail_lemma21(d);
    EXPECT_LT(tail, prev);
    prev = tail;
  }
}

TEST(Azuma, Cor22Formula) {
  const double v = azuma_tail_cor22(2.0, 100, 0.5);
  const double expected =
      100.0 * std::exp(-1.0) + (16.0 / 0.25) * std::exp(-0.25 * 100.0 / 4.0);
  EXPECT_NEAR(v, expected, 1e-12);
}

TEST(Azuma, NontrivialForLargeDelta) {
  // q0 e^{-delta^2/4} dominates; with delta = 8, q0 = 10^4 the bound is
  // ~10^4 e^{-16} ~ 1.1e-3 — a usable w.h.p. statement.
  const double tail = azuma_tail_cor22(8.0, 10000, 0.5);
  EXPECT_LT(tail, 2e-3);
  EXPECT_GT(tail, 1e-4);
}

TEST(Azuma, Cor22RejectsBadArguments) {
  EXPECT_THROW(azuma_tail_cor22(0.0, 10, 0.5), util::CheckError);
  EXPECT_THROW(azuma_tail_cor22(1.0, 0, 0.5), util::CheckError);
  EXPECT_THROW(azuma_tail_cor22(1.0, 10, 1.5), util::CheckError);
}

TEST(Azuma, EmpiricalTailRespectsLemma21) {
  // Fair ±1 increments satisfy the lemma's hypotheses; empirical
  // P(S_q > delta sqrt(q)) must not exceed exp(-delta^2/2) by more than
  // sampling noise.
  constexpr int kWalks = 20000;
  constexpr int kSteps = 100;
  const double delta = 1.5;
  const double threshold = delta * std::sqrt(static_cast<double>(kSteps));
  int exceed = 0;
  for (int w = 0; w < kWalks; ++w) {
    auto rng = rng::make_stream(515, static_cast<std::uint64_t>(w));
    int s = 0;
    for (int i = 0; i < kSteps; ++i) s += rng.bernoulli(0.5) ? 1 : -1;
    if (static_cast<double>(s) > threshold) ++exceed;
  }
  const double empirical = static_cast<double>(exceed) / kWalks;
  const double bound = azuma_tail_lemma21(delta);
  // 3 sigma of the estimate.
  const double slack = 3.0 * std::sqrt(bound * (1 - bound) / kWalks);
  EXPECT_LE(empirical, bound + slack);
}

TEST(Azuma, Lemma31ThresholdSchedule) {
  // t(k) = 4k + 16 (C+4) dmax^2 ln n.
  const double t = lemma31_round_threshold(10, 3, 100, 1.0);
  EXPECT_NEAR(t, 40.0 + 16.0 * 5.0 * 9.0 * std::log(100.0), 1e-9);
  // Linear part dominates for big k.
  EXPECT_GT(lemma31_round_threshold(1 << 20, 2, 64, 1.0),
            4.0 * (1 << 20));
}

TEST(Azuma, Cor51ThresholdSchedule) {
  const double t = cor51_round_threshold(10, 3, 100, 1.0);
  EXPECT_NEAR(t, 4.0 * 3.0 * 10.0 + 16.0 * 5.0 * 9.0 * std::log(100.0),
              1e-9);
}

}  // namespace
}  // namespace cobra::core
