// Parameterised property sweeps across graph families x process
// configurations: the invariants every COBRA/BIPS execution must satisfy
// regardless of topology, branching model or kernel.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/bips.hpp"
#include "core/cobra.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "util/math.hpp"

namespace cobra::core {
namespace {

graph::Graph family_graph(int family) {
  rng::Rng rng = rng::make_stream(515151, static_cast<std::uint64_t>(family));
  switch (family) {
    case 0: return graph::complete(20);
    case 1: return graph::cycle(17);
    case 2: return graph::cycle(16);
    case 3: return graph::path(15);
    case 4: return graph::star(18);
    case 5: return graph::hypercube(4);
    case 6: return graph::petersen();
    case 7: return graph::binary_tree(15);
    case 8: return graph::barbell(5, 2);
    case 9: return graph::lollipop(5, 5);
    case 10: return graph::torus_power(4, 2);
    case 11: return graph::complete_bipartite(4, 7);
    case 12: return graph::connected_random_regular(24, 3, rng);
    case 13: return graph::connected_erdos_renyi(24, 2.2, rng);
    default: return graph::circulant(15, {1, 3});
  }
}

ProcessOptions branching_case(int option) {
  ProcessOptions opt;
  switch (option) {
    case 0: break;                                          // b = 2
    case 1: opt.branching = Branching::integer(3); break;   // b = 3
    case 2: opt.branching = Branching::one_plus_rho(0.5); break;
    default: opt.laziness = 0.5; break;                     // lazy b = 2
  }
  return opt;
}

using ProcessParam = std::tuple<int, int>;

class ProcessProperties : public ::testing::TestWithParam<ProcessParam> {};

TEST_P(ProcessProperties, CobraInvariants) {
  const auto [family, option] = GetParam();
  const graph::Graph g = family_graph(family);
  const ProcessOptions opt = branching_case(option);
  const std::uint32_t max_fanout = opt.branching.base +
                                   (opt.branching.extra_prob > 0 ? 1 : 0);

  CobraProcess p(g, opt);
  auto rng = rng::make_stream(616161,
                              static_cast<std::uint64_t>(family * 10 + option));
  p.reset(graph::VertexId{0});
  std::uint32_t visited_before = p.num_visited();
  std::uint64_t tx_before = 0;
  for (int t = 0; t < 200 && !p.all_visited(); ++t) {
    const std::size_t active_before = p.active().size();
    p.step(rng);
    // Active set can grow by at most the total fan-out.
    EXPECT_LE(p.active().size(), active_before * max_fanout);
    EXPECT_GE(p.active().size(), 1u);  // fan-out >= 1 keeps particles alive
    // Visited monotone, counts consistent.
    EXPECT_GE(p.num_visited(), visited_before);
    visited_before = p.num_visited();
    // Transmissions strictly increase while particles are active.
    EXPECT_GT(p.transmissions(), tx_before);
    tx_before = p.transmissions();
    // Active list is duplicate-free and within range.
    std::set<graph::VertexId> unique(p.active().begin(), p.active().end());
    EXPECT_EQ(unique.size(), p.active().size());
    for (const auto u : p.active()) EXPECT_LT(u, g.num_vertices());
  }
  EXPECT_TRUE(p.all_visited())
      << g.name() << " not covered in 200 rounds (option " << option << ")";
  // Cover time >= information-theoretic lower bound.
  const auto ecc = graph::eccentricity(g, 0);
  ASSERT_TRUE(ecc.has_value());
  EXPECT_GE(p.round(), *ecc);
}

TEST_P(ProcessProperties, BipsInvariants) {
  const auto [family, option] = GetParam();
  const graph::Graph g = family_graph(family);
  BipsOptions opt;
  opt.process = branching_case(option);
  opt.kernel = (family % 2 == 0) ? BipsKernel::kSampling
                                 : BipsKernel::kProbability;

  // The plain process can fail to absorb quickly on bipartite graphs
  // (lambda = 1): that is exactly the paper's laziness remark. Use lazy
  // dynamics there.
  if (graph::is_bipartite(g) && opt.process.laziness == 0.0)
    opt.process.laziness = 0.5;

  BipsProcess p(g, 0, opt);
  auto rng = rng::make_stream(717171,
                              static_cast<std::uint64_t>(family * 10 + option));
  const std::uint64_t budget = 50000;
  bool full = false;
  for (std::uint64_t t = 0; t < budget && !full; ++t) {
    p.step(rng);
    EXPECT_TRUE(p.is_infected(0));  // persistent source
    std::set<graph::VertexId> unique(p.infected().begin(), p.infected().end());
    EXPECT_EQ(unique.size(), p.infected().size());
    full = p.fully_infected();
  }
  EXPECT_TRUE(full) << g.name() << " option " << option;
  // Absorbing state.
  p.step(rng);
  EXPECT_TRUE(p.fully_infected());
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndBranching, ProcessProperties,
    ::testing::Combine(::testing::Range(0, 15), ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<ProcessParam>& info) {
      return "family" + std::to_string(std::get<0>(info.param)) + "_opt" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace cobra::core
