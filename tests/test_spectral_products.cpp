// Large-scale spectral property tests: the Cartesian-product rule gives
// exact lambda for graphs far beyond the dense-solver range, pinning the
// Lanczos path with closed-form ground truth at realistic sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "graph/product.hpp"
#include "rng/stream.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/spectral.hpp"

namespace cobra::spectral {
namespace {

// Exact lambda (max |mu_i|, i >= 2) of C_a box C_b from the cosine spectra.
double torus_lambda_exact(graph::VertexId a, graph::VertexId b) {
  double best = -1.0;
  for (graph::VertexId j = 0; j < a; ++j)
    for (graph::VertexId k = 0; k < b; ++k) {
      if (j == 0 && k == 0) continue;  // principal eigenvalue 1
      const double mu =
          (std::cos(2.0 * M_PI * j / a) + std::cos(2.0 * M_PI * k / b)) / 2.0;
      best = std::max(best, std::fabs(mu));
    }
  return best;
}

class TorusLambda
    : public ::testing::TestWithParam<std::pair<graph::VertexId,
                                                graph::VertexId>> {};

TEST_P(TorusLambda, LanczosMatchesClosedForm) {
  const auto [a, b] = GetParam();
  const graph::Graph g =
      graph::cartesian_product(graph::cycle(a), graph::cycle(b));
  const double exact = torus_lambda_exact(a, b);
  const auto info = compute_lambda(g, /*seed=*/9, /*dense_threshold=*/0);
  EXPECT_FALSE(info.exact);  // forced onto the iterative path
  EXPECT_NEAR(info.lambda, exact, 1e-6) << "C_" << a << " box C_" << b;
}

INSTANTIATE_TEST_SUITE_P(
    OddTori, TorusLambda,
    ::testing::Values(std::make_pair(15u, 15u), std::make_pair(31u, 15u),
                      std::make_pair(45u, 31u), std::make_pair(63u, 63u)),
    [](const auto& info) {
      std::string name = "c";
      name += std::to_string(info.param.first);
      name += 'x';
      name += std::to_string(info.param.second);
      return name;
    });

TEST(SpectralProducts, HypercubeViaK2PowersAtScale) {
  // Q_d = K_2^box d has mu2 = 1 - 2/d; test the Lanczos value of mu2 via
  // lanczos_extremes on d up to 12 (n = 4096).
  for (const std::uint32_t d : {8u, 10u, 12u}) {
    const graph::Graph g = graph::cartesian_power(graph::complete(2), d);
    rng::Rng rng = rng::make_stream(77, d);
    const auto lz = lanczos_extremes(g, rng);
    EXPECT_NEAR(lz.mu2, 1.0 - 2.0 / d, 1e-6) << "d=" << d;
    EXPECT_NEAR(lz.mu_min, -1.0, 1e-6) << "d=" << d;  // bipartite
  }
}

TEST(SpectralProducts, CompleteTimesCompleteLambda) {
  // K_a box K_b (the rook's graph): adjacency eigenvalues are known; the
  // walk eigenvalues are weighted means of {1, -1/(a-1)} x {1, -1/(b-1)}.
  const graph::VertexId a = 20, b = 30;
  const graph::Graph g =
      graph::cartesian_product(graph::complete(a), graph::complete(b));
  double exact = -1.0;
  const double mus_a[] = {1.0, -1.0 / (a - 1)};
  const double mus_b[] = {1.0, -1.0 / (b - 1)};
  for (const double ma : mus_a)
    for (const double mb : mus_b) {
      if (ma == 1.0 && mb == 1.0) continue;
      exact = std::max(
          exact, std::fabs(graph::cartesian_walk_eigenvalue(ma, a - 1, mb,
                                                            b - 1)));
    }
  const auto info = compute_lambda(g, 11, /*dense_threshold=*/0);
  EXPECT_NEAR(info.lambda, exact, 1e-6);
}

TEST(SpectralProducts, GapConditionMarginOnProducts) {
  // Products of expanders keep a healthy margin for Theorem 1.2's regime
  // condition; products of cycles do not. Sanity-check the classifier.
  const graph::Graph good =
      graph::cartesian_product(graph::complete(16), graph::complete(16));
  const auto gi = compute_lambda(good, 13);
  EXPECT_GT(gap_condition_margin(gi.lambda, good.num_vertices()), 1.0);

  const graph::Graph slow =
      graph::cartesian_product(graph::cycle(45), graph::cycle(45));
  const auto si = compute_lambda(slow, 14, /*dense_threshold=*/0);
  EXPECT_LT(gap_condition_margin(si.lambda, slow.num_vertices()), 1.0);
}

}  // namespace
}  // namespace cobra::spectral
