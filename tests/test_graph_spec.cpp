// The graph-spec grammar, labels and the fingerprint-deduplicated
// per-process graph cache.
#include "graph/spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "graph/binary_io.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace cobra::graph {
namespace {

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(GraphSpec, BuildsEveryFamily) {
  EXPECT_EQ(build_graph_spec("complete_6").num_vertices(), 6u);
  EXPECT_EQ(build_graph_spec("cycle_9").num_vertices(), 9u);
  EXPECT_EQ(build_graph_spec("path_7").num_edges(), 6u);
  EXPECT_EQ(build_graph_spec("star_8").max_degree(), 7u);
  EXPECT_EQ(build_graph_spec("hypercube_4").num_vertices(), 16u);
  EXPECT_EQ(build_graph_spec("torus_3_d2").num_vertices(), 9u);
  EXPECT_EQ(build_graph_spec("regular_16_r4").min_degree(), 4u);
  EXPECT_EQ(build_graph_spec("petersen").num_vertices(), 10u);
}

TEST(GraphSpec, SpecStringBecomesTheGraphName) {
  EXPECT_EQ(build_graph_spec("cycle_9").name(), "cycle_9");
  EXPECT_EQ(build_graph_spec("regular_16_r4").name(), "regular_16_r4");
}

TEST(GraphSpec, RejectsMalformedSpecs) {
  for (const char* spec :
       {"cycle", "cycle_2", "cycle_x", "frobnicate_8", "complete_1",
        "hypercube_31", "torus_2_d2", "torus_4_d9", "regular_16_r16",
        "regular_9_r3", "petersen_2", "file:", ""}) {
    EXPECT_THROW((void)build_graph_spec(spec), util::CheckError)
        << "spec '" << spec << "' should be rejected";
  }
}

TEST(GraphSpec, LabelValidatesWithoutBuilding) {
  EXPECT_EQ(graph_spec_label("cycle_9"), "cycle_9");
  EXPECT_THROW((void)graph_spec_label("frobnicate_8"), util::CheckError);
}

TEST(GraphSpec, RandomRegularIsSeedIndependent) {
  // Pre-baked instances must be the same graph every run: the generator
  // stream derives from the spec parameters, never from COBRA_SEED.
  util::set_seed_override(1);
  const std::uint64_t fp1 = build_graph_spec("regular_16_r4").fingerprint();
  util::set_seed_override(2);
  const std::uint64_t fp2 = build_graph_spec("regular_16_r4").fingerprint();
  util::clear_env_overrides();
  EXPECT_EQ(fp1, fp2);
}

TEST(GraphSpec, FileSpecLoadsCgrWithEmbeddedLabel) {
  const TempFile f("test_spec_file.cgr");
  write_cgr_file(build_graph_spec("cycle_11"), f.path);
  const std::string spec = "file:" + f.path;
  ASSERT_TRUE(is_file_spec(spec));
  EXPECT_EQ(graph_spec_label(spec), "cycle_11");
  const Graph g = build_graph_spec(spec);
  EXPECT_EQ(g.name(), "cycle_11");
  EXPECT_EQ(g.num_vertices(), 11u);
  EXPECT_EQ(g.storage_backend(), "mmap");
}

TEST(GraphSpec, FileSpecReadsTextEdgeLists) {
  const TempFile f("test_spec_file.edges");
  {
    std::FILE* out = std::fopen(f.path.c_str(), "w");
    std::fputs("3 2\n0 1\n1 2\n", out);
    std::fclose(out);
  }
  const std::string spec = "file:" + f.path;
  EXPECT_EQ(graph_spec_label(spec), "test_spec_file");
  EXPECT_EQ(build_graph_spec(spec).num_edges(), 2u);
}

TEST(GraphSpec, CacheSharesInstancesAndDedupsByFingerprint) {
  clear_graph_cache();
  const auto first = shared_graph("cycle_13");
  const auto second = shared_graph("cycle_13");
  EXPECT_EQ(first.get(), second.get());

  // A file: spec of the identical structure resolves to the SAME
  // instance via the fingerprint index — one alias table, one spectrum.
  const TempFile f("test_spec_cache.cgr");
  write_cgr_file(build_graph_spec("cycle_13"), f.path);
  const auto from_file = shared_graph("file:" + f.path);
  EXPECT_EQ(from_file.get(), first.get());

  const GraphCacheStats stats = graph_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.fingerprint_dedups, 1u);
  clear_graph_cache();
}

TEST(GraphSpec, SplitGraphSpecsTrimsAndDropsEmpties) {
  EXPECT_EQ(split_graph_specs(" cycle_8 ,, petersen ,file:a.cgr"),
            (std::vector<std::string>{"cycle_8", "petersen",
                                      "file:a.cgr"}));
  EXPECT_TRUE(split_graph_specs("").empty());
  EXPECT_TRUE(split_graph_specs(" , ").empty());
}

}  // namespace
}  // namespace cobra::graph
