#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cobra::util {
namespace {

TEST(UtilMath, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(~0ull), 63u);
}

TEST(UtilMath, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1ull << 40), 40u);
  EXPECT_EQ(ceil_log2((1ull << 40) + 1), 41u);
}

TEST(UtilMath, FloorAndCeilAgreeOnPowersOfTwo) {
  for (std::uint32_t k = 0; k < 60; ++k) {
    const std::uint64_t x = 1ull << k;
    EXPECT_EQ(floor_log2(x), k);
    EXPECT_EQ(ceil_log2(x), k);
  }
}

TEST(UtilMath, IsPowerOfTwo) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(1ull << 50));
  EXPECT_FALSE(is_power_of_two((1ull << 50) + 2));
}

TEST(UtilMath, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
}

TEST(UtilMath, Ipow) {
  EXPECT_EQ(ipow(2, 0), 1u);
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(3, 4), 81u);
  EXPECT_EQ(ipow(10, 6), 1000000u);
  EXPECT_EQ(ipow(1, 63), 1u);
}

TEST(UtilMath, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
  EXPECT_TRUE(approx_equal(1e6, 1e6 * (1 + 1e-10)));
}

TEST(UtilMath, HarmonicSmallValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(10), 2.9289682539682538, 1e-12);
}

TEST(UtilMath, HarmonicAsymptoticMatchesExactAtSwitch) {
  // The asymptotic branch (n >= 1024) must agree with direct summation.
  double exact = 0.0;
  for (std::uint64_t i = 1; i <= 5000; ++i) exact += 1.0 / static_cast<double>(i);
  EXPECT_NEAR(harmonic(5000), exact, 1e-9);
}

TEST(UtilMath, SafeLogGuardsTinyInputs) {
  EXPECT_DOUBLE_EQ(safe_log(1.0), std::log(2.0));
  EXPECT_DOUBLE_EQ(safe_log(0.0), std::log(2.0));
  EXPECT_DOUBLE_EQ(safe_log(100.0), std::log(100.0));
}

TEST(UtilMath, Square) {
  EXPECT_EQ(sq(4), 16);
  EXPECT_DOUBLE_EQ(sq(1.5), 2.25);
}

}  // namespace
}  // namespace cobra::util
