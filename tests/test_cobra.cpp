#include "core/cobra.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace cobra::core {
namespace {

rng::Rng test_rng(std::uint64_t salt) { return rng::make_stream(1001, salt); }

TEST(Cobra, TwoVertexGraphCoversInOneRound) {
  const graph::Graph g = graph::path(2);
  CobraProcess p(g);
  auto rng = test_rng(0);
  for (int rep = 0; rep < 50; ++rep) {
    p.reset(graph::VertexId{0});
    const auto cover = p.run_until_cover(rng, 10);
    ASSERT_TRUE(cover.has_value());
    EXPECT_EQ(*cover, 1u);  // the only neighbour receives both particles
  }
}

TEST(Cobra, StartVertexVisitedAtRoundZero) {
  const graph::Graph g = graph::cycle(5);
  CobraProcess p(g);
  p.reset(graph::VertexId{3});
  EXPECT_TRUE(p.is_visited(3));
  EXPECT_EQ(p.num_visited(), 1u);
  EXPECT_EQ(p.round(), 0u);
  EXPECT_EQ(p.active().size(), 1u);
  EXPECT_EQ(p.active()[0], 3u);
}

TEST(Cobra, MultiStartDeduplicates) {
  const graph::Graph g = graph::cycle(6);
  CobraProcess p(g);
  const std::vector<graph::VertexId> start = {1, 4, 1, 4, 1};
  p.reset(std::span<const graph::VertexId>(start.data(), start.size()));
  EXPECT_EQ(p.active().size(), 2u);
  EXPECT_EQ(p.num_visited(), 2u);
}

TEST(Cobra, ActiveSetIsDuplicateFreeEachRound) {
  const graph::Graph g = graph::complete(12);
  CobraProcess p(g);
  auto rng = test_rng(1);
  p.reset(graph::VertexId{0});
  for (int t = 0; t < 10; ++t) {
    p.step(rng);
    std::set<graph::VertexId> unique(p.active().begin(), p.active().end());
    EXPECT_EQ(unique.size(), p.active().size());
    for (const auto u : p.active()) EXPECT_TRUE(p.is_active(u));
  }
}

TEST(Cobra, ActiveSetAtMostDoublesWithB2) {
  // |C_{t+1}| <= 2 |C_t| is the paper's doubling lower-bound argument.
  const graph::Graph g = graph::complete(64);
  CobraProcess p(g);
  auto rng = test_rng(2);
  p.reset(graph::VertexId{0});
  while (!p.all_visited() && p.round() < 100) {
    const std::size_t before = p.active().size();
    p.step(rng);
    EXPECT_LE(p.active().size(), 2 * before);
  }
}

TEST(Cobra, CoverAtLeastLowerBound) {
  // cover >= log2(n) (doubling) and >= eccentricity of the start.
  const graph::Graph g = graph::cycle(32);
  CobraProcess p(g);
  auto rng = test_rng(3);
  for (int rep = 0; rep < 10; ++rep) {
    p.reset(graph::VertexId{0});
    const auto cover = p.run_until_cover(rng, 100000);
    ASSERT_TRUE(cover.has_value());
    EXPECT_GE(*cover, 16u);  // eccentricity of any vertex in C_32
    EXPECT_GE(*cover, util::ceil_log2(32));
  }
}

TEST(Cobra, VisitedSetIsMonotone) {
  const graph::Graph g = graph::petersen();
  CobraProcess p(g);
  auto rng = test_rng(4);
  p.reset(graph::VertexId{0});
  std::uint32_t previous = p.num_visited();
  for (int t = 0; t < 30; ++t) {
    p.step(rng);
    EXPECT_GE(p.num_visited(), previous);
    previous = p.num_visited();
  }
}

TEST(Cobra, TransmissionAccountingForIntegerB) {
  const graph::Graph g = graph::complete(16);
  for (const std::uint32_t b : {1u, 2u, 3u}) {
    ProcessOptions opt;
    opt.branching = Branching::integer(b);
    CobraProcess p(g, opt);
    auto rng = test_rng(5 + b);
    p.reset(graph::VertexId{0});
    std::uint64_t active_sum = 0;
    for (int t = 0; t < 8; ++t) {
      active_sum += p.active().size();
      p.step(rng);
    }
    EXPECT_EQ(p.transmissions(), active_sum * b);
  }
}

TEST(Cobra, BernoulliBranchingTransmissionsBracketed) {
  ProcessOptions opt;
  opt.branching = Branching::one_plus_rho(0.5);
  const graph::Graph g = graph::complete(16);
  CobraProcess p(g, opt);
  auto rng = test_rng(9);
  p.reset(graph::VertexId{0});
  std::uint64_t active_sum = 0;
  for (int t = 0; t < 10; ++t) {
    active_sum += p.active().size();
    p.step(rng);
  }
  EXPECT_GE(p.transmissions(), active_sum);
  EXPECT_LE(p.transmissions(), 2 * active_sum);
}

TEST(Cobra, DeterministicGivenSameStream) {
  const graph::Graph g = graph::hypercube(5);
  CobraProcess p1(g), p2(g);
  auto rng1 = test_rng(10);
  auto rng2 = test_rng(10);
  p1.reset(graph::VertexId{7});
  p2.reset(graph::VertexId{7});
  const auto c1 = p1.run_until_cover(rng1, 100000);
  const auto c2 = p2.run_until_cover(rng2, 100000);
  ASSERT_TRUE(c1.has_value() && c2.has_value());
  EXPECT_EQ(*c1, *c2);
  EXPECT_EQ(p1.transmissions(), p2.transmissions());
}

TEST(Cobra, HitOfStartIsZero) {
  const graph::Graph g = graph::cycle(9);
  CobraProcess p(g);
  auto rng = test_rng(11);
  p.reset(graph::VertexId{4});
  const auto hit = p.run_until_hit(rng, 4, 100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0u);
}

TEST(Cobra, TimeoutReturnsNullopt) {
  const graph::Graph g = graph::cycle(64);
  CobraProcess p(g);
  auto rng = test_rng(12);
  p.reset(graph::VertexId{0});
  // 3 rounds cannot reach the antipode of a 64-cycle.
  EXPECT_FALSE(p.run_until_cover(rng, 3).has_value());
  EXPECT_FALSE(p.run_until_hit(rng, 32, 3).has_value());
}

TEST(Cobra, LazyWalkStaysPut) {
  ProcessOptions opt;
  opt.laziness = 0.999;  // nearly always self-select
  const graph::Graph g = graph::path(4);
  CobraProcess p(g, opt);
  auto rng = test_rng(13);
  p.reset(graph::VertexId{0});
  p.step(rng);
  // With laziness ~1 the particle almost surely stayed at 0.
  EXPECT_EQ(p.active().size(), 1u);
}

TEST(Cobra, B1IsASingleParticleWalk) {
  ProcessOptions opt;
  opt.branching = Branching::integer(1);
  const graph::Graph g = graph::cycle(12);
  CobraProcess p(g, opt);
  auto rng = test_rng(14);
  p.reset(graph::VertexId{0});
  for (int t = 0; t < 50; ++t) {
    p.step(rng);
    EXPECT_EQ(p.active().size(), 1u);  // never branches
  }
}

TEST(Cobra, CompleteGraphCoversFast) {
  // K_64 should cover in ~2 log2(64) = 12 rounds, far below 100.
  const graph::Graph g = graph::complete(64);
  CobraProcess p(g);
  auto rng = test_rng(15);
  p.reset(graph::VertexId{0});
  const auto cover = p.run_until_cover(rng, 100);
  ASSERT_TRUE(cover.has_value());
  EXPECT_LE(*cover, 40u);
}

TEST(Cobra, RejectsInvalidConfig) {
  const graph::Graph g = graph::path(3);
  ProcessOptions opt;
  opt.laziness = 1.0;
  EXPECT_THROW(CobraProcess(g, opt), util::CheckError);
  ProcessOptions opt2;
  opt2.branching.base = 0;
  EXPECT_THROW(CobraProcess(g, opt2), util::CheckError);
}

TEST(Cobra, RejectsIsolatedVertexGraph) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  const graph::Graph g = std::move(b).build();
  EXPECT_THROW(CobraProcess{g}, util::CheckError);
}

TEST(Cobra, SingleVertexGraphIsTriviallyCovered) {
  // The one permitted degree-0 case: n = 1 covers at round 0 and every
  // push stays put (see the constructor contract in core/cobra.hpp).
  graph::GraphBuilder b(1);
  const graph::Graph g = std::move(b).build();
  CobraProcess p(g);
  auto rng = test_rng(17);
  EXPECT_TRUE(p.all_visited());
  const auto cover = p.run_until_cover(rng, 5);
  ASSERT_TRUE(cover.has_value());
  EXPECT_EQ(*cover, 0u);
  p.step(rng);
  EXPECT_EQ(p.active().size(), 1u);
  EXPECT_EQ(p.active()[0], 0u);
}

TEST(Cobra, ResetClearsState) {
  const graph::Graph g = graph::complete(8);
  CobraProcess p(g);
  auto rng = test_rng(16);
  p.reset(graph::VertexId{0});
  p.run_until_cover(rng, 100);
  EXPECT_TRUE(p.all_visited());
  p.reset(graph::VertexId{2});
  EXPECT_EQ(p.num_visited(), 1u);
  EXPECT_EQ(p.round(), 0u);
  EXPECT_EQ(p.transmissions(), 0u);
  EXPECT_TRUE(p.is_visited(2));
  EXPECT_FALSE(p.is_visited(0));
}

}  // namespace
}  // namespace cobra::core
