#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "spectral/dense.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/power.hpp"
#include "spectral/spectral.hpp"

namespace cobra::spectral {
namespace {

double dense_lambda(const graph::Graph& g) {
  const auto eig = walk_spectrum_dense(g);  // ascending
  return std::max(std::fabs(eig.front()),
                  std::fabs(eig[eig.size() - 2]));
}

class IterativeVsDense : public ::testing::TestWithParam<int> {};

graph::Graph graph_case(int id) {
  rng::Rng rng = rng::make_stream(4242, static_cast<std::uint64_t>(id));
  switch (id) {
    case 0: return graph::complete(24);
    case 1: return graph::cycle(21);            // odd cycle
    case 2: return graph::cycle(20);            // even (bipartite)
    case 3: return graph::petersen();
    case 4: return graph::hypercube(5);         // bipartite
    case 5: return graph::star(30);
    case 6: return graph::lollipop(8, 6);
    case 7: return graph::connected_random_regular(40, 3, rng);
    case 8: return graph::connected_random_regular(50, 6, rng);
    case 9: return graph::connected_erdos_renyi(40, 2.0, rng);
    case 10: return graph::torus_power(5, 2);
    case 11: return graph::barbell(6, 3);
    default: return graph::path(17);
  }
}

TEST_P(IterativeVsDense, PowerIterationMatchesJacobi) {
  const graph::Graph g = graph_case(GetParam());
  const double expected = dense_lambda(g);
  rng::Rng rng = rng::make_stream(1, static_cast<std::uint64_t>(GetParam()));
  const PowerResult pr = power_lambda(g, rng, 20000, 1e-12);
  EXPECT_NEAR(pr.lambda, expected, 2e-4) << g.name();
}

TEST_P(IterativeVsDense, LanczosMatchesJacobi) {
  const graph::Graph g = graph_case(GetParam());
  const double expected = dense_lambda(g);
  rng::Rng rng = rng::make_stream(2, static_cast<std::uint64_t>(GetParam()));
  const LanczosResult lz = lanczos_extremes(g, rng);
  EXPECT_NEAR(lz.lambda, expected, 1e-6) << g.name();
}

INSTANTIATE_TEST_SUITE_P(Families, IterativeVsDense,
                         ::testing::Range(0, 13));

TEST(ComputeLambda, DensePathIsExact) {
  const auto info = compute_lambda(graph::petersen());
  EXPECT_TRUE(info.exact);
  EXPECT_NEAR(info.lambda, 2.0 / 3.0, 1e-10);
  EXPECT_NEAR(info.gap, 1.0 / 3.0, 1e-10);
}

TEST(ComputeLambda, IterativePathAgreesWithDense) {
  // Force the iterative path by setting the dense threshold to 0.
  const graph::Graph g = graph::hypercube(6);
  const auto exact = compute_lambda(g, 1, /*dense_threshold=*/256);
  const auto iterative = compute_lambda(g, 1, /*dense_threshold=*/0);
  EXPECT_TRUE(exact.exact);
  EXPECT_FALSE(iterative.exact);
  EXPECT_NEAR(exact.lambda, iterative.lambda, 1e-6);
  EXPECT_NEAR(exact.lambda, 1.0, 1e-10);  // bipartite
}

TEST(ComputeLambda, CacheReusesIdenticalSpectra) {
  clear_spectral_cache();
  const graph::Graph g = graph::hypercube(6);
  const auto first = compute_lambda_cached(g, 1);
  auto stats = spectral_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // A structurally identical graph built separately hits the cache: this
  // is the sharded-cells case (same generator, same seed, same scale).
  const graph::Graph twin = graph::hypercube(6);
  const auto second = compute_lambda_cached(twin, 1);
  stats = spectral_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(first.lambda, second.lambda);
  EXPECT_EQ(first.exact, second.exact);

  // Different iterative seed or threshold -> different key.
  compute_lambda_cached(g, 2);
  compute_lambda_cached(g, 1, /*dense_threshold=*/0);
  stats = spectral_cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.entries, 3u);

  // A different graph never collides.
  compute_lambda_cached(graph::cycle(64), 1);
  stats = spectral_cache_stats();
  EXPECT_EQ(stats.misses, 4u);
  clear_spectral_cache();
  EXPECT_EQ(spectral_cache_stats().entries, 0u);
}

TEST(ComputeLambda, CachedAgreesWithUncached) {
  clear_spectral_cache();
  for (int id = 0; id < 13; ++id) {
    const graph::Graph g = graph_case(id);
    const auto direct = compute_lambda(g, 3);
    const auto cached = compute_lambda_cached(g, 3);
    EXPECT_EQ(direct.lambda, cached.lambda) << g.name();
    EXPECT_EQ(direct.exact, cached.exact) << g.name();
  }
  clear_spectral_cache();
}

TEST(ComputeLambda, LambdaInUnitInterval) {
  for (int id = 0; id < 13; ++id) {
    const auto info = compute_lambda(graph_case(id));
    EXPECT_GE(info.lambda, 0.0);
    EXPECT_LE(info.lambda, 1.0);
    EXPECT_NEAR(info.gap, 1.0 - info.lambda, 1e-15);
  }
}

TEST(Lanczos, ExtremesBracketSpectrum) {
  const graph::Graph g = graph::complete(30);
  rng::Rng rng = rng::make_stream(3, 0);
  const LanczosResult lz = lanczos_extremes(g, rng);
  // K_30: mu2 = mu_min = -1/29.
  EXPECT_NEAR(lz.mu2, -1.0 / 29.0, 1e-8);
  EXPECT_NEAR(lz.mu_min, -1.0 / 29.0, 1e-8);
}

}  // namespace
}  // namespace cobra::spectral
