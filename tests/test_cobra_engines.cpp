// Equivalence and correctness guarantees of the COBRA stepping engines
// (core/frontier_kernel.hpp):
//   * sparse, dense and auto are bit-for-bit identical at a fixed seed —
//     same visit sequence, same frontier sets, same counters — because all
//     per-vertex randomness is a pure function of (round key, vertex);
//   * the reference engine agrees with them in distribution (checked by
//     the shared invariants, not draw by draw);
//   * the degree-bucketed alias sampler reproduces the push-destination
//     distribution, including laziness.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "core/cobra.hpp"
#include "core/frontier_kernel.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace cobra::core {
namespace {

rng::Rng test_rng(std::uint64_t salt) { return rng::make_stream(2024, salt); }

std::vector<graph::Graph> fixture_graphs() {
  rng::Rng gen = test_rng(999);
  std::vector<graph::Graph> graphs;
  graphs.push_back(graph::path(48));
  graphs.push_back(graph::cycle(64));
  graphs.push_back(graph::hypercube(7));
  graphs.push_back(graph::connected_random_regular(256, 6, gen));
  graphs.push_back(graph::complete(96));
  return graphs;
}

std::vector<graph::VertexId> sorted_active(const CobraProcess& p) {
  std::vector<graph::VertexId> v = p.active();
  std::sort(v.begin(), v.end());
  return v;
}

/// Steps `a` and `b` in lockstep on identically seeded streams and asserts
/// every observable agrees each round: the bit-for-bit claim.
void expect_lockstep_identical(CobraProcess& a, CobraProcess& b,
                               std::uint64_t seed, int max_rounds) {
  rng::Rng rng_a = rng::make_stream(seed, 0);
  rng::Rng rng_b = rng::make_stream(seed, 0);
  a.reset(graph::VertexId{0});
  b.reset(graph::VertexId{0});
  for (int t = 0; t < max_rounds && !a.all_visited(); ++t) {
    const std::uint32_t new_a = a.step(rng_a);
    const std::uint32_t new_b = b.step(rng_b);
    ASSERT_EQ(new_a, new_b) << "round " << t;
    ASSERT_EQ(a.num_active(), b.num_active()) << "round " << t;
    ASSERT_EQ(a.num_visited(), b.num_visited()) << "round " << t;
    ASSERT_EQ(a.transmissions(), b.transmissions()) << "round " << t;
    ASSERT_EQ(sorted_active(a), sorted_active(b)) << "round " << t;
    for (graph::VertexId u = 0; u < a.graph().num_vertices(); ++u) {
      ASSERT_EQ(a.is_visited(u), b.is_visited(u)) << "round " << t;
      ASSERT_EQ(a.is_active(u), b.is_active(u)) << "round " << t;
    }
  }
  EXPECT_EQ(a.round(), b.round());
  EXPECT_EQ(a.all_visited(), b.all_visited());
}

TEST(CobraEngines, SparseDenseAutoBitForBitOnFixtures) {
  for (const graph::Graph& g : fixture_graphs()) {
    for (const Engine forced : {Engine::kDense, Engine::kAuto}) {
      ProcessOptions sparse_opt;
      sparse_opt.engine = Engine::kSparse;
      ProcessOptions other_opt;
      other_opt.engine = forced;
      CobraProcess sparse(g, sparse_opt);
      CobraProcess other(g, other_opt);
      expect_lockstep_identical(sparse, other, 7000 + g.num_vertices(),
                                5000);
    }
  }
}

TEST(CobraEngines, BitForBitWithLazinessAndBernoulliBranching) {
  const graph::Graph g = graph::hypercube(6);
  for (double laziness : {0.0, 0.5}) {
    ProcessOptions sparse_opt;
    sparse_opt.engine = Engine::kSparse;
    sparse_opt.laziness = laziness;
    sparse_opt.branching = Branching::one_plus_rho(0.3);
    ProcessOptions dense_opt = sparse_opt;
    dense_opt.engine = Engine::kDense;
    dense_opt.sampler.reset();
    CobraProcess sparse(g, sparse_opt);
    CobraProcess dense(g, dense_opt);
    expect_lockstep_identical(sparse, dense, 31, 5000);
  }
}

TEST(CobraEngines, FirstVisitRoundsIdenticalAcrossFastEngines) {
  // The full visit sequence — the round at which each vertex is first
  // covered — must agree, not just the aggregate counts.
  const graph::Graph g = graph::cycle(96);
  std::map<Engine, std::vector<std::uint64_t>> first_visit;
  for (const Engine e : {Engine::kSparse, Engine::kDense, Engine::kAuto}) {
    ProcessOptions opt;
    opt.engine = e;
    CobraProcess p(g, opt);
    rng::Rng rng = rng::make_stream(555, 0);
    p.reset(graph::VertexId{0});
    std::vector<std::uint64_t> rounds(g.num_vertices(), ~0ull);
    rounds[0] = 0;
    while (!p.all_visited()) {
      ASSERT_LT(p.round(), 100000u);
      p.step(rng);
      for (graph::VertexId u = 0; u < g.num_vertices(); ++u)
        if (rounds[u] == ~0ull && p.is_visited(u)) rounds[u] = p.round();
    }
    first_visit[e] = std::move(rounds);
  }
  EXPECT_EQ(first_visit[Engine::kSparse], first_visit[Engine::kDense]);
  EXPECT_EQ(first_visit[Engine::kSparse], first_visit[Engine::kAuto]);
}

TEST(CobraEngines, CoverAgreesAcrossFastEnginesOnRandomRegular) {
  rng::Rng gen = test_rng(3);
  const graph::Graph g = graph::connected_random_regular(512, 8, gen);
  std::map<Engine, std::vector<std::uint64_t>> covers;
  for (const Engine e : {Engine::kSparse, Engine::kDense, Engine::kAuto}) {
    ProcessOptions opt;
    opt.engine = e;
    CobraProcess p(g, opt);
    for (std::uint64_t rep = 0; rep < 8; ++rep) {
      rng::Rng rng = rng::make_stream(808, rep);
      p.reset(graph::VertexId{0});
      const auto cover = p.run_until_cover(rng, 100000);
      ASSERT_TRUE(cover.has_value());
      covers[e].push_back(*cover);
    }
  }
  EXPECT_EQ(covers[Engine::kSparse], covers[Engine::kDense]);
  EXPECT_EQ(covers[Engine::kSparse], covers[Engine::kAuto]);
}

TEST(CobraEngines, AutoSwitchesToDenseOnceFrontierSaturates) {
  const graph::Graph g = graph::complete(512);
  ProcessOptions opt;
  opt.engine = Engine::kAuto;
  CobraProcess p(g, opt);
  rng::Rng rng = test_rng(4);
  p.reset(graph::VertexId{0});
  p.step(rng);
  EXPECT_EQ(p.dense_rounds(), 0u);  // |C_0| = 1 is far below the threshold
  p.run_until_cover(rng, 1000);
  for (int t = 0; t < 10; ++t) p.step(rng);  // saturated steady state
  EXPECT_GT(p.dense_rounds(), 0u);
  CobraProcess forced(g, [] {
    ProcessOptions o;
    o.engine = Engine::kSparse;
    return o;
  }());
  forced.reset(graph::VertexId{0});
  rng::Rng rng2 = test_rng(4);
  forced.run_until_cover(rng2, 1000);
  EXPECT_EQ(forced.dense_rounds(), 0u);
}

TEST(CobraEngines, ReferenceEngineMatchesFastInDistributionBounds) {
  // Not bit-for-bit (different draw protocols) — but the structural
  // invariants must hold on every engine.
  const graph::Graph g = graph::complete(64);
  for (const Engine e :
       {Engine::kReference, Engine::kSparse, Engine::kDense, Engine::kAuto}) {
    ProcessOptions opt;
    opt.engine = e;
    CobraProcess p(g, opt);
    rng::Rng rng = test_rng(5);
    p.reset(graph::VertexId{0});
    std::size_t before = p.num_active();
    while (!p.all_visited() && p.round() < 200) {
      p.step(rng);
      EXPECT_LE(p.num_active(), 2 * before);  // b = 2 doubling bound
      before = p.num_active();
    }
    EXPECT_TRUE(p.all_visited()) << engine_name(e);
    EXPECT_GE(p.round(), 6u);  // log2(64): doubling lower bound
  }
}

TEST(CobraEngines, ActiveVectorMatchesBitsetViewAfterDenseRounds) {
  const graph::Graph g = graph::hypercube(8);
  ProcessOptions opt;
  opt.engine = Engine::kDense;
  CobraProcess p(g, opt);
  rng::Rng rng = test_rng(6);
  p.reset(graph::VertexId{17});
  for (int t = 0; t < 12; ++t) {
    p.step(rng);
    const auto& active = p.active();  // materialised lazily, ascending
    ASSERT_EQ(active.size(), p.num_active());
    EXPECT_TRUE(std::is_sorted(active.begin(), active.end()));
    for (const graph::VertexId u : active) EXPECT_TRUE(p.is_active(u));
  }
}

TEST(CobraEngines, SingleVertexGraphCoversAtRoundZeroOnEveryEngine) {
  graph::GraphBuilder b(1);
  const graph::Graph g = std::move(b).build();
  for (const Engine e :
       {Engine::kReference, Engine::kSparse, Engine::kDense, Engine::kAuto}) {
    ProcessOptions opt;
    opt.engine = e;
    CobraProcess p(g, opt);
    rng::Rng rng = test_rng(7);
    p.reset(graph::VertexId{0});
    EXPECT_TRUE(p.all_visited()) << engine_name(e);
    const auto cover = p.run_until_cover(rng, 10);
    ASSERT_TRUE(cover.has_value());
    EXPECT_EQ(*cover, 0u);
    // Stepping anyway keeps the lone particle in place.
    p.step(rng);
    EXPECT_EQ(p.num_active(), 1u);
    EXPECT_TRUE(p.is_active(0));
    EXPECT_EQ(p.transmissions(), 2u);
  }
}

TEST(CobraEngines, SharedSamplerReproducesPerProcessResults) {
  const graph::Graph g = graph::hypercube(6);
  const auto sampler = std::make_shared<const NeighborSampler>(g, 0.0);
  ProcessOptions own;
  own.engine = Engine::kAuto;
  ProcessOptions shared = own;
  shared.sampler = sampler;
  CobraProcess p_own(g, own);
  CobraProcess p_shared(g, shared);
  expect_lockstep_identical(p_own, p_shared, 99, 5000);
}

TEST(CobraEngines, SharedSamplerMustMatchGraphAndLaziness) {
  const graph::Graph g = graph::hypercube(5);
  const graph::Graph other = graph::cycle(32);
  ProcessOptions opt;
  opt.engine = Engine::kDense;
  opt.sampler = std::make_shared<const NeighborSampler>(other, 0.0);
  EXPECT_THROW(CobraProcess(g, opt), util::CheckError);
  ProcessOptions lazy;
  lazy.engine = Engine::kDense;
  lazy.laziness = 0.5;
  lazy.sampler = std::make_shared<const NeighborSampler>(g, 0.25);
  EXPECT_THROW(CobraProcess(g, lazy), util::CheckError);
}

TEST(CobraEngines, DefaultEngineResolvesFromSession) {
  const graph::Graph g = graph::cycle(8);
  util::clear_env_overrides();
  EXPECT_EQ(CobraProcess(g).engine(), Engine::kAuto);  // session default
  util::set_engine_override("reference");
  EXPECT_EQ(CobraProcess(g).engine(), Engine::kReference);
  util::set_engine_override("dense");
  EXPECT_EQ(CobraProcess(g).engine(), Engine::kDense);
  util::set_engine_override("fast");
  EXPECT_EQ(CobraProcess(g).engine(), Engine::kAuto);
  util::set_engine_override("bogus");
  EXPECT_THROW(CobraProcess{g}, util::CheckError);
  util::clear_env_overrides();
  // Explicit options always win over the session setting.
  util::set_engine_override("dense");
  ProcessOptions opt;
  opt.engine = Engine::kSparse;
  EXPECT_EQ(CobraProcess(g, opt).engine(), Engine::kSparse);
  util::clear_env_overrides();
}

TEST(CobraEngines, ParseAndNameRoundTrip) {
  for (const Engine e :
       {Engine::kReference, Engine::kSparse, Engine::kDense, Engine::kAuto}) {
    const auto parsed = parse_engine(engine_name(e));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, e);
  }
  EXPECT_EQ(parse_engine("fast"), Engine::kAuto);
  EXPECT_FALSE(parse_engine("default").has_value());
  EXPECT_FALSE(parse_engine("").has_value());
  EXPECT_FALSE(parse_engine("Reference").has_value());
}

TEST(CobraEngines, BitForBitHoldsUnderEitherDrawHash) {
  // The engine equivalence is hash-agnostic: sparse and dense stay in
  // lockstep whether the keyed draws come from the cheap mix64 path or
  // from the Philox fallback.
  const graph::Graph g = graph::hypercube(6);
  for (const DrawHash hash : {DrawHash::kMix64, DrawHash::kPhilox}) {
    ProcessOptions sparse_opt;
    sparse_opt.engine = Engine::kSparse;
    sparse_opt.draw_hash = hash;
    ProcessOptions dense_opt = sparse_opt;
    dense_opt.engine = Engine::kDense;
    CobraProcess sparse(g, sparse_opt);
    CobraProcess dense(g, dense_opt);
    expect_lockstep_identical(sparse, dense, 4242, 5000);
  }
}

TEST(CobraEngines, DrawHashesAgreeInDistribution) {
  // mix64 and philox drive the same process law; mean cover times must be
  // statistically indistinguishable (generous 5-sigma-ish band).
  const graph::Graph g = graph::cycle(96);
  std::map<DrawHash, double> means;
  constexpr std::uint64_t kReps = 200;
  for (const DrawHash hash : {DrawHash::kMix64, DrawHash::kPhilox}) {
    ProcessOptions opt;
    opt.engine = Engine::kAuto;
    opt.draw_hash = hash;
    CobraProcess p(g, opt);
    double total = 0.0;
    for (std::uint64_t rep = 0; rep < kReps; ++rep) {
      rng::Rng rng = rng::make_stream(909, rep);
      p.reset(graph::VertexId{0});
      const auto cover = p.run_until_cover(rng, 100000);
      ASSERT_TRUE(cover.has_value());
      total += static_cast<double>(*cover);
    }
    means[hash] = total / static_cast<double>(kReps);
  }
  const double m1 = means[DrawHash::kMix64];
  const double m2 = means[DrawHash::kPhilox];
  EXPECT_LT(std::fabs(m1 - m2), 0.15 * std::max(m1, m2))
      << "mix64 " << m1 << " vs philox " << m2;
}

TEST(CobraEngines, Mix64WordsLookUniform) {
  // Smoke statistics over the keyed word stream: 16-bin chi-square-style
  // bounds on uniform01 across many (vertex, word) pairs of one round.
  std::array<int, 16> bins{};
  int total = 0;
  for (std::uint32_t u = 0; u < 4096; ++u) {
    VertexDraws draws(DrawHash::kMix64, 0x1234ABCDu, u);
    for (int k = 0; k < 8; ++k) {
      const double x = draws.uniform01();
      ASSERT_GE(x, 0.0);
      ASSERT_LT(x, 1.0);
      bins[static_cast<std::size_t>(x * 16.0)]++;
      ++total;
    }
  }
  const double expected = total / 16.0;
  for (const int count : bins)
    EXPECT_NEAR(count, expected, 0.06 * expected);
}

TEST(CobraEngines, DrawHashParseAndNameRoundTrip) {
  EXPECT_STREQ(draw_hash_name(DrawHash::kDefault), "default");
  EXPECT_STREQ(draw_hash_name(DrawHash::kMix64), "mix64");
  EXPECT_STREQ(draw_hash_name(DrawHash::kPhilox), "philox");
  EXPECT_EQ(resolve_draw_hash(DrawHash::kDefault), DrawHash::kMix64);
  EXPECT_EQ(resolve_draw_hash(DrawHash::kPhilox), DrawHash::kPhilox);
  EXPECT_EQ(resolve_draw_hash(DrawHash::kMix64), DrawHash::kMix64);
}

TEST(CobraEngines, NeighborSamplerMatchesUniformDistribution) {
  const graph::Graph g = graph::path(4);  // degrees 1 and 2: two buckets
  const NeighborSampler sampler(g, 0.0);
  EXPECT_EQ(sampler.num_buckets(), 2u);
  rng::Rng rng = test_rng(8);
  std::map<graph::VertexId, int> counts;
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) counts[sampler.sample(1, rng.next_u64())]++;
  // Vertex 1's neighbours are 0 and 2, each with probability 1/2.
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.5, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.5, 0.02);
}

TEST(CobraEngines, NeighborSamplerHonoursLaziness) {
  const graph::Graph g = graph::cycle(6);
  const NeighborSampler sampler(g, 0.5);
  EXPECT_DOUBLE_EQ(sampler.laziness(), 0.5);
  rng::Rng rng = test_rng(9);
  const int kDraws = 60000;
  int self = 0, left = 0, right = 0;
  for (int i = 0; i < kDraws; ++i) {
    const graph::VertexId dest = sampler.sample(2, rng.next_u64());
    if (dest == 2) ++self;
    else if (dest == 1) ++left;
    else if (dest == 3) ++right;
    else FAIL() << "impossible destination " << dest;
  }
  EXPECT_NEAR(self / static_cast<double>(kDraws), 0.5, 0.02);
  EXPECT_NEAR(left / static_cast<double>(kDraws), 0.25, 0.02);
  EXPECT_NEAR(right / static_cast<double>(kDraws), 0.25, 0.02);
}

}  // namespace
}  // namespace cobra::core
