#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace cobra::util {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("COBRA_TEST_VAR");
    unsetenv("COBRA_SCALE");
    unsetenv("COBRA_THREADS");
  }
};

TEST_F(EnvTest, DoubleFallback) {
  unsetenv("COBRA_TEST_VAR");
  EXPECT_DOUBLE_EQ(env_double("COBRA_TEST_VAR", 2.5), 2.5);
  setenv("COBRA_TEST_VAR", "7.25", 1);
  EXPECT_DOUBLE_EQ(env_double("COBRA_TEST_VAR", 2.5), 7.25);
  setenv("COBRA_TEST_VAR", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(env_double("COBRA_TEST_VAR", 2.5), 2.5);
}

TEST_F(EnvTest, IntFallback) {
  unsetenv("COBRA_TEST_VAR");
  EXPECT_EQ(env_int("COBRA_TEST_VAR", 42), 42);
  setenv("COBRA_TEST_VAR", "-17", 1);
  EXPECT_EQ(env_int("COBRA_TEST_VAR", 42), -17);
}

TEST_F(EnvTest, StringFallback) {
  unsetenv("COBRA_TEST_VAR");
  EXPECT_EQ(env_string("COBRA_TEST_VAR", "dflt"), "dflt");
  setenv("COBRA_TEST_VAR", "value", 1);
  EXPECT_EQ(env_string("COBRA_TEST_VAR", "dflt"), "value");
}

TEST_F(EnvTest, ScaleIgnoresNonPositive) {
  setenv("COBRA_SCALE", "-3", 1);
  EXPECT_DOUBLE_EQ(scale(), 1.0);
  setenv("COBRA_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(scale(), 2.5);
}

TEST_F(EnvTest, ScaledAppliesMultiplierAndFloor) {
  setenv("COBRA_SCALE", "0.001", 1);
  EXPECT_EQ(scaled(100, 5), 5);
  setenv("COBRA_SCALE", "3", 1);
  EXPECT_EQ(scaled(100, 5), 300);
}

TEST_F(EnvTest, MaxThreadsAtLeastOne) {
  setenv("COBRA_THREADS", "0", 1);
  EXPECT_GE(max_threads(), 1);
  setenv("COBRA_THREADS", "4", 1);
  EXPECT_EQ(max_threads(), 4);
}

TEST_F(EnvTest, GlobalSeedDefault) {
  unsetenv("COBRA_SEED");
  EXPECT_EQ(global_seed(), 20170724ull);
}

}  // namespace
}  // namespace cobra::util
