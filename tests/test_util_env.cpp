#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/assert.hpp"

namespace cobra::util {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("COBRA_TEST_VAR");
    unsetenv("COBRA_SCALE");
    unsetenv("COBRA_THREADS");
    unsetenv("COBRA_SEED");
    unsetenv("COBRA_ENGINE");
    clear_env_overrides();
  }
};

TEST_F(EnvTest, DoubleFallback) {
  unsetenv("COBRA_TEST_VAR");
  EXPECT_DOUBLE_EQ(env_double("COBRA_TEST_VAR", 2.5), 2.5);
  setenv("COBRA_TEST_VAR", "7.25", 1);
  EXPECT_DOUBLE_EQ(env_double("COBRA_TEST_VAR", 2.5), 7.25);
  setenv("COBRA_TEST_VAR", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(env_double("COBRA_TEST_VAR", 2.5), 2.5);
}

TEST_F(EnvTest, IntFallback) {
  unsetenv("COBRA_TEST_VAR");
  EXPECT_EQ(env_int("COBRA_TEST_VAR", 42), 42);
  setenv("COBRA_TEST_VAR", "-17", 1);
  EXPECT_EQ(env_int("COBRA_TEST_VAR", 42), -17);
}

TEST_F(EnvTest, StringFallback) {
  unsetenv("COBRA_TEST_VAR");
  EXPECT_EQ(env_string("COBRA_TEST_VAR", "dflt"), "dflt");
  setenv("COBRA_TEST_VAR", "value", 1);
  EXPECT_EQ(env_string("COBRA_TEST_VAR", "dflt"), "value");
}

TEST_F(EnvTest, ScaleIgnoresNonPositive) {
  setenv("COBRA_SCALE", "-3", 1);
  EXPECT_DOUBLE_EQ(scale(), 1.0);
  setenv("COBRA_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(scale(), 2.5);
}

TEST_F(EnvTest, ScaledAppliesMultiplierAndFloor) {
  setenv("COBRA_SCALE", "0.001", 1);
  EXPECT_EQ(scaled(100, 5), 5);
  setenv("COBRA_SCALE", "3", 1);
  EXPECT_EQ(scaled(100, 5), 300);
}

TEST_F(EnvTest, MaxThreadsAtLeastOne) {
  setenv("COBRA_THREADS", "0", 1);
  EXPECT_GE(max_threads(), 1);
  setenv("COBRA_THREADS", "4", 1);
  EXPECT_EQ(max_threads(), 4);
}

TEST_F(EnvTest, GlobalSeedDefault) {
  unsetenv("COBRA_SEED");
  EXPECT_EQ(global_seed(), 20170724ull);
}

TEST_F(EnvTest, EngineDefaultsToAuto) {
  unsetenv("COBRA_ENGINE");
  EXPECT_EQ(engine(), "auto");
  setenv("COBRA_ENGINE", "reference", 1);
  EXPECT_EQ(engine(), "reference");
}

TEST_F(EnvTest, EngineOverrideShadowsEnvironment) {
  setenv("COBRA_ENGINE", "sparse", 1);
  set_engine_override("dense");
  EXPECT_EQ(engine(), "dense");
  clear_env_overrides();
  EXPECT_EQ(engine(), "sparse");
  EXPECT_THROW(set_engine_override(""), CheckError);
}

TEST_F(EnvTest, OverridesShadowEnvironmentUntilCleared) {
  setenv("COBRA_SCALE", "2.0", 1);
  setenv("COBRA_SEED", "111", 1);
  setenv("COBRA_THREADS", "3", 1);

  set_scale_override(0.5);
  set_seed_override(222);
  set_threads_override(7);
  EXPECT_DOUBLE_EQ(scale(), 0.5);
  EXPECT_EQ(scaled(100, 1), 50);
  EXPECT_EQ(global_seed(), 222ull);
  EXPECT_EQ(max_threads(), 7);

  clear_env_overrides();
  EXPECT_DOUBLE_EQ(scale(), 2.0);
  EXPECT_EQ(global_seed(), 111ull);
  EXPECT_EQ(max_threads(), 3);
}

TEST_F(EnvTest, OverrideValidation) {
  EXPECT_THROW(set_scale_override(0.0), CheckError);
  EXPECT_THROW(set_scale_override(-1.0), CheckError);
  set_threads_override(100000);  // clamped like the env path
  EXPECT_EQ(max_threads(), 1024);
  set_threads_override(-5);
  EXPECT_EQ(max_threads(), 1);
}

}  // namespace
}  // namespace cobra::util
