#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cobra::util {
namespace {

TEST(Bitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
  EXPECT_FALSE(b.all());
}

TEST(Bitset, SetTestReset) {
  DynamicBitset b(130);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, SetAndTestReportsFirstSet) {
  DynamicBitset b(10);
  EXPECT_TRUE(b.set_and_test(3));   // was clear
  EXPECT_FALSE(b.set_and_test(3));  // already set
  EXPECT_TRUE(b.test(3));
}

TEST(Bitset, ConstructedAllOnesRespectsSize) {
  DynamicBitset b(70, true);
  EXPECT_EQ(b.count(), 70u);
  EXPECT_TRUE(b.all());
}

TEST(Bitset, SetAllAndResetAll) {
  DynamicBitset b(65);
  b.set_all();
  EXPECT_EQ(b.count(), 65u);
  EXPECT_TRUE(b.all());
  b.reset_all();
  EXPECT_TRUE(b.none());
}

TEST(Bitset, FindFirstAndNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(5);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_next(5), 64u);
  EXPECT_EQ(b.find_next(64), 199u);
  EXPECT_EQ(b.find_next(199), 200u);
}

TEST(Bitset, IterationVisitsAllSetBits) {
  DynamicBitset b(500);
  const std::vector<std::size_t> expected = {0, 1, 63, 64, 65, 127, 128, 311,
                                             499};
  for (const std::size_t i : expected) b.set(i);
  std::vector<std::size_t> seen;
  for (std::size_t i = b.find_first(); i < b.size(); i = b.find_next(i))
    seen.push_back(i);
  EXPECT_EQ(seen, expected);
}

TEST(Bitset, Intersects) {
  DynamicBitset a(100), b(100);
  a.set(10);
  b.set(11);
  EXPECT_FALSE(a.intersects(b));
  b.set(10);
  EXPECT_TRUE(a.intersects(b));
}

TEST(Bitset, BitwiseOps) {
  DynamicBitset a(66), b(66);
  a.set(0);
  a.set(65);
  b.set(1);
  b.set(65);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(65));
  DynamicBitset x = a;
  x ^= b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(0));
  EXPECT_TRUE(x.test(1));
}

TEST(Bitset, MismatchedSizesThrow) {
  DynamicBitset a(10), b(11);
  EXPECT_THROW(a |= b, CheckError);
}

TEST(Bitset, EqualityIncludesSize) {
  DynamicBitset a(10), b(10), c(11);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  a.set(3);
  EXPECT_FALSE(a == b);
  b.set(3);
  EXPECT_TRUE(a == b);
}

TEST(Bitset, ZeroSized) {
  DynamicBitset b(0);
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.find_first(), 0u);
}

}  // namespace
}  // namespace cobra::util
