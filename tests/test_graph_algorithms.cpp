#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace cobra::graph {
namespace {

TEST(BfsDistances, PathDistances) {
  const Graph g = path(6);
  const auto dist = bfs_distances(g, 0);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsDistances, HypercubeIsHamming) {
  const Graph g = hypercube(5);
  const auto dist = bfs_distances(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(dist[v], static_cast<std::uint32_t>(std::popcount(v)));
}

TEST(BfsDistances, UnreachableMarked) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Connectivity, DetectsDisconnection) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(count_components(g), 2u);
  EXPECT_TRUE(is_connected(cycle(5)));
  EXPECT_EQ(count_components(cycle(5)), 1u);
}

TEST(Connectivity, SingletonComponentsCounted) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  EXPECT_EQ(count_components(g), 4u);  // {0,1}, {2}, {3}, {4}
}

TEST(Bipartite, KnownFamilies) {
  EXPECT_TRUE(is_bipartite(cycle(8)));
  EXPECT_FALSE(is_bipartite(cycle(7)));
  EXPECT_TRUE(is_bipartite(hypercube(3)));
  EXPECT_TRUE(is_bipartite(path(5)));
  EXPECT_TRUE(is_bipartite(star(6)));
  EXPECT_TRUE(is_bipartite(complete_bipartite(3, 5)));
  EXPECT_FALSE(is_bipartite(complete(4)));
  EXPECT_FALSE(is_bipartite(petersen()));
  EXPECT_TRUE(is_bipartite(binary_tree(10)));
}

TEST(Eccentricity, CycleAndStar) {
  EXPECT_EQ(*eccentricity(cycle(10), 0), 5u);
  EXPECT_EQ(*eccentricity(star(8), 0), 1u);   // centre
  EXPECT_EQ(*eccentricity(star(8), 3), 2u);   // leaf
}

TEST(Eccentricity, DisconnectedReturnsNullopt) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  EXPECT_FALSE(eccentricity(g, 0).has_value());
}

TEST(ExactDiameter, KnownValues) {
  EXPECT_EQ(*exact_diameter(complete(9)), 1u);
  EXPECT_EQ(*exact_diameter(path(12)), 11u);
  EXPECT_EQ(*exact_diameter(cycle(12)), 6u);
  EXPECT_EQ(*exact_diameter(hypercube(6)), 6u);
  EXPECT_EQ(*exact_diameter(star(20)), 2u);
  EXPECT_EQ(*exact_diameter(petersen()), 2u);
}

TEST(ExactDiameter, RefusesOverBudget) {
  const Graph g = cycle(100);
  EXPECT_FALSE(exact_diameter(g, /*work_limit=*/10).has_value());
}

TEST(PseudoDiameter, LowerBoundsExact) {
  for (const Graph& g :
       {cycle(30), path(30), star(30), hypercube(4), petersen()}) {
    const auto exact = exact_diameter(g);
    ASSERT_TRUE(exact.has_value());
    const auto pseudo = pseudo_diameter(g);
    EXPECT_LE(pseudo, *exact);
    EXPECT_GE(pseudo, *exact / 2);  // double sweep is 2-approximate
  }
}

TEST(PseudoDiameter, ExactOnTreesAndPaths) {
  EXPECT_EQ(pseudo_diameter(path(40)), 39u);
  EXPECT_EQ(pseudo_diameter(binary_tree(31)), 8u);
}

TEST(DiameterEstimate, UsesExactWhenAffordable) {
  const auto est = diameter_estimate(cycle(50));
  EXPECT_TRUE(est.exact);
  EXPECT_EQ(est.value, 25u);
}

TEST(DegreeStats, Values) {
  const auto s = degree_stats(star(5));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 5.0);
}

}  // namespace
}  // namespace cobra::graph
