// The cross-thread-count equivalence wall for in-round kernel
// parallelism (core/frontier_kernel.hpp): at a fixed seed, every
// observable of every frontier-kernel process is bit-for-bit identical
// at every kernel_threads setting — the lane count partitions work, it
// never partitions randomness. Checked here for COBRA, BIPS and the
// set-protocol baselines across the sparse/dense/auto engines, on
// fixtures that include the degenerate single-vertex graph, a graph
// whose bitset straddles a word boundary (n = 65), and a graph ingested
// from a .cgr file — the path production sweeps take.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/flooding.hpp"
#include "baselines/pull_gossip.hpp"
#include "baselines/push_gossip.hpp"
#include "core/bips.hpp"
#include "core/cobra.hpp"
#include "core/frontier_kernel.hpp"
#include "graph/binary_io.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "graph/spec.hpp"
#include "rng/stream.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace cobra::core {
namespace {

constexpr int kLaneCounts[] = {2, 3, 8};
constexpr Engine kFastEngines[] = {Engine::kSparse, Engine::kDense,
                                   Engine::kAuto};

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::vector<graph::Graph> fixture_graphs() {
  rng::Rng gen = rng::make_stream(7117, 0);
  std::vector<graph::Graph> graphs;
  {
    graph::GraphBuilder b(1);  // the degenerate n = 1 edge case
    graphs.push_back(std::move(b).build());
  }
  // 65 vertices: the frontier bitset spills one bit into a second word,
  // so every word-range partition has a ragged tail to get right.
  graphs.push_back(graph::cycle(65));
  graphs.push_back(graph::hypercube(7));
  graphs.push_back(graph::connected_random_regular(192, 6, gen));
  return graphs;
}

std::vector<graph::VertexId> sorted_active(const CobraProcess& p) {
  std::vector<graph::VertexId> v = p.active();
  std::sort(v.begin(), v.end());
  return v;
}

/// Lockstep bit-for-bit comparison of a serial process against a
/// lane-parallel one: every observable must agree every round.
void expect_cobra_lockstep(CobraProcess& serial, CobraProcess& lanes,
                           std::uint64_t seed, int max_rounds) {
  rng::Rng rng_a = rng::make_stream(seed, 0);
  rng::Rng rng_b = rng::make_stream(seed, 0);
  serial.reset(graph::VertexId{0});
  lanes.reset(graph::VertexId{0});
  for (int t = 0; t < max_rounds && !serial.all_visited(); ++t) {
    ASSERT_EQ(serial.step(rng_a), lanes.step(rng_b)) << "round " << t;
    ASSERT_EQ(serial.num_active(), lanes.num_active()) << "round " << t;
    ASSERT_EQ(serial.num_visited(), lanes.num_visited()) << "round " << t;
    ASSERT_EQ(serial.transmissions(), lanes.transmissions())
        << "round " << t;
    ASSERT_EQ(sorted_active(serial), sorted_active(lanes)) << "round " << t;
    for (graph::VertexId u = 0; u < serial.graph().num_vertices(); ++u) {
      ASSERT_EQ(serial.is_visited(u), lanes.is_visited(u)) << "round " << t;
      ASSERT_EQ(serial.is_active(u), lanes.is_active(u)) << "round " << t;
    }
  }
  EXPECT_EQ(serial.round(), lanes.round());
  EXPECT_EQ(serial.all_visited(), lanes.all_visited());
}

void expect_cobra_thread_invariant(const graph::Graph& g,
                                   ProcessOptions base,
                                   std::uint64_t seed) {
  ProcessOptions serial_opt = base;
  serial_opt.kernel_threads = 1;
  for (const int threads : kLaneCounts) {
    ProcessOptions lane_opt = base;
    lane_opt.kernel_threads = threads;
    CobraProcess serial(g, serial_opt);
    CobraProcess lanes(g, lane_opt);
    ASSERT_EQ(lanes.kernel_threads(), threads);
    expect_cobra_lockstep(serial, lanes, seed, 5000);
  }
}

TEST(KernelParallel, CobraBitForBitAcrossThreadCountsOnEveryEngine) {
  for (const graph::Graph& g : fixture_graphs()) {
    for (const Engine engine : kFastEngines) {
      ProcessOptions opt;
      opt.engine = engine;
      expect_cobra_thread_invariant(g, opt, 9100 + g.num_vertices());
    }
  }
}

TEST(KernelParallel, CobraThreadInvariantWithLazinessAndBranching) {
  const graph::Graph g = graph::hypercube(6);
  ProcessOptions opt;
  opt.engine = Engine::kDense;
  opt.laziness = 0.5;
  opt.branching = Branching::one_plus_rho(0.3);
  expect_cobra_thread_invariant(g, opt, 4711);
}

TEST(KernelParallel, CobraThreadInvariantUnderEitherDrawHash) {
  const graph::Graph g = graph::hypercube(6);
  for (const DrawHash hash : {DrawHash::kMix64, DrawHash::kPhilox}) {
    ProcessOptions opt;
    opt.engine = Engine::kAuto;
    opt.draw_hash = hash;
    expect_cobra_thread_invariant(g, opt, 2222);
  }
}

TEST(KernelParallel, CobraThreadInvariantOnIngestedGraph) {
  // The production path: a generated graph round-tripped through the
  // .cgr container and reloaded through the file: spec (mmap backend).
  const TempFile f("test_kernel_parallel_ingest.cgr");
  graph::write_cgr_file(graph::build_graph_spec("regular_128_r4"), f.path);
  const graph::Graph g = graph::build_graph_spec("file:" + f.path);
  for (const Engine engine : kFastEngines) {
    ProcessOptions opt;
    opt.engine = engine;
    expect_cobra_thread_invariant(g, opt, 31337);
  }
}

std::vector<graph::VertexId> sorted_infected(const BipsProcess& p) {
  std::vector<graph::VertexId> v = p.infected();
  std::sort(v.begin(), v.end());
  return v;
}

void expect_bips_lockstep(BipsProcess& serial, BipsProcess& lanes,
                          std::uint64_t seed, int max_rounds) {
  rng::Rng rng_a = rng::make_stream(seed, 0);
  rng::Rng rng_b = rng::make_stream(seed, 0);
  serial.reset(graph::VertexId{0});
  lanes.reset(graph::VertexId{0});
  for (int t = 0; t < max_rounds && !serial.fully_infected(); ++t) {
    ASSERT_EQ(serial.step(rng_a), lanes.step(rng_b)) << "round " << t;
    ASSERT_EQ(sorted_infected(serial), sorted_infected(lanes))
        << "round " << t;
    for (graph::VertexId u = 0; u < serial.graph().num_vertices(); ++u)
      ASSERT_EQ(serial.is_infected(u), lanes.is_infected(u))
          << "round " << t;
  }
  EXPECT_EQ(serial.round(), lanes.round());
  EXPECT_EQ(serial.fully_infected(), lanes.fully_infected());
}

TEST(KernelParallel, BipsBitForBitAcrossThreadCountsOnEveryEngine) {
  for (const graph::Graph& g : fixture_graphs()) {
    if (g.num_vertices() < 2) continue;  // BIPS needs min degree >= 1
    for (const Engine engine : kFastEngines) {
      for (const int threads : kLaneCounts) {
        BipsOptions serial_opt;
        serial_opt.process.engine = engine;
        serial_opt.process.kernel_threads = 1;
        BipsOptions lane_opt = serial_opt;
        lane_opt.process.kernel_threads = threads;
        BipsProcess serial(g, 0, serial_opt);
        BipsProcess lanes(g, 0, lane_opt);
        expect_bips_lockstep(serial, lanes, 5500 + g.num_vertices(), 5000);
      }
    }
  }
}

TEST(KernelParallel, BipsThreadInvariantWithLaziness) {
  // Laziness exercises the dense boundary-marking round's "self already
  // infected" determination, which runs through the marked local scan.
  const graph::Graph g = graph::hypercube(6);
  for (const int threads : kLaneCounts) {
    BipsOptions serial_opt;
    serial_opt.process.engine = Engine::kDense;
    serial_opt.process.laziness = 0.5;
    serial_opt.process.kernel_threads = 1;
    BipsOptions lane_opt = serial_opt;
    lane_opt.process.kernel_threads = threads;
    BipsProcess serial(g, 0, serial_opt);
    BipsProcess lanes(g, 0, lane_opt);
    expect_bips_lockstep(serial, lanes, 616, 5000);
  }
}

template <typename Result>
void expect_same_result(const Result& a, const Result& b,
                        const char* what) {
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.transmissions, b.transmissions) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
}

TEST(KernelParallel, FloodingBitForBitAcrossThreadCounts) {
  for (const graph::Graph& g : fixture_graphs()) {
    for (const Engine engine : kFastEngines) {
      baselines::BaselineOptions serial_opt;
      serial_opt.engine = engine;
      serial_opt.kernel_threads = 1;
      const auto serial = baselines::flooding_cover(g, 0, 10000, serial_opt);
      for (const int threads : kLaneCounts) {
        baselines::BaselineOptions lane_opt = serial_opt;
        lane_opt.kernel_threads = threads;
        const auto lanes = baselines::flooding_cover(g, 0, 10000, lane_opt);
        expect_same_result(serial, lanes, g.name().c_str());
      }
    }
  }
}

TEST(KernelParallel, PushGossipBitForBitAcrossThreadCounts) {
  for (const graph::Graph& g : fixture_graphs()) {
    if (g.num_vertices() < 2) continue;  // gossip needs min degree >= 1
    for (const Engine engine : kFastEngines) {
      baselines::BaselineOptions serial_opt;
      serial_opt.engine = engine;
      serial_opt.kernel_threads = 1;
      rng::Rng rng_a = rng::make_stream(8118, g.num_vertices());
      const auto serial =
          baselines::push_gossip_cover(g, 0, rng_a, 100000, serial_opt);
      ASSERT_TRUE(serial.completed) << g.name();
      for (const int threads : kLaneCounts) {
        baselines::BaselineOptions lane_opt = serial_opt;
        lane_opt.kernel_threads = threads;
        rng::Rng rng_b = rng::make_stream(8118, g.num_vertices());
        const auto lanes =
            baselines::push_gossip_cover(g, 0, rng_b, 100000, lane_opt);
        expect_same_result(serial, lanes, g.name().c_str());
      }
    }
  }
}

TEST(KernelParallel, PullAndPushPullGossipBitForBitAcrossThreadCounts) {
  for (const graph::Graph& g : fixture_graphs()) {
    if (g.num_vertices() < 2) continue;
    for (const Engine engine : {Engine::kDense, Engine::kAuto}) {
      baselines::BaselineOptions serial_opt;
      serial_opt.engine = engine;
      serial_opt.kernel_threads = 1;
      rng::Rng pull_a = rng::make_stream(414, g.num_vertices());
      const auto pull_serial =
          baselines::pull_gossip_cover(g, 0, pull_a, 100000, serial_opt);
      rng::Rng pp_a = rng::make_stream(515, g.num_vertices());
      const auto pp_serial = baselines::push_pull_gossip_cover(
          g, 0, pp_a, 100000, serial_opt);
      for (const int threads : kLaneCounts) {
        baselines::BaselineOptions lane_opt = serial_opt;
        lane_opt.kernel_threads = threads;
        rng::Rng pull_b = rng::make_stream(414, g.num_vertices());
        expect_same_result(
            pull_serial,
            baselines::pull_gossip_cover(g, 0, pull_b, 100000, lane_opt),
            g.name().c_str());
        rng::Rng pp_b = rng::make_stream(515, g.num_vertices());
        expect_same_result(pp_serial,
                           baselines::push_pull_gossip_cover(
                               g, 0, pp_b, 100000, lane_opt),
                           g.name().c_str());
      }
    }
  }
}

TEST(KernelParallel, KernelThreadsResolvesFromSession) {
  util::clear_env_overrides();
  EXPECT_EQ(resolve_kernel_threads(0), 1);  // session default is serial
  util::set_kernel_threads_override(4);
  EXPECT_EQ(resolve_kernel_threads(0), 4);
  // An explicit option always wins over the session setting.
  EXPECT_EQ(resolve_kernel_threads(2), 2);
  util::clear_env_overrides();

  // The resolved count reaches the kernel through every process type.
  const graph::Graph g = graph::cycle(8);
  ProcessOptions opt;
  opt.kernel_threads = 3;
  EXPECT_EQ(CobraProcess(g, opt).kernel_threads(), 3);
  util::set_kernel_threads_override(2);
  EXPECT_EQ(CobraProcess(g).kernel_threads(), 2);
  util::clear_env_overrides();
  EXPECT_EQ(CobraProcess(g).kernel_threads(), 1);
}

TEST(KernelParallel, MoreLanesThanWordsOrVerticesIsSafe) {
  // 8 lanes against a 1-word bitset / a 2-vertex frontier: the partition
  // degenerates to fewer (non-empty) ranges and the results still match.
  const graph::Graph g = graph::path(2);
  for (const Engine engine : kFastEngines) {
    ProcessOptions opt;
    opt.engine = engine;
    expect_cobra_thread_invariant(g, opt, 77);
  }
}

}  // namespace
}  // namespace cobra::core
