#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace cobra::graph {
namespace {

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), util::CheckError);
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), util::CheckError);
  EXPECT_THROW(b.add_edge(7, 0), util::CheckError);
}

TEST(GraphBuilder, RejectsDuplicateByDefault) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // same undirected edge
  EXPECT_THROW(std::move(b).build(), util::CheckError);
}

TEST(GraphBuilder, DeduplicatePolicyKeepsOneCopy) {
  GraphBuilder b(3, DuplicatePolicy::kDeduplicate);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(1, 2);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(GraphBuilder, BuildsCorrectCsr) {
  GraphBuilder b(5);
  b.add_edge(4, 0);
  b.add_edge(2, 1);
  b.add_edge(0, 2);
  const Graph g = std::move(b).build("test");
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_EQ(g.min_degree(), 0u);
}

TEST(GraphBuilder, EdgeCountTracking) {
  GraphBuilder b(10);
  EXPECT_EQ(b.num_edges_added(), 0u);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_EQ(b.num_edges_added(), 2u);
}

TEST(GraphBuilder, IsolatedVerticesAllowedAtBuildLevel) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.degree(2), 0u);
}

}  // namespace
}  // namespace cobra::graph
