#include <gtest/gtest.h>

#include <cmath>

#include "baselines/multi_walk.hpp"
#include "baselines/push_gossip.hpp"
#include "baselines/random_walk.hpp"
#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "sim/stats.hpp"

namespace cobra::baselines {
namespace {

TEST(RandomWalk, CoverCompleteMatchesCouponCollector) {
  // E[cover(K_n)] = (n-1) H_{n-1}; check the sample mean.
  const graph::Graph g = graph::complete(32);
  constexpr int kReps = 600;
  std::vector<double> times;
  for (int rep = 0; rep < kReps; ++rep) {
    auto rng = rng::make_stream(111, static_cast<std::uint64_t>(rep));
    const auto r = random_walk_cover(g, 0, rng, 1u << 22);
    ASSERT_TRUE(r.completed);
    times.push_back(static_cast<double>(r.steps));
  }
  const double expected = expected_cover_complete(32);
  const double se = std::sqrt(sim::variance(times) / kReps);
  EXPECT_NEAR(sim::mean(times), expected, 5 * se);
}

TEST(RandomWalk, CoverCycleMatchesClosedForm) {
  // E[cover(C_n)] = n(n-1)/2.
  const graph::Graph g = graph::cycle(24);
  constexpr int kReps = 600;
  std::vector<double> times;
  for (int rep = 0; rep < kReps; ++rep) {
    auto rng = rng::make_stream(112, static_cast<std::uint64_t>(rep));
    const auto r = random_walk_cover(g, 0, rng, 1u << 22);
    ASSERT_TRUE(r.completed);
    times.push_back(static_cast<double>(r.steps));
  }
  const double expected = expected_cover_cycle(24);
  const double se = std::sqrt(sim::variance(times) / kReps);
  EXPECT_NEAR(sim::mean(times), expected, 5 * se);
}

TEST(RandomWalk, HitSelfIsZero) {
  const graph::Graph g = graph::cycle(8);
  auto rng = rng::make_stream(113, 0);
  const auto r = random_walk_hit(g, 3, 3, rng, 100);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps, 0u);
}

TEST(RandomWalk, TimeoutReported) {
  const graph::Graph g = graph::cycle(64);
  auto rng = rng::make_stream(114, 0);
  const auto r = random_walk_cover(g, 0, rng, 10);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.steps, 10u);
}

TEST(MultiWalk, OneWalkBehavesLikeRandomWalk) {
  const graph::Graph g = graph::cycle(16);
  constexpr int kReps = 300;
  std::vector<double> single, multi;
  for (int rep = 0; rep < kReps; ++rep) {
    auto rng1 = rng::make_stream(115, static_cast<std::uint64_t>(rep));
    single.push_back(static_cast<double>(
        random_walk_cover(g, 0, rng1, 1u << 22).steps));
    auto rng2 = rng::make_stream(116, static_cast<std::uint64_t>(rep));
    multi.push_back(static_cast<double>(
        multi_walk_cover(g, 0, 1, rng2, 1u << 22).rounds));
  }
  const double se = std::sqrt(sim::variance(single) / kReps +
                              sim::variance(multi) / kReps);
  EXPECT_LT(std::fabs(sim::mean(single) - sim::mean(multi)), 5 * se);
}

TEST(MultiWalk, MoreWalkersCoverFaster) {
  const graph::Graph g = graph::cycle(32);
  constexpr int kReps = 100;
  auto mean_rounds = [&](std::uint32_t k, std::uint64_t seed) {
    std::vector<double> times;
    for (int rep = 0; rep < kReps; ++rep) {
      auto rng = rng::make_stream(seed, static_cast<std::uint64_t>(rep));
      times.push_back(static_cast<double>(
          multi_walk_cover(g, 0, k, rng, 1u << 22).rounds));
    }
    return sim::mean(times);
  };
  EXPECT_LT(mean_rounds(8, 117), mean_rounds(1, 118));
}

TEST(MultiWalk, TransmissionsAreKPerRound) {
  const graph::Graph g = graph::complete(8);
  auto rng = rng::make_stream(119, 0);
  const auto r = multi_walk_cover(g, 0, 5, rng, 1u << 20);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.transmissions, 5 * r.rounds);
}

TEST(PushGossip, CoversCompleteGraphInLogRounds) {
  const graph::Graph g = graph::complete(256);
  constexpr int kReps = 50;
  for (int rep = 0; rep < kReps; ++rep) {
    auto rng = rng::make_stream(120, static_cast<std::uint64_t>(rep));
    const auto r = push_gossip_cover(g, 0, rng, 1000);
    ASSERT_TRUE(r.completed);
    // Rumour spreading on K_n takes ~ log2 n + ln n ~ 13.5 rounds; allow 3x.
    EXPECT_LE(r.rounds, 42u);
    EXPECT_GE(r.rounds, 8u);  // needs at least log2 n rounds
  }
}

TEST(PushGossip, InformedSetNeverShrinksAndTransmitsEachRound) {
  const graph::Graph g = graph::cycle(32);
  auto rng = rng::make_stream(121, 0);
  const auto r = push_gossip_cover(g, 0, rng, 1u << 20);
  EXPECT_TRUE(r.completed);
  // Transmissions = sum of informed-set sizes >= rounds (one sender min).
  EXPECT_GE(r.transmissions, r.rounds);
}

}  // namespace
}  // namespace cobra::baselines
