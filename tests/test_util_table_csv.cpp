#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace cobra::util {
namespace {

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(12.5, 2), "12.5");
  EXPECT_EQ(format_double(3.0, 2), "3");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(0.1254, 3), "0.125");
  EXPECT_EQ(format_double(-1.50, 2), "-1.5");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().add("alpha").add(std::int64_t{1});
  t.row().add("b").add(std::int64_t{12345});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"a", "b"});
  t.row().add("1").add("2");
  EXPECT_THROW(t.add("3"), CheckError);
}

TEST(Table, RejectsAddBeforeRow) {
  Table t({"a"});
  EXPECT_THROW(t.add("x"), CheckError);
}

TEST(Table, ShortRowsRenderBlank) {
  Table t({"a", "b", "c"});
  t.row().add("only");
  EXPECT_NO_THROW(t.to_string());
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "test_output_csv_writer.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.row().add(std::int64_t{1}).add(2.5);
    w.row().add(std::string("a,b")).add(std::int64_t{3});
    w.close();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"a,b\",3");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsOverfullRow) {
  const std::string path = "test_output_csv_overfull.csv";
  CsvWriter w(path, {"only"});
  w.row().add("x");
  EXPECT_THROW(w.add("y"), CheckError);
  w.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cobra::util
