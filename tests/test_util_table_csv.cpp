#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace cobra::util {
namespace {

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(12.5, 2), "12.5");
  EXPECT_EQ(format_double(3.0, 2), "3");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(0.1254, 3), "0.125");
  EXPECT_EQ(format_double(-1.50, 2), "-1.5");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().add("alpha").add(std::int64_t{1});
  t.row().add("b").add(std::int64_t{12345});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"a", "b"});
  t.row().add("1").add("2");
  EXPECT_THROW(t.add("3"), CheckError);
}

TEST(Table, RejectsAddBeforeRow) {
  Table t({"a"});
  EXPECT_THROW(t.add("x"), CheckError);
}

TEST(Table, ShortRowsRenderBlank) {
  Table t({"a", "b", "c"});
  t.row().add("only");
  EXPECT_NO_THROW(t.to_string());
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "test_output_csv_writer.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.row().add(std::int64_t{1}).add(2.5);
    w.row().add(std::string("a,b")).add(std::int64_t{3});
    w.close();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"a,b\",3");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsOverfullRow) {
  const std::string path = "test_output_csv_overfull.csv";
  CsvWriter w(path, {"only"});
  w.row().add("x");
  EXPECT_THROW(w.add("y"), CheckError);
  w.close();
  std::remove(path.c_str());
}

TEST(CsvWriter, AppendModeContinuesAnExistingArchive) {
  const std::string path = "test_output_csv_append.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.row().add(std::int64_t{1}).add(std::int64_t{2});
    w.close();
  }
  {
    // Reopen: header must not be duplicated, old rows must survive.
    CsvWriter w(path, {"x", "y"}, CsvWriter::Mode::kAppend);
    w.row().add(std::int64_t{3}).add(std::int64_t{4});
    w.close();
  }
  const CsvTable table = read_csv(path);
  EXPECT_EQ(table.header, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(table.rows[1], (std::vector<std::string>{"3", "4"}));
  std::remove(path.c_str());
}

TEST(CsvWriter, AppendModeStartsFreshFilesWithAHeader) {
  const std::string path = "test_output_csv_append_fresh.csv";
  std::remove(path.c_str());
  {
    CsvWriter w(path, {"a"}, CsvWriter::Mode::kAppend);
    w.row().add("v");
    w.close();
  }
  const CsvTable table = read_csv(path);
  EXPECT_EQ(table.header, (std::vector<std::string>{"a"}));
  EXPECT_EQ(table.num_rows(), 1u);
  std::remove(path.c_str());
}

TEST(CsvWriter, AppendModeRejectsHeaderMismatch) {
  const std::string path = "test_output_csv_append_mismatch.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.close();
  }
  EXPECT_THROW(CsvWriter(path, {"x", "z"}, CsvWriter::Mode::kAppend),
               CheckError);
  std::remove(path.c_str());
}

TEST(CsvWriter, TruncateModeStillTruncates) {
  const std::string path = "test_output_csv_trunc.csv";
  {
    CsvWriter w(path, {"x"});
    w.row().add("old");
    w.close();
  }
  {
    CsvWriter w(path, {"x"});
    w.row().add("new");
    w.close();
  }
  const CsvTable table = read_csv(path);
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.rows[0][0], "new");
  std::remove(path.c_str());
}

TEST(CsvWriter, AddRowWritesPreformattedCells) {
  const std::string path = "test_output_csv_addrow.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.add_row({"a,b", "2"});
    w.close();
  }
  const CsvTable table = read_csv(path);
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{"a,b", "2"}));
  std::remove(path.c_str());
}

TEST(CsvParse, RoundTripsQuotedFields) {
  const std::string text =
      "graph,note\n"
      "\"with,comma\",plain\n"
      "\"with\"\"quote\",\"line\nbreak\"\n";
  const CsvTable table = parse_csv(text);
  EXPECT_EQ(table.header, (std::vector<std::string>{"graph", "note"}));
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.rows[0],
            (std::vector<std::string>{"with,comma", "plain"}));
  EXPECT_EQ(table.rows[1],
            (std::vector<std::string>{"with\"quote", "line\nbreak"}));
}

TEST(CsvParse, HandlesEdgeShapes) {
  EXPECT_TRUE(parse_csv("").header.empty());
  EXPECT_EQ(parse_csv("a,b").header,
            (std::vector<std::string>{"a", "b"}));  // no trailing newline
  const CsvTable empties = parse_csv("a,b\n,\n");
  ASSERT_EQ(empties.num_rows(), 1u);
  EXPECT_EQ(empties.rows[0], (std::vector<std::string>{"", ""}));
  const CsvTable crlf = parse_csv("a\r\n1\r\n");
  EXPECT_EQ(crlf.header, (std::vector<std::string>{"a"}));
  ASSERT_EQ(crlf.num_rows(), 1u);
  EXPECT_EQ(crlf.rows[0][0], "1");
  EXPECT_THROW(parse_csv("a\n\"unterminated"), CheckError);
}

TEST(CsvParse, ColumnLookupAndNumbers) {
  const CsvTable table = parse_csv("name,value\na,1.5\nb,2.5\n");
  EXPECT_EQ(table.column("value"), 1u);
  EXPECT_THROW(static_cast<void>(table.column("missing")), CheckError);
  EXPECT_EQ(table.numeric_column("value"),
            (std::vector<double>{1.5, 2.5}));
  EXPECT_DOUBLE_EQ(csv_number("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(csv_number("junk"), 0.0);
}

TEST(CsvRead, MissingFileThrows) {
  EXPECT_THROW(read_csv("no_such_dir/no_such_file.csv"), CheckError);
}

}  // namespace
}  // namespace cobra::util
