#include "spectral/mixing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spectral/dense.hpp"
#include "spectral/spectral.hpp"
#include "util/assert.hpp"

namespace cobra::spectral {
namespace {

TEST(Mixing, RelaxationTime) {
  EXPECT_DOUBLE_EQ(relaxation_time(0.5), 2.0);
  EXPECT_DOUBLE_EQ(relaxation_time(0.0), 1.0);
  EXPECT_THROW(relaxation_time(1.0), util::CheckError);
}

TEST(Mixing, DistributionStepPreservesMass) {
  const graph::Graph g = graph::petersen();
  std::vector<double> x(10, 0.0), next;
  x[3] = 1.0;
  walk_distribution_step(g, x, next, 0.5);
  double total = 0.0;
  for (const double v : next) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Lazy walk keeps half the mass in place.
  EXPECT_NEAR(next[3], 0.5, 1e-12);
}

TEST(Mixing, StationaryIsFixedPoint) {
  const graph::Graph g = graph::star(6);
  const double two_m = static_cast<double>(g.degree_sum());
  std::vector<double> pi(g.num_vertices()), next;
  for (graph::VertexId u = 0; u < g.num_vertices(); ++u)
    pi[u] = static_cast<double>(g.degree(u)) / two_m;
  walk_distribution_step(g, pi, next, 0.0);
  for (graph::VertexId u = 0; u < g.num_vertices(); ++u)
    EXPECT_NEAR(next[u], pi[u], 1e-12);
  EXPECT_NEAR(tv_distance_to_stationary(g, pi), 0.0, 1e-12);
}

TEST(Mixing, TvDistanceOfPointMass) {
  const graph::Graph g = graph::cycle(4);  // pi uniform = 1/4
  std::vector<double> x(4, 0.0);
  x[0] = 1.0;
  EXPECT_NEAR(tv_distance_to_stationary(g, x), 0.75, 1e-12);
}

TEST(Mixing, CompleteGraphMixesInstantly) {
  const graph::Graph g = graph::complete(64);
  // After one non-lazy step from a vertex the distribution is uniform on
  // the other 63 vertices: TV = 1/64-ish; with eps 0.25 that's mixed at t=1.
  EXPECT_LE(exact_mixing_time(g, 0, 0.25, 0.0), 1u);
}

TEST(Mixing, CycleMixesSlowly) {
  const auto t_small = exact_mixing_time(graph::cycle(16), 0);
  const auto t_large = exact_mixing_time(graph::cycle(64), 0);
  // Theta(n^2) scaling: 4x the size => ~16x the time; demand >= 8x.
  EXPECT_GE(t_large, 8 * t_small);
}

TEST(Mixing, SpectralBoundDominatesExact) {
  // t_mix(eps) <= t_rel ln(1/(eps pi_min)) for reversible lazy chains.
  for (const graph::Graph& g :
       {graph::complete(16), graph::petersen(), graph::cycle(15),
        graph::torus_power(5, 2)}) {
    // Lazy-walk lambda: (1 + mu)/2 for every eigenvalue mu, so
    // lambda_lazy = (1 + mu_2)/2.
    const auto spectrum = walk_spectrum_dense(g);
    const double mu2 = spectrum[spectrum.size() - 2];
    const double lambda_lazy = (1.0 + mu2) / 2.0;
    const double bound = mixing_time_bound(g, lambda_lazy, 0.25);
    const auto exact = exact_mixing_time(g, 0, 0.25, 0.5);
    EXPECT_LE(static_cast<double>(exact), bound + 1.0) << g.name();
  }
}

TEST(Mixing, UnmixedBudgetReported) {
  const graph::Graph g = graph::cycle(128);
  EXPECT_EQ(exact_mixing_time(g, 0, 0.25, 0.5, /*max_steps=*/3), 4u);
}

}  // namespace
}  // namespace cobra::spectral
