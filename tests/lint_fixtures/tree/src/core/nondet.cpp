// Seeded violations for cobra-lint's nondet-source rule. The self-test
// asserts the exact lines; the infection_time() call below must NOT trip
// (word-boundary check). Never compiled.
#include <cstdlib>
#include <ctime>

namespace fixture {

int infection_time(int v) { return v; }  // benign: not time()

int draw_noise() {
  const int base = infection_time(3);
  return base + rand();  // line 13: rand()
}

long stamp() {
  return time(nullptr);  // line 17: time()
}

}  // namespace fixture
