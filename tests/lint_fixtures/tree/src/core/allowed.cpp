// Allowlist fixture: a real unordered iteration suppressed with a
// justified marker (must produce NO finding) and a bare marker without a
// justification (must trip allow-needs-reason). Never compiled.
#include <cstddef>
#include <unordered_set>

namespace fixture {

std::size_t count_all() {
  std::unordered_set<int> seen;
  seen.insert(7);
  std::size_t n = 0;
  // cobra-lint: allow(unordered-iteration) -- order-insensitive count only
  for (const int v : seen) {
    (void)v;
    ++n;
  }
  return n;
}

// cobra-lint: allow(nondet-source)
// ^ line 21: bare marker, no justification -> allow-needs-reason

}  // namespace fixture
