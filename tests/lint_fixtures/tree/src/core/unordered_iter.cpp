// Seeded violation for cobra-lint's unordered-iteration rule: the
// self-test (scripts/cobra_lint_selftest.py) asserts this file trips at
// exactly the lines marked below. Never compiled.
#include <cstdint>
#include <unordered_map>

namespace fixture {

std::uint64_t fold_visit_counts() {
  std::unordered_map<std::uint64_t, std::uint64_t> visits;
  visits.emplace(1, 2);
  std::uint64_t sum = 0;
  for (const auto& [vertex, count] : visits) {  // line 13: range-for
    sum += vertex * count;
  }
  auto it = visits.begin();  // line 16: explicit .begin()
  (void)it;
  return sum;
}

}  // namespace fixture
