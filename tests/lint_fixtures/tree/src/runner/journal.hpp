// Miniature journal header for the journal-schema-drift fixture: the
// checked-in digest below records an older field list, simulating a
// schema edit that forgot the kVersion bump. Never compiled.
#pragma once

#include <cstdint>
#include <string>

namespace fixture {

struct JournalHeader {
  std::string experiment;
  int shard_index = 1;
  int shard_count = 1;
  std::uint64_t seed = 0;
  double scale = 1.0;
  std::string engine = "auto";
  int kernel_threads = 1;
  int lane_chunk = 0;  // the new field the digest does not know about
};

}  // namespace fixture
