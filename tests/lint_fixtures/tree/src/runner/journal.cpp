// Miniature journal writer for the journal-schema-drift fixture. The
// header gained a field (see journal.hpp) but kVersion stayed at v4 and
// the digest file was not refreshed — cobra-lint must trip. Never
// compiled.
#include <sstream>
#include <string>

namespace fixture {

constexpr char kVersion[] = "v4";

struct JournalHeader;

std::string format_header(const JournalHeader&) {
  std::ostringstream os;
  os << "run\tfixture\t1/1\t0\t1\tauto\t1\t0";
  return os.str();
}

}  // namespace fixture
