// Seeded violation for cobra-lint's metrics-slot-in-loop rule: slot
// resolution by name inside the per-round loop. The hoisted resolution
// before the loop must NOT trip. Never compiled.

namespace fixture {

struct Registry {
  int counter(const char*) { return 0; }
  int gauge(const char*) { return 0; }
  void add(int, int) {}
};

void run_rounds(Registry& reg, int rounds) {
  const int hoisted = reg.counter("baseline.rounds");  // benign: outside
  for (int r = 0; r < rounds; ++r) {
    const int id = reg.counter("baseline.steps");  // line 16: in-loop
    reg.add(id, r);
    reg.add(hoisted, 1);
  }
}

}  // namespace fixture
