#include "core/estimators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "sim/stats.hpp"

namespace cobra::core {
namespace {

TEST(Estimators, CoverOnTwoPathIsAlwaysOne) {
  const graph::Graph g = graph::path(2);
  const auto samples =
      estimate_cobra_cover(g, ProcessOptions{}, 0, 64, 42, 100);
  EXPECT_EQ(samples.timeouts, 0u);
  ASSERT_EQ(samples.rounds.size(), 64u);
  for (const double r : samples.rounds) EXPECT_DOUBLE_EQ(r, 1.0);
  ASSERT_EQ(samples.transmissions.size(), 64u);
  for (const double tx : samples.transmissions) EXPECT_DOUBLE_EQ(tx, 2.0);
}

TEST(Estimators, TimeoutsAreCounted) {
  const graph::Graph g = graph::cycle(64);
  // 2 rounds cannot cover a 64-cycle: every replicate must time out.
  const auto samples =
      estimate_cobra_cover(g, ProcessOptions{}, 0, 16, 43, 2);
  EXPECT_EQ(samples.timeouts, 16u);
  EXPECT_TRUE(samples.rounds.empty());
}

TEST(Estimators, DeterministicAcrossCalls) {
  const graph::Graph g = graph::petersen();
  const auto a = estimate_cobra_cover(g, ProcessOptions{}, 0, 32, 44, 1000);
  const auto b = estimate_cobra_cover(g, ProcessOptions{}, 0, 32, 44, 1000);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

TEST(Estimators, SeedChangesSamples) {
  const graph::Graph g = graph::petersen();
  const auto a = estimate_cobra_cover(g, ProcessOptions{}, 0, 32, 44, 1000);
  const auto b = estimate_cobra_cover(g, ProcessOptions{}, 0, 32, 45, 1000);
  EXPECT_NE(a.rounds, b.rounds);
}

TEST(Estimators, HitTimesAtMostCoverTimes) {
  const graph::Graph g = graph::cycle(16);
  const auto hit =
      estimate_cobra_hit(g, ProcessOptions{}, 0, 8, 32, 46, 100000);
  const auto cover =
      estimate_cobra_cover(g, ProcessOptions{}, 0, 32, 46, 100000);
  ASSERT_EQ(hit.timeouts, 0u);
  ASSERT_EQ(cover.timeouts, 0u);
  // Same seed => same underlying runs; hitting 8 can only be earlier than
  // covering everything.
  for (std::size_t i = 0; i < hit.rounds.size(); ++i)
    EXPECT_LE(hit.rounds[i], cover.rounds[i]);
}

TEST(Estimators, BipsInfectionCompletes) {
  const graph::Graph g = graph::complete(16);
  const auto samples = estimate_bips_infection(g, BipsOptions{}, 0, 32, 47,
                                               100000);
  EXPECT_EQ(samples.timeouts, 0u);
  for (const double r : samples.rounds) EXPECT_GE(r, 1.0);
}

TEST(Estimators, BipsKernelsGiveSameLawDifferentSamples) {
  const graph::Graph g = graph::cycle(12);
  BipsOptions sampling{{}, BipsKernel::kSampling};
  BipsOptions probability{{}, BipsKernel::kProbability};
  const auto a = estimate_bips_infection(g, sampling, 0, 200, 48, 100000);
  const auto b = estimate_bips_infection(g, probability, 0, 200, 48, 100000);
  const double se = std::sqrt(sim::variance(a.rounds) / 200 +
                              sim::variance(b.rounds) / 200);
  EXPECT_LT(std::fabs(sim::mean(a.rounds) - sim::mean(b.rounds)), 5 * se);
}

TEST(Estimators, GrowthCurveStartsAtOneAndReachesN) {
  const graph::Graph g = graph::complete(32);
  const auto curve = average_bips_growth(g, BipsOptions{}, 0, 30, 16, 49);
  ASSERT_EQ(curve.size(), 31u);
  EXPECT_DOUBLE_EQ(curve.front(), 1.0);
  EXPECT_NEAR(curve.back(), 32.0, 1e-9);  // absorbing full state
  // Curve should be (weakly) increasing in expectation for K_n.
  EXPECT_GT(curve[5], curve[0]);
}

}  // namespace
}  // namespace cobra::core
