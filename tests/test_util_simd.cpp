// Property tests for the two pure building blocks the lane-parallel
// frontier kernel rests on:
//   * partition_word_ranges: the ranges tile [0, words) exactly once,
//     are contiguous, non-empty and near-equal, for adversarial
//     (words, lanes) combinations;
//   * util/simd: the AVX2 kernels and the scalar fallbacks compute
//     bit-identical results on randomized inputs (so SIMD dispatch can
//     never perturb fixed-seed archives).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/frontier_kernel.hpp"
#include "rng/stream.hpp"
#include "util/simd.hpp"

namespace cobra {
namespace {

using core::WordRange;
using core::partition_word_ranges;

TEST(PartitionWordRanges, TilesTheIntervalExactlyOnce) {
  for (const std::size_t words :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{7}, std::size_t{8}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{255}, std::size_t{1000},
        std::size_t{4096}}) {
    for (const int lanes : {1, 2, 3, 4, 7, 8, 13, 64, 255, 256}) {
      const std::vector<WordRange> ranges =
          partition_word_ranges(words, lanes);
      SCOPED_TRACE(::testing::Message()
                   << "words=" << words << " lanes=" << lanes);
      // No more ranges than lanes, none empty, and an empty interval
      // yields no ranges at all.
      ASSERT_LE(ranges.size(),
                static_cast<std::size_t>(lanes));
      if (words == 0) {
        EXPECT_TRUE(ranges.empty());
        continue;
      }
      EXPECT_EQ(ranges.size(),
                std::min(words, static_cast<std::size_t>(lanes)));
      // Contiguous cover: ranges chain begin-to-end from 0 to words.
      std::size_t cursor = 0;
      std::size_t smallest = words, largest = 0;
      for (const WordRange& r : ranges) {
        EXPECT_EQ(r.begin, cursor);
        ASSERT_LT(r.begin, r.end);
        cursor = r.end;
        smallest = std::min(smallest, r.end - r.begin);
        largest = std::max(largest, r.end - r.begin);
      }
      EXPECT_EQ(cursor, words);
      // Near-equal split: sizes differ by at most one word.
      EXPECT_LE(largest - smallest, 1u);
    }
  }
}

TEST(PartitionWordRanges, LongerRangesComeFirst) {
  // 10 words over 4 lanes: 3,3,2,2 — the remainder pads the head, so
  // lane 0 (which runs inline on the calling thread) is never the one
  // left waiting on a longer tail.
  const auto ranges = partition_word_ranges(10, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[0].end - ranges[0].begin, 3u);
  EXPECT_EQ(ranges[1].end - ranges[1].begin, 3u);
  EXPECT_EQ(ranges[2].end - ranges[2].begin, 2u);
  EXPECT_EQ(ranges[3].end - ranges[3].begin, 2u);
}

/// Randomized word blocks with all-ones / all-zeros stretches mixed in,
/// so carries, tails and saturated popcounts are all exercised.
std::vector<std::uint64_t> random_words(std::size_t n, std::uint64_t salt) {
  rng::Rng rng = rng::make_stream(0x51D5, salt);
  std::vector<std::uint64_t> words(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t pick = rng.next_u64();
    if ((pick & 0xF) == 0)
      words[i] = ~0ull;
    else if ((pick & 0xF) == 1)
      words[i] = 0;
    else
      words[i] = rng.next_u64();
  }
  return words;
}

// Sizes straddling the AVX2 4-word block: empty, sub-block, exact
// blocks, and ragged tails.
constexpr std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 12, 13, 64, 67};

class SimdScalarParity : public ::testing::Test {
 protected:
  void TearDown() override { util::simd::force_scalar(false); }
};

TEST_F(SimdScalarParity, PopcountMatches) {
  for (const std::size_t n : kSizes) {
    const auto words = random_words(n, n);
    util::simd::force_scalar(true);
    const std::uint64_t scalar = util::simd::popcount_words(words.data(), n);
    util::simd::force_scalar(false);
    const std::uint64_t dispatched =
        util::simd::popcount_words(words.data(), n);
    EXPECT_EQ(scalar, dispatched) << "n=" << n;
    // Cross-check against the naive loop, not just path parity.
    std::uint64_t naive = 0;
    for (const std::uint64_t w : words) naive += std::popcount(w);
    EXPECT_EQ(scalar, naive) << "n=" << n;
  }
}

TEST_F(SimdScalarParity, OrWordsMatches) {
  for (const std::size_t n : kSizes) {
    const auto src = random_words(n, 2 * n);
    const auto base = random_words(n, 2 * n + 1);
    auto scalar_dst = base;
    util::simd::force_scalar(true);
    util::simd::or_words(scalar_dst.data(), src.data(), n);
    auto simd_dst = base;
    util::simd::force_scalar(false);
    util::simd::or_words(simd_dst.data(), src.data(), n);
    EXPECT_EQ(scalar_dst, simd_dst) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(scalar_dst[i], base[i] | src[i]) << "n=" << n;
  }
}

TEST_F(SimdScalarParity, MergeVisitedMatches) {
  for (const std::size_t n : kSizes) {
    const auto next = random_words(n, 3 * n);
    const auto base = random_words(n, 3 * n + 1);

    auto scalar_visited = base;
    std::uint64_t scalar_newly = 100, scalar_active = 200;  // accumulates
    util::simd::force_scalar(true);
    util::simd::merge_visited_words(next.data(), scalar_visited.data(), n,
                                    &scalar_newly, &scalar_active);
    auto simd_visited = base;
    std::uint64_t simd_newly = 100, simd_active = 200;
    util::simd::force_scalar(false);
    util::simd::merge_visited_words(next.data(), simd_visited.data(), n,
                                    &simd_newly, &simd_active);

    EXPECT_EQ(scalar_visited, simd_visited) << "n=" << n;
    EXPECT_EQ(scalar_newly, simd_newly) << "n=" << n;
    EXPECT_EQ(scalar_active, simd_active) << "n=" << n;

    std::uint64_t naive_newly = 100, naive_active = 200;
    for (std::size_t i = 0; i < n; ++i) {
      naive_newly += std::popcount(next[i] & ~base[i]);
      naive_active += std::popcount(next[i]);
      EXPECT_EQ(scalar_visited[i], base[i] | next[i]) << "n=" << n;
    }
    EXPECT_EQ(scalar_newly, naive_newly) << "n=" << n;
    EXPECT_EQ(scalar_active, naive_active) << "n=" << n;
  }
}

TEST_F(SimdScalarParity, OrCountNewMatches) {
  for (const std::size_t n : kSizes) {
    const auto next = random_words(n, 4 * n);
    const auto base = random_words(n, 4 * n + 1);

    auto scalar_dst = base;
    util::simd::force_scalar(true);
    const std::uint64_t scalar_added =
        util::simd::or_count_new_words(next.data(), scalar_dst.data(), n);
    auto simd_dst = base;
    util::simd::force_scalar(false);
    const std::uint64_t simd_added =
        util::simd::or_count_new_words(next.data(), simd_dst.data(), n);

    EXPECT_EQ(scalar_dst, simd_dst) << "n=" << n;
    EXPECT_EQ(scalar_added, simd_added) << "n=" << n;

    std::uint64_t naive_added = 0;
    for (std::size_t i = 0; i < n; ++i)
      naive_added += std::popcount(next[i] & ~base[i]);
    EXPECT_EQ(scalar_added, naive_added) << "n=" << n;
  }
}

TEST_F(SimdScalarParity, AvailabilityIsStableAndForceScalarWins) {
  const bool avail = util::simd::avx2_available();
  EXPECT_EQ(avail, util::simd::avx2_available());  // cached, not flapping
  // force_scalar only redirects dispatch; it never changes results
  // (asserted above), so this is just the introspection contract.
  util::simd::force_scalar(true);
  EXPECT_EQ(avail, util::simd::avx2_available());
}

}  // namespace
}  // namespace cobra
