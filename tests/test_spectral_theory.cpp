#include "spectral/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spectral/dense.hpp"

namespace cobra::spectral {
namespace {

double dense_lambda(const graph::Graph& g) {
  const auto eig = walk_spectrum_dense(g);
  return std::max(std::fabs(eig.front()), std::fabs(eig[eig.size() - 2]));
}

double dense_lambda2(const graph::Graph& g) {
  const auto eig = walk_spectrum_dense(g);
  return eig[eig.size() - 2];
}

TEST(TheoryLambda, Complete) {
  for (const graph::VertexId n : {3u, 5u, 12u, 30u})
    EXPECT_NEAR(lambda_complete(n), dense_lambda(graph::complete(n)), 1e-10);
}

TEST(TheoryLambda, CycleOddAndEven) {
  EXPECT_NEAR(lambda_cycle(9), dense_lambda(graph::cycle(9)), 1e-10);
  EXPECT_NEAR(lambda_cycle(15), dense_lambda(graph::cycle(15)), 1e-10);
  EXPECT_DOUBLE_EQ(lambda_cycle(10), 1.0);
  EXPECT_NEAR(dense_lambda(graph::cycle(10)), 1.0, 1e-10);
}

TEST(TheoryLambda, Cycle2ndEigenvalue) {
  for (const graph::VertexId n : {8u, 9u, 20u})
    EXPECT_NEAR(lambda2_cycle(n), dense_lambda2(graph::cycle(n)), 1e-10);
}

TEST(TheoryLambda, Hypercube) {
  for (const std::uint32_t d : {3u, 4u, 5u}) {
    EXPECT_NEAR(lambda2_hypercube(d), dense_lambda2(graph::hypercube(d)),
                1e-10);
    EXPECT_NEAR(dense_lambda(graph::hypercube(d)), 1.0, 1e-10);  // bipartite
  }
  EXPECT_DOUBLE_EQ(lambda_lazy_hypercube(4), 1.0 - 0.25);
}

TEST(TheoryLambda, Path2ndEigenvalue) {
  for (const graph::VertexId n : {5u, 9u, 16u})
    EXPECT_NEAR(lambda2_path(n), dense_lambda2(graph::path(n)), 1e-10);
}

TEST(TheoryLambda, TorusSecondEigenvalue) {
  EXPECT_NEAR(lambda2_torus(5, 2), dense_lambda2(graph::torus_power(5, 2)),
              1e-10);
  EXPECT_NEAR(lambda2_torus(4, 3), dense_lambda2(graph::torus_power(4, 3)),
              1e-10);
}

TEST(TheoryLambda, Petersen) {
  EXPECT_NEAR(lambda_petersen(), dense_lambda(graph::petersen()), 1e-10);
}

TEST(TheoryLambda, FacadeByName) {
  EXPECT_NEAR(*theory_lambda(graph::complete(9)), 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(*theory_lambda(graph::cycle(9)),
              std::cos(M_PI / 9.0), 1e-12);
  EXPECT_DOUBLE_EQ(*theory_lambda(graph::star(6)), 1.0);
  EXPECT_DOUBLE_EQ(*theory_lambda(graph::complete_bipartite(2, 3)), 1.0);
  EXPECT_DOUBLE_EQ(*theory_lambda(graph::petersen()), 2.0 / 3.0);
  EXPECT_FALSE(theory_lambda(graph::barbell(4, 1)).has_value());
}

TEST(GapCondition, MarginScalesAsStated) {
  // margin = (1 - lambda) / sqrt(log n / n).
  const double margin = gap_condition_margin(0.5, 100);
  EXPECT_NEAR(margin, 0.5 / std::sqrt(std::log(100.0) / 100.0), 1e-12);
}

}  // namespace
}  // namespace cobra::spectral
