#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace cobra::graph {
namespace {

TEST(Generators, Complete) {
  const Graph g = complete(7);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 21u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 6u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(*exact_diameter(g), 1u);
  EXPECT_FALSE(is_bipartite(g));
  EXPECT_EQ(g.name(), "complete(7)");
}

TEST(Generators, Cycle) {
  const Graph g = cycle(10);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(*exact_diameter(g), 5u);
  EXPECT_TRUE(is_bipartite(g));          // even cycle
  EXPECT_FALSE(is_bipartite(cycle(9)));  // odd cycle
  EXPECT_EQ(*exact_diameter(cycle(9)), 4u);
}

TEST(Generators, Path) {
  const Graph g = path(8);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(*exact_diameter(g), 7u);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Generators, Star) {
  const Graph g = star(9);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.degree(0), 8u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(*exact_diameter(g), 2u);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Generators, CompleteBipartite) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(g.degree(0), 4u);  // left side sees all of right
  EXPECT_EQ(g.degree(3), 3u);  // right side sees all of left
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(*exact_diameter(g), 2u);
  // No edges within a side.
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(3, 4));
}

TEST(Generators, Hypercube) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);  // n d / 2
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(*exact_diameter(g), 4u);
  // Neighbours differ in exactly one bit.
  for (VertexId u = 0; u < 16; ++u)
    for (const VertexId v : g.neighbors(u))
      EXPECT_EQ(std::popcount(u ^ v), 1);
}

TEST(Generators, GridNonTorus) {
  const Graph g = grid({4, 3}, /*torus=*/false);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 4u * 2);  // 9 horizontal + 8 vertical
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(*exact_diameter(g), 5u);  // (4-1)+(3-1)
  EXPECT_FALSE(g.is_regular());
}

TEST(Generators, Torus) {
  const Graph g = grid({4, 4}, /*torus=*/true);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.num_edges(), 32u);
  EXPECT_EQ(*exact_diameter(g), 4u);  // 2 + 2
}

TEST(Generators, TorusSideTwoHasNoDoubleEdge) {
  const Graph g = grid({2, 3}, /*torus=*/true);
  // Axis of length 2 contributes a single edge per pair (no wrap duplicate).
  EXPECT_EQ(g.num_vertices(), 6u);
  for (VertexId u = 0; u < 6; ++u)
    EXPECT_LE(g.degree(u), 3u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, TorusPowerMatchesGrid) {
  const Graph a = torus_power(5, 2);
  const Graph b = grid({5, 5}, /*torus=*/true);
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(*exact_diameter(a), *exact_diameter(b));
}

TEST(Generators, OneDimensionalTorusIsCycle) {
  const Graph t = torus_power(7, 1);
  const Graph c = cycle(7);
  EXPECT_EQ(t.num_edges(), c.num_edges());
  EXPECT_EQ(*exact_diameter(t), *exact_diameter(c));
}

TEST(Generators, BinaryTree) {
  const Graph g = binary_tree(15);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(g.degree(0), 2u);   // root
  EXPECT_EQ(g.degree(14), 1u);  // leaf
  EXPECT_EQ(*exact_diameter(g), 6u);  // leaf-to-leaf through root
}

TEST(Generators, KaryTree) {
  const Graph g = kary_tree(13, 3);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Barbell) {
  const Graph g = barbell(5, 1);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 2u * 10 + 1);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.max_degree(), 5u);  // bridge endpoints
  EXPECT_EQ(g.min_degree(), 4u);
}

TEST(Generators, BarbellLongBridge) {
  const Graph g = barbell(4, 5);
  EXPECT_EQ(g.num_vertices(), 2u * 4 + 4);  // 4 interior path vertices
  EXPECT_EQ(g.num_edges(), 2u * 6 + 5);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Lollipop) {
  const Graph g = lollipop(6, 4);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 15u + 4);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(9), 1u);  // tail end
}

TEST(Generators, Circulant) {
  const Graph g = circulant(10, {1, 2});
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.num_edges(), 20u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CirculantHalfOffsetDeduplicates) {
  // Offset n/2 pairs i with i+n/2 once, giving degree 2k-1, not 2k.
  const Graph g = circulant(8, {1, 4});
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.num_edges(), 12u);
}

TEST(Generators, Petersen) {
  const Graph g = petersen();
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_bipartite(g));
  EXPECT_EQ(*exact_diameter(g), 2u);
  // Petersen has girth 5: no triangles and no 4-cycles through edge checks.
  for (VertexId u = 0; u < 10; ++u)
    for (const VertexId v : g.neighbors(u))
      for (const VertexId w : g.neighbors(v))
        if (w != u) {
          EXPECT_FALSE(g.has_edge(u, w));
        }
}

TEST(Generators, ArgumentValidation) {
  EXPECT_THROW(complete(1), util::CheckError);
  EXPECT_THROW(cycle(2), util::CheckError);
  EXPECT_THROW(path(1), util::CheckError);
  EXPECT_THROW(hypercube(0), util::CheckError);
  EXPECT_THROW(grid({1}, false), util::CheckError);
  EXPECT_THROW(barbell(2, 1), util::CheckError);
  EXPECT_THROW(circulant(10, {6}), util::CheckError);  // offset > n/2
}

}  // namespace
}  // namespace cobra::graph
