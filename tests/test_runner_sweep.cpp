// Sharded sweep execution: shard ∪ = full sweep, kill-then-resume equals
// an uninterrupted run byte for byte, torn fragments are reconciled, and
// merge validates its inputs. Uses a synthetic two-table experiment whose
// rows are a deterministic function of (seed, cell), mirroring the
// contract the real cells obey.
#include "runner/sweep.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rng/stream.hpp"
#include "runner/journal.hpp"
#include "runner/registry.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"

namespace cobra::runner {
namespace {

namespace fs = std::filesystem;

constexpr int kCells = 7;

ExperimentDef make_test_experiment() {
  ExperimentDef def;
  def.name = "synthetic";
  def.description = "deterministic two-table test experiment";
  def.tables = {
      {"synthetic_main", "main table", {"cell", "i", "value"}},
      {"synthetic_aux", "aux table", {"cell", "j"}}};
  def.cells = [] {
    std::vector<CellDef> cells;
    for (int i = 0; i < kCells; ++i) {
      // Built in two steps: GCC 12's -Wrestrict misfires on
      // "c" + std::to_string(i) inlined through std::function.
      std::string id = "c";
      id += std::to_string(i);
      cells.push_back(
          {id, i < 4 ? "first" : "second",
           [i, id](CellContext& ctx) {
             const std::uint64_t seed = util::global_seed();
             const auto value = rng::derive_seed(seed, i);
             ctx.row().add(id)
                 .add(static_cast<std::int64_t>(i))
                 .add(static_cast<double>(value % 1000) / 7.0, 2);
             // Variable-length aux output exercises per-cell row counts.
             ctx.table(1);
             for (int j = 0; j < i % 3; ++j) {
               ctx.row().add(id).add(static_cast<std::int64_t>(j));
             }
           }});
    }
    return cells;
  };
  return def;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class SweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::set_seed_override(12345);
    dir_ = fs::path(::testing::TempDir()) /
           ("sweep_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()
                    ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    util::clear_env_overrides();
    fs::remove_all(dir_);
  }

  SweepConfig config(const std::string& sub, int i = 1, int k = 1) {
    SweepConfig c;
    c.out_dir = (dir_ / sub).string();
    c.shard_index = i;
    c.shard_count = k;
    c.console = false;
    return c;
  }

  fs::path dir_;
};

TEST_F(SweepTest, UnshardedRunWritesCanonicalCsvs) {
  const ExperimentDef def = make_test_experiment();
  const SweepResult result = run_experiment(def, config("full"));
  EXPECT_EQ(result.cells_run, static_cast<std::size_t>(kCells));
  EXPECT_TRUE(result.complete());

  const auto main_table =
      util::read_csv((dir_ / "full/synthetic_main.csv").string());
  EXPECT_EQ(main_table.header,
            (std::vector<std::string>{"cell", "i", "value"}));
  EXPECT_EQ(main_table.num_rows(), static_cast<std::size_t>(kCells));
  // Aux rows: sum of i % 3 over 0..6 = 0+1+2+0+1+2+0.
  const auto aux_table =
      util::read_csv((dir_ / "full/synthetic_aux.csv").string());
  EXPECT_EQ(aux_table.num_rows(), 6u);
}

TEST_F(SweepTest, ShardsPartitionTheSweepAndMergeRestoresByteIdentity) {
  const ExperimentDef def = make_test_experiment();
  run_experiment(def, config("full"));

  for (const int k : {2, 4}) {
    const std::string sub = "k" + std::to_string(k);
    std::size_t total = 0;
    for (int i = 1; i <= k; ++i) {
      const SweepResult r = run_experiment(def, config(sub, i, k));
      EXPECT_TRUE(r.complete());
      total += r.cells_run;
    }
    EXPECT_EQ(total, static_cast<std::size_t>(kCells));

    const MergeResult merged =
        merge_experiment(def, (dir_ / sub).string(), nullptr);
    EXPECT_EQ(merged.shard_count, k);
    EXPECT_EQ(merged.rows_per_table,
              (std::vector<std::size_t>{7, 6}));
    for (const char* table : {"synthetic_main.csv", "synthetic_aux.csv"}) {
      EXPECT_EQ(slurp((dir_ / "full" / table).string()),
                slurp((dir_ / sub / table).string()))
          << "k=" << k << " " << table;
    }
  }
}

TEST_F(SweepTest, InterruptedShardResumesWithoutRerunningJournaledCells) {
  const ExperimentDef def = make_test_experiment();
  // Uninterrupted reference shard.
  run_experiment(def, config("ref", 2, 2));

  // Interrupted run: one cell at a time, resuming each time.
  SweepConfig chunked = config("chunked", 2, 2);
  chunked.resume = true;
  chunked.max_cells = 1;
  std::size_t runs = 0;
  for (;;) {
    const SweepResult r = run_experiment(def, chunked);
    EXPECT_LE(r.cells_run, 1u);
    runs += r.cells_run;
    // Cells journaled by earlier invocations are skipped, never re-run.
    EXPECT_EQ(r.cells_skipped, runs - r.cells_run);
    if (r.complete()) break;
  }
  EXPECT_EQ(runs, shard_slice(kCells, 2, 2).size());

  for (const char* table :
       {"synthetic_main.shard2of2.csv", "synthetic_aux.shard2of2.csv"}) {
    EXPECT_EQ(slurp((dir_ / "ref" / table).string()),
              slurp((dir_ / "chunked" / table).string()))
        << table;
  }
  // Journals agree too (same header, same cells in the same order).
  const auto [ref_header, ref_entries] =
      Journal::read((dir_ / "ref/synthetic.2of2.journal").string());
  const auto [chunk_header, chunk_entries] =
      Journal::read((dir_ / "chunked/synthetic.2of2.journal").string());
  EXPECT_EQ(ref_header, chunk_header);
  ASSERT_EQ(ref_entries.size(), chunk_entries.size());
  for (std::size_t i = 0; i < ref_entries.size(); ++i) {
    EXPECT_EQ(ref_entries[i].cell_id, chunk_entries[i].cell_id);
    EXPECT_EQ(ref_entries[i].rows_per_table,
              chunk_entries[i].rows_per_table);
  }
}

TEST_F(SweepTest, TornFragmentRowsAreDroppedOnResume) {
  const ExperimentDef def = make_test_experiment();
  run_experiment(def, config("ref"));

  // Run one cell, then simulate a crash after the second cell's rows were
  // flushed but before it was journaled: its rows sit at the fragment
  // tail with no journal line.
  SweepConfig torn = config("torn");
  torn.max_cells = 1;
  run_experiment(def, torn);
  {
    std::ofstream out((dir_ / "torn/synthetic_main.csv").string(),
                      std::ios::app);
    out << "c1,1,999.0\n";  // orphaned rows of the unjournaled cell
  }

  SweepConfig resume = config("torn");
  resume.resume = true;
  const SweepResult r = run_experiment(def, resume);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.cells_skipped, 1u);

  EXPECT_EQ(slurp((dir_ / "ref/synthetic_main.csv").string()),
            slurp((dir_ / "torn/synthetic_main.csv").string()));
  EXPECT_EQ(slurp((dir_ / "ref/synthetic_aux.csv").string()),
            slurp((dir_ / "torn/synthetic_aux.csv").string()));
}

TEST_F(SweepTest, TornJournalLineMeansCellReruns) {
  const ExperimentDef def = make_test_experiment();
  run_experiment(def, config("ref"));

  SweepConfig partial = config("tornj");
  partial.max_cells = 2;
  run_experiment(def, partial);

  // Simulate a crash mid-write of the second journal line: cut it inside
  // the counts list (the "ok" terminator is lost). The cell's rows are
  // already in the fragments and must be dropped with it.
  const std::string jpath = (dir_ / "tornj/synthetic.1of1.journal").string();
  std::string text = slurp(jpath);
  const auto last_c2 = text.rfind("cell\tc1");
  ASSERT_NE(last_c2, std::string::npos);
  const auto tab = text.find('\t', last_c2 + 8);  // after "cell\tc1\t"
  ASSERT_NE(tab, std::string::npos);
  {
    std::ofstream out(jpath, std::ios::trunc | std::ios::binary);
    out << text.substr(0, tab);  // "...cell\tc1\t<counts cut, no newline>"
  }

  SweepConfig resume = config("tornj");
  resume.resume = true;
  const SweepResult r = run_experiment(def, resume);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.cells_skipped, 1u);  // only c0 survives the torn journal
  EXPECT_EQ(r.cells_run, static_cast<std::size_t>(kCells) - 1);

  for (const char* table : {"synthetic_main.csv", "synthetic_aux.csv"}) {
    EXPECT_EQ(slurp((dir_ / "ref" / table).string()),
              slurp((dir_ / "tornj" / table).string()))
        << table;
  }
  // The repaired journal must parse cleanly (newline restored before the
  // appended records).
  const auto [header, entries] = Journal::read(jpath);
  EXPECT_EQ(entries.size(), static_cast<std::size_t>(kCells));
}

TEST_F(SweepTest, ScaleWithManyDecimalsRoundTripsThroughTheJournal) {
  util::set_scale_override(0.0123456789);
  const ExperimentDef def = make_test_experiment();
  SweepConfig partial = config("precise");
  partial.max_cells = 1;
  run_experiment(def, partial);

  SweepConfig resume = config("precise");
  resume.resume = true;
  const SweepResult r = run_experiment(def, resume);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.cells_skipped, 1u);
}

TEST_F(SweepTest, ResumeRefusesAForeignJournal) {
  const ExperimentDef def = make_test_experiment();
  SweepConfig first = config("mismatch");
  first.max_cells = 1;
  run_experiment(def, first);

  util::set_seed_override(999);  // different run configuration
  SweepConfig resume = config("mismatch");
  resume.resume = true;
  EXPECT_THROW(run_experiment(def, resume), util::CheckError);
}

TEST_F(SweepTest, ResumeRefusesAKernelThreadsMismatch) {
  // Kernel lanes never change results, but the journal still pins them:
  // a resumed shard must reproduce the original run's configuration (the
  // sweep supervisor relies on this to pass --kernel-threads to respawned
  // workers).
  const ExperimentDef def = make_test_experiment();
  util::set_kernel_threads_override(2);
  SweepConfig first = config("ktmismatch");
  first.max_cells = 1;
  run_experiment(def, first);

  util::set_kernel_threads_override(4);
  SweepConfig resume = config("ktmismatch");
  resume.resume = true;
  EXPECT_THROW(run_experiment(def, resume), util::CheckError);

  // Back to the journaled lane count, the resume completes.
  util::set_kernel_threads_override(2);
  const SweepResult r = run_experiment(def, resume);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.cells_skipped, 1u);
}

TEST_F(SweepTest, FreshRunIgnoresAndReplacesAnOldJournal) {
  const ExperimentDef def = make_test_experiment();
  SweepConfig partial = config("restart");
  partial.max_cells = 2;
  run_experiment(def, partial);

  // No --resume: start over and complete.
  const SweepResult r = run_experiment(def, config("restart"));
  EXPECT_EQ(r.cells_run, static_cast<std::size_t>(kCells));
  EXPECT_EQ(r.cells_skipped, 0u);
  const auto table =
      util::read_csv((dir_ / "restart/synthetic_main.csv").string());
  EXPECT_EQ(table.num_rows(), static_cast<std::size_t>(kCells));
}

TEST_F(SweepTest, MergeRefusesIncompleteOrMissingShards) {
  const ExperimentDef def = make_test_experiment();
  SweepConfig partial = config("incomplete", 1, 2);
  partial.max_cells = 1;
  run_experiment(def, partial);
  run_experiment(def, config("incomplete", 2, 2));
  EXPECT_THROW(merge_experiment(def, (dir_ / "incomplete").string(),
                                nullptr),
               util::CheckError);

  run_experiment(def, config("missing", 1, 2));
  // Shard 2/2 never ran.
  EXPECT_THROW(merge_experiment(def, (dir_ / "missing").string(), nullptr),
               util::CheckError);
}

TEST_F(SweepTest, JournalRecordsWallTimeAndMergeSummarizesIt) {
  const ExperimentDef def = make_test_experiment();
  run_experiment(def, config("walltime", 1, 2));
  run_experiment(def, config("walltime", 2, 2));

  // Every journaled cell carries a wall-time field (since format v3);
  // trivial
  // cells may legitimately round to 0 µs, so only sanity is asserted.
  const auto [header, entries] =
      Journal::read((dir_ / "walltime/synthetic.1of2.journal").string());
  ASSERT_FALSE(entries.size() == 0);
  for (const JournalEntry& entry : entries) {
    EXPECT_LT(entry.wall_us, 10ull * 60 * 1000 * 1000) << entry.cell_id;
  }

  // `cobra merge` surfaces the cost summary built from those fields.
  std::ostringstream log;
  merge_experiment(def, (dir_ / "walltime").string(), &log);
  EXPECT_NE(log.str().find("cell wall time:"), std::string::npos)
      << log.str();
  EXPECT_NE(log.str().find("across 7 cells"), std::string::npos)
      << log.str();
}

/// Asserts `fn` throws CheckError and its message carries every one of
/// `needles` — corruption diagnostics must name the file, the line and
/// the offending token, not just fail.
template <typename Fn>
void expect_check_message(Fn fn, const std::vector<std::string>& needles) {
  try {
    fn();
    FAIL() << "expected util::CheckError";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    for (const std::string& needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "missing '" << needle << "' in: " << what;
    }
  }
}

TEST_F(SweepTest, OldJournalVersionsAreRefusedWithAnActionableMessage) {
  // A v2 journal is a stale-but-valid file, not garbage: the error names
  // the version found, the version required, and the remedy.
  const std::string path = (dir_ / "v2.journal").string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "cobra-journal\tv2\n"
        << "run\tsynthetic\t1/1\t12345\t1\treference\n"
        << "cell\tc0\t1,0\tok\n";
  }
  expect_check_message([&] { Journal::read(path); },
                       {path, "v2", "v4", "re-run"});

  // v3 (pre kernel-threads header field) is retired the same way.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "cobra-journal\tv3\n"
        << "run\tsynthetic\t1/1\t12345\t1\treference\n"
        << "cell\tc0\t1,0\t5\tok\n";
  }
  expect_check_message([&] { Journal::read(path); },
                       {path, "v3", "v4", "re-run"});

  // An unknown (future?) version is reported as such, not as garbage.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "cobra-journal\tv9\n";
  }
  expect_check_message([&] { Journal::read(path); },
                       {path, "v9", "unrecognised"});
}

TEST_F(SweepTest, TruncatedOrForeignHeadersFailWithThePath) {
  const std::string path = (dir_ / "broken.journal").string();
  { std::ofstream out(path, std::ios::trunc); }  // 0 bytes
  expect_check_message([&] { Journal::read(path); },
                       {path, "empty or truncated"});

  {
    std::ofstream out(path, std::ios::trunc);
    out << "not-a-journal,at,all\n";
  }
  expect_check_message([&] { Journal::read(path); },
                       {path, "line 1", "not a cobra journal"});

  {
    std::ofstream out(path, std::ios::trunc);
    out << "cobra-journal\tv4\n";  // magic only, no run header
  }
  expect_check_message([&] { Journal::read(path); },
                       {path, "missing run header"});
}

TEST_F(SweepTest, GarbageHeaderFieldsFailWithLineAndToken) {
  const std::string path = (dir_ / "garbage.journal").string();
  const auto with_header = [&](const std::string& run_line) {
    std::ofstream out(path, std::ios::trunc);
    out << "cobra-journal\tv4\n" << run_line << '\n';
  };

  // A corrupted shard spec must not silently become shard 0/0.
  with_header("run\tsynthetic\txof4\t12345\t1\tauto\t1");
  expect_check_message([&] { Journal::read(path); },
                       {path, "line 2", "shard spec", "xof4"});
  with_header("run\tsynthetic\tx/4\t12345\t1\tauto\t1");
  expect_check_message([&] { Journal::read(path); },
                       {path, "line 2", "shard index", "x"});
  with_header("run\tsynthetic\t5/4\t12345\t1\tauto\t1");
  expect_check_message([&] { Journal::read(path); },
                       {path, "line 2", "5/4"});
  with_header("run\tsynthetic\t1/1\t12a45\t1\tauto\t1");
  expect_check_message([&] { Journal::read(path); },
                       {path, "line 2", "seed", "12a45"});
  with_header("run\tsynthetic\t1/1\t12345\t-1\tauto\t1");
  expect_check_message([&] { Journal::read(path); },
                       {path, "line 2", "scale", "-1"});
  with_header("run\tsynthetic\t1/1\t12345\t1\tauto\tx8");
  expect_check_message([&] { Journal::read(path); },
                       {path, "line 2", "kernel threads", "x8"});
  with_header("run\tsynthetic\t1/1\t12345\t1\tauto\t0");
  expect_check_message([&] { Journal::read(path); },
                       {path, "line 2", "kernel threads", "1..256"});
  with_header("run\tsynthetic\t1/1");
  expect_check_message([&] { Journal::read(path); },
                       {path, "line 2", "malformed run header"});
}

TEST_F(SweepTest, CorruptCompletedCellRecordsFailLoudly) {
  // A line with the "ok" terminator claims to be complete, so garbage in
  // it is corruption (loud), not a torn write (silently skipped).
  const std::string path = (dir_ / "corrupt.journal").string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "cobra-journal\tv4\n"
        << "run\tsynthetic\t1/1\t12345\t1\tauto\t1\n"
        << "cell\tc0\t1x,0\t5\tok\n";
  }
  expect_check_message([&] { Journal::read(path); },
                       {path, "line 3", "row count", "1x"});
  {
    std::ofstream out(path, std::ios::trunc);
    out << "cobra-journal\tv4\n"
        << "run\tsynthetic\t1/1\t12345\t1\tauto\t1\n"
        << "cell\tc0\t1,0\tfast\tok\n";
  }
  expect_check_message([&] { Journal::read(path); },
                       {path, "line 3", "wall time", "fast"});
}

TEST_F(SweepTest, JournalCreateReportsTheMkdirError) {
  // The parent "directory" is a regular file, so create_directories
  // fails — the message must carry the OS error, not a misleading
  // "cannot open journal".
  const std::string blocker = (dir_ / "blocker").string();
  {
    std::ofstream out(blocker);
    out << "file\n";
  }
  expect_check_message(
      [&] {
        Journal::create(blocker + "/sub/x.journal", JournalHeader{});
      },
      {"cannot create journal directory", blocker});
}

TEST_F(SweepTest, HeartbeatLinesAreWrittenAndSkippedByReaders) {
  const ExperimentDef def = make_test_experiment();
  run_experiment(def, config("beats"));

  const std::string jpath = (dir_ / "beats/synthetic.1of1.journal").string();
  const std::string text = slurp(jpath);
  // One liveness marker per cell start, flushed before the cell body —
  // the supervisor's wedge detection watches the journal grow on them.
  std::size_t beats = 0;
  for (auto pos = text.find("heartbeat\t"); pos != std::string::npos;
       pos = text.find("heartbeat\t", pos + 1)) {
    ++beats;
  }
  EXPECT_EQ(beats, static_cast<std::size_t>(kCells));
  // Readers skip them: only "cell ... ok" records are journaled cells.
  const auto [header, entries] = Journal::read(jpath);
  EXPECT_EQ(entries.size(), static_cast<std::size_t>(kCells));
}

TEST_F(SweepTest, CompletedRunsArchiveTheCostModelAndItRoundTrips) {
  const ExperimentDef def = make_test_experiment();
  run_experiment(def, config("costs"));

  const std::string path =
      costs_path_for((dir_ / "costs").string(), "synthetic");
  ASSERT_TRUE(fs::exists(path));
  const auto costs = read_costs_file(path);
  EXPECT_EQ(costs.size(), static_cast<std::size_t>(kCells));
  EXPECT_TRUE(costs.count("c0"));

  // Weighted shards sliced by the archived model still merge to the
  // canonical bytes: slicing is a scheduling choice, never a result one.
  for (int i = 1; i <= 3; ++i) {
    SweepConfig c = config("costs_sharded", i, 3);
    c.costs_path = path;
    EXPECT_TRUE(run_experiment(def, c).complete());
  }
  merge_experiment(def, (dir_ / "costs_sharded").string(), nullptr);
  for (const char* table : {"synthetic_main.csv", "synthetic_aux.csv"}) {
    EXPECT_EQ(slurp((dir_ / "costs" / table).string()),
              slurp((dir_ / "costs_sharded" / table).string()))
        << table;
  }
}

TEST_F(SweepTest, MalformedCostFilesFailWithLineAndToken) {
  const std::string path = (dir_ / "bad.costs").string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "cobra-costs\tv1\ncell\tc0\tcheap\n";
  }
  expect_check_message([&] { read_costs_file(path); },
                       {path, "line 2", "cheap"});
  {
    std::ofstream out(path, std::ios::trunc);
    out << "cobra-costs\tv1\ncell\tc0\t5\ncell\tc0\t6\n";
  }
  expect_check_message([&] { read_costs_file(path); },
                       {path, "line 3", "duplicate", "c0"});
  {
    std::ofstream out(path, std::ios::trunc);
    out << "not a costs file\n";
  }
  expect_check_message([&] { read_costs_file(path); },
                       {path, "line 1"});
}

TEST_F(SweepTest, MergeRefusesMixedSeeds) {
  const ExperimentDef def = make_test_experiment();
  run_experiment(def, config("mixed", 1, 2));
  util::set_seed_override(54321);
  run_experiment(def, config("mixed", 2, 2));
  EXPECT_THROW(merge_experiment(def, (dir_ / "mixed").string(), nullptr),
               util::CheckError);
}

TEST_F(SweepTest, ResumeAndMergeRefuseMixedEngines) {
  // The stepping engine is part of the run configuration: fast-engine
  // archives are not byte-identical to reference archives, so the journal
  // pins it exactly like seed and scale.
  const ExperimentDef def = make_test_experiment();
  SweepConfig first = config("engines");
  first.max_cells = 1;
  run_experiment(def, first);

  util::set_engine_override("reference");  // session default is "auto"
  SweepConfig resume = config("engines");
  resume.resume = true;
  EXPECT_THROW(run_experiment(def, resume), util::CheckError);

  run_experiment(def, config("engines2", 1, 2));
  util::clear_env_overrides();
  util::set_seed_override(12345);  // restore the fixture seed
  run_experiment(def, config("engines2", 2, 2));
  EXPECT_THROW(merge_experiment(def, (dir_ / "engines2").string(), nullptr),
               util::CheckError);
}

TEST_F(SweepTest, MaxCellsZeroRunsNothingButStaysResumable) {
  const ExperimentDef def = make_test_experiment();
  SweepConfig none = config("zero");
  none.max_cells = 0;
  const SweepResult r = run_experiment(def, none);
  EXPECT_EQ(r.cells_run, 0u);
  EXPECT_FALSE(r.complete());

  SweepConfig rest = config("zero");
  rest.resume = true;
  EXPECT_TRUE(run_experiment(def, rest).complete());
}

}  // namespace
}  // namespace cobra::runner
