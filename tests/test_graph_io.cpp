#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace cobra::graph {
namespace {

TEST(GraphIo, RoundTripThroughStream) {
  const Graph original = petersen();
  std::stringstream buffer;
  write_edge_list(original, buffer);
  const Graph loaded = read_edge_list(buffer, "petersen");
  EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_EQ(loaded.edges(), original.edges());
}

TEST(GraphIo, RoundTripThroughFile) {
  const std::string path = "test_io_roundtrip.edges";
  const Graph original = hypercube(4);
  write_edge_list_file(original, path);
  const Graph loaded = read_edge_list_file(path);
  EXPECT_EQ(loaded.edges(), original.edges());
  std::remove(path.c_str());
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in;
  in << "# a comment\n\n3 2\n# another\n0 1\n1 2\n";
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, RejectsMissingHeader) {
  std::stringstream in;
  in << "# only comments\n";
  EXPECT_THROW(read_edge_list(in), util::CheckError);
}

TEST(GraphIo, RejectsEdgeCountMismatch) {
  std::stringstream in;
  in << "3 5\n0 1\n";
  EXPECT_THROW(read_edge_list(in), util::CheckError);
}

TEST(GraphIo, RejectsOutOfRangeVertex) {
  std::stringstream in;
  in << "3 1\n0 7\n";
  EXPECT_THROW(read_edge_list(in), util::CheckError);
}

TEST(GraphIo, RejectsMalformedEdgeLine) {
  std::stringstream in;
  in << "3 1\n0\n";
  EXPECT_THROW(read_edge_list(in), util::CheckError);
}

TEST(GraphIo, RejectsSelfLoop) {
  std::stringstream in;
  in << "3 1\n1 1\n";
  EXPECT_THROW(read_edge_list(in), util::CheckError);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("definitely_not_here.edges"),
               util::CheckError);
}

}  // namespace
}  // namespace cobra::graph
