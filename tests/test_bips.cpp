#include "core/bips.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "sim/stats.hpp"
#include "spectral/spectral.hpp"
#include "util/assert.hpp"

namespace cobra::core {
namespace {

rng::Rng test_rng(std::uint64_t salt) { return rng::make_stream(2002, salt); }

TEST(Bips, SourceAlwaysInfected) {
  const graph::Graph g = graph::cycle(9);
  BipsProcess p(g, 4);
  auto rng = test_rng(0);
  for (int t = 0; t < 50; ++t) {
    p.step(rng);
    EXPECT_TRUE(p.is_infected(4));
  }
}

TEST(Bips, InitialStateIsSourceOnly) {
  const graph::Graph g = graph::petersen();
  BipsProcess p(g, 3);
  EXPECT_EQ(p.infected_count(), 1u);
  EXPECT_TRUE(p.is_infected(3));
  EXPECT_EQ(p.infected_degree(), 3u);
  EXPECT_EQ(p.round(), 0u);
}

TEST(Bips, TwoVertexGraphInfectsInOneRound) {
  const graph::Graph g = graph::path(2);
  BipsProcess p(g, 0);
  auto rng = test_rng(1);
  const auto t = p.run_until_full(rng, 10);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 1u);  // vertex 1's only neighbour is the source
}

TEST(Bips, FullInfectionIsAbsorbing) {
  const graph::Graph g = graph::complete(8);
  BipsProcess p(g, 0);
  auto rng = test_rng(2);
  const auto t = p.run_until_full(rng, 1000);
  ASSERT_TRUE(t.has_value());
  for (int extra = 0; extra < 20; ++extra) {
    p.step(rng);
    EXPECT_TRUE(p.fully_infected());
  }
}

TEST(Bips, InfectedListMatchesMembership) {
  const graph::Graph g = graph::hypercube(4);
  BipsProcess p(g, 0);
  auto rng = test_rng(3);
  for (int t = 0; t < 20; ++t) {
    p.step(rng);
    std::set<graph::VertexId> unique(p.infected().begin(), p.infected().end());
    EXPECT_EQ(unique.size(), p.infected().size());
    std::uint64_t degree_sum = 0;
    for (const auto u : p.infected()) {
      EXPECT_TRUE(p.is_infected(u));
      degree_sum += g.degree(u);
    }
    EXPECT_EQ(degree_sum, p.infected_degree());
  }
}

TEST(Bips, KernelsAgreeOnMeanInfectionTime) {
  const graph::Graph g = graph::petersen();
  constexpr int kReps = 400;
  std::vector<double> sampling, probability;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      auto rng = rng::make_stream(555, static_cast<std::uint64_t>(rep));
      BipsProcess p(g, 0, BipsOptions{{}, BipsKernel::kSampling});
      sampling.push_back(static_cast<double>(*p.run_until_full(rng, 10000)));
    }
    {
      auto rng = rng::make_stream(556, static_cast<std::uint64_t>(rep));
      BipsProcess p(g, 0, BipsOptions{{}, BipsKernel::kProbability});
      probability.push_back(
          static_cast<double>(*p.run_until_full(rng, 10000)));
    }
  }
  const double m1 = sim::mean(sampling);
  const double m2 = sim::mean(probability);
  const double se = std::sqrt(sim::variance(sampling) / kReps +
                              sim::variance(probability) / kReps);
  EXPECT_LT(std::fabs(m1 - m2), 5 * se)
      << "sampling " << m1 << " vs probability " << m2;
}

TEST(Bips, CandidateSetNeverEmptyBeforeCompletion) {
  // Paper Section 3: C_t is never empty while d(A_t) < 2m.
  const graph::Graph g = graph::lollipop(5, 4);
  BipsProcess p(g, 8);  // tail vertex as source
  auto rng = test_rng(4);
  for (int t = 0; t < 200 && !p.fully_infected(); ++t) {
    EXPECT_FALSE(p.candidate_set().empty());
    p.step(rng);
  }
}

TEST(Bips, CandidateSetMatchesBruteForce) {
  const graph::Graph g = graph::petersen();
  BipsProcess p(g, 0);
  auto rng = test_rng(5);
  for (int t = 0; t < 15; ++t) {
    // Brute force: (N(A) ∪ {v}) \ {u : N(u) ⊆ A}.
    std::set<graph::VertexId> expected;
    for (graph::VertexId u = 0; u < g.num_vertices(); ++u) {
      bool in_neighborhood = (u == p.source());
      for (const auto w : g.neighbors(u))
        if (p.is_infected(w)) in_neighborhood = true;
      if (!in_neighborhood) continue;
      if (p.infected_neighbor_count(u) == g.degree(u)) continue;  // B_fix
      expected.insert(u);
    }
    const auto got = p.candidate_set();
    EXPECT_EQ(std::set<graph::VertexId>(got.begin(), got.end()), expected);
    p.step(rng);
  }
}

TEST(Bips, InfectionProbabilityClosedForm) {
  // b = 2: p = 1 - (1 - dA/d)^2.
  ProcessOptions b2;
  EXPECT_DOUBLE_EQ(bips_infection_probability(4, 0, false, b2), 0.0);
  EXPECT_DOUBLE_EQ(bips_infection_probability(4, 4, false, b2), 1.0);
  EXPECT_DOUBLE_EQ(bips_infection_probability(4, 2, false, b2), 0.75);
  EXPECT_DOUBLE_EQ(bips_infection_probability(3, 1, false, b2),
                   1.0 - (2.0 / 3.0) * (2.0 / 3.0));
}

TEST(Bips, InfectionProbabilityOnePlusRho) {
  // b = 1+rho: p = 1 - (1 - q)(1 - rho q), paper eq. (33).
  ProcessOptions opt;
  opt.branching = Branching::one_plus_rho(0.5);
  const double q = 0.25;
  EXPECT_NEAR(bips_infection_probability(4, 1, false, opt),
              1.0 - (1.0 - q) * (1.0 - 0.5 * q), 1e-12);
  // rho = 0 reduces to the b = 1 case.
  ProcessOptions b1;
  b1.branching = Branching::one_plus_rho(0.0);
  EXPECT_NEAR(bips_infection_probability(4, 1, false, b1), 0.25, 1e-12);
}

TEST(Bips, InfectionProbabilityLazySelf) {
  ProcessOptions opt;
  opt.laziness = 0.5;
  // Self infected, no infected neighbours, b = 2: q = 0.5 -> p = 0.75.
  EXPECT_DOUBLE_EQ(bips_infection_probability(4, 0, true, opt), 0.75);
  // Not infected, 2/4 neighbours infected: q = 0.5 * 0.5 = 0.25.
  EXPECT_DOUBLE_EQ(bips_infection_probability(4, 2, false, opt),
                   1.0 - 0.75 * 0.75);
}

TEST(Bips, HigherBranchingInfectsFasterOnAverage) {
  const graph::Graph g = graph::cycle(24);
  constexpr int kReps = 200;
  auto mean_time = [&](double rho, std::uint64_t seed) {
    std::vector<double> times;
    for (int rep = 0; rep < kReps; ++rep) {
      auto rng = rng::make_stream(seed, static_cast<std::uint64_t>(rep));
      BipsOptions opt;
      opt.process.branching = Branching::one_plus_rho(rho);
      BipsProcess p(g, 0, opt);
      times.push_back(static_cast<double>(*p.run_until_full(rng, 1000000)));
    }
    return sim::mean(times);
  };
  const double slow = mean_time(0.25, 901);
  const double fast = mean_time(1.0, 902);
  EXPECT_LT(fast, slow);
}

TEST(Bips, GrowthLemma41HoldsOnAverage) {
  // Lemma 4.1: E(|A_{t+1}|) >= |A|(1 + (1-lambda^2)(1 - |A|/n)).
  // Fix A = one-step-evolved sets on Petersen (lambda = 2/3) and check the
  // sample mean of |A_{t+1}| over many independent one-round evolutions.
  const graph::Graph g = graph::petersen();
  const double lambda = 2.0 / 3.0;
  const double n = 10.0;

  // Build a fixed infected set of size 3 containing the source 0.
  BipsProcess p(g, 0);
  std::vector<double> next_sizes;
  constexpr int kReps = 3000;
  for (int rep = 0; rep < kReps; ++rep) {
    auto rng = rng::make_stream(7777, static_cast<std::uint64_t>(rep));
    BipsProcess q(g, 0);
    // Drive to a deterministic starting set {0, 1, 5} via membership hack:
    // simplest is to re-run until infected set has size >= 3, then measure
    // one more round — instead we directly measure from A_0 = {0} where the
    // bound also applies: |A_0| = 1.
    next_sizes.push_back(static_cast<double>(q.step(rng)));
  }
  const double bound = 1.0 * (1.0 + (1.0 - lambda * lambda) * (1.0 - 1.0 / n));
  const double m = sim::mean(next_sizes);
  const double se = std::sqrt(sim::variance(next_sizes) / kReps);
  EXPECT_GT(m, bound - 4 * se);
}

TEST(Bips, RejectsBadConfigurations) {
  const graph::Graph g = graph::path(3);
  EXPECT_THROW(BipsProcess(g, 5), util::CheckError);  // source out of range
  BipsOptions opt;
  opt.process.laziness = -0.1;
  EXPECT_THROW(BipsProcess(g, 0, opt), util::CheckError);
}

TEST(Bips, ResetRestoresInitialState) {
  const graph::Graph g = graph::complete(6);
  BipsProcess p(g, 0);
  auto rng = test_rng(6);
  p.run_until_full(rng, 100);
  p.reset(2);
  EXPECT_EQ(p.source(), 2u);
  EXPECT_EQ(p.infected_count(), 1u);
  EXPECT_TRUE(p.is_infected(2));
  EXPECT_EQ(p.round(), 0u);
}

}  // namespace
}  // namespace cobra::core
