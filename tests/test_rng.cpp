#include "rng/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>

#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace cobra::rng {
namespace {

TEST(SplitMix64, ReferenceSequence) {
  // Reference values for seed 1234567 from the public-domain splitmix64.c.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ull);
  EXPECT_EQ(sm.next(), 3203168211198807973ull);
  EXPECT_EQ(sm.next(), 9817491932198370423ull);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, FirstOutputFromKnownState) {
  // From state {1,2,3,4}: result = rotl(2*5, 7) * 9 = 1280 * 9.
  Xoshiro256ss x(std::array<std::uint64_t, 4>{1, 2, 3, 4});
  EXPECT_EQ(x.next(), 11520ull);
}

TEST(Xoshiro, DeterministicFromSeed) {
  Xoshiro256ss a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, JumpProducesDisjointPrefix) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 4096; ++i) from_a.insert(a.next());
  int collisions = 0;
  for (int i = 0; i < 4096; ++i)
    if (from_a.count(b.next()) != 0) ++collisions;
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(42);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  // Chi-square against uniform over 16 buckets; 150k draws. The 99.9%
  // critical value for 15 dof is ~37.7; use 60 for slack.
  Rng rng(2024);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 150000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 60.0);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  const double p = static_cast<double>(hits) / kDraws;
  EXPECT_NEAR(p, 0.3, 0.01);
}

TEST(Rng, RangeInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v.begin(), v.end());
  std::vector<int> sorted(v);
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleMixes) {
  Rng rng(8);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v.begin(), v.end());
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i)
    if (v[i] == i) ++fixed_points;
  EXPECT_LT(fixed_points, 15);  // E[fixed points] = 1
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(9);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto x : sample) EXPECT_LT(x, 50u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(10);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleRejectsOversizedK) {
  Rng rng(11);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), util::CheckError);
}

TEST(Rng, PickReturnsMemberUniformly) {
  Rng rng(12);
  const std::vector<int> items = {10, 20, 30, 40};
  std::array<int, 4> counts{};
  for (int i = 0; i < 40000; ++i) {
    const int x = rng.pick(std::span<const int>(items));
    counts[static_cast<std::size_t>(x / 10 - 1)]++;
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

}  // namespace
}  // namespace cobra::rng
