#include "spectral/conductance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spectral/dense.hpp"
#include "util/assert.hpp"

namespace cobra::spectral {
namespace {

TEST(ExactConductance, CompleteGraph) {
  // phi(K_n) at a balanced cut S (|S| = n/2): cut = (n/2)^2,
  // d(S) = (n/2)(n-1); phi = (n/2)/(n-1).
  const auto n = 6u;
  EXPECT_NEAR(exact_conductance(graph::complete(n)),
              (n / 2.0) / (n - 1.0), 1e-12);
}

TEST(ExactConductance, CycleIsTwoOverN) {
  // Best cut: contiguous arc of n/2 vertices, 2 cut edges, volume n.
  EXPECT_NEAR(exact_conductance(graph::cycle(8)), 2.0 / 8.0, 1e-12);
  EXPECT_NEAR(exact_conductance(graph::cycle(12)), 2.0 / 12.0, 1e-12);
}

TEST(ExactConductance, StarIsOne) {
  EXPECT_NEAR(exact_conductance(graph::star(7)), 1.0, 1e-12);
}

TEST(ExactConductance, PathBottleneck) {
  // Best cut of P_n is the middle edge: cut 1, volume ~ n - 1.
  // For P_6 (degree sum 10): S = first 3 vertices, d(S) = 5, cut = 1.
  EXPECT_NEAR(exact_conductance(graph::path(6)), 1.0 / 5.0, 1e-12);
}

TEST(ExactConductance, BarbellIsSmall) {
  const double phi = exact_conductance(graph::barbell(5, 1));
  // One bridge edge over clique volume >= 20.
  EXPECT_LE(phi, 1.0 / 20.0 + 1e-12);
  EXPECT_GT(phi, 0.0);
}

TEST(CutConductance, MatchesManualCount) {
  const graph::Graph g = graph::cycle(8);
  // Contiguous arc {0,1,2,3}: 2 cut edges, volume 8.
  EXPECT_NEAR(cut_conductance(g, {0, 1, 2, 3}), 0.25, 1e-12);
  // Alternating set {0,2,4,6}: every edge is cut: 8/8 = 1.
  EXPECT_NEAR(cut_conductance(g, {0, 2, 4, 6}), 1.0, 1e-12);
}

TEST(CutConductance, RejectsEmptyAndFull) {
  const graph::Graph g = graph::cycle(5);
  EXPECT_THROW(cut_conductance(g, {}), util::CheckError);
  EXPECT_THROW(cut_conductance(g, {0, 1, 2, 3, 4}), util::CheckError);
}

TEST(SweepConductance, UpperBoundsExact) {
  for (const graph::Graph& g :
       {graph::cycle(12), graph::complete(8), graph::barbell(5, 1),
        graph::path(10), graph::petersen()}) {
    const double exact = exact_conductance(g);
    const double estimate = estimate_conductance(g, /*seed=*/7);
    EXPECT_GE(estimate + 1e-12, exact) << g.name();
  }
}

TEST(SweepConductance, FindsBarbellBottleneck) {
  // The spectral sweep should locate the bridge cut (or near it).
  const graph::Graph g = graph::barbell(6, 1);
  const double exact = exact_conductance(g);
  const double estimate = estimate_conductance(g, 3);
  EXPECT_LT(estimate, 4 * exact + 1e-9);
}

TEST(Cheeger, InequalityHolds) {
  // phi^2 / 2 <= 1 - mu2 <= 2 phi for the walk matrix's second-largest
  // eigenvalue mu2 (Cheeger for the normalised Laplacian).
  for (const graph::Graph& g :
       {graph::cycle(10), graph::complete(8), graph::petersen(),
        graph::barbell(4, 1), graph::hypercube(3), graph::path(8)}) {
    const auto eig = walk_spectrum_dense(g);
    const double mu2 = eig[eig.size() - 2];
    const double gap = 1.0 - mu2;
    const double phi = exact_conductance(g);
    EXPECT_LE(phi * phi / 2.0, gap + 1e-9) << g.name();
    EXPECT_LE(gap, 2.0 * phi + 1e-9) << g.name();
  }
}

}  // namespace
}  // namespace cobra::spectral
