#include "sim/survival.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace cobra::sim {
namespace {

TEST(Survival, CurveOfDistinctValues) {
  const auto curve = survival_curve({1.0, 2.0, 3.0, 4.0});
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].t, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].probability, 0.75);
  EXPECT_DOUBLE_EQ(curve[1].probability, 0.5);
  EXPECT_DOUBLE_EQ(curve[2].probability, 0.25);
  EXPECT_DOUBLE_EQ(curve[3].probability, 0.0);
}

TEST(Survival, CurveHandlesTies) {
  const auto curve = survival_curve({2.0, 2.0, 2.0, 5.0});
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].t, 2.0);
  EXPECT_DOUBLE_EQ(curve[0].probability, 0.25);
  EXPECT_DOUBLE_EQ(curve[1].t, 5.0);
  EXPECT_DOUBLE_EQ(curve[1].probability, 0.0);
}

TEST(Survival, CurveIsMonotoneNonIncreasing) {
  const auto curve = survival_curve({5, 3, 9, 1, 3, 7, 7, 2});
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i - 1].t, curve[i].t);
    EXPECT_GE(curve[i - 1].probability, curve[i].probability);
  }
}

TEST(Survival, ExceedanceCountsStrictly) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const auto e = exceedance_probability(xs, 3.0);
  EXPECT_EQ(e.exceeding, 2u);
  EXPECT_DOUBLE_EQ(e.probability, 0.4);
  EXPECT_TRUE(e.ci.contains(0.4));
  const auto none = exceedance_probability(xs, 10.0);
  EXPECT_EQ(none.exceeding, 0u);
  EXPECT_GE(none.ci.low, 0.0);
}

TEST(Survival, WhpRoundCountIsUpperQuantile) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_NEAR(whp_round_count(xs, 0.05), 95.05, 0.2);
  EXPECT_THROW(whp_round_count(xs, 0.0), util::CheckError);
}

TEST(Survival, EmptyRejected) {
  EXPECT_THROW(survival_curve({}), util::CheckError);
  EXPECT_THROW(exceedance_probability({}, 1.0), util::CheckError);
}

}  // namespace
}  // namespace cobra::sim
