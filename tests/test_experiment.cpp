#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cobra::sim {
namespace {

TEST(Experiment, WritesCsvMirror) {
  {
    Experiment exp("test_exp_unit", "unit-test experiment",
                   {"graph", "n", "value"});
    exp.row().add("cycle").add(std::int64_t{16}).add(3.25);
    exp.row().add("path").add(std::int64_t{8}).add(1.5);
    exp.note("a note");
    testing::internal::CaptureStdout();
    exp.finish();
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("test_exp_unit"), std::string::npos);
    EXPECT_NE(out.find("cycle"), std::string::npos);
    EXPECT_NE(out.find("a note"), std::string::npos);
  }
  std::ifstream csv("bench_results/test_exp_unit.csv");
  ASSERT_TRUE(csv.good());
  std::string line;
  std::getline(csv, line);
  EXPECT_EQ(line, "graph,n,value");
  std::getline(csv, line);
  EXPECT_EQ(line, "cycle,16,3.25");
  csv.close();
  std::remove("bench_results/test_exp_unit.csv");
}

TEST(Experiment, FinishIsIdempotent) {
  Experiment exp("test_exp_idem", "idempotent finish", {"a"});
  exp.row().add("x");
  testing::internal::CaptureStdout();
  exp.finish();
  exp.finish();
  const std::string out = testing::internal::GetCapturedStdout();
  // Banner printed exactly once.
  const std::string banner = "=== test_exp_idem ===";
  const auto first = out.find(banner);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.find(banner, first + 1), std::string::npos);
  std::remove("bench_results/test_exp_idem.csv");
}

TEST(Experiment, DefaultReplicatesScales) {
  const auto base = default_replicates(32);
  EXPECT_GE(base, 4u);
}

}  // namespace
}  // namespace cobra::sim
