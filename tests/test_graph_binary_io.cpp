// The on-disk .cgr format: round trips through both storage backends,
// rejection of malformed files, streaming ingest, and the backend
// bit-identity guarantee (owned and mmap'd graphs drive COBRA/BIPS to
// exactly the same trajectories).
#include "graph/binary_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/estimators.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace cobra::graph {
namespace {

// RAII temp path: removed on scope exit.
struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Returns the CheckError message load_cgr_file produces for `path`.
std::string load_error(const std::string& path, bool verify = false) {
  try {
    (void)load_cgr_file(path, CgrLoadMode::kMapped, verify);
  } catch (const util::CheckError& e) {
    return e.what();
  }
  return "";
}

TEST(GraphBinaryIo, RoundTripOwnedAndMapped) {
  const TempFile f("test_cgr_roundtrip.cgr");
  Graph original = petersen();
  original.set_name("petersen");
  write_cgr_file(original, f.path);

  for (const CgrLoadMode mode :
       {CgrLoadMode::kOwned, CgrLoadMode::kMapped}) {
    const Graph loaded = load_cgr_file(f.path, mode);
    EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
    EXPECT_EQ(loaded.num_edges(), original.num_edges());
    EXPECT_EQ(loaded.name(), "petersen");
    EXPECT_EQ(loaded.fingerprint(), original.fingerprint());
    EXPECT_EQ(loaded.min_degree(), original.min_degree());
    EXPECT_EQ(loaded.max_degree(), original.max_degree());
    ASSERT_EQ(loaded.offsets().size(), original.offsets().size());
    for (std::size_t i = 0; i < loaded.offsets().size(); ++i)
      EXPECT_EQ(loaded.offsets()[i], original.offsets()[i]);
    ASSERT_EQ(loaded.adjacency().size(), original.adjacency().size());
    for (std::size_t i = 0; i < loaded.adjacency().size(); ++i)
      EXPECT_EQ(loaded.adjacency()[i], original.adjacency()[i]);
    EXPECT_EQ(loaded.storage_backend(),
              mode == CgrLoadMode::kMapped ? "mmap" : "owned");
  }
}

TEST(GraphBinaryIo, HeaderInfoMatchesGraph) {
  const TempFile f("test_cgr_info.cgr");
  Graph g = hypercube(5);
  g.set_name("hypercube_5");
  write_cgr_file(g, f.path);
  const CgrInfo info = read_cgr_header(f.path);
  EXPECT_EQ(info.version, kCgrVersion);
  EXPECT_EQ(info.n, g.num_vertices());
  EXPECT_EQ(info.degree_sum, g.degree_sum());
  EXPECT_EQ(info.fingerprint, g.fingerprint());
  EXPECT_EQ(info.min_degree, 5u);
  EXPECT_EQ(info.max_degree, 5u);
  EXPECT_EQ(info.name, "hypercube_5");
  EXPECT_EQ(info.file_bytes, std::filesystem::file_size(f.path));
}

TEST(GraphBinaryIo, VerifyPassesOnCleanFile) {
  const TempFile f("test_cgr_verify.cgr");
  write_cgr_file(cycle(17), f.path);
  EXPECT_NO_THROW(
      (void)load_cgr_file(f.path, CgrLoadMode::kMapped, /*verify=*/true));
}

TEST(GraphBinaryIo, RejectsTruncatedFile) {
  const TempFile f("test_cgr_trunc.cgr");
  write_cgr_file(cycle(12), f.path);
  const std::string bytes = slurp(f.path);

  // Shorter than the header itself.
  spit(f.path, bytes.substr(0, 64));
  EXPECT_NE(load_error(f.path).find("truncated"), std::string::npos);

  // Header intact, arrays cut short.
  spit(f.path, bytes.substr(0, bytes.size() - 8));
  EXPECT_NE(load_error(f.path).find("truncated or padded"),
            std::string::npos);

  // Trailing garbage is rejected too (file_bytes is exact).
  spit(f.path, bytes + "xx");
  EXPECT_NE(load_error(f.path).find("truncated or padded"),
            std::string::npos);
}

TEST(GraphBinaryIo, RejectsCorruptMagic) {
  const TempFile f("test_cgr_magic.cgr");
  write_cgr_file(cycle(8), f.path);
  std::string bytes = slurp(f.path);
  bytes[0] = 'X';
  spit(f.path, bytes);
  EXPECT_NE(load_error(f.path).find("not a .cgr file"), std::string::npos);
}

TEST(GraphBinaryIo, RejectsWrongEndianness) {
  const TempFile f("test_cgr_endian.cgr");
  write_cgr_file(cycle(8), f.path);
  std::string bytes = slurp(f.path);
  // A file from an opposite-endian host starts with the byte-swapped
  // magic; simulate by reversing the first four bytes.
  std::swap(bytes[0], bytes[3]);
  std::swap(bytes[1], bytes[2]);
  spit(f.path, bytes);
  EXPECT_NE(load_error(f.path).find("endianness mismatch"),
            std::string::npos);
}

TEST(GraphBinaryIo, RejectsUnsupportedVersion) {
  const TempFile f("test_cgr_version.cgr");
  write_cgr_file(cycle(8), f.path);
  std::string bytes = slurp(f.path);
  bytes[4] = 99;  // version field, offset 4
  spit(f.path, bytes);
  EXPECT_NE(load_error(f.path).find("unsupported .cgr version"),
            std::string::npos);
}

TEST(GraphBinaryIo, VerifyCatchesTamperedAdjacency) {
  const TempFile f("test_cgr_tamper.cgr");
  write_cgr_file(cycle(64), f.path);
  std::string bytes = slurp(f.path);
  // Rewrite vertex 0's first neighbour from 1 to 2: the CSR stays
  // structurally valid (sorted, in range, loopless), so only the
  // fingerprint rehash can tell the content changed. The default
  // O(header) open trusts ingest-time validation and still succeeds;
  // --verify must reject.
  std::uint64_t adj_offset = 0;
  std::memcpy(&adj_offset, bytes.data() + 80, sizeof(adj_offset));
  ASSERT_EQ(static_cast<unsigned char>(bytes[adj_offset]), 1u);
  bytes[static_cast<std::size_t>(adj_offset)] = 2;
  spit(f.path, bytes);
  EXPECT_NO_THROW((void)load_cgr_file(f.path, CgrLoadMode::kMapped));
  const std::string error = load_error(f.path, /*verify=*/true);
  EXPECT_NE(error.find("fingerprint mismatch"), std::string::npos)
      << error;
}

TEST(GraphBinaryIo, IngestRoundTrip) {
  const TempFile edges("test_cgr_ingest.edges");
  const TempFile cgr("test_cgr_ingest.cgr");
  spit(edges.path, "# square with a chord\n4 5\n0 1\n1 2\n2 3\n3 0\n0 2\n");
  const CgrInfo info =
      ingest_edge_list_file(edges.path, cgr.path, "square");
  EXPECT_EQ(info.n, 4u);
  EXPECT_EQ(info.degree_sum, 10u);
  EXPECT_EQ(info.name, "square");
  const Graph g = load_cgr_file(cgr.path, CgrLoadMode::kMapped,
                                /*verify=*/true);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(3), 2u);
  const auto nbrs = g.neighbors(0);
  EXPECT_EQ(std::vector<VertexId>(nbrs.begin(), nbrs.end()),
            (std::vector<VertexId>{1, 2, 3}));
}

TEST(GraphBinaryIo, IngestDefaultsNameToFileStem) {
  const TempFile edges("test_cgr_stem.edges");
  const TempFile cgr("test_cgr_stem.cgr");
  spit(edges.path, "3 2\n0 1\n1 2\n");
  EXPECT_EQ(ingest_edge_list_file(edges.path, cgr.path).name,
            "test_cgr_stem");
}

TEST(GraphBinaryIo, IngestReportsLineNumberAndToken) {
  const TempFile edges("test_cgr_badtok.edges");
  const TempFile cgr("test_cgr_badtok.cgr");
  spit(edges.path, "# comment\n3 2\n0 1\n1 x7\n");
  try {
    ingest_edge_list_file(edges.path, cgr.path);
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("'x7'"), std::string::npos) << what;
  }
}

TEST(GraphBinaryIo, IngestRejectsDuplicateEdge) {
  const TempFile edges("test_cgr_dup.edges");
  const TempFile cgr("test_cgr_dup.cgr");
  spit(edges.path, "3 3\n0 1\n1 2\n1 0\n");
  try {
    ingest_edge_list_file(edges.path, cgr.path);
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate edge"),
              std::string::npos);
  }
}

// The tentpole guarantee: the storage backend is invisible to the
// processes. Fixed-seed COBRA and BIPS runs must produce bit-identical
// trajectories whether the graph lives in owned vectors (generated or
// loaded) or in a read-only mapping of the .cgr file.
TEST(GraphBinaryIo, BackendsAreBitIdenticalUnderCobraAndBips) {
  const TempFile f("test_cgr_identity.cgr");
  Graph generated = torus_power(5, 2);
  generated.set_name("torus_5_d2");
  write_cgr_file(generated, f.path);
  const Graph owned = load_cgr_file(f.path, CgrLoadMode::kOwned);
  const Graph mapped = load_cgr_file(f.path, CgrLoadMode::kMapped);

  const std::uint64_t seed = 0xC0BBAull;
  const auto run_cobra = [&](const Graph& g) {
    return core::estimate_cobra_cover(g, core::ProcessOptions{}, 0, 8,
                                      seed, 100000);
  };
  const auto run_bips = [&](const Graph& g) {
    return core::estimate_bips_infection(g, core::BipsOptions{}, 0, 8,
                                         seed, 100000);
  };

  const auto cover_gen = run_cobra(generated);
  const auto cover_owned = run_cobra(owned);
  const auto cover_mapped = run_cobra(mapped);
  EXPECT_EQ(cover_gen.rounds, cover_owned.rounds);
  EXPECT_EQ(cover_gen.rounds, cover_mapped.rounds);
  EXPECT_EQ(cover_gen.transmissions, cover_mapped.transmissions);

  const auto bips_gen = run_bips(generated);
  const auto bips_owned = run_bips(owned);
  const auto bips_mapped = run_bips(mapped);
  EXPECT_EQ(bips_gen.rounds, bips_owned.rounds);
  EXPECT_EQ(bips_gen.rounds, bips_mapped.rounds);
}

}  // namespace
}  // namespace cobra::graph
