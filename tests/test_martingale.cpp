#include "core/martingale.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "sim/stats.hpp"
#include "util/assert.hpp"

namespace cobra::core {
namespace {

MartingaleTrace run_trace(const graph::Graph& g, std::uint64_t salt,
                          std::uint64_t max_rounds = 10000) {
  auto rng = rng::make_stream(6006, salt);
  return run_bips_serialized(g, 0, ProcessOptions{}, max_rounds, rng);
}

TEST(Martingale, CompletesOnSmallGraphs) {
  for (const graph::Graph& g :
       {graph::petersen(), graph::cycle(12), graph::path(8),
        graph::star(9)}) {
    const auto trace = run_trace(g, 1);
    EXPECT_TRUE(trace.completed) << g.name();
    EXPECT_EQ(trace.infected_degree.back(), g.degree_sum()) << g.name();
  }
}

TEST(Martingale, IdentityEq14HoldsExactly) {
  // d(A_t) = d(v) + sum of Y_l — an exact algebraic identity of the
  // serialisation (paper eq. (14)).
  for (const graph::Graph& g :
       {graph::petersen(), graph::lollipop(5, 3), graph::cycle(10),
        graph::complete(8)}) {
    for (std::uint64_t salt = 0; salt < 5; ++salt) {
      const auto trace = run_trace(g, salt);
      EXPECT_DOUBLE_EQ(trace_identity_violation(g, 0, trace), 0.0)
          << g.name();
    }
  }
}

TEST(Martingale, ConditionalMeansRespectEq18) {
  // E(Y_l | past) >= 1/2 for b = 2, per step (paper eq. (18)).
  const auto trace = run_trace(graph::lollipop(6, 4), 2);
  for (const auto& step : trace.steps)
    EXPECT_GE(step.conditional_mean, 0.5 - 1e-12)
        << "vertex " << step.vertex << " round " << step.round;
}

TEST(Martingale, IncrementsBoundedByMaxDegree) {
  const graph::Graph g = graph::barbell(5, 2);
  const auto trace = run_trace(g, 3);
  for (const auto& step : trace.steps)
    EXPECT_LE(std::fabs(step.y), static_cast<double>(g.max_degree()));
}

TEST(Martingale, EmpiricalDriftAtLeastHalf) {
  // Averaged over many runs, the realised mean of Y_l must be >= 1/2 - noise
  // (it is >= the conditional floor pointwise in expectation).
  std::vector<double> ys;
  for (std::uint64_t salt = 0; salt < 40; ++salt) {
    const auto trace = run_trace(graph::cycle(16), 100 + salt);
    for (const auto& step : trace.steps) ys.push_back(step.y);
  }
  ASSERT_GT(ys.size(), 200u);
  const double m = sim::mean(ys);
  const double se = std::sqrt(sim::variance(ys) / static_cast<double>(ys.size()));
  EXPECT_GT(m, 0.5 - 4 * se);
}

TEST(Martingale, SourceStepsAreDeterministicJoins) {
  const auto trace = run_trace(graph::star(7), 4);
  for (const auto& step : trace.steps)
    if (step.is_source) {
      EXPECT_TRUE(step.joined);
      EXPECT_DOUBLE_EQ(step.y, static_cast<double>(step.degree) -
                                    static_cast<double>(
                                        step.infected_neighbors));
      EXPECT_GE(step.y, 1.0);  // source in C means d_A(v) <= d(v) - 1
    }
}

TEST(Martingale, CandidatesHaveUninfectedNeighbor) {
  const auto trace = run_trace(graph::petersen(), 5);
  for (const auto& step : trace.steps)
    EXPECT_LT(step.infected_neighbors, step.degree);
}

TEST(Martingale, RoundStepCountsMatchStepRecords) {
  const auto trace = run_trace(graph::cycle(14), 6);
  std::size_t total = 0;
  for (const auto c : trace.round_step_counts) total += c;
  EXPECT_EQ(total, trace.steps.size());
  // Steps are recorded in round order with ascending vertex ids per round.
  std::size_t index = 0;
  for (std::uint64_t t = 0; t < trace.rounds; ++t) {
    for (std::uint64_t s = 0; s < trace.round_step_counts[t]; ++s) {
      EXPECT_EQ(trace.steps[index].round, t + 1);
      if (s > 0) {
        EXPECT_LT(trace.steps[index - 1].vertex, trace.steps[index].vertex);
      }
      ++index;
    }
  }
}

TEST(Martingale, DriftFloorByBranching) {
  ProcessOptions b2;
  EXPECT_DOUBLE_EQ(drift_floor(b2), 0.5);
  ProcessOptions rho;
  rho.branching = Branching::one_plus_rho(0.6);
  EXPECT_DOUBLE_EQ(drift_floor(rho), 0.3);
}

TEST(Martingale, RhoBranchingDriftRespectsFloor) {
  ProcessOptions opt;
  opt.branching = Branching::one_plus_rho(0.5);
  auto rng = rng::make_stream(7007, 0);
  const auto trace =
      run_bips_serialized(graph::cycle(12), 0, opt, 10000, rng);
  EXPECT_TRUE(trace.completed);
  for (const auto& step : trace.steps) {
    if (!step.is_source) {
      EXPECT_GE(step.conditional_mean, drift_floor(opt) - 1e-12);
    }
  }
}

TEST(Martingale, RejectsLaziness) {
  ProcessOptions opt;
  opt.laziness = 0.5;
  auto rng = rng::make_stream(8008, 0);
  EXPECT_THROW(run_bips_serialized(graph::cycle(6), 0, opt, 10, rng),
               util::CheckError);
}

TEST(Martingale, LargeRandomRegularCompletes) {
  auto grng = rng::make_stream(9009, 0);
  const graph::Graph g = graph::connected_random_regular(64, 4, grng);
  const auto trace = run_trace(g, 7, 100000);
  EXPECT_TRUE(trace.completed);
  EXPECT_DOUBLE_EQ(trace_identity_violation(g, 0, trace), 0.0);
}

}  // namespace
}  // namespace cobra::core
