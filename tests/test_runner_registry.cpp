// Registry coverage for the 15 real experiments (this binary links the
// cobra_experiments OBJECT library, so every bench/exp_* registration is
// present) plus shard-slice algebra.
#include "runner/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/assert.hpp"
#include "util/env.hpp"

namespace cobra::runner {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  // Tiny scale: enumeration must be cheap and deterministic at any scale.
  void SetUp() override { util::set_scale_override(0.01); }
  void TearDown() override { util::clear_env_overrides(); }
};

const std::vector<std::string>& expected_names() {
  static const std::vector<std::string> kNames = {
      "baselines",     "bips_growth",   "branching", "cover_profile",
      "duality",       "families",      "general_bound", "hypercube",
      "lazy_bipartite", "lower_bound",  "martingale", "mixing",
      "regular_bound", "whp",           "workload"};
  return kNames;
}

TEST_F(RegistryTest, AllFifteenExperimentsRegistered) {
  const auto all = Registry::instance().all();
  std::vector<std::string> names;
  for (const ExperimentDef* def : all) names.push_back(def->name);
  for (const std::string& name : expected_names()) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "missing experiment: " << name;
    EXPECT_NE(Registry::instance().find(name), nullptr);
  }
  EXPECT_GE(all.size(), 15u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(RegistryTest, EveryExperimentIsSelfDescribing) {
  for (const ExperimentDef* def : Registry::instance().all()) {
    EXPECT_FALSE(def->description.empty()) << def->name;
    ASSERT_FALSE(def->tables.empty()) << def->name;
    for (const TableDef& table : def->tables) {
      EXPECT_FALSE(table.id.empty()) << def->name;
      EXPECT_FALSE(table.columns.empty()) << def->name << "/" << table.id;
    }
  }
}

TEST_F(RegistryTest, EnumerationIsDeterministicWithUniqueIds) {
  for (const ExperimentDef* def : Registry::instance().all()) {
    const auto first = def->cells();
    const auto second = def->cells();
    ASSERT_FALSE(first.empty()) << def->name;
    ASSERT_EQ(first.size(), second.size()) << def->name;
    std::set<std::string> ids;
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].id, second[i].id) << def->name << " cell " << i;
      EXPECT_TRUE(ids.insert(first[i].id).second)
          << def->name << " duplicate cell id " << first[i].id;
      // Journal keys must survive the tab-separated manifest format.
      EXPECT_EQ(first[i].id.find_first_of("\t\n\r"), std::string::npos)
          << def->name << " cell id has separators: " << first[i].id;
    }
  }
}

TEST_F(RegistryTest, ScaleChangesEnumerationNotStability) {
  // hypercube's cell count is scale-dependent; the enumeration at each
  // scale must still be internally stable.
  const ExperimentDef* def = Registry::instance().find("hypercube");
  ASSERT_NE(def, nullptr);
  const auto tiny = def->cells().size();
  util::set_scale_override(1.0);
  const auto full = def->cells().size();
  EXPECT_LT(tiny, full);
}

TEST_F(RegistryTest, FilterMatchesSubstrings) {
  const auto hits = Registry::instance().match("bound");
  std::vector<std::string> names;
  for (const ExperimentDef* def : hits) names.push_back(def->name);
  EXPECT_EQ(names, (std::vector<std::string>{"general_bound", "lower_bound",
                                             "regular_bound"}));
  EXPECT_TRUE(Registry::instance().match("no_such_experiment").empty());
}

TEST(ShardSlice, PartitionIsDisjointAndComplete) {
  for (const std::size_t num_cells : {1u, 2u, 5u, 24u, 123u}) {
    for (const int k : {1, 2, 4}) {
      std::set<std::size_t> seen;
      std::size_t total = 0;
      for (int i = 1; i <= k; ++i) {
        const auto slice = shard_slice(num_cells, i, k);
        total += slice.size();
        for (const std::size_t index : slice) {
          EXPECT_LT(index, num_cells);
          EXPECT_TRUE(seen.insert(index).second)
              << "index " << index << " in two shards (k=" << k << ")";
        }
        // Deterministic: same request, same slice.
        EXPECT_EQ(slice, shard_slice(num_cells, i, k));
      }
      EXPECT_EQ(total, num_cells) << "k=" << k;
      EXPECT_EQ(seen.size(), num_cells) << "k=" << k;
    }
  }
}

TEST(ShardSlice, RoundRobinBalancesSizeOrderedSweeps) {
  const auto a = shard_slice(6, 1, 2);
  const auto b = shard_slice(6, 2, 2);
  EXPECT_EQ(a, (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(b, (std::vector<std::size_t>{1, 3, 5}));
}

TEST(ShardSlice, MoreShardsThanCellsLeavesSomeEmpty) {
  EXPECT_TRUE(shard_slice(2, 3, 4).empty());
  EXPECT_EQ(shard_slice(2, 2, 4), (std::vector<std::size_t>{1}));
}

TEST(ShardSlice, RejectsInvalidShards) {
  EXPECT_THROW(shard_slice(10, 0, 4), util::CheckError);
  EXPECT_THROW(shard_slice(10, 5, 4), util::CheckError);
}

TEST_F(RegistryTest, RegistryRejectsDuplicatesAndMalformedDefs) {
  Registry registry;
  ExperimentDef def;
  def.name = "x";
  def.tables = {{"t", "", {"a"}}};
  def.cells = [] { return std::vector<CellDef>{}; };
  registry.add(def);
  EXPECT_THROW(registry.add(def), util::CheckError);  // duplicate name
  ExperimentDef unnamed = def;
  unnamed.name = "";
  EXPECT_THROW(registry.add(unnamed), util::CheckError);
  ExperimentDef tableless = def;
  tableless.name = "y";
  tableless.tables.clear();
  EXPECT_THROW(registry.add(tableless), util::CheckError);
}

}  // namespace
}  // namespace cobra::runner
