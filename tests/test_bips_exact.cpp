#include "core/bips_exact.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/bips.hpp"
#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "sim/stats.hpp"
#include "util/assert.hpp"

namespace cobra::core {
namespace {

double total_mass(const SubsetDistribution& d) {
  return std::accumulate(d.begin(), d.end(), 0.0);
}

TEST(BipsExact, InitialDistributionIsPointMass) {
  const graph::Graph g = graph::cycle(5);
  const auto dist = bips_initial_distribution(g, 2);
  EXPECT_EQ(dist.size(), 32u);
  EXPECT_DOUBLE_EQ(dist[1u << 2], 1.0);
  EXPECT_NEAR(total_mass(dist), 1.0, 1e-15);
}

TEST(BipsExact, StepPreservesMass) {
  const graph::Graph g = graph::petersen();
  ProcessOptions opt;
  auto dist = bips_initial_distribution(g, 0);
  for (int t = 0; t < 4; ++t) {
    dist = bips_exact_step(g, 0, dist, opt);
    EXPECT_NEAR(total_mass(dist), 1.0, 1e-12) << "round " << t;
  }
}

TEST(BipsExact, SourceAlwaysInfectedInSupport) {
  const graph::Graph g = graph::cycle(6);
  ProcessOptions opt;
  auto dist = bips_initial_distribution(g, 3);
  for (int t = 0; t < 5; ++t) dist = bips_exact_step(g, 3, dist, opt);
  for (SubsetMask a = 0; a < dist.size(); ++a) {
    if (dist[a] > 0.0) {
      EXPECT_TRUE((a >> 3) & 1u);
    }
  }
}

TEST(BipsExact, TwoVertexGraphHandComputed) {
  // P_2, source 0: vertex 1 always selects vertex 0, so A_1 = {0,1} surely.
  const graph::Graph g = graph::path(2);
  ProcessOptions opt;
  EXPECT_DOUBLE_EQ(bips_exact_infection_cdf(g, 0, 0, opt), 0.0);
  EXPECT_DOUBLE_EQ(bips_exact_infection_cdf(g, 0, 1, opt), 1.0);
  EXPECT_DOUBLE_EQ(bips_exact_expected_infection_time(g, 0, opt), 1.0);
}

TEST(BipsExact, PathThreeHandComputed) {
  // P_3 = 0-1-2, source 0 (end). Vertex 1 has neighbours {0,2}; with b=2 it
  // catches from A={0} with p = 1-(1/2)^2 = 3/4. Vertex 2's only neighbour
  // is 1 (not infected at t=0), so A_1 = {0,1} w.p. 3/4, {0} w.p. 1/4.
  const graph::Graph g = graph::path(3);
  ProcessOptions opt;
  const auto d1 = bips_exact_distribution(g, 0, 1, opt);
  EXPECT_NEAR(d1[0b001], 0.25, 1e-12);
  EXPECT_NEAR(d1[0b011], 0.75, 1e-12);
  EXPECT_NEAR(total_mass(d1), 1.0, 1e-12);
}

TEST(BipsExact, InfectionCdfMonotone) {
  const graph::Graph g = graph::cycle(7);
  ProcessOptions opt;
  double prev = 0.0;
  for (std::uint64_t T = 0; T <= 20; ++T) {
    const double cdf = bips_exact_infection_cdf(g, 0, T, opt);
    EXPECT_GE(cdf + 1e-12, prev);
    prev = cdf;
  }
  EXPECT_GT(prev, 0.9);  // C_7 infects fast
}

TEST(BipsExact, MissProbabilityDecreasesWithTime) {
  const graph::Graph g = graph::petersen();
  ProcessOptions opt;
  const std::vector<graph::VertexId> c_set = {7};
  double prev = 1.0;
  for (std::uint64_t T = 0; T <= 8; ++T) {
    const double miss = bips_exact_miss_probability(g, 0, c_set, T, opt);
    EXPECT_LE(miss - 1e-12, prev);
    prev = miss;
  }
  EXPECT_LT(prev, 0.1);
}

TEST(BipsExact, MatchesMonteCarloDistributionOfFullInfection) {
  const graph::Graph g = graph::cycle(5);
  ProcessOptions opt;
  const std::uint64_t T = 4;
  const double exact_cdf = bips_exact_infection_cdf(g, 0, T, opt);

  constexpr int kReps = 4000;
  int full = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto rng = rng::make_stream(313, static_cast<std::uint64_t>(rep));
    BipsProcess p(g, 0);
    for (std::uint64_t t = 0; t < T; ++t) p.step(rng);
    if (p.fully_infected()) ++full;
  }
  const auto ci = sim::wilson_interval(static_cast<std::uint64_t>(full),
                                       kReps, 3.3);  // ~99.9%
  EXPECT_TRUE(ci.contains(exact_cdf))
      << "exact " << exact_cdf << " not in [" << ci.low << ", " << ci.high
      << "]";
}

TEST(BipsExact, ExpectedInfectionTimeMatchesMonteCarlo) {
  const graph::Graph g = graph::star(5);
  ProcessOptions opt;
  const double exact = bips_exact_expected_infection_time(g, 0, opt);

  constexpr int kReps = 4000;
  std::vector<double> times;
  for (int rep = 0; rep < kReps; ++rep) {
    auto rng = rng::make_stream(414, static_cast<std::uint64_t>(rep));
    BipsProcess p(g, 0);
    times.push_back(static_cast<double>(*p.run_until_full(rng, 100000)));
  }
  const double mc = sim::mean(times);
  const double se = std::sqrt(sim::variance(times) / kReps);
  EXPECT_NEAR(mc, exact, 5 * se) << "exact " << exact << " MC " << mc;
}

TEST(BipsExact, ExpectedTimeWithRhoBranchingSlower) {
  const graph::Graph g = graph::cycle(6);
  ProcessOptions b2;
  ProcessOptions slow;
  slow.branching = Branching::one_plus_rho(0.25);
  EXPECT_LT(bips_exact_expected_infection_time(g, 0, b2),
            bips_exact_expected_infection_time(g, 0, slow));
}

TEST(BipsExact, SizeLimitsEnforced) {
  ProcessOptions opt;
  const graph::Graph big = graph::cycle(20);
  EXPECT_THROW(bips_initial_distribution(big, 0), util::CheckError);
  const graph::Graph medium = graph::cycle(12);
  EXPECT_THROW(bips_exact_expected_infection_time(medium, 0, opt),
               util::CheckError);
}

}  // namespace
}  // namespace cobra::core
