// Engine-equivalence guarantees of the BIPS port onto the frontier kernel
// (core/frontier_kernel.hpp), mirroring tests/test_cobra_engines.cpp:
//   * reference, sparse, dense and auto are bit-for-bit identical at a
//     fixed seed — the keyed draw protocol covers every engine, so the
//     representation (plain scan vs boundary-marked bitset) cannot change
//     the trajectory;
//   * golden-seed first-infection sequences agree across engines on path,
//     cycle, hypercube and random-regular fixtures;
//   * the dense boundary-marking round skips exactly the determined
//     vertices, with and without laziness, and the auto engine switches at
//     both density extremes.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/bips.hpp"
#include "core/frontier_kernel.hpp"
#include "graph/generators.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "util/assert.hpp"

namespace cobra::core {
namespace {

constexpr Engine kAllEngines[] = {Engine::kReference, Engine::kSparse,
                                  Engine::kDense, Engine::kAuto};

rng::Rng test_rng(std::uint64_t salt) { return rng::make_stream(3003, salt); }

std::vector<graph::Graph> fixture_graphs() {
  rng::Rng gen = test_rng(999);
  std::vector<graph::Graph> graphs;
  graphs.push_back(graph::path(48));
  graphs.push_back(graph::cycle(64));
  graphs.push_back(graph::hypercube(7));
  graphs.push_back(graph::connected_random_regular(256, 6, gen));
  return graphs;
}

std::vector<graph::VertexId> sorted_infected(const BipsProcess& p) {
  std::vector<graph::VertexId> v = p.infected();
  std::sort(v.begin(), v.end());
  return v;
}

BipsOptions engine_options(Engine e) {
  BipsOptions opt;
  opt.process.engine = e;
  return opt;
}

/// Steps `a` and `b` in lockstep on identically seeded streams and asserts
/// every observable agrees each round: the bit-for-bit claim, which for
/// the kernel-ported BIPS includes the reference engine.
void expect_lockstep_identical(BipsProcess& a, BipsProcess& b,
                               std::uint64_t seed, int max_rounds) {
  rng::Rng rng_a = rng::make_stream(seed, 0);
  rng::Rng rng_b = rng::make_stream(seed, 0);
  a.reset(graph::VertexId{0});
  b.reset(graph::VertexId{0});
  for (int t = 0; t < max_rounds && !a.fully_infected(); ++t) {
    const std::uint32_t size_a = a.step(rng_a);
    const std::uint32_t size_b = b.step(rng_b);
    ASSERT_EQ(size_a, size_b) << "round " << t;
    ASSERT_EQ(a.infected_degree(), b.infected_degree()) << "round " << t;
    ASSERT_EQ(sorted_infected(a), sorted_infected(b)) << "round " << t;
    for (graph::VertexId u = 0; u < a.graph().num_vertices(); ++u)
      ASSERT_EQ(a.is_infected(u), b.is_infected(u)) << "round " << t;
  }
  EXPECT_EQ(a.round(), b.round());
  EXPECT_EQ(a.fully_infected(), b.fully_infected());
}

TEST(BipsEngines, AllEnginesBitForBitOnFixtures) {
  for (const graph::Graph& g : fixture_graphs()) {
    for (const Engine other : {Engine::kSparse, Engine::kDense,
                               Engine::kAuto}) {
      BipsProcess reference(g, 0, engine_options(Engine::kReference));
      BipsProcess candidate(g, 0, engine_options(other));
      expect_lockstep_identical(reference, candidate,
                                8000 + g.num_vertices(), 20000);
    }
  }
}

TEST(BipsEngines, BitForBitWithLazinessAndBernoulliBranching) {
  const graph::Graph g = graph::hypercube(6);
  for (double laziness : {0.0, 0.5}) {
    BipsOptions ref_opt;
    ref_opt.process.engine = Engine::kReference;
    ref_opt.process.laziness = laziness;
    ref_opt.process.branching = Branching::one_plus_rho(0.3);
    BipsOptions dense_opt = ref_opt;
    dense_opt.process.engine = Engine::kDense;
    BipsProcess reference(g, 0, ref_opt);
    BipsProcess dense(g, 0, dense_opt);
    expect_lockstep_identical(reference, dense, 77, 20000);
  }
}

TEST(BipsEngines, FirstInfectionRoundsIdenticalAcrossEngines) {
  // The full infection sequence — the round at which each vertex is first
  // infected — must agree across every engine, not just aggregates.
  const graph::Graph g = graph::cycle(96);
  std::map<Engine, std::vector<std::uint64_t>> first_infected;
  for (const Engine e : kAllEngines) {
    BipsProcess p(g, 0, engine_options(e));
    rng::Rng rng = rng::make_stream(606, 0);
    std::vector<std::uint64_t> rounds(g.num_vertices(), ~0ull);
    rounds[0] = 0;
    while (!p.fully_infected()) {
      ASSERT_LT(p.round(), 1000000u);
      p.step(rng);
      for (graph::VertexId u = 0; u < g.num_vertices(); ++u)
        if (rounds[u] == ~0ull && p.is_infected(u)) rounds[u] = p.round();
    }
    first_infected[e] = std::move(rounds);
  }
  for (const Engine e : {Engine::kSparse, Engine::kDense, Engine::kAuto})
    EXPECT_EQ(first_infected[Engine::kReference], first_infected[e]);
}

TEST(BipsEngines, InfectionTimesIdenticalAcrossEnginesOnRandomRegular) {
  rng::Rng gen = test_rng(4);
  const graph::Graph g = graph::connected_random_regular(512, 8, gen);
  std::map<Engine, std::vector<std::uint64_t>> times;
  for (const Engine e : kAllEngines) {
    BipsOptions opt = engine_options(e);
    BipsProcess p(g, 0, opt);
    for (std::uint64_t rep = 0; rep < 8; ++rep) {
      rng::Rng rng = rng::make_stream(707, rep);
      p.reset(0);
      const auto full = p.run_until_full(rng, 1000000);
      ASSERT_TRUE(full.has_value());
      times[e].push_back(*full);
    }
  }
  for (const Engine e : {Engine::kSparse, Engine::kDense, Engine::kAuto})
    EXPECT_EQ(times[Engine::kReference], times[e]);
}

TEST(BipsEngines, BitForBitUnderEitherDrawHash) {
  const graph::Graph g = graph::hypercube(6);
  for (const DrawHash hash : {DrawHash::kMix64, DrawHash::kPhilox}) {
    BipsOptions ref_opt = engine_options(Engine::kReference);
    ref_opt.process.draw_hash = hash;
    BipsOptions dense_opt = engine_options(Engine::kDense);
    dense_opt.process.draw_hash = hash;
    BipsProcess reference(g, 0, ref_opt);
    BipsProcess dense(g, 0, dense_opt);
    expect_lockstep_identical(reference, dense, 13, 20000);
  }
}

TEST(BipsEngines, MultiSourceBitForBitAcrossEngines) {
  const graph::Graph g = graph::hypercube(7);
  const graph::VertexId sources[] = {0, 63, 100};
  std::map<Engine, std::vector<graph::VertexId>> after;
  for (const Engine e : kAllEngines) {
    BipsProcess p(g, 0, engine_options(e));
    p.reset(std::span<const graph::VertexId>(sources, 3));
    rng::Rng rng = rng::make_stream(505, 0);
    for (int t = 0; t < 6; ++t) p.step(rng);
    after[e] = sorted_infected(p);
  }
  for (const Engine e : {Engine::kSparse, Engine::kDense, Engine::kAuto})
    EXPECT_EQ(after[Engine::kReference], after[e]);
}

TEST(BipsEngines, AutoRunsDenseAtBothDensityExtremes) {
  // The BIPS auto rule is edge-budget based: the boundary-marking dense
  // round is cheap both when A_t is tiny and when it is nearly full, so a
  // full infection run under kAuto must use dense rounds while the forced
  // sparse engine never does.
  rng::Rng gen = test_rng(5);
  const graph::Graph g = graph::connected_random_regular(512, 8, gen);
  BipsProcess autop(g, 0, engine_options(Engine::kAuto));
  rng::Rng rng = test_rng(6);
  ASSERT_TRUE(autop.run_until_full(rng, 1000000).has_value());
  EXPECT_GT(autop.dense_rounds(), 0u);

  BipsProcess sparse(g, 0, engine_options(Engine::kSparse));
  rng::Rng rng2 = test_rng(6);
  ASSERT_TRUE(sparse.run_until_full(rng2, 1000000).has_value());
  EXPECT_EQ(sparse.dense_rounds(), 0u);
}

TEST(BipsEngines, FullInfectionStaysAbsorbingOnEveryEngine) {
  const graph::Graph g = graph::complete(32);
  for (const Engine e : kAllEngines) {
    BipsProcess p(g, 0, engine_options(e));
    rng::Rng rng = test_rng(7);
    ASSERT_TRUE(p.run_until_full(rng, 10000).has_value());
    for (int extra = 0; extra < 10; ++extra) {
      p.step(rng);
      EXPECT_TRUE(p.fully_infected()) << engine_name(e);
      EXPECT_TRUE(p.is_infected(17));
    }
  }
}

TEST(BipsEngines, SharedSamplerReproducesPerProcessResults) {
  const graph::Graph g = graph::hypercube(6);
  const auto sampler = std::make_shared<const NeighborSampler>(g, 0.0);
  BipsOptions own = engine_options(Engine::kAuto);
  BipsOptions shared = own;
  shared.process.sampler = sampler;
  BipsProcess p_own(g, 0, own);
  BipsProcess p_shared(g, 0, shared);
  expect_lockstep_identical(p_own, p_shared, 99, 20000);
}

TEST(BipsEngines, SharedSamplerMustMatchGraphAndLaziness) {
  const graph::Graph g = graph::hypercube(5);
  const graph::Graph other = graph::cycle(32);
  BipsOptions opt = engine_options(Engine::kDense);
  opt.process.sampler = std::make_shared<const NeighborSampler>(other, 0.0);
  EXPECT_THROW(BipsProcess(g, 0, opt), util::CheckError);
  BipsOptions lazy = engine_options(Engine::kDense);
  lazy.process.laziness = 0.5;
  lazy.process.sampler = std::make_shared<const NeighborSampler>(g, 0.25);
  EXPECT_THROW(BipsProcess(g, 0, lazy), util::CheckError);
}

TEST(BipsEngines, ProbabilityKernelIsEngineIndependent) {
  // The probability kernel's scan is edge-driven; every engine must run
  // the identical keyed Bernoulli pass.
  const graph::Graph g = graph::petersen();
  std::map<Engine, std::vector<graph::VertexId>> after;
  for (const Engine e : kAllEngines) {
    BipsOptions opt = engine_options(e);
    opt.kernel = BipsKernel::kProbability;
    BipsProcess p(g, 0, opt);
    rng::Rng rng = rng::make_stream(404, 0);
    for (int t = 0; t < 8; ++t) p.step(rng);
    after[e] = sorted_infected(p);
    EXPECT_EQ(p.dense_rounds(), 0u);
  }
  for (const Engine e : {Engine::kSparse, Engine::kDense, Engine::kAuto})
    EXPECT_EQ(after[Engine::kReference], after[e]);
}

TEST(BipsEngines, RejectsNonPositiveEdgeBudget) {
  const graph::Graph g = graph::cycle(8);
  BipsOptions opt;
  opt.dense_edge_budget = 0.0;
  EXPECT_THROW(BipsProcess(g, 0, opt), util::CheckError);
}

}  // namespace
}  // namespace cobra::core
