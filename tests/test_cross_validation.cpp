// Cross-validation between independent implementations of the same law:
//   * CobraProcess with b = 1 IS a simple random walk — its cover time must
//     match the dedicated single-particle walker distributionally;
//   * the exact BIPS subset-DP supports every ProcessOptions, so lazy and
//     1+rho variants of the simulators are pinned to closed numbers too;
//   * the duality holds per-omega for every options combination (spot
//     checks beyond the dedicated duality suite).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/random_walk.hpp"
#include "core/bips.hpp"
#include "core/bips_exact.hpp"
#include "core/cobra.hpp"
#include "graph/generators.hpp"
#include "rng/stream.hpp"
#include "sim/stats.hpp"

namespace cobra::core {
namespace {

TEST(CrossValidation, CobraB1MatchesRandomWalkCoverLaw) {
  for (const graph::Graph& g : {graph::petersen(), graph::cycle(16)}) {
    constexpr int kReps = 400;
    std::vector<double> via_cobra, via_walk;
    ProcessOptions b1;
    b1.branching = Branching::integer(1);
    for (int rep = 0; rep < kReps; ++rep) {
      {
        auto rng = rng::make_stream(881, static_cast<std::uint64_t>(rep));
        CobraProcess p(g, b1);
        p.reset(graph::VertexId{0});
        via_cobra.push_back(
            static_cast<double>(*p.run_until_cover(rng, 1u << 24)));
      }
      {
        auto rng = rng::make_stream(882, static_cast<std::uint64_t>(rep));
        via_walk.push_back(static_cast<double>(
            baselines::random_walk_cover(g, 0, rng, 1u << 24).steps));
      }
    }
    const double se = std::sqrt(sim::variance(via_cobra) / kReps +
                                sim::variance(via_walk) / kReps);
    EXPECT_LT(std::fabs(sim::mean(via_cobra) - sim::mean(via_walk)), 5 * se)
        << g.name();
  }
}

TEST(CrossValidation, LazyBipsMatchesExactDp) {
  const graph::Graph g = graph::cycle(6);  // bipartite: laziness matters
  ProcessOptions opt;
  opt.laziness = 0.5;
  const std::uint64_t T = 6;
  const double exact = bips_exact_infection_cdf(g, 0, T, opt);

  constexpr int kReps = 4000;
  int full = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto rng = rng::make_stream(883, static_cast<std::uint64_t>(rep));
    BipsProcess p(g, 0, BipsOptions{opt, BipsKernel::kSampling});
    for (std::uint64_t t = 0; t < T; ++t) p.step(rng);
    if (p.fully_infected()) ++full;
  }
  const auto ci =
      sim::wilson_interval(static_cast<std::uint64_t>(full), kReps, 3.5);
  EXPECT_TRUE(ci.contains(exact))
      << "exact " << exact << " ci [" << ci.low << ", " << ci.high << "]";
}

TEST(CrossValidation, RhoBipsProbabilityKernelMatchesExactDp) {
  const graph::Graph g = graph::petersen();
  ProcessOptions opt;
  opt.branching = Branching::one_plus_rho(0.5);
  const std::uint64_t T = 4;
  const double exact = bips_exact_infection_cdf(g, 0, T, opt);

  constexpr int kReps = 4000;
  int full = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto rng = rng::make_stream(884, static_cast<std::uint64_t>(rep));
    BipsProcess p(g, 0, BipsOptions{opt, BipsKernel::kProbability});
    for (std::uint64_t t = 0; t < T; ++t) p.step(rng);
    if (p.fully_infected()) ++full;
  }
  const auto ci =
      sim::wilson_interval(static_cast<std::uint64_t>(full), kReps, 3.5);
  EXPECT_TRUE(ci.contains(exact))
      << "exact " << exact << " ci [" << ci.low << ", " << ci.high << "]";
}

TEST(CrossValidation, ExactExpectationMatchesB1RandomWalkStructure) {
  // For b = 1 the BIPS expected infection time on P_2 is 1 (vertex 1 always
  // picks its only neighbour 0): degenerate but exercised through the
  // b = 1 + rho = 1 + 0 path.
  const graph::Graph g = graph::path(2);
  ProcessOptions b1;
  b1.branching = Branching::one_plus_rho(0.0);
  EXPECT_DOUBLE_EQ(bips_exact_expected_infection_time(g, 0, b1), 1.0);
}

TEST(CrossValidation, CobraHitSurvivalMatchesExactDpWithRho) {
  // Duality + exact DP for the Section 6 branching model.
  const graph::Graph g = graph::cycle(8);
  ProcessOptions opt;
  opt.branching = Branching::one_plus_rho(0.5);
  const std::vector<graph::VertexId> c_set = {4};
  const std::uint64_t T = 5;
  const double exact = bips_exact_miss_probability(g, 0, c_set, T, opt);

  constexpr int kReps = 4000;
  int misses = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto rng = rng::make_stream(885, static_cast<std::uint64_t>(rep));
    CobraProcess p(g, opt);
    p.reset(std::span<const graph::VertexId>(c_set.data(), c_set.size()));
    if (!p.run_until_hit(rng, 0, T).has_value()) ++misses;
  }
  const auto ci =
      sim::wilson_interval(static_cast<std::uint64_t>(misses), kReps, 3.5);
  EXPECT_TRUE(ci.contains(exact))
      << "exact " << exact << " ci [" << ci.low << ", " << ci.high << "]";
}

}  // namespace
}  // namespace cobra::core
