// The COBRA process (coalescing-branching random walk), Dutta et al. [5,6],
// as analysed by Cooper, Radzik, Rivera (SPAA'17).
//
// State: the set C_t of vertices holding a particle. Each round, every
// vertex in C_t pushes to b random neighbours (chosen independently,
// uniformly, with replacement); C_{t+1} is the set of vertices receiving at
// least one particle (multiple arrivals coalesce).
//
// cover(u) = min{ T : union of C_0..C_T = V } with C_0 = {u}.
//
// The per-round work runs on the process-agnostic frontier kernel
// (core::FrontierKernel, core/frontier_kernel.hpp), which owns the
// sparse/dense frontier representations, the coalescing rule, the
// auto-switch and the visited accumulator. The engine (core::Engine)
// selects the representation; COBRA's reference engine additionally keeps
// the original sequential draw protocol. See docs/ARCHITECTURE.md
// ("Frontier kernel") for the design and tests/test_cobra_engines.cpp for
// the equivalence guarantees.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/frontier_kernel.hpp"
#include "core/process.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::core {

/// Simulator for one COBRA trajectory on a fixed graph.
///
/// Not thread-safe; run one instance per replicate (sim/monte_carlo does).
class CobraProcess {
 public:
  /// The graph must be connected with min degree >= 1 — except the trivial
  /// single-vertex graph (n = 1, no edges), which is accepted and covers at
  /// round 0 with every push staying put. Graphs with n >= 2 and an
  /// isolated vertex are rejected. The process keeps a reference, so the
  /// graph must outlive it.
  explicit CobraProcess(const graph::Graph& g,
                        ProcessOptions options = ProcessOptions{});

  /// Restarts with C_0 = {start}; `start` counts as visited at round 0.
  void reset(graph::VertexId start);

  /// Restarts with C_0 = `start` (deduplicated); all count as visited.
  void reset(std::span<const graph::VertexId> start);

  /// Executes one synchronised round. Returns the number of first-time
  /// visits this round. The reference engine consumes the stream draw by
  /// draw; the fast engines consume exactly one 64-bit round key per call
  /// and derive all per-vertex randomness from it (frontier_kernel.hpp).
  std::uint32_t step(rng::Rng& rng);

  /// Rounds executed since reset (t of C_t).
  [[nodiscard]] std::uint64_t round() const { return round_; }

  /// Current particle set C_t (duplicate-free). Order is engine-dependent:
  /// arrival order under the reference/sparse engines, ascending vertex id
  /// when the dense frontier produced the round. Materialised lazily after
  /// dense rounds; prefer num_active() when only the size is needed.
  [[nodiscard]] const std::vector<graph::VertexId>& active() const {
    return kernel_.frontier_vector();
  }

  /// |C_t| without materialising the vector (O(1)).
  [[nodiscard]] std::uint32_t num_active() const {
    return kernel_.frontier_size();
  }

  /// True iff u holds a particle in C_t.
  [[nodiscard]] bool is_active(graph::VertexId u) const {
    return kernel_.in_frontier(u);
  }

  /// Vertices visited so far (|C_0 ∪ ... ∪ C_t|).
  [[nodiscard]] std::uint32_t num_visited() const {
    return kernel_.num_visited();
  }

  /// True iff every vertex has been visited.
  [[nodiscard]] bool all_visited() const { return kernel_.all_visited(); }

  /// True iff u appeared in some C_s, s <= t.
  [[nodiscard]] bool is_visited(graph::VertexId u) const {
    return kernel_.is_visited(u);
  }

  /// Total particle transmissions since reset (the process's message cost;
  /// the quantity COBRA is designed to keep at O(b |C_t|) per round).
  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }

  /// Runs until all vertices are visited; returns the cover time, or
  /// nullopt if `max_rounds` elapse first (callers treat that as a failed
  /// w.h.p. event and may restart, as the paper's restart argument does).
  std::optional<std::uint64_t> run_until_cover(rng::Rng& rng,
                                               std::uint64_t max_rounds);

  /// Runs until `target` is visited; returns Hit(target).
  std::optional<std::uint64_t> run_until_hit(rng::Rng& rng,
                                             graph::VertexId target,
                                             std::uint64_t max_rounds);

  /// The graph this process walks on.
  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }

  /// The options the process was constructed with (engine unresolved).
  [[nodiscard]] const ProcessOptions& options() const { return options_; }

  /// The resolved stepping engine (never Engine::kDefault).
  [[nodiscard]] Engine engine() const { return engine_; }

  /// The resolved in-round lane count the kernel runs with (>= 1);
  /// results are bit-identical at every setting.
  [[nodiscard]] int kernel_threads() const {
    return kernel_.kernel_threads();
  }

  /// Rounds since reset executed with the dense (bitset) frontier —
  /// introspection for tests and the auto-switch benchmarks.
  [[nodiscard]] std::uint64_t dense_rounds() const {
    return kernel_.dense_rounds();
  }

 private:
  /// Number of selections this vertex makes this round (base [+1]).
  std::uint32_t draw_fanout(rng::Rng& rng) const {
    const Branching& b = options_.branching;
    return b.base + ((b.extra_prob > 0.0 && rng.bernoulli(b.extra_prob)) ? 1u
                                                                         : 0u);
  }

  /// Builds the kernel configuration for the resolved engine.
  FrontierKernel::Config kernel_config() const;

  std::uint32_t step_reference(rng::Rng& rng);
  std::uint32_t step_fast(std::uint64_t round_key);

  /// One keyed sparse round over the frontier into `sink`.
  template <typename Sink>
  void push_round(std::uint64_t round_key, Sink sink);

  /// One keyed dense round through the kernel's lane-parallel frontier
  /// scan (serial at kernel_threads = 1, bit-identical at any setting).
  void push_round_dense(std::uint64_t round_key);

  const graph::Graph* graph_;
  ProcessOptions options_;
  Engine engine_;
  FrontierKernel kernel_;
  std::uint64_t round_ = 0;
  std::uint64_t transmissions_ = 0;
};

}  // namespace cobra::core
