// The COBRA process (coalescing-branching random walk), Dutta et al. [5,6],
// as analysed by Cooper, Radzik, Rivera (SPAA'17).
//
// State: the set C_t of vertices holding a particle. Each round, every
// vertex in C_t pushes to b random neighbours (chosen independently,
// uniformly, with replacement); C_{t+1} is the set of vertices receiving at
// least one particle (multiple arrivals coalesce).
//
// cover(u) = min{ T : union of C_0..C_T = V } with C_0 = {u}.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/process.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"
#include "util/bitset.hpp"

namespace cobra::core {

class CobraProcess {
 public:
  /// The graph must be connected with min degree >= 1; the process keeps a
  /// reference, so the graph must outlive it.
  explicit CobraProcess(const graph::Graph& g,
                        ProcessOptions options = ProcessOptions{});

  /// Restarts with C_0 = {start}; `start` counts as visited at round 0.
  void reset(graph::VertexId start);

  /// Restarts with C_0 = `start` (deduplicated); all count as visited.
  void reset(std::span<const graph::VertexId> start);

  /// Executes one synchronised round. Returns the number of first-time
  /// visits this round.
  std::uint32_t step(rng::Rng& rng);

  /// Rounds executed since reset (t of C_t).
  [[nodiscard]] std::uint64_t round() const { return round_; }

  /// Current particle set C_t (unordered, duplicate-free).
  [[nodiscard]] const std::vector<graph::VertexId>& active() const {
    return active_;
  }

  [[nodiscard]] bool is_active(graph::VertexId u) const {
    return stamp_[u] == epoch_;
  }

  [[nodiscard]] std::uint32_t num_visited() const { return visited_count_; }
  [[nodiscard]] bool all_visited() const {
    return visited_count_ == graph_->num_vertices();
  }
  [[nodiscard]] bool is_visited(graph::VertexId u) const {
    return visited_.test(u);
  }

  /// Total particle transmissions since reset (the process's message cost;
  /// the quantity COBRA is designed to keep at O(b |C_t|) per round).
  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }

  /// Runs until all vertices are visited; returns the cover time, or
  /// nullopt if `max_rounds` elapse first (callers treat that as a failed
  /// w.h.p. event and may restart, as the paper's restart argument does).
  std::optional<std::uint64_t> run_until_cover(rng::Rng& rng,
                                               std::uint64_t max_rounds);

  /// Runs until `target` is visited; returns Hit(target).
  std::optional<std::uint64_t> run_until_hit(rng::Rng& rng,
                                             graph::VertexId target,
                                             std::uint64_t max_rounds);

  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }
  [[nodiscard]] const ProcessOptions& options() const { return options_; }

 private:
  /// Number of selections this vertex makes this round (base [+1]).
  std::uint32_t draw_fanout(rng::Rng& rng) const {
    const Branching& b = options_.branching;
    return b.base + ((b.extra_prob > 0.0 && rng.bernoulli(b.extra_prob)) ? 1u
                                                                         : 0u);
  }

  const graph::Graph* graph_;
  ProcessOptions options_;

  std::vector<graph::VertexId> active_;
  std::vector<graph::VertexId> next_;
  // Epoch-stamped membership: stamp_[u] == epoch_ means u in C_t. Avoids an
  // O(n) clear per round.
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;

  util::DynamicBitset visited_;
  std::uint32_t visited_count_ = 0;
  std::uint64_t round_ = 0;
  std::uint64_t transmissions_ = 0;
};

}  // namespace cobra::core
