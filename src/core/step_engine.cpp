#include "core/step_engine.hpp"

#include <string>

#include "core/process.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace cobra::core {

NeighborSampler::NeighborSampler(const graph::Graph& g, double laziness)
    : graph_(&g), laziness_(laziness) {
  COBRA_CHECK(g.num_vertices() >= 1);
  COBRA_CHECK(laziness >= 0.0 && laziness < 1.0);

  bucket_of_degree_.assign(g.max_degree() + 1, 0u);
  std::vector<bool> seen(g.max_degree() + 1, false);
  for (graph::VertexId u = 0; u < g.num_vertices(); ++u)
    seen[g.degree(u)] = true;

  for (std::uint32_t d = 0; d <= g.max_degree(); ++d) {
    if (!seen[d]) continue;
    bucket_of_degree_[d] = static_cast<std::uint32_t>(tables_.size());
    std::vector<double> weights;
    if (d == 0) {
      // Single-vertex graph: the only "destination" is staying put.
      weights.assign(1, 1.0);
    } else {
      weights.assign(d, (1.0 - laziness_) / static_cast<double>(d));
      if (laziness_ > 0.0) weights.push_back(laziness_);
    }
    tables_.emplace_back(weights);
  }
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kDefault: return "default";
    case Engine::kReference: return "reference";
    case Engine::kSparse: return "sparse";
    case Engine::kDense: return "dense";
    case Engine::kAuto: return "auto";
  }
  return "invalid";
}

std::optional<Engine> parse_engine(std::string_view name) {
  if (name == "reference") return Engine::kReference;
  if (name == "sparse") return Engine::kSparse;
  if (name == "dense") return Engine::kDense;
  if (name == "auto" || name == "fast") return Engine::kAuto;
  return std::nullopt;
}

Engine resolve_engine(Engine engine) {
  if (engine != Engine::kDefault) return engine;
  const std::string session = util::engine();
  const auto parsed = parse_engine(session);
  COBRA_CHECK_MSG(parsed.has_value(),
                  "COBRA_ENGINE/--engine must be one of "
                  "reference|sparse|dense|auto (got \"" +
                      session + "\")");
  return *parsed;
}

}  // namespace cobra::core
