// The paper's concentration toolkit (Section 2): a super-martingale
// Azuma-Hoeffding inequality and its "for all q >= q0" corollary.
//
//   Lemma 2.1:    P(S_q > delta * q^{1/2}) < exp(-delta^2 / 2),
//                 for |Z_i| <= 1, E(Z_i | past) <= 0, S_q = sum Z_i.
//   Corollary 2.2: P(exists q >= q0 : S_q > alpha (q - q0) + delta q0^{1/2})
//                 < q0 exp(-delta^2/4) + (16/alpha^2) exp(-alpha^2 q0 / 4).
//
// These are deterministic formulas; bench/exp_martingale compares them with
// the empirical tail of simulated BIPS martingales (Section 3 serialisation).
#pragma once

#include <cstdint>

namespace cobra::core {

/// Lemma 2.1 right-hand side.
double azuma_tail_lemma21(double delta);

/// Corollary 2.2 right-hand side; requires delta > 0, q0 >= 1, 0 < alpha <= 1.
double azuma_tail_cor22(double delta, std::uint64_t q0, double alpha);

/// Lemma 3.1 round threshold t(k) = 4k + C' dmax^2 ln n with the paper's
/// constant schedule C' = 16 (C + 4) for target failure exponent C.
double lemma31_round_threshold(std::uint64_t k, std::uint32_t dmax,
                               std::uint64_t n, double failure_exponent_c);

/// Corollary 5.1 threshold t(kappa) = 4 r kappa + C' r^2 ln n.
double cor51_round_threshold(std::uint64_t kappa, std::uint32_t r,
                             std::uint64_t n, double failure_exponent_c);

}  // namespace cobra::core
