#include "core/bounds.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace cobra::core {

using util::safe_log;

double bound_thm11_general(std::uint64_t n, std::uint64_t m,
                           std::uint32_t dmax) {
  COBRA_CHECK(n >= 2 && m >= 1 && dmax >= 1);
  return static_cast<double>(m) +
         util::sq(static_cast<double>(dmax)) * safe_log(static_cast<double>(n));
}

double bound_thm12_regular(std::uint64_t n, std::uint32_t r, double lambda) {
  COBRA_CHECK(n >= 2 && r >= 1);
  COBRA_CHECK_MSG(lambda < 1.0, "Theorem 1.2 needs eigenvalue gap > 0");
  const double rd = static_cast<double>(r);
  return (rd / (1.0 - lambda) + rd * rd) * safe_log(static_cast<double>(n));
}

double bound_spaa16_general(std::uint64_t n) {
  COBRA_CHECK(n >= 2);
  const double nd = static_cast<double>(n);
  return std::pow(nd, 2.75) * safe_log(nd);
}

double bound_spaa16_regular(std::uint64_t n, std::uint32_t r, double phi) {
  COBRA_CHECK(n >= 2 && r >= 1);
  COBRA_CHECK_MSG(phi > 0.0, "conductance must be positive");
  const double rd = static_cast<double>(r);
  const double ln = safe_log(static_cast<double>(n));
  return std::pow(rd, 4) / (phi * phi) * ln * ln;
}

double bound_spaa16_grid(std::uint64_t n, std::uint32_t dimension) {
  COBRA_CHECK(n >= 2 && dimension >= 1);
  const double d = static_cast<double>(dimension);
  return d * d * std::pow(static_cast<double>(n), 1.0 / d);
}

double bound_podc16_regular(std::uint64_t n, double lambda) {
  COBRA_CHECK(n >= 2);
  COBRA_CHECK_MSG(lambda < 1.0, "eigenvalue gap must be positive");
  const double gap = 1.0 - lambda;
  return safe_log(static_cast<double>(n)) / (gap * gap * gap);
}

double bound_dutta_complete(std::uint64_t n) {
  return safe_log(static_cast<double>(n));
}

double bound_dutta_expander(std::uint64_t n) {
  return util::sq(safe_log(static_cast<double>(n)));
}

double bound_dutta_grid(std::uint64_t n, std::uint32_t dimension) {
  COBRA_CHECK(dimension >= 1);
  return std::pow(static_cast<double>(n),
                  1.0 / static_cast<double>(dimension));
}

double bound_lower(std::uint64_t n, std::uint32_t diameter) {
  COBRA_CHECK(n >= 2);
  return std::max(std::log2(static_cast<double>(n)),
                  static_cast<double>(diameter));
}

double rho_scaling(double rho) {
  COBRA_CHECK(rho > 0.0 && rho <= 1.0);
  return 1.0 / (rho * rho);
}

bool gap_condition_holds(std::uint64_t n, double lambda, double c) {
  COBRA_CHECK(n >= 2);
  const double nd = static_cast<double>(n);
  return (1.0 - lambda) > c * std::sqrt(safe_log(nd) / nd);
}

std::vector<BoundValue> bound_report(const graph::Graph& g,
                                     std::optional<double> lambda,
                                     std::optional<double> phi,
                                     std::optional<std::uint32_t> diameter,
                                     std::optional<std::uint32_t> dimension) {
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  std::vector<BoundValue> out;

  out.push_back({"thm1.1  m+dmax^2·ln n",
                 bound_thm11_general(n, m, g.max_degree()), true});
  out.push_back({"spaa16  n^2.75·ln n", bound_spaa16_general(n), true});

  const bool regular = g.is_regular();
  if (regular && lambda.has_value() && *lambda < 1.0) {
    out.push_back({"thm1.2  (r/gap+r^2)·ln n",
                   bound_thm12_regular(n, g.max_degree(), *lambda), true});
    out.push_back({"podc16  ln n/gap^3",
                   bound_podc16_regular(n, *lambda), true});
  } else {
    out.push_back({"thm1.2  (r/gap+r^2)·ln n", 0.0, false});
    out.push_back({"podc16  ln n/gap^3", 0.0, false});
  }
  if (regular && phi.has_value() && *phi > 0.0) {
    out.push_back({"spaa16  r^4/phi^2·ln^2 n",
                   bound_spaa16_regular(n, g.max_degree(), *phi), true});
  } else {
    out.push_back({"spaa16  r^4/phi^2·ln^2 n", 0.0, false});
  }
  if (dimension.has_value()) {
    out.push_back({"spaa16  D^2·n^(1/D)",
                   bound_spaa16_grid(n, *dimension), true});
  }
  if (diameter.has_value()) {
    out.push_back({"lower   max(log2 n, diam)",
                   bound_lower(n, *diameter), true});
  }
  return out;
}

}  // namespace cobra::core
