#include "core/azuma.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace cobra::core {

double azuma_tail_lemma21(double delta) {
  COBRA_CHECK(delta >= 0.0);
  return std::exp(-delta * delta / 2.0);
}

double azuma_tail_cor22(double delta, std::uint64_t q0, double alpha) {
  COBRA_CHECK(delta > 0.0 && q0 >= 1);
  COBRA_CHECK(alpha > 0.0 && alpha <= 1.0);
  const double q0d = static_cast<double>(q0);
  return q0d * std::exp(-delta * delta / 4.0) +
         (16.0 / (alpha * alpha)) * std::exp(-alpha * alpha * q0d / 4.0);
}

double lemma31_round_threshold(std::uint64_t k, std::uint32_t dmax,
                               std::uint64_t n, double failure_exponent_c) {
  COBRA_CHECK(k >= 1 && dmax >= 1 && n >= 2);
  const double c_prime = 16.0 * (failure_exponent_c + 4.0);
  return 4.0 * static_cast<double>(k) +
         c_prime * util::sq(static_cast<double>(dmax)) *
             util::safe_log(static_cast<double>(n));
}

double cor51_round_threshold(std::uint64_t kappa, std::uint32_t r,
                             std::uint64_t n, double failure_exponent_c) {
  COBRA_CHECK(kappa >= 1 && r >= 1 && n >= 2);
  const double c_prime = 16.0 * (failure_exponent_c + 4.0);
  return 4.0 * static_cast<double>(r) * static_cast<double>(kappa) +
         c_prime * util::sq(static_cast<double>(r)) *
             util::safe_log(static_cast<double>(n));
}

}  // namespace cobra::core
