#include "core/estimators.hpp"

#include <atomic>

#include "sim/monte_carlo.hpp"
#include "util/assert.hpp"

namespace cobra::core {

namespace {

constexpr double kTimeoutSentinel = -1.0;

// Resolves the stepping engine once per estimate and builds the
// degree-bucketed alias tables a single time so every replicate (and
// thread) shares them instead of rebuilding per process. COBRA's legacy
// reference engine draws sequentially and needs no tables.
ProcessOptions share_sampler(const graph::Graph& g,
                             const ProcessOptions& options) {
  ProcessOptions resolved = options;
  resolved.engine = resolve_engine(options.engine);
  if (resolved.engine != Engine::kReference && resolved.sampler == nullptr)
    resolved.sampler =
        std::make_shared<const NeighborSampler>(g, resolved.laziness);
  return resolved;
}

// BIPS counterpart: every engine of the sampling kernel consumes the
// shared sampler (the keyed protocol covers reference too); the
// probability kernel samples no destinations.
BipsOptions share_bips_sampler(const graph::Graph& g,
                               const BipsOptions& options) {
  BipsOptions resolved = options;
  resolved.process.engine = resolve_engine(options.process.engine);
  if (resolved.kernel == BipsKernel::kSampling &&
      resolved.process.sampler == nullptr) {
    resolved.process.sampler = std::make_shared<const NeighborSampler>(
        g, resolved.process.laziness);
  }
  return resolved;
}

TimeSamples collect(std::vector<double> rounds,
                    std::vector<double> transmissions) {
  TimeSamples out;
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    if (rounds[i] == kTimeoutSentinel) {
      ++out.timeouts;
      continue;
    }
    out.rounds.push_back(rounds[i]);
    if (!transmissions.empty()) out.transmissions.push_back(transmissions[i]);
  }
  return out;
}

}  // namespace

TimeSamples estimate_cobra_cover(const graph::Graph& g,
                                 const ProcessOptions& options,
                                 graph::VertexId start,
                                 std::uint64_t replicates, std::uint64_t seed,
                                 std::uint64_t max_rounds) {
  COBRA_CHECK(replicates >= 1);
  const ProcessOptions shared = share_sampler(g, options);
  std::vector<double> rounds(replicates, 0.0);
  std::vector<double> transmissions(replicates, 0.0);
  sim::parallel_replicates(replicates, seed,
                           [&](std::uint64_t i, rng::Rng& rng) {
    CobraProcess process(g, shared);
    process.reset(start);
    const auto cover = process.run_until_cover(rng, max_rounds);
    rounds[i] = cover.has_value() ? static_cast<double>(*cover)
                                  : kTimeoutSentinel;
    transmissions[i] = static_cast<double>(process.transmissions());
  });
  return collect(std::move(rounds), std::move(transmissions));
}

TimeSamples estimate_cobra_hit(const graph::Graph& g,
                               const ProcessOptions& options,
                               graph::VertexId start, graph::VertexId target,
                               std::uint64_t replicates, std::uint64_t seed,
                               std::uint64_t max_rounds) {
  COBRA_CHECK(replicates >= 1);
  const ProcessOptions shared = share_sampler(g, options);
  std::vector<double> rounds(replicates, 0.0);
  std::vector<double> transmissions(replicates, 0.0);
  sim::parallel_replicates(replicates, seed,
                           [&](std::uint64_t i, rng::Rng& rng) {
    CobraProcess process(g, shared);
    process.reset(start);
    const auto hit = process.run_until_hit(rng, target, max_rounds);
    rounds[i] =
        hit.has_value() ? static_cast<double>(*hit) : kTimeoutSentinel;
    transmissions[i] = static_cast<double>(process.transmissions());
  });
  return collect(std::move(rounds), std::move(transmissions));
}

TimeSamples estimate_bips_infection(const graph::Graph& g,
                                    const BipsOptions& options,
                                    graph::VertexId source,
                                    std::uint64_t replicates,
                                    std::uint64_t seed,
                                    std::uint64_t max_rounds) {
  COBRA_CHECK(replicates >= 1);
  const BipsOptions shared = share_bips_sampler(g, options);
  std::vector<double> rounds(replicates, 0.0);
  sim::parallel_replicates(replicates, seed,
                           [&](std::uint64_t i, rng::Rng& rng) {
    BipsProcess process(g, source, shared);
    const auto full = process.run_until_full(rng, max_rounds);
    rounds[i] =
        full.has_value() ? static_cast<double>(*full) : kTimeoutSentinel;
  });
  return collect(std::move(rounds), {});
}

std::vector<double> average_bips_growth(const graph::Graph& g,
                                        const BipsOptions& options,
                                        graph::VertexId source,
                                        std::uint64_t rounds,
                                        std::uint64_t replicates,
                                        std::uint64_t seed) {
  COBRA_CHECK(replicates >= 1);
  const BipsOptions shared = share_bips_sampler(g, options);
  std::vector<double> acc(rounds + 1, 0.0);
  std::vector<std::vector<double>> per_rep(replicates);
  sim::parallel_replicates(replicates, seed,
                           [&](std::uint64_t i, rng::Rng& rng) {
    BipsProcess process(g, source, shared);
    std::vector<double> sizes;
    sizes.reserve(rounds + 1);
    sizes.push_back(static_cast<double>(process.infected_count()));
    for (std::uint64_t t = 0; t < rounds; ++t) {
      process.step(rng);
      sizes.push_back(static_cast<double>(process.infected_count()));
    }
    per_rep[i] = std::move(sizes);
  });
  for (const auto& sizes : per_rep)
    for (std::size_t t = 0; t < sizes.size(); ++t) acc[t] += sizes[t];
  for (double& value : acc) value /= static_cast<double>(replicates);
  return acc;
}

}  // namespace cobra::core
