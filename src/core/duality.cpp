#include "core/duality.hpp"

#include <algorithm>

#include "core/bips.hpp"
#include "core/cobra.hpp"
#include "rng/stream.hpp"
#include "util/bitset.hpp"

namespace cobra::core {

SelectionTable::SelectionTable(const graph::Graph& g, std::uint64_t rounds,
                               const ProcessOptions& options, rng::Rng& rng)
    : n_(g.num_vertices()), rounds_(rounds) {
  options.validate();
  COBRA_CHECK(g.min_degree() >= 1);
  const std::size_t slots = static_cast<std::size_t>(rounds) * n_;
  offsets_.assign(slots + 1, 0);
  targets_.reserve(slots * options.branching.base);

  const Branching& b = options.branching;
  const double lazy = options.laziness;
  for (std::size_t slot = 0; slot < slots; ++slot) {
    const auto u = static_cast<graph::VertexId>(slot % n_);
    const std::uint32_t fanout =
        b.base +
        ((b.extra_prob > 0.0 && rng.bernoulli(b.extra_prob)) ? 1u : 0u);
    const auto nbrs = g.neighbors(u);
    for (std::uint32_t j = 0; j < fanout; ++j) {
      if (lazy > 0.0 && rng.bernoulli(lazy)) {
        targets_.push_back(u);
      } else {
        targets_.push_back(
            nbrs[static_cast<std::size_t>(rng.below(nbrs.size()))]);
      }
    }
    offsets_[slot + 1] = targets_.size();
  }
}

bool cobra_visits_with_table(const graph::Graph& g,
                             const std::vector<graph::VertexId>& start_set,
                             graph::VertexId target,
                             const SelectionTable& table) {
  COBRA_CHECK(!start_set.empty());
  const graph::VertexId n = g.num_vertices();
  util::DynamicBitset active(n), next(n);
  for (const graph::VertexId u : start_set) active.set(u);
  if (active.test(target)) return true;

  for (std::uint64_t t = 1; t <= table.rounds(); ++t) {
    next.reset_all();
    bool any = false;
    for (std::size_t u = active.find_first(); u < n;
         u = active.find_next(u)) {
      for (const graph::VertexId w :
           table.selections(static_cast<graph::VertexId>(u), t)) {
        next.set(w);
        any = true;
      }
    }
    if (next.test(target)) return true;
    active = next;
    if (!any) return false;  // cannot happen (fan-out >= 1), defensive
  }
  return false;
}

bool bips_infects_with_table(const graph::Graph& g, graph::VertexId source,
                             const std::vector<graph::VertexId>& c_set,
                             const SelectionTable& table) {
  COBRA_CHECK(!c_set.empty());
  const graph::VertexId n = g.num_vertices();
  const std::uint64_t T = table.rounds();
  util::DynamicBitset infected(n), next(n);
  infected.set(source);

  for (std::uint64_t s = 1; s <= T; ++s) {
    next.reset_all();
    for (graph::VertexId u = 0; u < n; ++u) {
      if (u == source) {
        next.set(u);
        continue;
      }
      // Time reversal: BIPS round s consumes the table's round T + 1 - s.
      for (const graph::VertexId w : table.selections(u, T + 1 - s)) {
        if (infected.test(w)) {
          next.set(u);
          break;
        }
      }
    }
    infected = next;
  }

  for (const graph::VertexId c : c_set)
    if (infected.test(c)) return true;
  return false;
}

DualityEstimate check_duality(const graph::Graph& g, graph::VertexId v,
                              const std::vector<graph::VertexId>& c_set,
                              std::uint64_t rounds,
                              const ProcessOptions& options,
                              std::uint64_t replicates, std::uint64_t seed) {
  DualityEstimate est;
  est.replicates = replicates;

  std::uint64_t cobra_misses = 0, bips_misses = 0;
  for (std::uint64_t rep = 0; rep < replicates; ++rep) {
    // (a) Coupled check: one shared ω, both indicators must agree.
    {
      rng::Rng rng = rng::make_stream(rng::derive_seed(seed, 1), rep);
      const SelectionTable table(g, rounds, options, rng);
      const bool visited = cobra_visits_with_table(g, c_set, v, table);
      const bool infected = bips_infects_with_table(g, v, c_set, table);
      if (visited != infected) ++est.coupled_disagreements;
    }
    // (b) Independent COBRA estimate of P(Hit(v) > T | C_0 = C).
    {
      rng::Rng rng = rng::make_stream(rng::derive_seed(seed, 2), rep);
      CobraProcess process(g, options);
      process.reset(std::span<const graph::VertexId>(c_set.data(),
                                                     c_set.size()));
      const auto hit = process.run_until_hit(rng, v, rounds);
      if (!hit.has_value()) ++cobra_misses;
    }
    // (c) Independent BIPS estimate of P(C ∩ A_T = ∅ | A_0 = {v}).
    {
      rng::Rng rng = rng::make_stream(rng::derive_seed(seed, 3), rep);
      BipsProcess process(g, v, BipsOptions{options, BipsKernel::kSampling});
      for (std::uint64_t t = 0; t < rounds; ++t) process.step(rng);
      bool intersects = false;
      for (const graph::VertexId c : c_set)
        if (process.is_infected(c)) {
          intersects = true;
          break;
        }
      if (!intersects) ++bips_misses;
    }
  }
  est.cobra_miss = static_cast<double>(cobra_misses) /
                   static_cast<double>(replicates);
  est.bips_miss = static_cast<double>(bips_misses) /
                  static_cast<double>(replicates);
  return est;
}

}  // namespace cobra::core
