// Fast-frontier stepping machinery for CobraProcess (docs/ARCHITECTURE.md,
// "Stepping engines").
//
// Two building blocks, both engine-order-invariant by construction:
//
//   * NeighborSampler — degree-bucketed alias tables (rng/discrete) mapping
//     one 64-bit word to a push destination in O(1): each neighbour of u
//     with probability (1 - laziness)/deg(u), u itself with probability
//     `laziness`. One table per distinct degree, built once per graph and
//     shared by every vertex of that degree, across replicates and threads
//     (sampling is const and lock-free).
//
//   * VertexDraws — a counter-based randomness stream for one (round,
//     vertex) pair. Word k of vertex u is a pure function of
//     (round_key, u, k) through Philox4x32, so engines may process
//     vertices in any order — or any frontier representation — and still
//     make identical random choices. This is what makes the sparse and
//     dense engines bit-for-bit equivalent at a fixed seed.
//
// Draw protocol per active vertex u in one round (stable; golden-seed
// tests in tests/test_cobra_engines.cpp depend on it):
//   word 0      — fanout Bernoulli, consumed only when
//                 Branching::extra_prob > 0;
//   next words  — one per push, fed to NeighborSampler::sample().
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/discrete.hpp"
#include "rng/philox.hpp"

namespace cobra::core {

/// O(1) push-destination sampler with degree-bucketed alias tables.
///
/// Immutable after construction; safe to share across threads and
/// replicates via ProcessOptions::sampler. A vertex of degree 0 (only legal
/// in the single-vertex graph) always "pushes" to itself.
class NeighborSampler {
 public:
  /// Builds one alias table per distinct degree of `g`. With laziness > 0
  /// each table has deg + 1 slots (slot deg = stay put); with laziness 0 it
  /// degenerates to a uniform slot choice. The sampler keeps a reference to
  /// the graph, which must outlive it.
  NeighborSampler(const graph::Graph& g, double laziness);

  /// Maps a uniform 64-bit `word` to the destination of one push from `u`.
  /// Exact up to the alias table's 2^-32 fixed-point quantisation — far
  /// below Monte-Carlo noise, and identical across engines by design.
  [[nodiscard]] graph::VertexId sample(graph::VertexId u,
                                       std::uint64_t word) const {
    const std::uint32_t degree = graph_->degree(u);
    const rng::AliasTable& table = tables_[bucket_of_degree_[degree]];
    const std::uint32_t slot = table.sample_word(word);
    return slot < degree ? graph_->neighbor(u, slot) : u;
  }

  /// The laziness the tables were built for (validated against
  /// ProcessOptions::laziness when a shared sampler is injected).
  [[nodiscard]] double laziness() const { return laziness_; }

  /// The graph the tables were built for.
  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }

  /// Number of distinct degree buckets (introspection/tests).
  [[nodiscard]] std::size_t num_buckets() const { return tables_.size(); }

 private:
  const graph::Graph* graph_;
  double laziness_;
  std::vector<std::uint32_t> bucket_of_degree_;  // degree -> index in tables_
  std::vector<rng::AliasTable> tables_;
};

/// Counter-based per-vertex randomness for one COBRA round.
///
/// Produces the 64-bit word stream philox4x32({u, block, salt}, round_key):
/// unlimited words per (round_key, vertex) pair, two per Philox evaluation.
class VertexDraws {
 public:
  /// Binds the stream to this round's key and one vertex.
  VertexDraws(std::uint64_t round_key, graph::VertexId u)
      : key_{static_cast<std::uint32_t>(round_key),
             static_cast<std::uint32_t>(round_key >> 32)},
        vertex_(u) {}

  /// The next 64-bit word of this vertex's round stream.
  std::uint64_t next_word() {
    if (buffered_ == 0) refill();
    return buffer_[--buffered_];
  }

  /// Uniform double in [0, 1) with 53 bits (same mapping as rng::Rng).
  double uniform01() {
    return static_cast<double>(next_word() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial; consumes one word unless p <= 0 or p >= 1 (the same
  /// short-circuits as rng::Rng::bernoulli).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

 private:
  void refill() {
    // Distinct salts keep this keyed use of Philox disjoint from the
    // replicate-stream derivation in rng/stream.hpp.
    const rng::PhiloxBlock out = rng::philox4x32(
        {vertex_, block_++, 0x0C0BFA57u, 0x5EED1E55u}, key_);
    buffer_[1] = (static_cast<std::uint64_t>(out.x[1]) << 32) | out.x[0];
    buffer_[0] = (static_cast<std::uint64_t>(out.x[3]) << 32) | out.x[2];
    buffered_ = 2;
  }

  std::array<std::uint32_t, 2> key_;
  std::uint32_t vertex_;
  std::uint32_t block_ = 0;
  std::array<std::uint64_t, 2> buffer_{};
  int buffered_ = 0;
};

}  // namespace cobra::core
