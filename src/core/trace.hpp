// Round-by-round COBRA traces and cover profiles.
//
// The paper's regular-graph analysis (Sections 4-5) splits the dual BIPS
// process into three phases: a slow start-up, an exponential middle, and a
// saturating tail. The primal COBRA process shows the mirrored profile in
// its visited-count curve. This module records per-round state so
// experiments can measure phase durations directly:
//   phase 1: |C_t| grows from 1 toward saturation (doubling-limited),
//   phase 2: bulk visiting while |C_t| = Theta(n),
//   phase 3: coupon-collector tail for the last stragglers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cobra.hpp"
#include "rng/rng.hpp"

namespace cobra::core {

struct CobraRound {
  std::uint64_t round = 0;
  std::uint32_t active = 0;        // |C_t|
  std::uint32_t visited = 0;       // |union C_0..C_t|
  std::uint32_t new_visits = 0;
  std::uint64_t transmissions = 0;  // cumulative
};

struct CobraTrace {
  std::vector<CobraRound> rounds;  // entry 0 is the state after reset
  bool covered = false;

  /// First round with visited >= fraction * n; rounds.back().round + 1 when
  /// never reached.
  [[nodiscard]] std::uint64_t rounds_to_fraction(double fraction,
                                                 std::uint32_t n) const;
};

/// Runs COBRA from `start` until cover (or max_rounds), recording every
/// round.
CobraTrace run_cobra_trace(const graph::Graph& g,
                           const ProcessOptions& options,
                           graph::VertexId start, std::uint64_t max_rounds,
                           rng::Rng& rng);

/// Phase summary of a covered trace: rounds to 50% / 90% / 100% visited and
/// the peak active-set size.
struct CoverProfile {
  std::uint64_t to_half = 0;
  std::uint64_t to_ninety = 0;
  std::uint64_t to_cover = 0;
  std::uint32_t peak_active = 0;
  double tail_fraction = 0.0;  // (to_cover - to_ninety) / to_cover
};
CoverProfile summarize_trace(const CobraTrace& trace, std::uint32_t n);

}  // namespace cobra::core
