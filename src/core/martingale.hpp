// Section 3 of the paper: the serialised view of BIPS.
//
// One BIPS round is decomposed into per-candidate "steps": the candidates
// C_t = (N(A_{t-1}) ∪ {v}) \ B_fix decide in a fixed vertex order whether
// they join B_rand. Step l contributes the increment
//
//   Y_l = d(u) X_u - d_{A}(u)      (paper eq. (11)-(14)),
//
// where X_u indicates u ∈ B_rand (X_v ≡ 1 for the source). Then
// d(A_t) = d(v) + sum_l Y_l, the conditional drift satisfies
// E(Y_l | past) >= 1/2 (eq. (18)), and Z_l = (1/2 - Y_l)/dmax is the
// bounded super-martingale driving Lemma 3.1.
//
// This module executes BIPS *through* the serialisation (the probability
// kernel evaluated candidate-by-candidate, which is distributionally the
// same process) and records the step sequence for empirical validation of
// eq. (18), Lemma 2.1 and Lemma 3.1.
#pragma once

#include <cstdint>
#include <vector>

#include "core/process.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::core {

struct MartingaleStep {
  graph::VertexId vertex = 0;       // the candidate u
  std::uint64_t round = 0;          // BIPS round this step belongs to
  std::uint32_t degree = 0;         // d(u)
  std::uint32_t infected_neighbors = 0;  // d_A(u) w.r.t. A_{t-1}
  bool is_source = false;
  bool joined = false;              // X_u
  double y = 0.0;                   // Y_l = d(u) X_u - d_A(u)
  double conditional_mean = 0.0;    // E(Y_l | past) = d_A(1 - d_A/d), or
                                    // d(v) - d_A(v) for the source
};

struct MartingaleTrace {
  std::vector<MartingaleStep> steps;
  std::vector<std::uint64_t> round_step_counts;  // |C_t| per executed round
  std::vector<std::uint64_t> infected_degree;    // d(A_t) after each round
  std::uint64_t rounds = 0;
  bool completed = false;  // reached A_t = V within the round budget
};

/// Runs BIPS from {source} for up to `max_rounds` rounds (stopping early on
/// full infection), recording every serialised step. b and laziness come
/// from `options` (the paper's eq. (17)/(18) are stated for b = 2; the
/// Section 6 variants hold with drift rho/2).
MartingaleTrace run_bips_serialized(const graph::Graph& g,
                                    graph::VertexId source,
                                    const ProcessOptions& options,
                                    std::uint64_t max_rounds, rng::Rng& rng);

/// Paper eq. (18) drift floor for the configured branching: 1/2 for b = 2,
/// rho/2 for b = 1 + rho.
double drift_floor(const ProcessOptions& options);

/// Checks d(A_t) = d(source) + sum of Y over all steps of rounds 1..t for
/// every executed round (paper eq. (14)); returns the largest absolute
/// discrepancy (exactly 0 for a correct implementation).
double trace_identity_violation(const graph::Graph& g,
                                graph::VertexId source,
                                const MartingaleTrace& trace);

}  // namespace cobra::core
