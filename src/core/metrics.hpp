// Kernel-level telemetry (docs/ARCHITECTURE.md, "Telemetry").
//
// The frontier kernel's hot loops cannot afford name lookups or atomics,
// so they stream into a StepMetrics block: a plain struct of uint64
// counters captured by pointer once, at kernel construction. Every
// instrumented site is a single `if (metrics_ != nullptr)` away when
// telemetry is off, and none of them consume randomness — which is why
// fixed-seed trajectories are bit-identical with metrics off, summary or
// rounds (asserted by tests/test_runner_metrics.cpp and guarded at <= 2%
// disabled-mode overhead by bench/micro_metrics.cpp).
//
// Wiring: a process passes ProcessOptions::metrics through its kernel
// Config. When that hook is null, the kernel instead attaches to the
// calling thread's session block — created on demand iff the session
// metrics mode (COBRA_METRICS / --metrics) is not "off" — so the runner
// gets telemetry from unmodified experiment code. The runner folds all
// session blocks at each cell boundary (the Monte-Carlo pool is idle
// there) with drain_cell_metrics() and writes the result to the cell's
// metrics sidecar (runner/telemetry.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/metrics.hpp"

namespace cobra::core {

/// One round's aggregate across every process/replicate that committed a
/// round with that index since the last drain (rounds mode only). Sums of
/// uint64 are order-independent, so the trajectory is deterministic no
/// matter how the thread pool schedules replicates.
struct RoundStat {
  /// Processes that committed this round index.
  std::uint64_t processes = 0;
  /// Sum of post-commit frontier sizes.
  std::uint64_t frontier = 0;
  /// Sum of first visits in this round.
  std::uint64_t newly = 0;
  /// Processes whose round ran in the dense representation.
  std::uint64_t dense = 0;
};

/// The frontier kernel's telemetry block: plain uint64 slots bumped from
/// the round loop with no synchronization (one block per thread or per
/// caller). Merge/reset are cheap; the runner publishes drained blocks
/// into the util::MetricsRegistry under "kernel.*" names.
struct StepMetrics {
  /// Committed rounds (every representation).
  std::uint64_t rounds = 0;
  /// Rounds committed in the dense (bitset) representation.
  std::uint64_t rounds_dense = 0;
  /// Sparse<->dense representation flips after the first committed round
  /// (auto-engine hysteresis thrash shows up here).
  std::uint64_t mode_switches = 0;
  /// Sum of post-commit frontier sizes over all rounds.
  std::uint64_t frontier_sum = 0;
  /// Largest post-commit frontier seen (a gauge: merges by max).
  std::uint64_t frontier_peak = 0;
  /// First visits accumulated across rounds.
  std::uint64_t first_visits = 0;
  /// Push-destination emissions (COBRA transmissions; processes that do
  /// not sample destinations leave this 0).
  std::uint64_t emissions = 0;
  /// Sparse-sink suppressions: within-round coalescing (CoalescingSink)
  /// plus already-visited drops (GrowthSink).
  std::uint64_t dedup_hits = 0;
  /// VertexDraws streams created via FrontierKernel::draws.
  std::uint64_t draw_streams = 0;
  /// Dense bitset words iterated by frontier scans.
  std::uint64_t words_scanned = 0;
  /// Words merged word-parallel (popcount) into the visited set /
  /// frontier at dense commits.
  std::uint64_t merged_words = 0;
  /// log2 histogram of post-commit frontier sizes (bucket = bit_width).
  std::array<std::uint64_t, util::kHistogramBuckets> frontier_hist{};

  /// When true the kernel also appends per-round aggregates to
  /// round_trajectory ("--metrics rounds").
  bool record_rounds = false;
  /// Per-round aggregates, indexed by round number since assign().
  std::vector<RoundStat> round_trajectory;

  /// Accumulates one committed round into the trajectory.
  void note_round(std::size_t index, std::uint64_t frontier,
                  std::uint64_t newly, bool dense);
  /// Adds `other` into this block (counters add, peaks max, trajectories
  /// merge index-wise).
  void merge_from(const StepMetrics& other);
  /// Zeroes every counter and clears the trajectory.
  void reset();
};

/// The calling thread's session telemetry block, or nullptr when the
/// session metrics mode is "off". Kernels constructed without an explicit
/// ProcessOptions::metrics hook attach to this; blocks are registered
/// process-wide so drain_cell_metrics() can fold them.
StepMetrics* session_step_metrics();

/// Folds and resets every thread's session block (plus the counts of
/// threads that have exited). Call only at quiescence — in the runner,
/// cell boundaries after the Monte-Carlo pool joined its tasks.
StepMetrics drain_session_step_metrics();

/// Publishes a drained block into the util::MetricsRegistry under
/// "kernel.*" metric names (counters, the frontier_peak gauge and the
/// kernel.frontier_size histogram).
void publish_step_metrics(const StepMetrics& metrics);

/// Everything the runner archives for one cell: the folded registry
/// snapshot (kernel counters published, cold-site counters included) and
/// the per-round trajectory when the mode is "rounds".
struct CellMetrics {
  /// Folded registry snapshot (sorted, mergeable, JSONL-serializable).
  util::MetricsSnapshot snapshot;
  /// Aggregate per-round trajectory (empty unless "--metrics rounds").
  std::vector<RoundStat> rounds;
};

/// Drains the session step blocks, publishes them into the registry, and
/// returns the folded snapshot + trajectory, resetting everything. Cell
/// boundaries only (see drain_session_step_metrics).
CellMetrics drain_cell_metrics();

}  // namespace cobra::core
