// The paper's restart argument (Section 1, after Theorem 1.2):
//
//   "To see that the expected value of cover(u) is O(T), consider
//    restarting the COBRA process after T rounds from any vertex in C_T,
//    if the graph has not yet been covered."
//
// A w.h.p. bound P(cover > T) <= p turns into an expectation bound
// E[cover] <= T / (1 - p) because each T-round epoch independently succeeds
// with probability >= 1 - p. This module provides both the formula and an
// operational driver that executes the restart scheme (keeping the visited
// set across epochs, restarting the particle set from the current C_T).
#pragma once

#include <cstdint>

#include "core/cobra.hpp"
#include "rng/rng.hpp"

namespace cobra::core {

/// E[time] <= epoch_length / (1 - failure_probability), the geometric-series
/// bound behind "the same asymptotic bounds apply to the expectation".
double restart_expectation_bound(double epoch_length,
                                 double failure_probability);

struct RestartResult {
  std::uint64_t total_rounds = 0;
  std::uint64_t epochs = 1;    // 1 = covered within the first epoch
  bool completed = false;
};

/// Runs `process` (already reset to its start state) in epochs of
/// `epoch_rounds`. After each incomplete epoch the particle set restarts
/// from the CURRENT active set (as in the paper; visited vertices stay
/// visited). Gives up after `max_epochs`.
RestartResult run_cover_with_restarts(CobraProcess& process, rng::Rng& rng,
                                      std::uint64_t epoch_rounds,
                                      std::uint64_t max_epochs = 1u << 20);

}  // namespace cobra::core
