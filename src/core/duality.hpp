// Theorem 1.3 (Cooper-Radzik-Rivera PODC'16, restated in SPAA'17):
//
//   P̂(Hit(v) > T | C_0 = C)  =  P(C ∩ A_T = ∅ | A_0 = {v}),
//
// i.e. the probability that COBRA started from set C has not hit v by round
// T equals the probability that BIPS with persistent source v has not
// infected any vertex of C by round T.
//
// The proof couples the two processes through a shared table of neighbour
// selections ω(u, t) used in reverse time order. This module implements
// that coupling literally:
//   * SelectionTable — one sampled ω (with the per-(u,t) fan-out for the
//     b = 1+ρ case and lazy self-selections),
//   * cobra_visits_with_table / bips_infects_with_table — deterministic
//     executions given ω,
//   * the per-ω identity check (exact, no statistics), and
//   * independent two-sided Monte-Carlo estimation of both probabilities.
#pragma once

#include <cstdint>
#include <vector>

#include "core/process.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::core {

/// A full table of neighbour selections: for each round t in [1, T] and each
/// vertex u, the list of selected destinations (fan-out many; a destination
/// may equal u itself under laziness).
class SelectionTable {
 public:
  /// Samples ω for `rounds` rounds on g under `options`.
  SelectionTable(const graph::Graph& g, std::uint64_t rounds,
                 const ProcessOptions& options, rng::Rng& rng);

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] graph::VertexId num_vertices() const { return n_; }

  /// Selections of vertex u in round t (1-based t, 1 <= t <= rounds).
  [[nodiscard]] std::span<const graph::VertexId> selections(
      graph::VertexId u, std::uint64_t t) const {
    const std::size_t slot = static_cast<std::size_t>(t - 1) * n_ + u;
    return {targets_.data() + offsets_[slot],
            targets_.data() + offsets_[slot + 1]};
  }

 private:
  graph::VertexId n_;
  std::uint64_t rounds_;
  std::vector<std::uint64_t> offsets_;  // (rounds*n + 1) entries
  std::vector<graph::VertexId> targets_;
};

/// Runs COBRA from C_0 = `start_set` for table.rounds() rounds, where the
/// particle at u in round t moves to every vertex in table.selections(u,t).
/// Returns true iff `target` is visited (target ∈ C_t for some t ≤ T,
/// including t = 0).
bool cobra_visits_with_table(const graph::Graph& g,
                             const std::vector<graph::VertexId>& start_set,
                             graph::VertexId target,
                             const SelectionTable& table);

/// Runs BIPS with persistent source `source` for table.rounds() rounds,
/// where vertex u's selections in BIPS round s are table.selections(u, T+1-s)
/// (time reversal). Returns true iff A_T intersects `c_set`.
bool bips_infects_with_table(const graph::Graph& g, graph::VertexId source,
                             const std::vector<graph::VertexId>& c_set,
                             const SelectionTable& table);

/// Result of the Monte-Carlo duality comparison.
struct DualityEstimate {
  double cobra_miss = 0.0;  // estimate of P̂(Hit(v) > T | C_0 = C)
  double bips_miss = 0.0;   // estimate of P(C ∩ A_T = ∅ | A_0 = {v})
  std::uint64_t replicates = 0;
  std::uint64_t coupled_disagreements = 0;  // per-ω identity violations
};

/// For `replicates` independently sampled tables ω: evaluates both coupled
/// indicators (counting disagreements — the theorem says zero), and
/// accumulates the two independent Monte-Carlo estimates using separate
/// randomness (streams derived from `seed`).
DualityEstimate check_duality(const graph::Graph& g, graph::VertexId v,
                              const std::vector<graph::VertexId>& c_set,
                              std::uint64_t rounds,
                              const ProcessOptions& options,
                              std::uint64_t replicates, std::uint64_t seed);

}  // namespace cobra::core
