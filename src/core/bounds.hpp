// Every cover-time bound the paper states, proves or compares against,
// as explicit formulas with constant 1 (asymptotic statements do not pin
// constants; experiments report measured/bound ratios and their trend).
//
// Sources:
//   * Theorem 1.1 (this paper): O(m + dmax^2 log n) for connected graphs.
//   * Theorem 1.2 (this paper): O((r/(1-lambda) + r^2) log n), r-regular,
//     requires 1 - lambda > C sqrt(log n / n).
//   * Mitzenmacher-Rajaraman-Roche SPAA'16 [8]: O(n^{11/4} log n) general,
//     O((r^4/phi^2) log^2 n) regular, O(D^2 n^{1/D}) D-dim grids.
//   * Cooper-Radzik-Rivera PODC'16 [4]: O(log n / (1-lambda)^3) regular.
//   * Dutta et al. SPAA'13 [5,6]: O(log n) for K_n, O(log^2 n) for
//     constant-degree expanders, O~(n^{1/D}) for D-dim grids.
//   * Lower bound: max(log2 n, Diam(G)) — the visited set at most doubles
//     per round with b = 2, and information travels one hop per round.
//   * Section 6: with branching b = 1+rho the round counts scale by 1/rho^2.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace cobra::core {

// --- this paper -----------------------------------------------------------

/// Theorem 1.1: m + dmax^2 ln n.
double bound_thm11_general(std::uint64_t n, std::uint64_t m,
                           std::uint32_t dmax);

/// Theorem 1.2: (r/(1-lambda) + r^2) ln n. Requires lambda < 1.
double bound_thm12_regular(std::uint64_t n, std::uint32_t r, double lambda);

// --- prior work the paper improves on --------------------------------------

/// SPAA'16 general bound: n^{11/4} ln n.
double bound_spaa16_general(std::uint64_t n);

/// SPAA'16 regular bound: (r^4 / phi^2) (ln n)^2. Requires phi > 0.
double bound_spaa16_regular(std::uint64_t n, std::uint32_t r, double phi);

/// SPAA'16 grid bound: D^2 n^{1/D}.
double bound_spaa16_grid(std::uint64_t n, std::uint32_t dimension);

/// PODC'16 regular bound: ln n / (1-lambda)^3. Requires lambda < 1.
double bound_podc16_regular(std::uint64_t n, double lambda);

/// Dutta et al.: K_n in ln n; constant-degree expanders in (ln n)^2;
/// D-dim grids in n^{1/D} (polylog factors dropped).
double bound_dutta_complete(std::uint64_t n);
double bound_dutta_expander(std::uint64_t n);
double bound_dutta_grid(std::uint64_t n, std::uint32_t dimension);

// --- structural bounds ------------------------------------------------------

/// Lower bound for b = 2: max(log2 n, diameter).
double bound_lower(std::uint64_t n, std::uint32_t diameter);

/// Section 6 scaling: multiply round bounds by 1/rho^2 for b = 1 + rho.
double rho_scaling(double rho);

/// Theorems 1.2/1.5 regime condition: 1 - lambda > C sqrt(log n / n);
/// true when the margin (gap / sqrt(log n / n)) exceeds `c`.
bool gap_condition_holds(std::uint64_t n, double lambda, double c = 1.0);

// --- per-graph report -------------------------------------------------------

struct BoundValue {
  std::string name;
  double rounds = 0.0;
  bool applicable = false;
};

/// Evaluates every applicable bound for a graph (lambda and conductance are
/// passed in where known; nullopt marks them unavailable and skips the
/// bounds that need them). `dimension` activates the grid bounds.
std::vector<BoundValue> bound_report(const graph::Graph& g,
                                     std::optional<double> lambda,
                                     std::optional<double> phi,
                                     std::optional<std::uint32_t> diameter,
                                     std::optional<std::uint32_t> dimension);

}  // namespace cobra::core
