// Exact BIPS dynamics on small graphs.
//
// BIPS transitions are product-form: conditioned on A_t, vertices join
// A_{t+1} independently. So the full distribution over subsets (bitmask
// states) is computable exactly with an n·2^n convolution per source state.
// This gives the library an exact oracle that pins the simulators — and,
// through Theorem 1.3, the COBRA hitting probabilities — to closed numbers
// rather than statistical comparisons:
//
//   P(Hit_C(v) > T) in COBRA  ==  sum of exact BIPS mass on {A : A∩C = ∅}.
//
// Limits: distribution evolution n <= 16 practical (4^n work per round);
// exact expected infection time n <= 10 (dense linear solve over 2^n
// states).
#pragma once

#include <cstdint>
#include <vector>

#include "core/process.hpp"
#include "graph/graph.hpp"

namespace cobra::core {

using SubsetMask = std::uint32_t;

/// Distribution over subsets of V indexed by bitmask (size 2^n).
using SubsetDistribution = std::vector<double>;

/// Point mass on A_0 = {source}.
SubsetDistribution bips_initial_distribution(const graph::Graph& g,
                                             graph::VertexId source);

/// One exact BIPS round: returns the distribution of A_{t+1} given the
/// distribution of A_t. O(sum over reachable states of n·2^n) worst case.
SubsetDistribution bips_exact_step(const graph::Graph& g,
                                   graph::VertexId source,
                                   const SubsetDistribution& dist,
                                   const ProcessOptions& options);

/// Distribution of A_T from A_0 = {source}.
SubsetDistribution bips_exact_distribution(const graph::Graph& g,
                                           graph::VertexId source,
                                           std::uint64_t rounds,
                                           const ProcessOptions& options);

/// Exact P(A_T ∩ C = ∅ | A_0 = {source}) — by Theorem 1.3 this equals the
/// COBRA probability P(Hit(source) > T | C_0 = C).
double bips_exact_miss_probability(const graph::Graph& g,
                                   graph::VertexId source,
                                   const std::vector<graph::VertexId>& c_set,
                                   std::uint64_t rounds,
                                   const ProcessOptions& options);

/// Exact E[infec(source)] via the absorbing-chain linear system
/// (I - P) x = 1 over non-full states, dense Gaussian elimination.
/// Requires n <= 10.
double bips_exact_expected_infection_time(const graph::Graph& g,
                                          graph::VertexId source,
                                          const ProcessOptions& options);

/// Exact P(infec(source) <= T): mass on the full state after T rounds.
double bips_exact_infection_cdf(const graph::Graph& g,
                                graph::VertexId source, std::uint64_t rounds,
                                const ProcessOptions& options);

}  // namespace cobra::core
