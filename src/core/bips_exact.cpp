#include "core/bips_exact.hpp"

#include <bit>
#include <cmath>

#include "core/bips.hpp"
#include "util/assert.hpp"

namespace cobra::core {

namespace {

constexpr graph::VertexId kMaxExactVertices = 16;

void check_size(const graph::Graph& g, graph::VertexId limit) {
  COBRA_CHECK_MSG(g.num_vertices() >= 2 && g.num_vertices() <= limit,
                  "exact BIPS supports 2 <= n <= " << limit << " vertices");
  COBRA_CHECK(g.min_degree() >= 1);
}

/// Per-vertex next-round infection probabilities given A (bitmask).
void infection_probabilities(const graph::Graph& g, graph::VertexId source,
                             SubsetMask a, const ProcessOptions& options,
                             std::vector<double>& p) {
  const graph::VertexId n = g.num_vertices();
  for (graph::VertexId u = 0; u < n; ++u) {
    if (u == source) {
      p[u] = 1.0;
      continue;
    }
    std::uint32_t da = 0;
    for (const graph::VertexId v : g.neighbors(u))
      if (a & (SubsetMask{1} << v)) ++da;
    p[u] = bips_infection_probability(g.degree(u), da,
                                      (a >> u) & 1u, options);
  }
}

}  // namespace

SubsetDistribution bips_initial_distribution(const graph::Graph& g,
                                             graph::VertexId source) {
  check_size(g, kMaxExactVertices);
  COBRA_CHECK(source < g.num_vertices());
  SubsetDistribution dist(std::size_t{1} << g.num_vertices(), 0.0);
  dist[SubsetMask{1} << source] = 1.0;
  return dist;
}

SubsetDistribution bips_exact_step(const graph::Graph& g,
                                   graph::VertexId source,
                                   const SubsetDistribution& dist,
                                   const ProcessOptions& options) {
  check_size(g, kMaxExactVertices);
  const graph::VertexId n = g.num_vertices();
  const std::size_t states = std::size_t{1} << n;
  COBRA_CHECK(dist.size() == states);
  options.validate();

  SubsetDistribution next(states, 0.0);
  std::vector<double> p(n);
  // Scratch distributions for the per-vertex convolution.
  std::vector<double> cur(states), tmp(states);

  for (SubsetMask a = 0; a < states; ++a) {
    const double mass = dist[a];
    if (mass <= 0.0) continue;
    infection_probabilities(g, source, a, options, p);

    // Build the product distribution over next subsets incrementally:
    // after processing vertex u, cur[] is a distribution over subsets of
    // {0..u}. Deterministic vertices (p in {0,1}) do not branch.
    std::size_t support = 1;
    cur[0] = 1.0;
    for (graph::VertexId u = 0; u < n; ++u) {
      const SubsetMask bit = SubsetMask{1} << u;
      const double pu = p[u];
      std::fill(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(
                                               support << 1),
                0.0);
      for (SubsetMask s = 0; s < support; ++s) {
        const double w = cur[s];
        if (w == 0.0) continue;
        if (pu > 0.0) tmp[s | bit] += w * pu;
        if (pu < 1.0) tmp[s] += w * (1.0 - pu);
      }
      support <<= 1;
      std::swap(cur, tmp);
    }
    for (SubsetMask b = 0; b < states; ++b)
      if (cur[b] != 0.0) next[b] += mass * cur[b];
  }
  return next;
}

SubsetDistribution bips_exact_distribution(const graph::Graph& g,
                                           graph::VertexId source,
                                           std::uint64_t rounds,
                                           const ProcessOptions& options) {
  SubsetDistribution dist = bips_initial_distribution(g, source);
  for (std::uint64_t t = 0; t < rounds; ++t)
    dist = bips_exact_step(g, source, dist, options);
  return dist;
}

double bips_exact_miss_probability(const graph::Graph& g,
                                   graph::VertexId source,
                                   const std::vector<graph::VertexId>& c_set,
                                   std::uint64_t rounds,
                                   const ProcessOptions& options) {
  COBRA_CHECK(!c_set.empty());
  SubsetMask c_mask = 0;
  for (const graph::VertexId u : c_set) {
    COBRA_CHECK(u < g.num_vertices());
    c_mask |= SubsetMask{1} << u;
  }
  const SubsetDistribution dist =
      bips_exact_distribution(g, source, rounds, options);
  double miss = 0.0;
  for (SubsetMask a = 0; a < dist.size(); ++a)
    if ((a & c_mask) == 0) miss += dist[a];
  return miss;
}

double bips_exact_infection_cdf(const graph::Graph& g,
                                graph::VertexId source, std::uint64_t rounds,
                                const ProcessOptions& options) {
  const SubsetDistribution dist =
      bips_exact_distribution(g, source, rounds, options);
  return dist.back();  // mask with all n bits set is the last index
}

double bips_exact_expected_infection_time(const graph::Graph& g,
                                          graph::VertexId source,
                                          const ProcessOptions& options) {
  check_size(g, 10);
  const graph::VertexId n = g.num_vertices();
  const std::size_t states = std::size_t{1} << n;
  const SubsetMask full = static_cast<SubsetMask>(states - 1);
  options.validate();

  // Transition matrix restricted to states containing the source.
  // x[a] = expected rounds to reach `full` from a; x[full] = 0;
  // x[a] = 1 + sum_b P(a -> b) x[b]. Solve (I - P) x = 1 by Gaussian
  // elimination over the reachable states (those containing source).
  std::vector<SubsetMask> reachable;
  std::vector<std::int32_t> index(states, -1);
  for (SubsetMask a = 0; a < states; ++a) {
    if ((a >> source) & 1u) {
      index[a] = static_cast<std::int32_t>(reachable.size());
      reachable.push_back(a);
    }
  }
  const std::size_t k = reachable.size();

  // Dense system M x = rhs with M = I - P (row `full` replaced by x = 0).
  std::vector<double> matrix(k * k, 0.0), rhs(k, 1.0);
  std::vector<double> p(n);
  std::vector<double> cur(states), tmp(states);
  for (std::size_t row = 0; row < k; ++row) {
    const SubsetMask a = reachable[row];
    if (a == full) {
      matrix[row * k + row] = 1.0;
      rhs[row] = 0.0;
      continue;
    }
    infection_probabilities(g, source, a, options, p);
    std::size_t support = 1;
    cur[0] = 1.0;
    for (graph::VertexId u = 0; u < n; ++u) {
      const SubsetMask bit = SubsetMask{1} << u;
      const double pu = p[u];
      std::fill(tmp.begin(),
                tmp.begin() + static_cast<std::ptrdiff_t>(support << 1), 0.0);
      for (SubsetMask s = 0; s < support; ++s) {
        const double w = cur[s];
        if (w == 0.0) continue;
        if (pu > 0.0) tmp[s | bit] += w * pu;
        if (pu < 1.0) tmp[s] += w * (1.0 - pu);
      }
      support <<= 1;
      std::swap(cur, tmp);
    }
    for (SubsetMask b = 0; b < states; ++b) {
      const double w = cur[b];
      if (w == 0.0) continue;
      COBRA_DCHECK(index[b] >= 0);  // next state always contains source
      matrix[row * k + static_cast<std::size_t>(index[b])] -= w;
    }
    matrix[row * k + row] += 1.0;
  }

  // Partial-pivot Gaussian elimination.
  std::vector<std::size_t> perm(k);
  for (std::size_t i = 0; i < k; ++i) perm[i] = i;
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(matrix[perm[col] * k + col]);
    for (std::size_t r = col + 1; r < k; ++r) {
      const double v = std::fabs(matrix[perm[r] * k + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    COBRA_CHECK_MSG(best > 1e-14, "singular exact-BIPS system");
    std::swap(perm[col], perm[pivot]);
    const std::size_t prow = perm[col];
    const double diag = matrix[prow * k + col];
    for (std::size_t r = col + 1; r < k; ++r) {
      const std::size_t rr = perm[r];
      const double factor = matrix[rr * k + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < k; ++c)
        matrix[rr * k + c] -= factor * matrix[prow * k + c];
      rhs[rr] -= factor * rhs[prow];
    }
  }
  std::vector<double> x(k, 0.0);
  for (std::size_t i = k; i-- > 0;) {
    const std::size_t row = perm[i];
    double acc = rhs[row];
    for (std::size_t c = i + 1; c < k; ++c)
      acc -= matrix[row * k + c] * x[c];
    x[i] = acc / matrix[row * k + i];
  }
  // x is indexed by elimination order; map back: column i corresponds to
  // unknown i (we eliminated in natural column order), so x[i] is unknown i.
  const auto start_index =
      static_cast<std::size_t>(index[SubsetMask{1} << source]);
  return x[start_index];
}

}  // namespace cobra::core
