// Monte-Carlo estimators for the paper's headline quantities:
// COBRA cover times, COBRA hit times, BIPS infection times and survival
// probabilities. Replicates run in parallel with deterministic streams.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bips.hpp"
#include "core/cobra.hpp"
#include "graph/graph.hpp"

namespace cobra::core {

/// Replicate samples with time-out accounting. `rounds` only contains the
/// replicates that finished; a nonzero `timeouts` means `max_rounds` was too
/// small for some replicates (experiments treat this as a red flag and size
/// max_rounds from the paper's bounds).
struct TimeSamples {
  std::vector<double> rounds;
  std::vector<double> transmissions;  // COBRA only; empty for BIPS
  std::uint64_t timeouts = 0;
};

/// cover(start) over `replicates` independent COBRA runs.
TimeSamples estimate_cobra_cover(const graph::Graph& g,
                                 const ProcessOptions& options,
                                 graph::VertexId start,
                                 std::uint64_t replicates, std::uint64_t seed,
                                 std::uint64_t max_rounds);

/// Hit(start -> target) over `replicates` independent COBRA runs.
TimeSamples estimate_cobra_hit(const graph::Graph& g,
                               const ProcessOptions& options,
                               graph::VertexId start, graph::VertexId target,
                               std::uint64_t replicates, std::uint64_t seed,
                               std::uint64_t max_rounds);

/// infec(source) over `replicates` independent BIPS runs.
TimeSamples estimate_bips_infection(const graph::Graph& g,
                                    const BipsOptions& options,
                                    graph::VertexId source,
                                    std::uint64_t replicates,
                                    std::uint64_t seed,
                                    std::uint64_t max_rounds);

/// Per-round infection sizes |A_t| averaged over replicates, t = 0..rounds
/// (the growth-curve data for Lemma 4.1 / Corollary 5.2 experiments).
std::vector<double> average_bips_growth(const graph::Graph& g,
                                        const BipsOptions& options,
                                        graph::VertexId source,
                                        std::uint64_t rounds,
                                        std::uint64_t replicates,
                                        std::uint64_t seed);

}  // namespace cobra::core
