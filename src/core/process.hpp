// Shared configuration types for the COBRA and BIPS processes.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace cobra::core {

/// Branching factor model.
///
/// Every active vertex (COBRA) / every vertex (BIPS) makes `base` neighbour
/// selections, plus one more with probability `extra_prob`:
///   * paper's main case b = 2          -> {base = 2, extra_prob = 0}
///   * paper's Section 6 case b = 1+rho -> {base = 1, extra_prob = rho}
///   * b = 1 (simple random walk)       -> {base = 1, extra_prob = 0}
/// Expected branching factor = base + extra_prob.
struct Branching {
  std::uint32_t base = 2;
  double extra_prob = 0.0;

  static Branching integer(std::uint32_t b) {
    COBRA_CHECK(b >= 1);
    return Branching{b, 0.0};
  }

  /// b = 1 + rho with 0 <= rho <= 1 (Section 6 of the paper).
  static Branching one_plus_rho(double rho) {
    COBRA_CHECK(rho >= 0.0 && rho <= 1.0);
    return Branching{1, rho};
  }

  [[nodiscard]] double expected() const {
    return static_cast<double>(base) + extra_prob;
  }
};

/// Options common to both processes.
///
/// `laziness` is the probability that an individual selection stays at the
/// selecting vertex instead of a uniform random neighbour. The paper's
/// remark after Theorem 1.2 uses laziness 1/2 to make bipartite graphs
/// (where lambda = 1) tractable; 0 is the standard process.
struct ProcessOptions {
  Branching branching = Branching::integer(2);
  double laziness = 0.0;

  void validate() const {
    COBRA_CHECK(branching.base >= 1);
    COBRA_CHECK(branching.extra_prob >= 0.0 && branching.extra_prob <= 1.0);
    COBRA_CHECK(laziness >= 0.0 && laziness < 1.0);
  }
};

}  // namespace cobra::core
