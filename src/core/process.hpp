// Shared configuration types for the COBRA and BIPS processes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "util/assert.hpp"

namespace cobra::core {

class NeighborSampler;  // core/step_engine.hpp

/// Stepping-engine selection for CobraProcess (see docs/ARCHITECTURE.md,
/// "Stepping engines").
///
/// The reference engine is the historical sequential loop: it consumes the
/// replicate's Rng stream draw by draw and iterates the frontier in arrival
/// order. The fast engines (kSparse/kDense/kAuto) share one counter-based
/// randomness protocol — per round they consume a single 64-bit round key
/// from the Rng and derive every per-vertex choice from Philox keyed by
/// (round key, vertex) — so all three produce bit-for-bit identical visit
/// sequences at a fixed seed, independent of frontier representation.
/// Reference and fast engines agree in distribution but not draw-by-draw.
enum class Engine : std::uint8_t {
  kDefault,    ///< resolve from --engine / COBRA_ENGINE at construction
  kReference,  ///< sequential-stream loop (the original implementation)
  kSparse,     ///< fast path, vector frontier at every density
  kDense,      ///< fast path, bitset frontier at every density
  kAuto,       ///< fast path, sparse<->dense switch on frontier density
};

/// Parses an engine name ("reference", "sparse", "dense", "auto"; "fast" is
/// accepted as an alias for "auto"). Returns nullopt for anything else.
std::optional<Engine> parse_engine(std::string_view name);

/// Canonical name of an engine ("default" for Engine::kDefault).
const char* engine_name(Engine engine);

/// Resolves kDefault against the session-wide setting (the --engine flag /
/// COBRA_ENGINE environment variable, default "reference"); other values
/// pass through. Throws util::CheckError when the session string is not a
/// valid engine name.
Engine resolve_engine(Engine engine);

/// Branching factor model.
///
/// Every active vertex (COBRA) / every vertex (BIPS) makes `base` neighbour
/// selections, plus one more with probability `extra_prob`:
///   * paper's main case b = 2          -> {base = 2, extra_prob = 0}
///   * paper's Section 6 case b = 1+rho -> {base = 1, extra_prob = rho}
///   * b = 1 (simple random walk)       -> {base = 1, extra_prob = 0}
/// Expected branching factor = base + extra_prob.
struct Branching {
  std::uint32_t base = 2;   ///< selections every vertex always makes
  double extra_prob = 0.0;  ///< probability of one further selection

  /// Deterministic integer branching factor b >= 1.
  static Branching integer(std::uint32_t b) {
    COBRA_CHECK(b >= 1);
    return Branching{b, 0.0};
  }

  /// b = 1 + rho with 0 <= rho <= 1 (Section 6 of the paper).
  static Branching one_plus_rho(double rho) {
    COBRA_CHECK(rho >= 0.0 && rho <= 1.0);
    return Branching{1, rho};
  }

  /// Expected branching factor base + extra_prob.
  [[nodiscard]] double expected() const {
    return static_cast<double>(base) + extra_prob;
  }
};

/// Options common to both processes.
///
/// `laziness` is the probability that an individual selection stays at the
/// selecting vertex instead of a uniform random neighbour. The paper's
/// remark after Theorem 1.2 uses laziness 1/2 to make bipartite graphs
/// (where lambda = 1) tractable; 0 is the standard process.
struct ProcessOptions {
  /// Branching model; the paper's main case is integer b = 2.
  Branching branching = Branching::integer(2);
  /// Probability a selection stays at the selecting vertex (see above).
  double laziness = 0.0;

  /// Which stepping engine executes step(); kDefault defers to the
  /// session-wide --engine / COBRA_ENGINE setting.
  Engine engine = Engine::kDefault;

  /// kAuto switches to the dense (bitset) frontier once |C_t| reaches
  /// `dense_density * n`, and back to the sparse (vector) frontier below
  /// half that threshold (hysteresis prevents representation thrash).
  double dense_density = 1.0 / 32.0;

  /// Optional pre-built destination sampler, shared across replicates so
  /// the degree-bucketed alias tables are constructed once per graph
  /// rather than once per CobraProcess. Must match the process's graph and
  /// laziness; ignored by the reference engine. When null, fast engines
  /// build their own.
  std::shared_ptr<const NeighborSampler> sampler;

  /// Throws util::CheckError on out-of-range parameters.
  void validate() const {
    COBRA_CHECK(branching.base >= 1);
    COBRA_CHECK(branching.extra_prob >= 0.0 && branching.extra_prob <= 1.0);
    COBRA_CHECK(laziness >= 0.0 && laziness < 1.0);
    COBRA_CHECK(dense_density >= 0.0 && dense_density <= 1.0);
  }
};

}  // namespace cobra::core
