// Shared configuration types for every spreading process (COBRA, BIPS and
// the baselines): stepping-engine selection, the keyed-hash selection for
// per-(round, vertex) randomness, the branching model, and ProcessOptions.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "util/assert.hpp"

namespace cobra::core {

class NeighborSampler;  // core/frontier_kernel.hpp
struct StepMetrics;     // core/metrics.hpp

/// Stepping-engine selection for the frontier-kernel processes (see
/// docs/ARCHITECTURE.md, "Frontier kernel").
///
/// For the kernel-ported processes (BIPS and the baselines) every engine —
/// including kReference — derives its per-vertex randomness from one
/// 64-bit round key per round, so reference, sparse, dense and auto are
/// bit-for-bit identical at a fixed seed; the engine only selects the
/// frontier representation (vector vs bitset vs density-switched).
///
/// CobraProcess keeps one historical exception: its kReference engine is
/// the original sequential loop that consumes the replicate's Rng stream
/// draw by draw, preserved bitwise for continuity with pre-kernel
/// archives. COBRA's fast engines (kSparse/kDense/kAuto) share the keyed
/// protocol and are bit-for-bit identical to each other, but agree with
/// COBRA's reference only in distribution.
enum class Engine : std::uint8_t {
  kDefault,    ///< resolve from --engine / COBRA_ENGINE at construction
  kReference,  ///< sequential-stream loop (the original implementation)
  kSparse,     ///< fast path, vector frontier at every density
  kDense,      ///< fast path, bitset frontier at every density
  kAuto,       ///< fast path, sparse<->dense switch on frontier density
};

/// Parses an engine name ("reference", "sparse", "dense", "auto"; "fast" is
/// accepted as an alias for "auto"). Returns nullopt for anything else.
std::optional<Engine> parse_engine(std::string_view name);

/// Canonical name of an engine ("default" for Engine::kDefault).
const char* engine_name(Engine engine);

/// Resolves kDefault against the session-wide setting (the --engine flag /
/// COBRA_ENGINE environment variable, default "auto"); other values pass
/// through. Throws util::CheckError when the session string is not a valid
/// engine name.
Engine resolve_engine(Engine engine);

/// Keyed-hash selection for the per-(round, vertex) randomness of the
/// frontier kernel (core::VertexDraws).
///
/// kMix64 is the default: two rounds of the SplitMix64 finalizer (one
/// keying the (round key, vertex) pair, one per word) — about half the
/// cost of a Philox evaluation per word, which closes most of the
/// reference-vs-fast gap COBRA showed below 1% frontier density. kPhilox
/// is the conservative fallback: the Philox4x32 stream the PR-3 engines
/// shipped with, kept selectable behind the same draw protocol for A/B
/// runs (bench/micro_cobra exercises both). Engines of one process always
/// share one resolved hash, so the bit-for-bit engine guarantees hold
/// under either choice.
enum class DrawHash : std::uint8_t {
  kDefault,  ///< resolve to kMix64 at construction
  kMix64,    ///< 2-round SplitMix64 finalizer mix (cheap, the default)
  kPhilox,   ///< Philox4x32 counter stream (the original PR-3 protocol)
};

/// Canonical name of a draw hash ("default" for DrawHash::kDefault).
const char* draw_hash_name(DrawHash hash);

/// Resolves kDefault to the session default (kMix64); other values pass
/// through.
DrawHash resolve_draw_hash(DrawHash hash);

/// Resolves a ProcessOptions::kernel_threads value: 0 defers to the
/// session-wide setting (--kernel-threads / COBRA_KERNEL_THREADS, default
/// 1); positive values pass through clamped to [1, 256].
int resolve_kernel_threads(int kernel_threads);

/// Branching factor model.
///
/// Every active vertex (COBRA) / every vertex (BIPS) makes `base` neighbour
/// selections, plus one more with probability `extra_prob`:
///   * paper's main case b = 2          -> {base = 2, extra_prob = 0}
///   * paper's Section 6 case b = 1+rho -> {base = 1, extra_prob = rho}
///   * b = 1 (simple random walk)       -> {base = 1, extra_prob = 0}
/// Expected branching factor = base + extra_prob.
struct Branching {
  std::uint32_t base = 2;   ///< selections every vertex always makes
  double extra_prob = 0.0;  ///< probability of one further selection

  /// Deterministic integer branching factor b >= 1.
  static Branching integer(std::uint32_t b) {
    COBRA_CHECK(b >= 1);
    return Branching{b, 0.0};
  }

  /// b = 1 + rho with 0 <= rho <= 1 (Section 6 of the paper).
  static Branching one_plus_rho(double rho) {
    COBRA_CHECK(rho >= 0.0 && rho <= 1.0);
    return Branching{1, rho};
  }

  /// Expected branching factor base + extra_prob.
  [[nodiscard]] double expected() const {
    return static_cast<double>(base) + extra_prob;
  }
};

/// Options common to both processes.
///
/// `laziness` is the probability that an individual selection stays at the
/// selecting vertex instead of a uniform random neighbour. The paper's
/// remark after Theorem 1.2 uses laziness 1/2 to make bipartite graphs
/// (where lambda = 1) tractable; 0 is the standard process.
struct ProcessOptions {
  /// Branching model; the paper's main case is integer b = 2.
  Branching branching = Branching::integer(2);
  /// Probability a selection stays at the selecting vertex (see above).
  double laziness = 0.0;

  /// Which stepping engine executes step(); kDefault defers to the
  /// session-wide --engine / COBRA_ENGINE setting.
  Engine engine = Engine::kDefault;

  /// Which keyed hash drives the per-(round, vertex) draws of the frontier
  /// kernel; kDefault resolves to the cheap SplitMix64-based mix. Ignored
  /// by COBRA's legacy reference engine (sequential stream draws).
  DrawHash draw_hash = DrawHash::kDefault;

  /// In-round worker-lane count for the kernel's parallel dense scans and
  /// the commit merge. 0 (the default) defers to the session-wide
  /// --kernel-threads / COBRA_KERNEL_THREADS setting; 1 is the serial
  /// kernel. Results are bit-identical at every setting (the per-vertex
  /// draws are keyed by (round, vertex), so lane boundaries can't shift
  /// randomness), which tests/test_kernel_parallel.cpp asserts.
  int kernel_threads = 0;

  /// kAuto switches to the dense (bitset) frontier once |C_t| reaches
  /// `dense_density * n`, and back to the sparse (vector) frontier below
  /// half that threshold (hysteresis prevents representation thrash).
  double dense_density = 1.0 / 32.0;

  /// Optional pre-built destination sampler, shared across replicates so
  /// the degree-bucketed alias tables are constructed once per graph
  /// rather than once per CobraProcess. Must match the process's graph and
  /// laziness; ignored by the reference engine. When null, fast engines
  /// build their own.
  std::shared_ptr<const NeighborSampler> sampler;

  /// Telemetry hook (core/metrics.hpp): when non-null, the process's
  /// frontier kernel streams its round counters into this caller-owned
  /// block. When null, kernels attach to the calling thread's session
  /// collector iff the session metrics mode (COBRA_METRICS / --metrics)
  /// is not "off". Never consumes randomness, so fixed-seed trajectories
  /// are identical with or without it.
  StepMetrics* metrics = nullptr;

  /// Throws util::CheckError on out-of-range parameters.
  void validate() const {
    COBRA_CHECK(branching.base >= 1);
    COBRA_CHECK(branching.extra_prob >= 0.0 && branching.extra_prob <= 1.0);
    COBRA_CHECK(laziness >= 0.0 && laziness < 1.0);
    COBRA_CHECK(dense_density >= 0.0 && dense_density <= 1.0);
    COBRA_CHECK(kernel_threads >= 0 && kernel_threads <= 256);
  }
};

}  // namespace cobra::core
