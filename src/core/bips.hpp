// BIPS: Biased Infection with Persistent Source (Cooper, Radzik, Rivera,
// PODC'16 / SPAA'17).
//
// State: the infected set A_t, with A_0 = {source}. Each round EVERY vertex
// u != source independently selects b random neighbours (with replacement)
// and is infected in A_{t+1} iff at least one selected neighbour is in A_t;
// the source is always infected. infec(v) = min{ t : A_t = V }. Full
// infection is absorbing.
//
// Two execution kernels with identical law (paper §3 algebra; checked by
// tests and ablated in bench/micro_bips):
//   * kSampling   — faithful: b draws per vertex, O(n·b) time per round;
//   * kProbability— computes d_A(u) by scanning the infected set's edges,
//                   then flips one Bernoulli(1-(1-d_A(u)/d(u))^b) per
//                   candidate; O(d(A_t)) time per round (wins while A_t is
//                   small and on low-degree graphs).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/process.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"
#include "util/bitset.hpp"

namespace cobra::core {

enum class BipsKernel {
  kSampling,
  kProbability,
};

struct BipsOptions {
  ProcessOptions process;
  BipsKernel kernel = BipsKernel::kSampling;
};

class BipsProcess {
 public:
  /// The graph must have min degree >= 1 and outlive the process.
  BipsProcess(const graph::Graph& g, graph::VertexId source,
              BipsOptions options = BipsOptions{});

  void reset(graph::VertexId source);

  /// Generalisation: several persistent sources (deduplicated, non-empty).
  /// The paper's process is the single-source case; multiple corrupted
  /// hosts are the natural epidemic extension and only speed up infection
  /// (monotonicity checked in tests).
  void reset(std::span<const graph::VertexId> sources);

  /// One synchronised round; returns |A_{t+1}|.
  std::uint32_t step(rng::Rng& rng);

  [[nodiscard]] std::uint64_t round() const { return round_; }

  /// The (first) persistent source.
  [[nodiscard]] graph::VertexId source() const { return sources_.front(); }

  /// All persistent sources, ascending.
  [[nodiscard]] const std::vector<graph::VertexId>& sources() const {
    return sources_;
  }

  [[nodiscard]] bool is_source(graph::VertexId u) const {
    return source_set_.test(u);
  }

  /// Current infected set A_t (unordered, duplicate-free).
  [[nodiscard]] const std::vector<graph::VertexId>& infected() const {
    return infected_;
  }
  [[nodiscard]] bool is_infected(graph::VertexId u) const {
    return member_.test(u);
  }
  [[nodiscard]] std::uint32_t infected_count() const {
    return static_cast<std::uint32_t>(infected_.size());
  }

  /// d(A_t): sum of degrees of infected vertices (the paper's §3 tracker).
  [[nodiscard]] std::uint64_t infected_degree() const {
    return infected_degree_;
  }

  [[nodiscard]] bool fully_infected() const {
    return infected_.size() == graph_->num_vertices();
  }

  /// Runs until A_t = V; returns the infection time infec(source), or
  /// nullopt after `max_rounds`.
  std::optional<std::uint64_t> run_until_full(rng::Rng& rng,
                                              std::uint64_t max_rounds);

  /// The paper's candidate set for the NEXT round (eq. (6)):
  ///   C_{t+1} = (N(A_t) ∪ {source}) \ B_fix,
  ///   B_fix   = { u : N(u) ⊆ A_t }.
  /// Sorted ascending (the paper's fixed serialisation order).
  [[nodiscard]] std::vector<graph::VertexId> candidate_set() const;

  /// |B_fix| w.r.t. the current infected set.
  [[nodiscard]] std::uint32_t fixed_count() const;

  /// d_A(u) = |N(u) ∩ A_t| for the current round.
  [[nodiscard]] std::uint32_t infected_neighbor_count(graph::VertexId u) const;

  /// Probability that vertex u (≠ source) is infected next round given the
  /// current A_t — the paper's (32)/(33) with optional laziness.
  [[nodiscard]] double infection_probability(graph::VertexId u) const;

  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }
  [[nodiscard]] const BipsOptions& options() const { return options_; }

 private:
  void step_sampling(rng::Rng& rng);
  void step_probability(rng::Rng& rng);
  void rebuild_membership();

  const graph::Graph* graph_;
  BipsOptions options_;
  std::vector<graph::VertexId> sources_;
  util::DynamicBitset source_set_;

  std::vector<graph::VertexId> infected_;
  std::vector<graph::VertexId> next_;
  util::DynamicBitset member_;
  std::uint64_t infected_degree_ = 0;
  std::uint64_t round_ = 0;

  // Scratch for the probability kernel: d_A(u) accumulated per round with
  // epoch stamps (no O(n) clear).
  std::vector<std::uint32_t> da_;
  std::vector<std::uint64_t> da_stamp_;
  std::uint64_t da_epoch_ = 0;
};

/// Static helper shared with the exact-DP module: probability that a vertex
/// with degree `d`, `da` infected neighbours and (lazy, self-infected flag)
/// catches the infection under `options`.
double bips_infection_probability(std::uint32_t d, std::uint32_t da,
                                  bool self_infected,
                                  const ProcessOptions& options);

}  // namespace cobra::core
