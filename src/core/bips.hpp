// BIPS: Biased Infection with Persistent Source (Cooper, Radzik, Rivera,
// PODC'16 / SPAA'17).
//
// State: the infected set A_t, with A_0 = {source}. Each round EVERY vertex
// u != source independently selects b random neighbours (with replacement)
// and is infected in A_{t+1} iff at least one selected neighbour is in A_t;
// the source is always infected. infec(v) = min{ t : A_t = V }. Full
// infection is absorbing.
//
// Two execution kernels with identical law (paper §3 algebra; checked by
// tests and ablated in bench/micro_bips):
//   * kSampling   — faithful: b draws per vertex, O(n·b) time per round;
//   * kProbability— computes d_A(u) by scanning the infected set's edges,
//                   then flips one Bernoulli(1-(1-d_A(u)/d(u))^b) per
//                   candidate; O(d(A_t)) time per round (wins while A_t is
//                   small and on low-degree graphs).
//
// The sampling kernel runs on the shared frontier kernel
// (core/frontier_kernel.hpp): all per-vertex randomness is keyed by
// (round key, vertex), so the reference, sparse, dense and auto engines
// are bit-for-bit identical at a fixed seed and differ only in cost. The
// dense engine exploits determined outcomes: a vertex whose selections
// cannot miss (every neighbour infected, and with laziness also itself) is
// infected without drawing, and one whose selections cannot hit stays
// uninfected without drawing — so a round costs O(min(d(A_t), d(V \ A_t)))
// marking plus draws for the undetermined boundary only, instead of
// O(n·b). The probability kernel's cost is already edge-driven; it uses
// the same keyed draws (one Bernoulli per candidate) and is engine-
// independent.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/frontier_kernel.hpp"
#include "core/process.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"
#include "util/bitset.hpp"

namespace cobra::core {

/// Execution-kernel selection (identical infection law, different cost).
enum class BipsKernel {
  kSampling,     ///< b keyed draws per vertex with early exit
  kProbability,  ///< one keyed Bernoulli(infection probability) per candidate
};

/// BipsProcess configuration.
struct BipsOptions {
  /// Branching/laziness/engine shared with COBRA (ProcessOptions::engine
  /// picks the frontier representation; ProcessOptions::sampler may inject
  /// a shared destination sampler for the sampling kernel).
  ProcessOptions process;
  /// Which execution kernel runs the rounds.
  BipsKernel kernel = BipsKernel::kSampling;
  /// Auto-engine rule for the sampling kernel: a round runs dense when
  /// min(|A_t|, n - |A_t|) · avg_degree <= dense_edge_budget · n — i.e.
  /// when the boundary-marking pass is cheaper than the all-vertex scan —
  /// with the kernel's 2x hysteresis on the way out. Unlike COBRA's
  /// density rule this fires at BOTH extremes (tiny and near-full infected
  /// sets), where determined outcomes dominate.
  double dense_edge_budget = 1.0;
};

/// Simulator for one BIPS trajectory on a fixed graph.
///
/// Not thread-safe; run one instance per replicate (sim/monte_carlo does).
class BipsProcess {
 public:
  /// The graph must have min degree >= 1 and outlive the process.
  BipsProcess(const graph::Graph& g, graph::VertexId source,
              BipsOptions options = BipsOptions{});

  /// Restarts with A_0 = {source}.
  void reset(graph::VertexId source);

  /// Generalisation: several persistent sources (deduplicated, non-empty).
  /// The paper's process is the single-source case; multiple corrupted
  /// hosts are the natural epidemic extension and only speed up infection
  /// (monotonicity checked in tests).
  void reset(std::span<const graph::VertexId> sources);

  /// One synchronised round; returns |A_{t+1}|. Consumes exactly one
  /// 64-bit round key from the stream; every per-vertex choice is derived
  /// from it through the frontier kernel's keyed draws.
  std::uint32_t step(rng::Rng& rng);

  /// Rounds executed since reset (t of A_t).
  [[nodiscard]] std::uint64_t round() const { return round_; }

  /// The (first) persistent source.
  [[nodiscard]] graph::VertexId source() const { return sources_.front(); }

  /// All persistent sources, ascending.
  [[nodiscard]] const std::vector<graph::VertexId>& sources() const {
    return sources_;
  }

  /// True iff u is a persistent source.
  [[nodiscard]] bool is_source(graph::VertexId u) const {
    return source_set_.test(u);
  }

  /// Current infected set A_t (duplicate-free). Order is engine-dependent:
  /// emission order after sparse rounds, ascending vertex id after dense
  /// rounds (materialised lazily — prefer infected_count() for the size).
  [[nodiscard]] const std::vector<graph::VertexId>& infected() const {
    return kernel_.frontier_vector();
  }

  /// True iff u is infected in A_t.
  [[nodiscard]] bool is_infected(graph::VertexId u) const {
    return kernel_.in_frontier(u);
  }

  /// |A_t| in O(1).
  [[nodiscard]] std::uint32_t infected_count() const {
    return kernel_.frontier_size();
  }

  /// d(A_t): sum of degrees of infected vertices (the paper's §3 tracker).
  /// Computed lazily per round — O(|A_t|) on first call after a step.
  [[nodiscard]] std::uint64_t infected_degree() const;

  /// True iff A_t = V.
  [[nodiscard]] bool fully_infected() const {
    return infected_count() == graph_->num_vertices();
  }

  /// Runs until A_t = V; returns the infection time infec(source), or
  /// nullopt after `max_rounds`.
  std::optional<std::uint64_t> run_until_full(rng::Rng& rng,
                                              std::uint64_t max_rounds);

  /// The paper's candidate set for the NEXT round (eq. (6)):
  ///   C_{t+1} = (N(A_t) ∪ {source}) \ B_fix,
  ///   B_fix   = { u : N(u) ⊆ A_t }.
  /// Sorted ascending (the paper's fixed serialisation order).
  [[nodiscard]] std::vector<graph::VertexId> candidate_set() const;

  /// |B_fix| w.r.t. the current infected set.
  [[nodiscard]] std::uint32_t fixed_count() const;

  /// d_A(u) = |N(u) ∩ A_t| for the current round.
  [[nodiscard]] std::uint32_t infected_neighbor_count(graph::VertexId u) const;

  /// Probability that vertex u (≠ source) is infected next round given the
  /// current A_t — the paper's (32)/(33) with optional laziness.
  [[nodiscard]] double infection_probability(graph::VertexId u) const;

  /// The graph this process runs on.
  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }

  /// The options the process was constructed with (engine unresolved).
  [[nodiscard]] const BipsOptions& options() const { return options_; }

  /// The resolved stepping engine (never Engine::kDefault). The
  /// probability kernel is representation-independent, so for it every
  /// engine runs the same edge-driven scan.
  [[nodiscard]] Engine engine() const { return engine_; }

  /// Rounds since reset executed with the dense (boundary-marking) path —
  /// introspection for tests and the auto-switch benchmarks.
  [[nodiscard]] std::uint64_t dense_rounds() const {
    return kernel_.dense_rounds();
  }

 private:
  /// Builds the kernel configuration for the resolved engine.
  FrontierKernel::Config kernel_config() const;

  void step_sampling(std::uint64_t round_key);
  void step_sampling_dense(std::uint64_t round_key);
  void step_probability(std::uint64_t round_key);

  /// Keyed selection trial of vertex u against the current A_t: true iff
  /// any of u's fanout selections hits an infected vertex (early exit —
  /// legal because the draws are counter-based, not sequential). The
  /// caller owns the draw stream so parallel lanes can account for it in
  /// their lane-local telemetry block.
  bool catches_infection(graph::VertexId u, VertexDraws& draws) const;

  const graph::Graph* graph_;
  BipsOptions options_;
  Engine engine_;
  FrontierKernel kernel_;
  std::vector<graph::VertexId> sources_;
  util::DynamicBitset source_set_;
  double avg_degree_ = 0.0;
  std::uint64_t round_ = 0;

  // Lazy d(A_t) cache (invalidated per round).
  mutable std::uint64_t infected_degree_ = 0;
  mutable bool infected_degree_valid_ = false;

  // Scratch for the dense sampling rounds (boundary marking) and the
  // probability kernel's d_A accumulation (epoch stamps: no O(n) clear).
  util::DynamicBitset scratch_;
  std::vector<std::uint32_t> da_;
  std::vector<std::uint64_t> da_stamp_;
  std::uint64_t da_epoch_ = 0;
};

/// Static helper shared with the exact-DP module: probability that a vertex
/// with degree `d`, `da` infected neighbours and (lazy, self-infected flag)
/// catches the infection under `options`.
double bips_infection_probability(std::uint32_t d, std::uint32_t da,
                                  bool self_infected,
                                  const ProcessOptions& options);

}  // namespace cobra::core
