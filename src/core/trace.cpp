#include "core/trace.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cobra::core {

std::uint64_t CobraTrace::rounds_to_fraction(double fraction,
                                             std::uint32_t n) const {
  COBRA_CHECK(fraction > 0.0 && fraction <= 1.0);
  const double target = fraction * static_cast<double>(n);
  for (const CobraRound& r : rounds)
    if (static_cast<double>(r.visited) >= target) return r.round;
  return rounds.empty() ? 1 : rounds.back().round + 1;
}

CobraTrace run_cobra_trace(const graph::Graph& g,
                           const ProcessOptions& options,
                           graph::VertexId start, std::uint64_t max_rounds,
                           rng::Rng& rng) {
  CobraProcess process(g, options);
  process.reset(start);
  CobraTrace trace;
  auto record = [&](std::uint32_t new_visits) {
    trace.rounds.push_back({process.round(), process.num_active(),
                            process.num_visited(), new_visits,
                            process.transmissions()});
  };
  record(1);  // reset state: the start vertex counts as the first visit
  while (!process.all_visited() && process.round() < max_rounds)
    record(process.step(rng));
  trace.covered = process.all_visited();
  return trace;
}

CoverProfile summarize_trace(const CobraTrace& trace, std::uint32_t n) {
  COBRA_CHECK_MSG(trace.covered, "profile needs a covered trace");
  CoverProfile profile;
  profile.to_half = trace.rounds_to_fraction(0.5, n);
  profile.to_ninety = trace.rounds_to_fraction(0.9, n);
  profile.to_cover = trace.rounds.back().round;
  for (const CobraRound& r : trace.rounds)
    profile.peak_active = std::max(profile.peak_active, r.active);
  profile.tail_fraction =
      profile.to_cover == 0
          ? 0.0
          : static_cast<double>(profile.to_cover - profile.to_ninety) /
                static_cast<double>(profile.to_cover);
  return profile;
}

}  // namespace cobra::core
