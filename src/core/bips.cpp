#include "core/bips.hpp"

#include <algorithm>
#include <cmath>

namespace cobra::core {

double bips_infection_probability(std::uint32_t d, std::uint32_t da,
                                  bool self_infected,
                                  const ProcessOptions& options) {
  COBRA_DCHECK(d >= 1 && da <= d);
  const double lazy = options.laziness;
  // One selection hits an infected vertex with probability
  //   q = lazy * [self infected] + (1 - lazy) * d_A(u)/d(u).
  const double q = lazy * (self_infected ? 1.0 : 0.0) +
                   (1.0 - lazy) * static_cast<double>(da) /
                       static_cast<double>(d);
  if (q <= 0.0) return 0.0;
  if (q >= 1.0) return 1.0;
  const Branching& b = options.branching;
  const double miss_base = std::pow(1.0 - q, static_cast<double>(b.base));
  // Number of selections is base (w.p. 1-extra) or base+1 (w.p. extra).
  const double miss = (1.0 - b.extra_prob) * miss_base +
                      b.extra_prob * miss_base * (1.0 - q);
  return 1.0 - miss;
}

BipsProcess::BipsProcess(const graph::Graph& g, graph::VertexId source,
                         BipsOptions options)
    : graph_(&g), options_(options) {
  options_.process.validate();
  COBRA_CHECK_MSG(g.num_vertices() >= 1, "empty graph");
  COBRA_CHECK_MSG(g.min_degree() >= 1,
                  "BIPS needs every vertex to have a neighbour to select");
  member_.resize(g.num_vertices());
  source_set_.resize(g.num_vertices());
  da_.assign(g.num_vertices(), 0);
  da_stamp_.assign(g.num_vertices(), 0);
  reset(source);
}

void BipsProcess::reset(graph::VertexId source) {
  const graph::VertexId one[] = {source};
  reset(std::span<const graph::VertexId>(one, 1));
}

void BipsProcess::reset(std::span<const graph::VertexId> sources) {
  COBRA_CHECK(!sources.empty());
  source_set_.reset_all();
  sources_.clear();
  for (const graph::VertexId s : sources) {
    COBRA_CHECK(s < graph_->num_vertices());
    if (source_set_.set_and_test(s)) sources_.push_back(s);
  }
  std::sort(sources_.begin(), sources_.end());
  infected_ = sources_;
  rebuild_membership();
  round_ = 0;
}

void BipsProcess::rebuild_membership() {
  member_.reset_all();
  infected_degree_ = 0;
  for (const graph::VertexId u : infected_) {
    member_.set(u);
    infected_degree_ += graph_->degree(u);
  }
}

std::uint32_t BipsProcess::step(rng::Rng& rng) {
  if (options_.kernel == BipsKernel::kSampling) {
    step_sampling(rng);
  } else {
    step_probability(rng);
  }
  infected_.swap(next_);
  rebuild_membership();
  ++round_;
  return infected_count();
}

void BipsProcess::step_sampling(rng::Rng& rng) {
  const graph::VertexId n = graph_->num_vertices();
  const Branching& b = options_.process.branching;
  const double lazy = options_.process.laziness;
  next_.clear();
  for (graph::VertexId u = 0; u < n; ++u) {
    if (source_set_.test(u)) {
      next_.push_back(u);
      continue;
    }
    const std::uint32_t fanout =
        b.base +
        ((b.extra_prob > 0.0 && rng.bernoulli(b.extra_prob)) ? 1u : 0u);
    const auto nbrs = graph_->neighbors(u);
    bool caught = false;
    for (std::uint32_t j = 0; j < fanout && !caught; ++j) {
      graph::VertexId pick;
      if (lazy > 0.0 && rng.bernoulli(lazy)) {
        pick = u;
      } else {
        pick = nbrs[static_cast<std::size_t>(rng.below(nbrs.size()))];
      }
      caught = member_.test(pick);
    }
    if (caught) next_.push_back(u);
  }
}

void BipsProcess::step_probability(rng::Rng& rng) {
  // Accumulate d_A(u) for u in N(A_t) by scanning infected adjacency.
  ++da_epoch_;
  std::vector<graph::VertexId> touched;
  touched.reserve(infected_.size() * 2);
  for (const graph::VertexId a : infected_) {
    for (const graph::VertexId u : graph_->neighbors(a)) {
      if (da_stamp_[u] != da_epoch_) {
        da_stamp_[u] = da_epoch_;
        da_[u] = 0;
        touched.push_back(u);
      }
      ++da_[u];
    }
  }
  const double lazy = options_.process.laziness;
  next_.clear();
  next_.insert(next_.end(), sources_.begin(), sources_.end());
  // With laziness, an infected vertex can catch from itself even when none
  // of its neighbours are infected, so infected vertices outside N(A) must
  // be considered too.
  if (lazy > 0.0) {
    for (const graph::VertexId u : infected_) {
      if (da_stamp_[u] != da_epoch_) {
        da_stamp_[u] = da_epoch_;
        da_[u] = 0;
        touched.push_back(u);
      }
    }
  }
  for (const graph::VertexId u : touched) {
    if (source_set_.test(u)) continue;
    const double p = bips_infection_probability(
        graph_->degree(u), da_[u], member_.test(u), options_.process);
    if (rng.bernoulli(p)) next_.push_back(u);
  }
}

std::optional<std::uint64_t> BipsProcess::run_until_full(
    rng::Rng& rng, std::uint64_t max_rounds) {
  if (fully_infected()) return round_;
  while (round_ < max_rounds) {
    step(rng);
    if (fully_infected()) return round_;
  }
  return std::nullopt;
}

std::vector<graph::VertexId> BipsProcess::candidate_set() const {
  // C = (N(A) ∪ sources) \ B_fix with B_fix = {u : N(u) ⊆ A}.
  std::vector<graph::VertexId> candidates;
  util::DynamicBitset seen(graph_->num_vertices());
  auto consider = [&](graph::VertexId u) {
    if (!seen.set_and_test(u)) return;
    if (infected_neighbor_count(u) < graph_->degree(u))  // u not in B_fix
      candidates.push_back(u);
  };
  for (const graph::VertexId a : infected_)
    for (const graph::VertexId u : graph_->neighbors(a)) consider(u);
  for (const graph::VertexId s : sources_) consider(s);
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

std::uint32_t BipsProcess::fixed_count() const {
  std::uint32_t count = 0;
  for (graph::VertexId u = 0; u < graph_->num_vertices(); ++u)
    if (infected_neighbor_count(u) == graph_->degree(u)) ++count;
  return count;
}

std::uint32_t BipsProcess::infected_neighbor_count(graph::VertexId u) const {
  std::uint32_t count = 0;
  for (const graph::VertexId v : graph_->neighbors(u))
    if (member_.test(v)) ++count;
  return count;
}

double BipsProcess::infection_probability(graph::VertexId u) const {
  COBRA_CHECK(!is_source(u));
  return bips_infection_probability(graph_->degree(u),
                                    infected_neighbor_count(u),
                                    member_.test(u), options_.process);
}

}  // namespace cobra::core
