#include "core/bips.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace cobra::core {

double bips_infection_probability(std::uint32_t d, std::uint32_t da,
                                  bool self_infected,
                                  const ProcessOptions& options) {
  COBRA_DCHECK(d >= 1 && da <= d);
  const double lazy = options.laziness;
  // One selection hits an infected vertex with probability
  //   q = lazy * [self infected] + (1 - lazy) * d_A(u)/d(u).
  const double q = lazy * (self_infected ? 1.0 : 0.0) +
                   (1.0 - lazy) * static_cast<double>(da) /
                       static_cast<double>(d);
  if (q <= 0.0) return 0.0;
  if (q >= 1.0) return 1.0;
  const Branching& b = options.branching;
  const double miss_base = std::pow(1.0 - q, static_cast<double>(b.base));
  // Number of selections is base (w.p. 1-extra) or base+1 (w.p. extra).
  const double miss = (1.0 - b.extra_prob) * miss_base +
                      b.extra_prob * miss_base * (1.0 - q);
  return 1.0 - miss;
}

FrontierKernel::Config BipsProcess::kernel_config() const {
  FrontierKernel::Config cfg;
  // The probability kernel's scan is edge-driven whatever the frontier
  // representation, so it always runs the sparse path; the engine choice
  // only drives the sampling kernel.
  cfg.engine = options_.kernel == BipsKernel::kProbability ? Engine::kSparse
                                                           : engine_;
  cfg.draw_hash = options_.process.draw_hash;
  cfg.dense_density = options_.process.dense_density;
  cfg.laziness = options_.process.laziness;
  cfg.build_sampler = options_.kernel == BipsKernel::kSampling;
  cfg.track_visited = false;  // A_t is not monotone
  cfg.sampler = cfg.build_sampler ? options_.process.sampler : nullptr;
  cfg.metrics = options_.process.metrics;
  cfg.kernel_threads = resolve_kernel_threads(options_.process.kernel_threads);
  return cfg;
}

BipsProcess::BipsProcess(const graph::Graph& g, graph::VertexId source,
                         BipsOptions options)
    : graph_(&g),
      options_(options),
      engine_((options_.process.validate(),
               resolve_engine(options_.process.engine))),
      kernel_(g, kernel_config()) {
  COBRA_CHECK_MSG(g.num_vertices() >= 1, "empty graph");
  COBRA_CHECK_MSG(g.min_degree() >= 1,
                  "BIPS needs every vertex to have a neighbour to select");
  COBRA_CHECK_MSG(options_.dense_edge_budget > 0.0,
                  "dense_edge_budget must be positive");
  source_set_.resize(g.num_vertices());
  da_.assign(g.num_vertices(), 0);
  da_stamp_.assign(g.num_vertices(), 0);
  avg_degree_ = static_cast<double>(g.degree_sum()) /
                static_cast<double>(g.num_vertices());
  reset(source);
}

void BipsProcess::reset(graph::VertexId source) {
  const graph::VertexId one[] = {source};
  reset(std::span<const graph::VertexId>(one, 1));
}

void BipsProcess::reset(std::span<const graph::VertexId> sources) {
  COBRA_CHECK(!sources.empty());
  source_set_.reset_all();
  sources_.clear();
  for (const graph::VertexId s : sources) {
    COBRA_CHECK(s < graph_->num_vertices());
    if (source_set_.set_and_test(s)) sources_.push_back(s);
  }
  std::sort(sources_.begin(), sources_.end());
  kernel_.assign(sources_);
  round_ = 0;
  infected_degree_valid_ = false;
}

std::uint64_t BipsProcess::infected_degree() const {
  if (!infected_degree_valid_) {
    std::uint64_t sum = 0;
    kernel_.for_each_in_frontier(
        [&](graph::VertexId u) { sum += graph_->degree(u); });
    infected_degree_ = sum;
    infected_degree_valid_ = true;
  }
  return infected_degree_;
}

std::uint32_t BipsProcess::step(rng::Rng& rng) {
  const std::uint64_t round_key = rng.next_u64();
  if (options_.kernel == BipsKernel::kSampling) {
    step_sampling(round_key);
  } else {
    step_probability(round_key);
  }
  ++round_;
  infected_degree_valid_ = false;
  return infected_count();
}

bool BipsProcess::catches_infection(graph::VertexId u,
                                    VertexDraws& draws) const {
  const Branching& b = options_.process.branching;
  std::uint32_t fanout = b.base;
  if (b.extra_prob > 0.0 && draws.bernoulli(b.extra_prob)) ++fanout;
  const NeighborSampler& sampler = kernel_.sampler();
  // Early exit is legal: the draws are counter-based, so skipping the
  // remaining selections cannot shift any other vertex's randomness.
  for (std::uint32_t j = 0; j < fanout; ++j)
    if (kernel_.in_frontier(sampler.sample(u, draws.next_word())))
      return true;
  return false;
}

void BipsProcess::step_sampling(std::uint64_t round_key) {
  const graph::VertexId n = graph_->num_vertices();
  const std::uint32_t a = kernel_.frontier_size();
  // Dense rounds pay O(min-side edges) marking; the plain scan pays O(n·b)
  // draws. Score >= 1 <=> the boundary pass is within the edge budget.
  const double min_side_edges =
      static_cast<double>(std::min(a, n - a)) * avg_degree_;
  const double score =
      min_side_edges <= 0.0
          ? 2.0  // fully infected: the dense round is a pure word pass
          : options_.dense_edge_budget * static_cast<double>(n) /
                min_side_edges;
  const bool dense = kernel_.begin_round(score);
  if (dense) {
    step_sampling_dense(round_key);
  } else {
    kernel_.plain_vertex_scan(
        [&](FrontierKernel::SparseLane& lane, graph::VertexId u) {
          if (source_set_.test(u)) {
            lane.emit(u);
            return;
          }
          VertexDraws draws = lane.draws(round_key, u);
          if (catches_infection(u, draws)) lane.emit(u);
        });
  }
  kernel_.commit(FrontierKernel::Commit::kReplace);
}

void BipsProcess::step_sampling_dense(std::uint64_t round_key) {
  const graph::VertexId n = graph_->num_vertices();
  const bool lazy = options_.process.laziness > 0.0;
  if (scratch_.size() != n) scratch_.resize(n);
  scratch_.reset_all();
  auto sink = kernel_.dense_sink();
  const std::uint32_t a = kernel_.frontier_size();

  const auto sample_marked = [&] {
    // Local-write scan: each marked vertex emits only its own bit, so the
    // lanes write disjoint next-frontier words with no scratch merge.
    kernel_.local_marked_scan(
        scratch_, [&](FrontierKernel::DenseLane& lane, graph::VertexId u) {
          if (source_set_.test(u)) return;
          VertexDraws draws = lane.draws(round_key, u);
          if (catches_infection(u, draws)) lane.emit(u);
        });
  };

  if (2ull * a <= n) {
    // Small infected side: only candidates = N(A_t) (∪ A_t with laziness)
    // can catch the infection; everyone else is determined-uninfected and
    // draws nothing.
    kernel_.scatter_frontier_scan(
        scratch_, [&](FrontierKernel::DenseLane& lane, graph::VertexId v) {
          if (lazy) lane.emit(v);
          for (const graph::VertexId w : graph_->neighbors(v)) lane.emit(w);
        });
    sample_marked();
  } else {
    // Small uninfected side: only the undetermined boundary = N(V \ A_t)
    // (∪ V \ A_t with laziness) can miss; everyone else is determined-
    // infected, installed word-parallel as the complement of the marks.
    kernel_.scatter_complement_scan(
        scratch_, [&](FrontierKernel::DenseLane& lane, graph::VertexId u) {
          if (lazy) lane.emit(u);
          for (const graph::VertexId w : graph_->neighbors(u)) lane.emit(w);
        });
    std::uint64_t* next = kernel_.next_words();
    const auto& marked = scratch_.words();
    for (std::size_t w = 0; w < marked.size(); ++w) next[w] = ~marked[w];
    const std::size_t tail = static_cast<std::size_t>(n) & 63;
    if (tail != 0) next[marked.size() - 1] &= (1ull << tail) - 1;
    sample_marked();
  }
  // The persistent sources are infected whatever they drew.
  for (const graph::VertexId s : sources_) sink.emit(s);
}

void BipsProcess::step_probability(std::uint64_t round_key) {
  kernel_.begin_round(0.0);  // always a sparse round (see kernel_config)
  // Accumulate d_A(u) for u in N(A_t) by scanning infected adjacency.
  ++da_epoch_;
  std::vector<graph::VertexId> touched;
  touched.reserve(static_cast<std::size_t>(kernel_.frontier_size()) * 2);
  kernel_.for_each_in_frontier([&](graph::VertexId a) {
    for (const graph::VertexId u : graph_->neighbors(a)) {
      if (da_stamp_[u] != da_epoch_) {
        da_stamp_[u] = da_epoch_;
        da_[u] = 0;
        touched.push_back(u);
      }
      ++da_[u];
    }
  });
  const double lazy = options_.process.laziness;
  auto sink = kernel_.plain_sink();
  for (const graph::VertexId s : sources_) sink.emit(s);
  // With laziness, an infected vertex can catch from itself even when none
  // of its neighbours are infected, so infected vertices outside N(A) must
  // be considered too.
  if (lazy > 0.0) {
    kernel_.for_each_in_frontier([&](graph::VertexId u) {
      if (da_stamp_[u] != da_epoch_) {
        da_stamp_[u] = da_epoch_;
        da_[u] = 0;
        touched.push_back(u);
      }
    });
  }
  for (const graph::VertexId u : touched) {
    if (source_set_.test(u)) continue;
    const double p = bips_infection_probability(
        graph_->degree(u), da_[u], kernel_.in_frontier(u), options_.process);
    if (kernel_.draws(round_key, u).bernoulli(p)) sink.emit(u);
  }
  kernel_.commit(FrontierKernel::Commit::kReplace);
}

std::optional<std::uint64_t> BipsProcess::run_until_full(
    rng::Rng& rng, std::uint64_t max_rounds) {
  if (fully_infected()) return round_;
  while (round_ < max_rounds) {
    step(rng);
    if (fully_infected()) return round_;
  }
  return std::nullopt;
}

std::vector<graph::VertexId> BipsProcess::candidate_set() const {
  // C = (N(A) ∪ sources) \ B_fix with B_fix = {u : N(u) ⊆ A}.
  std::vector<graph::VertexId> candidates;
  util::DynamicBitset seen(graph_->num_vertices());
  auto consider = [&](graph::VertexId u) {
    if (!seen.set_and_test(u)) return;
    if (infected_neighbor_count(u) < graph_->degree(u))  // u not in B_fix
      candidates.push_back(u);
  };
  kernel_.for_each_in_frontier([&](graph::VertexId a) {
    for (const graph::VertexId u : graph_->neighbors(a)) consider(u);
  });
  for (const graph::VertexId s : sources_) consider(s);
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

std::uint32_t BipsProcess::fixed_count() const {
  std::uint32_t count = 0;
  for (graph::VertexId u = 0; u < graph_->num_vertices(); ++u)
    if (infected_neighbor_count(u) == graph_->degree(u)) ++count;
  return count;
}

std::uint32_t BipsProcess::infected_neighbor_count(graph::VertexId u) const {
  std::uint32_t count = 0;
  for (const graph::VertexId v : graph_->neighbors(u))
    if (kernel_.in_frontier(v)) ++count;
  return count;
}

double BipsProcess::infection_probability(graph::VertexId u) const {
  COBRA_CHECK(!is_source(u));
  return bips_infection_probability(graph_->degree(u),
                                    infected_neighbor_count(u),
                                    kernel_.in_frontier(u), options_.process);
}

}  // namespace cobra::core
