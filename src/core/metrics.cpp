#include "core/metrics.hpp"

#include <algorithm>
#include <memory>

#include "util/annotations.hpp"

namespace cobra::core {

void StepMetrics::note_round(std::size_t index, std::uint64_t frontier,
                             std::uint64_t newly, bool dense) {
  if (round_trajectory.size() <= index)
    round_trajectory.resize(index + 1);
  RoundStat& stat = round_trajectory[index];
  ++stat.processes;
  stat.frontier += frontier;
  stat.newly += newly;
  stat.dense += dense ? 1 : 0;
}

void StepMetrics::merge_from(const StepMetrics& other) {
  rounds += other.rounds;
  rounds_dense += other.rounds_dense;
  mode_switches += other.mode_switches;
  frontier_sum += other.frontier_sum;
  frontier_peak = std::max(frontier_peak, other.frontier_peak);
  first_visits += other.first_visits;
  emissions += other.emissions;
  dedup_hits += other.dedup_hits;
  draw_streams += other.draw_streams;
  words_scanned += other.words_scanned;
  merged_words += other.merged_words;
  for (std::size_t b = 0; b < frontier_hist.size(); ++b)
    frontier_hist[b] += other.frontier_hist[b];
  if (round_trajectory.size() < other.round_trajectory.size())
    round_trajectory.resize(other.round_trajectory.size());
  for (std::size_t i = 0; i < other.round_trajectory.size(); ++i) {
    RoundStat& stat = round_trajectory[i];
    const RoundStat& o = other.round_trajectory[i];
    stat.processes += o.processes;
    stat.frontier += o.frontier;
    stat.newly += o.newly;
    stat.dense += o.dense;
  }
}

void StepMetrics::reset() {
  const bool keep_recording = record_rounds;
  *this = StepMetrics{};
  record_rounds = keep_recording;
}

namespace {

// Registered session blocks: one per thread that ever stepped a kernel
// with telemetry on, plus the folded counts of threads that exited
// between drains.
struct SessionBlocks {
  util::Mutex mu;
  // Pointers guarded; each pointee is one thread's private block, folded
  // by drain_session_step_metrics() only at quiescence (cell boundaries).
  std::vector<StepMetrics*> blocks COBRA_GUARDED_BY(mu);
  StepMetrics retired COBRA_GUARDED_BY(mu);
};

SessionBlocks& session_blocks() {
  // Leaked: thread-local destructors below may outlive static teardown.
  static SessionBlocks* const s = new SessionBlocks();
  return *s;
}

// Thread-local handle: registers on first use, folds itself into
// `retired` when the thread exits so no counts are lost.
struct ThreadBlock {
  std::unique_ptr<StepMetrics> block;

  StepMetrics* get() {
    if (!block) {
      block = std::make_unique<StepMetrics>();
      SessionBlocks& s = session_blocks();
      util::MutexLock lock(s.mu);
      s.blocks.push_back(block.get());
    }
    return block.get();
  }

  ~ThreadBlock() {
    if (!block) return;
    SessionBlocks& s = session_blocks();
    util::MutexLock lock(s.mu);
    s.retired.merge_from(*block);
    std::erase(s.blocks, block.get());
  }
};

thread_local ThreadBlock tl_block;

}  // namespace

StepMetrics* session_step_metrics() {
  const util::MetricsMode mode = util::metrics_mode();
  if (mode == util::MetricsMode::kOff) return nullptr;
  StepMetrics* block = tl_block.get();
  block->record_rounds = mode == util::MetricsMode::kRounds;
  return block;
}

StepMetrics drain_session_step_metrics() {
  SessionBlocks& s = session_blocks();
  util::MutexLock lock(s.mu);
  StepMetrics out;
  out.merge_from(s.retired);
  s.retired.reset();
  for (StepMetrics* block : s.blocks) {
    out.merge_from(*block);
    block->reset();
  }
  return out;
}

namespace {

// "kernel.*" registry ids, resolved once per process.
struct KernelIds {
  util::MetricId rounds;
  util::MetricId rounds_dense;
  util::MetricId mode_switches;
  util::MetricId frontier_sum;
  util::MetricId frontier_peak;
  util::MetricId first_visits;
  util::MetricId emissions;
  util::MetricId dedup_hits;
  util::MetricId draw_streams;
  util::MetricId words_scanned;
  util::MetricId merged_words;
  util::MetricId frontier_size;
};

const KernelIds& kernel_ids() {
  static const KernelIds ids = [] {
    util::MetricsRegistry& reg = util::MetricsRegistry::instance();
    KernelIds k;
    k.rounds = reg.counter("kernel.rounds");
    k.rounds_dense = reg.counter("kernel.rounds_dense");
    k.mode_switches = reg.counter("kernel.mode_switches");
    k.frontier_sum = reg.counter("kernel.frontier_sum");
    k.frontier_peak = reg.gauge("kernel.frontier_peak");
    k.first_visits = reg.counter("kernel.first_visits");
    k.emissions = reg.counter("kernel.emissions");
    k.dedup_hits = reg.counter("kernel.dedup_hits");
    k.draw_streams = reg.counter("kernel.draw_streams");
    k.words_scanned = reg.counter("kernel.words_scanned");
    k.merged_words = reg.counter("kernel.merged_words");
    k.frontier_size = reg.histogram("kernel.frontier_size");
    return k;
  }();
  return ids;
}

}  // namespace

void publish_step_metrics(const StepMetrics& metrics) {
  const KernelIds& ids = kernel_ids();
  util::MetricsRegistry& reg = util::MetricsRegistry::instance();
  reg.add(ids.rounds, metrics.rounds);
  reg.add(ids.rounds_dense, metrics.rounds_dense);
  reg.add(ids.mode_switches, metrics.mode_switches);
  reg.add(ids.frontier_sum, metrics.frontier_sum);
  reg.gauge_max(ids.frontier_peak, metrics.frontier_peak);
  reg.add(ids.first_visits, metrics.first_visits);
  reg.add(ids.emissions, metrics.emissions);
  reg.add(ids.dedup_hits, metrics.dedup_hits);
  reg.add(ids.draw_streams, metrics.draw_streams);
  reg.add(ids.words_scanned, metrics.words_scanned);
  reg.add(ids.merged_words, metrics.merged_words);
  std::uint64_t* slots = reg.local_slots();
  for (std::size_t b = 0; b < metrics.frontier_hist.size(); ++b)
    slots[ids.frontier_size + b] += metrics.frontier_hist[b];
}

CellMetrics drain_cell_metrics() {
  StepMetrics step = drain_session_step_metrics();
  publish_step_metrics(step);
  CellMetrics out;
  out.snapshot = util::MetricsRegistry::instance().drain(true);
  out.rounds = std::move(step.round_trajectory);
  return out;
}

}  // namespace cobra::core
