#include "core/restart.hpp"

#include "util/assert.hpp"

namespace cobra::core {

double restart_expectation_bound(double epoch_length,
                                 double failure_probability) {
  COBRA_CHECK(epoch_length > 0.0);
  COBRA_CHECK(failure_probability >= 0.0 && failure_probability < 1.0);
  return epoch_length / (1.0 - failure_probability);
}

RestartResult run_cover_with_restarts(CobraProcess& process, rng::Rng& rng,
                                      std::uint64_t epoch_rounds,
                                      std::uint64_t max_epochs) {
  COBRA_CHECK(epoch_rounds >= 1);
  RestartResult result;
  for (std::uint64_t epoch = 0; epoch < max_epochs; ++epoch) {
    result.epochs = epoch + 1;
    for (std::uint64_t t = 0; t < epoch_rounds && !process.all_visited();
         ++t) {
      process.step(rng);
      ++result.total_rounds;
    }
    if (process.all_visited()) {
      result.completed = true;
      return result;
    }
    // Restart from the current particle set: the paper picks "any vertex in
    // C_T"; keeping the whole set only helps and stays within the argument
    // (the bound is per-start-vertex, and cover from a superset is
    // stochastically dominated by cover from any single member).
    // Nothing to do operationally: the process already continues from C_T.
    // The epoch boundary only matters for the accounting above.
  }
  result.completed = process.all_visited();
  return result;
}

}  // namespace cobra::core
