// The process-agnostic frontier kernel (docs/ARCHITECTURE.md, "Frontier
// kernel"): the engine machinery shared by every spreading process in the
// library — COBRA, BIPS and the baselines (flooding, push/pull gossip,
// random walks).
//
// Three building blocks, all engine-order-invariant by construction:
//
//   * NeighborSampler — degree-bucketed alias tables (rng/discrete) mapping
//     one 64-bit word to a push destination in O(1): each neighbour of u
//     with probability (1 - laziness)/deg(u), u itself with probability
//     `laziness`. One table per distinct degree, built once per graph and
//     shared by every vertex of that degree, across replicates and threads
//     (sampling is const and lock-free).
//
//   * VertexDraws — a counter-based randomness stream for one (round,
//     entity) pair, where the entity is a vertex id (set processes) or a
//     particle index (walks). Word k is a pure function of (round_key,
//     entity, k) through the selected DrawHash — the cheap 2-round
//     SplitMix64 mix by default, Philox4x32 as the conservative fallback —
//     so engines may process entities in any order, or any frontier
//     representation, and still make identical random choices. This is
//     what makes the engines of one process bit-for-bit equivalent at a
//     fixed seed.
//
//   * FrontierKernel — the dual sparse/dense frontier state machine: a
//     vector frontier with epoch-stamped O(1) membership, a bitset
//     frontier with word-parallel commit, the auto density switch with 2x
//     hysteresis, and the visited accumulator with branch-free popcount
//     merges. Processes express only their per-entity policy (what an
//     active vertex does with its draws); the kernel owns representation,
//     deduplication, mode transitions and first-visit counting.
//
// Round protocol of a kernel process (see CobraProcess::step for the
// canonical use):
//   1. draw one 64-bit round key from the replicate stream;
//   2. dense = begin_round(score)  — pick this round's representation;
//   3. iterate (for_each_in_frontier / for_each_outside_frontier / a
//      process-owned entity range), derive randomness via draws(key,
//      entity), and emit next-frontier vertices into the matching sink;
//   4. commit(kReplace | kAccumulate) — swap or grow the frontier, merge
//      the visited set, return the number of first visits.
//
// Sink flavours (sparse rounds; dense rounds always use DenseSink):
//   * CoalescingSink — deduplicates within the round via epoch stamps
//     (COBRA's coalescing rule) and counts first visits;
//   * GrowthSink     — deduplicates against the visited set (monotone
//     processes: flooding layers, gossip);
//   * PlainSink      — no deduplication; for processes that emit each
//     vertex at most once per round by construction (BIPS).
//
// In-round parallelism (docs/ARCHITECTURE.md, "Frontier kernel"): dense
// rounds can fan their scans and the commit merge out over
// Config::kernel_threads worker lanes. The frontier bitset (or the active
// vector / vertex range) is partitioned into contiguous word ranges, each
// lane derives the same keyed per-vertex draws the serial kernel would and
// emits into lane-owned scratch words, and the scratch is OR-merged — all
// of which commutes, so results are bit-for-bit identical at every lane
// count. Lane telemetry goes to lane-local StepMetrics blocks folded after
// the join; the hot path never touches a shared counter.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "graph/graph.hpp"
#include "rng/discrete.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "util/bitset.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace cobra::core {

/// A contiguous range of indices [begin, end) — 64-bit words of a frontier
/// bitset, or plain vertex/slot indices, depending on the scan.
struct WordRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Deterministically partitions [0, words) into at most `lanes` contiguous,
/// non-empty ranges of near-equal size: the first `words % count` ranges
/// get one extra word, where count = min(lanes, words). Pure function of
/// (words, lanes) — the property tests assert the ranges tile [0, words)
/// exactly once for adversarial combinations. Returns no ranges when
/// `words` is 0.
std::vector<WordRange> partition_word_ranges(std::size_t words, int lanes);

/// O(1) push-destination sampler with degree-bucketed alias tables.
///
/// Immutable after construction; safe to share across threads and
/// replicates via ProcessOptions::sampler. A vertex of degree 0 (only legal
/// in the single-vertex graph) always "pushes" to itself.
class NeighborSampler {
 public:
  /// Builds one alias table per distinct degree of `g`. With laziness > 0
  /// each table has deg + 1 slots (slot deg = stay put); with laziness 0 it
  /// degenerates to a uniform slot choice. The sampler keeps a reference to
  /// the graph, which must outlive it.
  NeighborSampler(const graph::Graph& g, double laziness);

  /// Maps a uniform 64-bit `word` to the destination of one push from `u`.
  /// Exact up to the alias table's 2^-32 fixed-point quantisation — far
  /// below Monte-Carlo noise, and identical across engines by design.
  [[nodiscard]] graph::VertexId sample(graph::VertexId u,
                                       std::uint64_t word) const {
    const std::uint32_t degree = graph_->degree(u);
    const rng::AliasTable& table = tables_[bucket_of_degree_[degree]];
    const std::uint32_t slot = table.sample_word(word);
    return slot < degree ? graph_->neighbor(u, slot) : u;
  }

  /// The laziness the tables were built for (validated against
  /// ProcessOptions::laziness when a shared sampler is injected).
  [[nodiscard]] double laziness() const { return laziness_; }

  /// The graph the tables were built for.
  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }

  /// Number of distinct degree buckets (introspection/tests).
  [[nodiscard]] std::size_t num_buckets() const { return tables_.size(); }

 private:
  const graph::Graph* graph_;
  double laziness_;
  std::vector<std::uint32_t> bucket_of_degree_;  // degree -> index in tables_
  std::vector<rng::AliasTable> tables_;
};

/// Counter-based per-entity randomness for one round of a kernel process.
///
/// Produces an unlimited 64-bit word stream that is a pure function of
/// (round_key, entity, word index) through the selected DrawHash:
///   * kMix64  — word k = mix64(base + k·C2) with
///               base = mix64(round_key + (entity+1)·C1): two SplitMix64
///               finalizer rounds from inputs to output, Weyl-spaced in
///               both the entity and the word index (the same structure
///               the SplitMix64 generator itself uses);
///   * kPhilox — philox4x32({entity, block, salt}, round_key), two words
///               per evaluation (the PR-3 protocol, kept for A/B).
class VertexDraws {
 public:
  /// Binds the stream to this round's key and one entity (vertex id or
  /// particle index). `hash` must be resolved (not DrawHash::kDefault).
  VertexDraws(DrawHash hash, std::uint64_t round_key, std::uint32_t entity)
      : hash_(hash) {
    if (hash == DrawHash::kMix64) {
      base_ = rng::mix64(round_key +
                         (static_cast<std::uint64_t>(entity) + 1) *
                             0x9E3779B97F4A7C15ull);
    } else {
      key_ = {static_cast<std::uint32_t>(round_key),
              static_cast<std::uint32_t>(round_key >> 32)};
      entity_ = entity;
    }
  }

  /// The next 64-bit word of this entity's round stream.
  std::uint64_t next_word() {
    if (hash_ == DrawHash::kMix64)
      return rng::mix64(base_ + (counter_++) * 0xD1B54A32D192ED03ull);
    if (buffered_ == 0) refill();
    return buffer_[--buffered_];
  }

  /// Uniform double in [0, 1) with 53 bits (same mapping as rng::Rng).
  double uniform01() {
    return static_cast<double>(next_word() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial; consumes one word unless p <= 0 or p >= 1 (the same
  /// short-circuits as rng::Rng::bernoulli).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

 private:
  void refill() {
    // Distinct salts keep this keyed use of Philox disjoint from the
    // replicate-stream derivation in rng/stream.hpp.
    const rng::PhiloxBlock out = rng::philox4x32(
        {entity_, block_++, 0x0C0BFA57u, 0x5EED1E55u}, key_);
    buffer_[1] = (static_cast<std::uint64_t>(out.x[1]) << 32) | out.x[0];
    buffer_[0] = (static_cast<std::uint64_t>(out.x[3]) << 32) | out.x[2];
    buffered_ = 2;
  }

  DrawHash hash_;
  // kMix64 state.
  std::uint64_t base_ = 0;
  std::uint64_t counter_ = 0;
  // kPhilox state.
  std::array<std::uint32_t, 2> key_{};
  std::uint32_t entity_ = 0;
  std::uint32_t block_ = 0;
  std::array<std::uint64_t, 2> buffer_{};
  int buffered_ = 0;
};

/// The dual sparse/dense frontier state machine shared by every spreading
/// process (see the file comment for the round protocol).
///
/// Not thread-safe; one kernel per process instance, one process per
/// replicate (sim/monte_carlo does this).
class FrontierKernel {
 public:
  /// Construction parameters; `engine` must be resolved (not kDefault —
  /// callers run core::resolve_engine first so the session default is
  /// applied exactly once).
  struct Config {
    /// Resolved stepping engine (kReference behaves like kSparse at the
    /// representation level: the kernel never picks a dense round for it).
    Engine engine = Engine::kAuto;
    /// Keyed hash for draws(); resolved at kernel construction.
    DrawHash draw_hash = DrawHash::kDefault;
    /// kAuto switches to the dense frontier when begin_round's score
    /// reaches 1 and back below 0.5 (2x hysteresis); processes compute the
    /// score, typically via density_score().
    double dense_density = 1.0 / 32.0;
    /// Laziness the sampler is built with (when the kernel builds one).
    double laziness = 0.0;
    /// Build a NeighborSampler when none is shared. Processes that never
    /// sample destinations (flooding) or draw sequentially (COBRA's legacy
    /// reference engine) skip the construction cost.
    bool build_sampler = true;
    /// Track the first-visit accumulator (visited set + count). BIPS turns
    /// this off: its infected set is not monotone and full infection is
    /// detected from the frontier size alone.
    bool track_visited = true;
    /// Resolved in-round worker-lane count (>= 1; processes run
    /// core::resolve_kernel_threads on ProcessOptions::kernel_threads
    /// first). 1 keeps every scan on the calling thread; above 1 the dense
    /// scans and the commit merge fan out over a kernel-owned thread pool
    /// of kernel_threads - 1 workers (the calling thread drives lane 0).
    /// Bit-for-bit identical results at every setting.
    int kernel_threads = 1;
    /// Optional pre-built sampler shared across replicates; must match the
    /// kernel's graph and laziness.
    std::shared_ptr<const NeighborSampler> sampler;
    /// Telemetry block (non-owning; must outlive the kernel). When null,
    /// the kernel attaches to the calling thread's session collector iff
    /// the session metrics mode is not "off" (core/metrics.hpp); when that
    /// is off too, every instrumented site reduces to one untaken branch.
    StepMetrics* metrics = nullptr;
  };

  /// The graph must outlive the kernel. Throws util::CheckError when a
  /// shared sampler does not match the graph/laziness.
  FrontierKernel(const graph::Graph& g, const Config& config);

  /// The graph the kernel walks on.
  [[nodiscard]] const graph::Graph& graph() const { return *graph_; }

  /// The resolved stepping engine.
  [[nodiscard]] Engine engine() const { return engine_; }

  /// The resolved draw hash feeding draws().
  [[nodiscard]] DrawHash draw_hash() const { return draw_hash_; }

  /// The destination sampler (only valid when built or shared).
  [[nodiscard]] const NeighborSampler& sampler() const { return *sampler_; }

  /// The shareable sampler handle (null when build_sampler was off and no
  /// sampler was shared).
  [[nodiscard]] std::shared_ptr<const NeighborSampler> shared_sampler()
      const {
    return sampler_;
  }

  /// The keyed word stream of `entity` for the round keyed by `round_key`.
  [[nodiscard]] VertexDraws draws(std::uint64_t round_key,
                                  std::uint32_t entity) const {
    if (metrics_ != nullptr) ++metrics_->draw_streams;
    return VertexDraws(draw_hash_, round_key, entity);
  }

  /// The attached telemetry block (null when telemetry is off). Processes
  /// use this to add their own counters (e.g. COBRA's emissions) without
  /// re-deriving the session attachment.
  [[nodiscard]] StepMetrics* metrics() const { return metrics_; }

  // --- frontier lifecycle ------------------------------------------------

  /// Resets the kernel: frontier = deduplicated `starts` (sparse
  /// representation), visited = starts (when tracked), dense round counter
  /// cleared.
  void assign(std::span<const graph::VertexId> starts);

  /// |frontier| in O(1).
  [[nodiscard]] std::uint32_t frontier_size() const { return num_active_; }

  /// True iff u is in the current frontier (O(1) in either
  /// representation).
  [[nodiscard]] bool in_frontier(graph::VertexId u) const {
    return dense_repr_ ? frontier_.test(u) : stamp_[u] == epoch_;
  }

  /// The current frontier as a vector. Order is representation-dependent:
  /// insertion order after sparse rounds, ascending vertex id when the
  /// dense bitset produced it (materialised lazily — prefer
  /// frontier_size() when only the size is needed).
  [[nodiscard]] const std::vector<graph::VertexId>& frontier_vector() const;

  /// Calls fn(u) for every frontier vertex: insertion order in the sparse
  /// representation, ascending id in the dense one.
  template <typename Fn>
  void for_each_in_frontier(Fn&& fn) const {
    if (dense_repr_) {
      if (metrics_ != nullptr)
        metrics_->words_scanned += frontier_.words().size();
      frontier_.for_each_set(
          [&](std::size_t u) { fn(static_cast<graph::VertexId>(u)); });
    } else {
      for (const graph::VertexId u : active_) fn(u);
    }
  }

  /// Calls fn(u) for every vertex NOT in the frontier, ascending. Dense
  /// representation scans complement words (O(n/64 + output)); sparse
  /// falls back to a full stamp scan (O(n)) — pull-style processes switch
  /// to dense precisely to make this cheap.
  template <typename Fn>
  void for_each_outside_frontier(Fn&& fn) const {
    const std::size_t n = graph_->num_vertices();
    if (dense_repr_) {
      const auto& words = frontier_.words();
      if (metrics_ != nullptr) metrics_->words_scanned += words.size();
      for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t bits = ~words[w];
        if ((w << 6) + 64 > n) bits &= (1ull << (n & 63)) - 1;  // tail
        while (bits != 0) {
          const auto tz = static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          fn(static_cast<graph::VertexId>((w << 6) + tz));
        }
      }
    } else {
      for (graph::VertexId u = 0; u < n; ++u)
        if (stamp_[u] != epoch_) fn(u);
    }
  }

  /// True iff the current frontier lives in the dense (bitset)
  /// representation.
  [[nodiscard]] bool dense_mode() const { return dense_repr_; }

  /// Rounds committed with the dense representation since assign() —
  /// introspection for tests and the auto-switch benchmarks.
  [[nodiscard]] std::uint64_t dense_rounds() const { return dense_rounds_; }

  // --- visited accumulator -----------------------------------------------

  /// True iff u was ever in a committed frontier (requires track_visited).
  [[nodiscard]] bool is_visited(graph::VertexId u) const {
    return visited_.test(u);
  }

  /// Number of distinct vertices ever in a frontier.
  [[nodiscard]] std::uint32_t num_visited() const { return visited_count_; }

  /// True iff every vertex has been visited.
  [[nodiscard]] bool all_visited() const {
    return visited_count_ == graph_->num_vertices();
  }

  // --- round transaction -------------------------------------------------

  /// The auto-switch score for a frontier of `count` vertices: count /
  /// (dense_density · n), the rule COBRA uses. Processes with a different
  /// cost model (BIPS) pass their own score to begin_round.
  [[nodiscard]] double density_score(std::uint32_t count) const;

  /// Starts a round and returns true when it runs dense: always for
  /// kDense, never for kReference/kSparse, and for kAuto when `score`
  /// reaches 1 (entry) or stays above 0.5 while already dense (the 2x
  /// hysteresis that prevents representation thrash). Prepares the
  /// matching next-frontier buffer; emit only into the matching sink
  /// flavour until commit().
  bool begin_round(double score);

  /// Sparse-round sink with COBRA's coalescing rule: at most one copy of a
  /// vertex per round (epoch-stamp deduplication), first visits counted at
  /// emit time.
  class CoalescingSink {
   public:
    /// Adds v to the next frontier unless it already coalesced this round.
    void emit(graph::VertexId v) {
      if (k_->stamp_[v] == k_->epoch_ + 1) {
        if (k_->metrics_ != nullptr) ++k_->metrics_->dedup_hits;
        return;
      }
      k_->stamp_[v] = k_->epoch_ + 1;
      k_->next_.push_back(v);
      if (k_->track_visited_ && k_->visited_.set_and_test(v))
        ++k_->round_newly_;
    }

   private:
    friend class FrontierKernel;
    explicit CoalescingSink(FrontierKernel* k) : k_(k) {}
    FrontierKernel* k_;
  };

  /// Sparse-round sink for monotone processes: only never-visited vertices
  /// enter the next frontier (deduplication against the visited set).
  class GrowthSink {
   public:
    /// Adds v to the next frontier iff it was never visited before.
    void emit(graph::VertexId v) {
      if (!k_->visited_.set_and_test(v)) {
        if (k_->metrics_ != nullptr) ++k_->metrics_->dedup_hits;
        return;
      }
      ++k_->round_newly_;
      k_->next_.push_back(v);
    }

   private:
    friend class FrontierKernel;
    explicit GrowthSink(FrontierKernel* k) : k_(k) {}
    FrontierKernel* k_;
  };

  /// Sparse-round sink with no deduplication, for processes that emit each
  /// vertex at most once per round by construction (BIPS iterates every
  /// vertex exactly once).
  class PlainSink {
   public:
    /// Adds v to the next frontier unconditionally.
    void emit(graph::VertexId v) { k_->next_.push_back(v); }

   private:
    friend class FrontierKernel;
    explicit PlainSink(FrontierKernel* k) : k_(k) {}
    FrontierKernel* k_;
  };

  /// Dense-round sink: sets the vertex's bit in the next-frontier bitset
  /// (idempotent — the bitset is the deduplication).
  class DenseSink {
   public:
    /// Marks v in the next frontier.
    void emit(graph::VertexId v) { k_->next_frontier_.set(v); }

   private:
    friend class FrontierKernel;
    explicit DenseSink(FrontierKernel* k) : k_(k) {}
    FrontierKernel* k_;
  };

  /// The coalescing sink for the in-flight sparse round.
  [[nodiscard]] CoalescingSink coalescing_sink() {
    round_stamped_ = true;
    return CoalescingSink(this);
  }

  /// The growth sink for the in-flight sparse round.
  [[nodiscard]] GrowthSink growth_sink() { return GrowthSink(this); }

  /// The plain sink for the in-flight sparse round.
  [[nodiscard]] PlainSink plain_sink() { return PlainSink(this); }

  /// The dense sink for the in-flight dense round.
  [[nodiscard]] DenseSink dense_sink() { return DenseSink(this); }

  /// Mutable word storage of the next-frontier bitset for word-parallel
  /// writers (the dense BIPS round initialises whole complement words in
  /// one pass). Only valid during a dense round; callers must keep bits at
  /// positions >= n clear, like util::DynamicBitset::data().
  [[nodiscard]] std::uint64_t* next_words() { return next_frontier_.data(); }

  // --- lane-parallel round scans -----------------------------------------
  //
  // Determinism contract: a scan's body must derive all randomness from
  // lane.draws(round_key, entity) — a pure function of (round_key, entity)
  // — and fold per-lane tallies through lane.user. Emitted bits OR
  // together and uint64 sums commute, so the scan's outcome is identical
  // at every kernel_threads value; only the wall-clock changes. The body
  // runs concurrently on several threads: it may read the kernel's
  // committed state (in_frontier, is_visited, the graph) but must not
  // write anything shared.

  /// The resolved in-round lane count (>= 1; Config::kernel_threads).
  [[nodiscard]] int kernel_threads() const { return threads_; }

  /// Per-lane emission context for the dense parallel scans: emits bits
  /// into the lane's target words (the shared destination for lane 0 and
  /// local-write scans, a lane-owned scratch bitset otherwise), derives
  /// keyed draw streams, and buffers telemetry in a lane-local StepMetrics
  /// block folded into the kernel's after the join — the hot path never
  /// touches a shared counter.
  class DenseLane {
   public:
    /// Marks v in the lane's target bitset (idempotent, like DenseSink).
    void emit(graph::VertexId v) { words_[v >> 6] |= 1ull << (v & 63); }

    /// The keyed word stream of `entity` — identical to
    /// FrontierKernel::draws, with lane-local stream accounting.
    [[nodiscard]] VertexDraws draws(std::uint64_t round_key,
                                    std::uint32_t entity) {
      ++block_.draw_streams;
      return VertexDraws(hash_, round_key, entity);
    }

    /// The lane's telemetry block (folded after the join, in lane order,
    /// so session totals match the serial kernel's exactly).
    [[nodiscard]] StepMetrics& metrics() { return block_; }

    /// Process-owned tally (e.g. COBRA transmissions); the scan returns
    /// the lane-ordered sum over all lanes.
    std::uint64_t user = 0;

   private:
    friend class FrontierKernel;
    DenseLane(std::uint64_t* words, DrawHash hash)
        : words_(words), hash_(hash) {}
    std::uint64_t* words_;
    DrawHash hash_;
    StepMetrics block_;
  };

  /// Per-lane emission context for plain_vertex_scan: emissions append to
  /// a lane-owned vector, concatenated in lane order after the join —
  /// reproducing the serial PlainSink emission order exactly.
  class SparseLane {
   public:
    /// Appends v to the lane's emission vector.
    void emit(graph::VertexId v) { out_->push_back(v); }

    /// The keyed word stream of `entity` (see DenseLane::draws).
    [[nodiscard]] VertexDraws draws(std::uint64_t round_key,
                                    std::uint32_t entity) {
      ++block_.draw_streams;
      return VertexDraws(hash_, round_key, entity);
    }

    /// The lane's telemetry block (folded after the join).
    [[nodiscard]] StepMetrics& metrics() { return block_; }

    /// Process-owned tally; the scan returns the lane-ordered sum.
    std::uint64_t user = 0;

   private:
    friend class FrontierKernel;
    SparseLane(std::vector<graph::VertexId>* out, DrawHash hash)
        : out_(out), hash_(hash) {}
    std::vector<graph::VertexId>* out_;
    DrawHash hash_;
    StepMetrics block_;
  };

  /// Lane-parallel scatter scan of the current frontier during a dense
  /// round: body(lane, u) runs for every frontier vertex (word order in
  /// the dense representation, insertion order in the sparse one — the
  /// same orders the serial for_each_in_frontier uses) and may emit ANY
  /// vertex; per-lane scratch plus an OR merge makes scattered emissions
  /// race-free. Emits land in the round's next frontier. Returns the
  /// lane-ordered sum of lane.user.
  template <typename Body>
  std::uint64_t scatter_frontier_scan(Body&& body) {
    return scatter_frontier_scan(next_frontier_, std::forward<Body>(body));
  }

  /// As above, but emitting into a caller-owned bitset (the BIPS boundary
  /// marking pass targets its scratch, not the next frontier). `dest` must
  /// be sized to the graph and hold the caller's intended base state.
  template <typename Body>
  std::uint64_t scatter_frontier_scan(util::DynamicBitset& dest,
                                      Body&& body) {
    if (dense_repr_) {
      const auto& words = frontier_.words();
      const std::vector<WordRange> ranges =
          partition_word_ranges(words.size(), threads_);
      return run_dense_lanes(
          static_cast<int>(ranges.size()), dest, /*local_writes=*/false,
          [&](int li, DenseLane& lane) {
            const WordRange r = ranges[static_cast<std::size_t>(li)];
            lane.metrics().words_scanned += r.end - r.begin;
            for (std::size_t w = r.begin; w < r.end; ++w) {
              std::uint64_t bits = words[w];
              while (bits != 0) {
                const auto tz =
                    static_cast<std::size_t>(std::countr_zero(bits));
                bits &= bits - 1;
                body(lane, static_cast<graph::VertexId>((w << 6) + tz));
              }
            }
          });
    }
    const std::vector<WordRange> ranges =
        partition_word_ranges(active_.size(), threads_);
    return run_dense_lanes(
        static_cast<int>(ranges.size()), dest, /*local_writes=*/false,
        [&](int li, DenseLane& lane) {
          const WordRange r = ranges[static_cast<std::size_t>(li)];
          for (std::size_t i = r.begin; i < r.end; ++i) body(lane, active_[i]);
        });
  }

  /// Lane-parallel scatter scan of the complement of the frontier during a
  /// dense round (the pull-gossip contact pass), ascending vertex order
  /// within each lane. Emits land in the round's next frontier; the
  /// explicit-dest overload serves the BIPS boundary marking. Returns the
  /// lane-ordered sum of lane.user.
  template <typename Body>
  std::uint64_t scatter_complement_scan(Body&& body) {
    return scatter_complement_scan(next_frontier_, std::forward<Body>(body));
  }

  template <typename Body>
  std::uint64_t scatter_complement_scan(util::DynamicBitset& dest,
                                        Body&& body) {
    const std::size_t n = graph_->num_vertices();
    const std::size_t nwords = (n + 63) >> 6;
    const std::vector<WordRange> ranges =
        partition_word_ranges(nwords, threads_);
    if (dense_repr_) {
      const auto& words = frontier_.words();
      return run_dense_lanes(
          static_cast<int>(ranges.size()), dest, /*local_writes=*/false,
          [&](int li, DenseLane& lane) {
            const WordRange r = ranges[static_cast<std::size_t>(li)];
            lane.metrics().words_scanned += r.end - r.begin;
            for (std::size_t w = r.begin; w < r.end; ++w) {
              std::uint64_t bits = ~words[w];
              if ((w << 6) + 64 > n) bits &= (1ull << (n & 63)) - 1;  // tail
              while (bits != 0) {
                const auto tz =
                    static_cast<std::size_t>(std::countr_zero(bits));
                bits &= bits - 1;
                body(lane, static_cast<graph::VertexId>((w << 6) + tz));
              }
            }
          });
    }
    return run_dense_lanes(
        static_cast<int>(ranges.size()), dest, /*local_writes=*/false,
        [&](int li, DenseLane& lane) {
          const WordRange r = ranges[static_cast<std::size_t>(li)];
          const std::size_t end = std::min(r.end << 6, n);
          for (std::size_t u = r.begin << 6; u < end; ++u)
            if (stamp_[u] != epoch_)
              body(lane, static_cast<graph::VertexId>(u));
        });
  }

  /// Lane-parallel scan of every vertex during a dense round (push-pull
  /// gossip: everyone contacts every round), ascending order within each
  /// lane; emissions may scatter. Returns the lane-ordered sum of
  /// lane.user.
  template <typename Body>
  std::uint64_t scatter_vertex_scan(Body&& body) {
    const std::size_t n = graph_->num_vertices();
    const std::vector<WordRange> ranges = partition_word_ranges(n, threads_);
    return run_dense_lanes(
        static_cast<int>(ranges.size()), next_frontier_,
        /*local_writes=*/false, [&](int li, DenseLane& lane) {
          const WordRange r = ranges[static_cast<std::size_t>(li)];
          for (std::size_t u = r.begin; u < r.end; ++u)
            body(lane, static_cast<graph::VertexId>(u));
        });
  }

  /// Lane-parallel scan of `marked`'s set bits during a dense round, with
  /// LOCAL writes: the body may emit only the vertex it was called with
  /// (or nothing), so every lane writes next-frontier words it alone owns
  /// and no scratch or merge is needed — emissions land directly in the
  /// next frontier, including on top of words pre-filled through
  /// next_words() (the BIPS complement install). `marked` must be sized to
  /// the graph. Returns the lane-ordered sum of lane.user.
  template <typename Body>
  std::uint64_t local_marked_scan(const util::DynamicBitset& marked,
                                  Body&& body) {
    const auto& words = marked.words();
    const std::vector<WordRange> ranges =
        partition_word_ranges(words.size(), threads_);
    return run_dense_lanes(
        static_cast<int>(ranges.size()), next_frontier_,
        /*local_writes=*/true, [&](int li, DenseLane& lane) {
          const WordRange r = ranges[static_cast<std::size_t>(li)];
          for (std::size_t w = r.begin; w < r.end; ++w) {
            std::uint64_t bits = words[w];
            while (bits != 0) {
              const auto tz = static_cast<std::size_t>(std::countr_zero(bits));
              bits &= bits - 1;
              body(lane, static_cast<graph::VertexId>((w << 6) + tz));
            }
          }
        });
  }

  /// Lane-parallel full-vertex scan for SPARSE rounds of processes that
  /// emit each vertex at most once, in ascending order (the BIPS sampling
  /// round): lanes cover ascending index ranges and their emission vectors
  /// are concatenated in lane order into the next frontier, reproducing
  /// the serial PlainSink order exactly. Returns the lane-ordered sum of
  /// lane.user.
  template <typename Body>
  std::uint64_t plain_vertex_scan(Body&& body) {
    const std::size_t n = graph_->num_vertices();
    const std::vector<WordRange> ranges = partition_word_ranges(n, threads_);
    return run_sparse_lanes(
        static_cast<int>(ranges.size()), [&](int li, SparseLane& lane) {
          const WordRange r = ranges[static_cast<std::size_t>(li)];
          for (std::size_t u = r.begin; u < r.end; ++u)
            body(lane, static_cast<graph::VertexId>(u));
        });
  }

  /// What commit() does with the next frontier.
  enum class Commit : std::uint8_t {
    kReplace,     ///< frontier = next (transient frontiers: COBRA, BIPS)
    kAccumulate,  ///< frontier |= next (monotone sets: gossip)
  };

  /// Ends the round: installs the next frontier per `policy`, merges it
  /// into the visited set (word-parallel with popcount in dense rounds)
  /// and returns the number of first visits this round (0 when visited
  /// tracking is off).
  std::uint32_t commit(Commit policy);

 private:
  /// Drives one dense scan across `lanes` lanes: lane 0 runs inline on the
  /// calling thread, lanes 1..lanes-1 on the kernel's pool. With
  /// local_writes every lane targets `dest` directly (the body's emissions
  /// stay inside the lane's own words); otherwise lanes >= 1 target
  /// per-lane scratch bitsets, zeroed at task start and OR-merged into
  /// `dest` in lane order after the join. Returns the lane-ordered sum of
  /// lane.user and folds lane telemetry into the kernel block.
  template <typename Task>
  std::uint64_t run_dense_lanes(int lanes, util::DynamicBitset& dest,
                                bool local_writes, Task&& task) {
    if (lanes <= 0) return 0;
    if (lanes == 1) {
      DenseLane lane(dest.data(), draw_hash_);
      task(0, lane);
      fold_lane(lane.block_);
      return lane.user;
    }
    ensure_lane_pool();
    if (!local_writes) ensure_lane_scratch(lanes - 1);
    std::vector<DenseLane> lane_objs;
    lane_objs.reserve(static_cast<std::size_t>(lanes));
    lane_objs.push_back(DenseLane(dest.data(), draw_hash_));
    for (int i = 1; i < lanes; ++i)
      lane_objs.push_back(DenseLane(
          local_writes
              ? dest.data()
              : lane_scratch_[static_cast<std::size_t>(i - 1)].data(),
          draw_hash_));
    std::vector<std::future<void>> pending;
    pending.reserve(static_cast<std::size_t>(lanes - 1));
    for (int i = 1; i < lanes; ++i)
      pending.push_back(
          pool_->submit([this, i, local_writes, &lane_objs, &task] {
            if (!local_writes)
              lane_scratch_[static_cast<std::size_t>(i - 1)].reset_all();
            task(i, lane_objs[static_cast<std::size_t>(i)]);
          }));
    task(0, lane_objs[0]);
    for (auto& f : pending) f.get();
    std::uint64_t user = 0;
    const std::size_t merge_words = dest.words().size();
    for (int i = 0; i < lanes; ++i) {
      DenseLane& lane = lane_objs[static_cast<std::size_t>(i)];
      if (!local_writes && i > 0)
        util::simd::or_words(
            dest.data(),
            lane_scratch_[static_cast<std::size_t>(i - 1)].data(),
            merge_words);
      user += lane.user;
      fold_lane(lane.block_);
    }
    return user;
  }

  /// Drives one sparse plain scan across `lanes` lanes: lane 0 appends to
  /// next_ inline, lanes >= 1 to per-lane vectors concatenated in lane
  /// order after the join. Returns the lane-ordered sum of lane.user.
  template <typename Task>
  std::uint64_t run_sparse_lanes(int lanes, Task&& task) {
    if (lanes <= 0) return 0;
    if (lanes == 1) {
      SparseLane lane(&next_, draw_hash_);
      task(0, lane);
      fold_lane(lane.block_);
      return lane.user;
    }
    ensure_lane_pool();
    if (lane_out_.size() < static_cast<std::size_t>(lanes - 1))
      lane_out_.resize(static_cast<std::size_t>(lanes - 1));
    std::vector<SparseLane> lane_objs;
    lane_objs.reserve(static_cast<std::size_t>(lanes));
    lane_objs.push_back(SparseLane(&next_, draw_hash_));
    for (int i = 1; i < lanes; ++i)
      lane_objs.push_back(SparseLane(
          &lane_out_[static_cast<std::size_t>(i - 1)], draw_hash_));
    std::vector<std::future<void>> pending;
    pending.reserve(static_cast<std::size_t>(lanes - 1));
    for (int i = 1; i < lanes; ++i)
      pending.push_back(pool_->submit([i, &lane_objs, &task] {
        lane_objs[static_cast<std::size_t>(i)].out_->clear();
        task(i, lane_objs[static_cast<std::size_t>(i)]);
      }));
    task(0, lane_objs[0]);
    for (auto& f : pending) f.get();
    std::uint64_t user = 0;
    for (int i = 0; i < lanes; ++i) {
      SparseLane& lane = lane_objs[static_cast<std::size_t>(i)];
      if (i > 0) next_.insert(next_.end(), lane.out_->begin(), lane.out_->end());
      user += lane.user;
      fold_lane(lane.block_);
    }
    return user;
  }

  /// Folds a lane's telemetry block into the kernel's (no-op when
  /// telemetry is off).
  void fold_lane(const StepMetrics& block) {
    if (metrics_ != nullptr) metrics_->merge_from(block);
  }

  /// Spins up the lane pool (threads_ - 1 workers) on first parallel scan.
  void ensure_lane_pool();

  /// Sizes `count` per-lane scratch bitsets to the graph (lazily; a
  /// serial-only run never pays).
  void ensure_lane_scratch(int count);

  /// The dense-commit visited merge over the next frontier's words, SIMD
  /// within ranges and fanned out over the lane pool when the word count
  /// warrants it (never affects the counters — lane sums are exact).
  void merge_visited_parallel(std::size_t words, std::uint64_t* newly,
                              std::uint64_t* active);

  /// The dense-accumulate merge: ORs the next frontier into `dst_words`
  /// counting newly set bits, parallel like merge_visited_parallel.
  std::uint64_t or_count_parallel(std::uint64_t* dst_words,
                                  std::size_t words);

  /// Folds one committed round into the attached telemetry block (only
  /// called when metrics_ is non-null).
  void record_commit(std::uint32_t newly);

  /// Rebuilds active_ (ascending) from the dense frontier when stale.
  void materialize_active() const;

  /// Leaves the dense representation: restores the sparse invariants
  /// (active_ valid, stamp_[u] == epoch_ exactly for frontier vertices).
  void to_sparse_repr();

  /// Sizes the dense bitsets on first use (sparse-only runs never pay).
  void ensure_bitsets();

  const graph::Graph* graph_;
  Engine engine_;
  DrawHash draw_hash_;
  double dense_density_;
  bool track_visited_;
  std::shared_ptr<const NeighborSampler> sampler_;

  // Sparse frontier: a vector with epoch-stamped membership (stamp_[u] ==
  // epoch_ means u in the frontier; avoids an O(n) clear per round).
  // active_ doubles as the lazily materialised view of the dense frontier,
  // hence mutable.
  mutable std::vector<graph::VertexId> active_;
  std::vector<graph::VertexId> next_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;

  // Dense frontier: a bitset (valid iff dense_repr_), sized lazily.
  util::DynamicBitset frontier_;
  util::DynamicBitset next_frontier_;
  bool dense_repr_ = false;
  mutable bool active_valid_ = true;  // active_ mirrors the frontier
  std::uint32_t num_active_ = 0;
  std::uint64_t dense_rounds_ = 0;
  std::uint64_t rounds_committed_ = 0;  // since assign(); trajectory index

  // Lane-parallel machinery (only materialised when threads_ > 1 and a
  // parallel scan actually runs): the kernel-owned pool of threads_ - 1
  // workers, per-lane next-frontier scratch for scatter scans, and
  // per-lane emission vectors for the sparse plain scan.
  int threads_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<util::DynamicBitset> lane_scratch_;
  std::vector<std::vector<graph::VertexId>> lane_out_;

  // Attached telemetry block (Config::metrics, else the thread's session
  // block, else null). Owned elsewhere; mutated from const scans, hence
  // the pointee is non-const.
  StepMetrics* metrics_ = nullptr;

  // In-flight round state (between begin_round and commit).
  bool round_dense_ = false;
  bool round_stamped_ = false;    // a CoalescingSink pre-stamped next_
  std::uint32_t round_newly_ = 0;  // first visits counted by sparse sinks

  util::DynamicBitset visited_;
  std::uint32_t visited_count_ = 0;
};

}  // namespace cobra::core
