#include "core/frontier_kernel.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "util/assert.hpp"
#include "util/env.hpp"

namespace cobra::core {

NeighborSampler::NeighborSampler(const graph::Graph& g, double laziness)
    : graph_(&g), laziness_(laziness) {
  COBRA_CHECK(g.num_vertices() >= 1);
  COBRA_CHECK(laziness >= 0.0 && laziness < 1.0);

  bucket_of_degree_.assign(g.max_degree() + 1, 0u);
  std::vector<bool> seen(g.max_degree() + 1, false);
  for (graph::VertexId u = 0; u < g.num_vertices(); ++u)
    seen[g.degree(u)] = true;

  for (std::uint32_t d = 0; d <= g.max_degree(); ++d) {
    if (!seen[d]) continue;
    bucket_of_degree_[d] = static_cast<std::uint32_t>(tables_.size());
    std::vector<double> weights;
    if (d == 0) {
      // Single-vertex graph: the only "destination" is staying put.
      weights.assign(1, 1.0);
    } else {
      weights.assign(d, (1.0 - laziness_) / static_cast<double>(d));
      if (laziness_ > 0.0) weights.push_back(laziness_);
    }
    tables_.emplace_back(weights);
  }
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kDefault: return "default";
    case Engine::kReference: return "reference";
    case Engine::kSparse: return "sparse";
    case Engine::kDense: return "dense";
    case Engine::kAuto: return "auto";
  }
  return "invalid";
}

std::optional<Engine> parse_engine(std::string_view name) {
  if (name == "reference") return Engine::kReference;
  if (name == "sparse") return Engine::kSparse;
  if (name == "dense") return Engine::kDense;
  if (name == "auto" || name == "fast") return Engine::kAuto;
  return std::nullopt;
}

Engine resolve_engine(Engine engine) {
  if (engine != Engine::kDefault) return engine;
  const std::string session = util::engine();
  const auto parsed = parse_engine(session);
  COBRA_CHECK_MSG(parsed.has_value(),
                  "COBRA_ENGINE/--engine must be one of "
                  "reference|sparse|dense|auto (got \"" +
                      session + "\")");
  return *parsed;
}

const char* draw_hash_name(DrawHash hash) {
  switch (hash) {
    case DrawHash::kDefault: return "default";
    case DrawHash::kMix64: return "mix64";
    case DrawHash::kPhilox: return "philox";
  }
  return "invalid";
}

DrawHash resolve_draw_hash(DrawHash hash) {
  return hash == DrawHash::kDefault ? DrawHash::kMix64 : hash;
}

int resolve_kernel_threads(int kernel_threads) {
  if (kernel_threads == 0) return util::kernel_threads();
  return std::clamp(kernel_threads, 1, 256);
}

std::vector<WordRange> partition_word_ranges(std::size_t words, int lanes) {
  std::vector<WordRange> ranges;
  if (words == 0 || lanes <= 0) return ranges;
  const std::size_t count =
      std::min(words, static_cast<std::size_t>(lanes));
  ranges.reserve(count);
  const std::size_t base = words / count;
  const std::size_t extra = words % count;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    ranges.push_back(WordRange{begin, begin + size});
    begin += size;
  }
  return ranges;
}

FrontierKernel::FrontierKernel(const graph::Graph& g, const Config& config)
    : graph_(&g),
      engine_(config.engine),
      draw_hash_(resolve_draw_hash(config.draw_hash)),
      dense_density_(config.dense_density),
      track_visited_(config.track_visited),
      threads_(std::clamp(config.kernel_threads, 1, 256)),
      metrics_(config.metrics != nullptr ? config.metrics
                                         : session_step_metrics()) {
  COBRA_CHECK_MSG(engine_ != Engine::kDefault,
                  "FrontierKernel needs a resolved engine "
                  "(run core::resolve_engine first)");
  COBRA_CHECK(g.num_vertices() >= 1);
  if (config.sampler) {
    COBRA_CHECK_MSG(&config.sampler->graph() == graph_ &&
                        config.sampler->laziness() == config.laziness,
                    "shared NeighborSampler must match the process's graph "
                    "and laziness");
    sampler_ = config.sampler;
  } else if (config.build_sampler) {
    sampler_ = std::make_shared<const NeighborSampler>(g, config.laziness);
  }
  stamp_.assign(g.num_vertices(), 0);
  if (track_visited_) visited_.resize(g.num_vertices());
}

void FrontierKernel::assign(std::span<const graph::VertexId> starts) {
  COBRA_CHECK(!starts.empty());
  ++epoch_;
  active_.clear();
  if (track_visited_) visited_.reset_all();
  visited_count_ = 0;
  dense_repr_ = false;
  active_valid_ = true;
  dense_rounds_ = 0;
  rounds_committed_ = 0;
  for (const graph::VertexId u : starts) {
    COBRA_CHECK(u < graph_->num_vertices());
    if (stamp_[u] == epoch_) continue;  // deduplicate
    stamp_[u] = epoch_;
    active_.push_back(u);
    if (track_visited_ && visited_.set_and_test(u)) ++visited_count_;
  }
  num_active_ = static_cast<std::uint32_t>(active_.size());
}

const std::vector<graph::VertexId>& FrontierKernel::frontier_vector() const {
  if (!active_valid_) materialize_active();
  return active_;
}

void FrontierKernel::materialize_active() const {
  active_.clear();
  frontier_.for_each_set([this](std::size_t u) {
    active_.push_back(static_cast<graph::VertexId>(u));
  });
  active_valid_ = true;
}

void FrontierKernel::to_sparse_repr() {
  if (!active_valid_) materialize_active();
  ++epoch_;
  for (const graph::VertexId u : active_) stamp_[u] = epoch_;
  dense_repr_ = false;
}

void FrontierKernel::ensure_bitsets() {
  if (frontier_.size() != graph_->num_vertices()) {
    frontier_.resize(graph_->num_vertices());
    next_frontier_.resize(graph_->num_vertices());
  }
}

void FrontierKernel::ensure_lane_pool() {
  if (!pool_)
    pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(threads_ - 1));
}

void FrontierKernel::ensure_lane_scratch(int count) {
  if (lane_scratch_.size() < static_cast<std::size_t>(count))
    lane_scratch_.resize(static_cast<std::size_t>(count));
  for (util::DynamicBitset& scratch : lane_scratch_)
    if (scratch.size() != graph_->num_vertices())
      scratch.resize(graph_->num_vertices());
}

namespace {
/// Word-count floor below which the commit merge stays on the calling
/// thread: fan-out latency dominates under ~64 KiB of bitset. Never
/// affects results — the per-range popcount sums are exact whatever the
/// split.
constexpr std::size_t kParallelCommitMinWords = 1024;
}  // namespace

void FrontierKernel::merge_visited_parallel(std::size_t words,
                                            std::uint64_t* newly,
                                            std::uint64_t* active) {
  const std::uint64_t* next = next_frontier_.words().data();
  std::uint64_t* visited = visited_.data();
  if (threads_ <= 1 || words < kParallelCommitMinWords) {
    util::simd::merge_visited_words(next, visited, words, newly, active);
    return;
  }
  const std::vector<WordRange> ranges =
      partition_word_ranges(words, threads_);
  ensure_lane_pool();
  std::vector<std::uint64_t> lane_newly(ranges.size(), 0);
  std::vector<std::uint64_t> lane_active(ranges.size(), 0);
  std::vector<std::future<void>> pending;
  pending.reserve(ranges.size() - 1);
  for (std::size_t i = 1; i < ranges.size(); ++i)
    pending.push_back(pool_->submit([&, i] {
      const WordRange r = ranges[i];
      util::simd::merge_visited_words(next + r.begin, visited + r.begin,
                                      r.end - r.begin, &lane_newly[i],
                                      &lane_active[i]);
    }));
  util::simd::merge_visited_words(next, visited, ranges[0].end, &lane_newly[0],
                                  &lane_active[0]);
  for (std::future<void>& f : pending) f.get();
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    *newly += lane_newly[i];
    *active += lane_active[i];
  }
}

std::uint64_t FrontierKernel::or_count_parallel(std::uint64_t* dst_words,
                                                std::size_t words) {
  const std::uint64_t* next = next_frontier_.words().data();
  if (threads_ <= 1 || words < kParallelCommitMinWords)
    return util::simd::or_count_new_words(next, dst_words, words);
  const std::vector<WordRange> ranges =
      partition_word_ranges(words, threads_);
  ensure_lane_pool();
  std::vector<std::uint64_t> lane_added(ranges.size(), 0);
  std::vector<std::future<void>> pending;
  pending.reserve(ranges.size() - 1);
  for (std::size_t i = 1; i < ranges.size(); ++i)
    pending.push_back(pool_->submit([&, i] {
      const WordRange r = ranges[i];
      lane_added[i] = util::simd::or_count_new_words(
          next + r.begin, dst_words + r.begin, r.end - r.begin);
    }));
  lane_added[0] =
      util::simd::or_count_new_words(next, dst_words, ranges[0].end);
  for (std::future<void>& f : pending) f.get();
  std::uint64_t added = 0;
  for (const std::uint64_t a : lane_added) added += a;
  return added;
}

double FrontierKernel::density_score(std::uint32_t count) const {
  const double threshold =
      dense_density_ * static_cast<double>(graph_->num_vertices());
  if (threshold <= 0.0) return 2.0;  // dense_density 0: always dense
  return static_cast<double>(count) / threshold;
}

bool FrontierKernel::begin_round(double score) {
  bool dense = engine_ == Engine::kDense;
  if (engine_ == Engine::kAuto)
    dense = score >= (dense_repr_ ? 0.5 : 1.0);
  if (metrics_ != nullptr && dense != dense_repr_ && rounds_committed_ > 0)
    ++metrics_->mode_switches;
  round_dense_ = dense;
  round_stamped_ = false;
  round_newly_ = 0;
  if (dense) {
    ensure_bitsets();
    next_frontier_.reset_all();
  } else {
    if (dense_repr_) to_sparse_repr();
    next_.clear();
  }
  return dense;
}

void FrontierKernel::record_commit(std::uint32_t newly) {
  StepMetrics& m = *metrics_;
  ++m.rounds;
  m.rounds_dense += round_dense_ ? 1 : 0;
  m.frontier_sum += num_active_;
  m.frontier_peak = std::max<std::uint64_t>(m.frontier_peak, num_active_);
  m.first_visits += newly;
  ++m.frontier_hist[std::bit_width(static_cast<std::uint64_t>(num_active_))];
  if (m.record_rounds)
    m.note_round(static_cast<std::size_t>(rounds_committed_), num_active_,
                 newly, round_dense_);
}

std::uint32_t FrontierKernel::commit(Commit policy) {
  if (round_dense_) {
    // Branch-free word-parallel pass: merge the next frontier into the
    // visited set, count first visits and the new frontier size via
    // popcount — SIMD within word ranges, fanned out over the lane pool
    // for big bitsets.
    std::uint32_t newly = 0;
    std::uint32_t active_count = 0;
    const auto& next_words = next_frontier_.words();
    if (track_visited_) {
      std::uint64_t newly64 = 0;
      std::uint64_t active64 = 0;
      merge_visited_parallel(next_words.size(), &newly64, &active64);
      newly = static_cast<std::uint32_t>(newly64);
      active_count = static_cast<std::uint32_t>(active64);
    } else {
      active_count = static_cast<std::uint32_t>(
          util::simd::popcount_words(next_words.data(), next_words.size()));
    }
    if (policy == Commit::kReplace) {
      std::swap(frontier_, next_frontier_);
      num_active_ = active_count;
    } else {
      // A dense accumulate round entered from the sparse representation
      // must first materialise the current set into the bitset.
      if (!dense_repr_) {
        frontier_.reset_all();
        for (const graph::VertexId u : active_) frontier_.set(u);
      }
      num_active_ += static_cast<std::uint32_t>(
          or_count_parallel(frontier_.data(), next_words.size()));
    }
    dense_repr_ = true;
    active_valid_ = false;
    visited_count_ += newly;
    ++dense_rounds_;
    if (metrics_ != nullptr) {
      metrics_->merged_words += next_words.size();
      record_commit(newly);
    }
    ++rounds_committed_;
    return newly;
  }

  // Sparse round.
  if (policy == Commit::kReplace) {
    ++epoch_;
    // CoalescingSink already stamped next_ with the new epoch; other sinks
    // leave stamping to the commit.
    active_.swap(next_);
    if (!round_stamped_)
      for (const graph::VertexId u : active_) stamp_[u] = epoch_;
    num_active_ = static_cast<std::uint32_t>(active_.size());
  } else {
    for (const graph::VertexId u : next_) stamp_[u] = epoch_;
    active_.insert(active_.end(), next_.begin(), next_.end());
    num_active_ += static_cast<std::uint32_t>(next_.size());
  }
  active_valid_ = true;
  visited_count_ += round_newly_;
  if (metrics_ != nullptr) record_commit(round_newly_);
  ++rounds_committed_;
  return round_newly_;
}

}  // namespace cobra::core
