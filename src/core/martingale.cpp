#include "core/martingale.hpp"

#include <algorithm>
#include <cmath>

#include "core/bips.hpp"
#include "util/assert.hpp"
#include "util/bitset.hpp"

namespace cobra::core {

double drift_floor(const ProcessOptions& options) {
  const Branching& b = options.branching;
  if (b.base >= 2) return 0.5;
  // b = 1 + rho (Section 6): E(Y_l | past) >= rho (1 - 1/d) >= rho/2.
  return b.extra_prob / 2.0;
}

MartingaleTrace run_bips_serialized(const graph::Graph& g,
                                    graph::VertexId source,
                                    const ProcessOptions& options,
                                    std::uint64_t max_rounds,
                                    rng::Rng& rng) {
  options.validate();
  COBRA_CHECK_MSG(options.laziness == 0.0,
                  "the Section 3 serialisation is defined for the non-lazy "
                  "process");
  const graph::VertexId n = g.num_vertices();
  COBRA_CHECK(source < n && g.min_degree() >= 1);

  MartingaleTrace trace;
  util::DynamicBitset infected(n);
  infected.set(source);
  std::uint32_t infected_count = 1;

  std::vector<std::uint32_t> da(n, 0);  // d_A(u) w.r.t. current A
  std::vector<graph::VertexId> candidates;
  util::DynamicBitset seen(n);

  // Initialise d_A for A_0 = {source}.
  for (const graph::VertexId u : g.neighbors(source)) ++da[u];

  for (std::uint64_t t = 1; t <= max_rounds; ++t) {
    // Candidates C_t w.r.t. A = A_{t-1}, ascending vertex order.
    candidates.clear();
    seen.reset_all();
    auto consider = [&](graph::VertexId u) {
      if (!seen.set_and_test(u)) return;
      if (da[u] < g.degree(u)) candidates.push_back(u);
    };
    for (std::size_t a = infected.find_first(); a < n;
         a = infected.find_next(a))
      for (const graph::VertexId u : g.neighbors(a))
        consider(u);
    consider(source);
    std::sort(candidates.begin(), candidates.end());
    COBRA_CHECK_MSG(!candidates.empty(),
                    "paper invariant: C_t is never empty before completion");

    // B_fix = vertices with every neighbour infected; they are infected
    // next round deterministically.
    std::vector<graph::VertexId> next_infected;
    for (graph::VertexId u = 0; u < n; ++u)
      if (da[u] == g.degree(u)) next_infected.push_back(u);

    // Serialised candidate decisions.
    for (const graph::VertexId u : candidates) {
      MartingaleStep step;
      step.vertex = u;
      step.round = t;
      step.degree = g.degree(u);
      step.infected_neighbors = da[u];
      step.is_source = (u == source);
      if (u == source) {
        step.joined = true;
        step.conditional_mean =
            static_cast<double>(step.degree - step.infected_neighbors);
      } else {
        const double p = bips_infection_probability(
            step.degree, step.infected_neighbors, infected.test(u), options);
        step.joined = rng.bernoulli(p);
        // E(Y) = d p - d_A; for b = 2 this is d_A (1 - d_A/d) (eq. 17).
        step.conditional_mean =
            static_cast<double>(step.degree) * p -
            static_cast<double>(step.infected_neighbors);
      }
      step.y = (step.joined ? static_cast<double>(step.degree) : 0.0) -
               static_cast<double>(step.infected_neighbors);
      trace.steps.push_back(step);
      if (step.joined) next_infected.push_back(u);
    }
    trace.round_step_counts.push_back(candidates.size());

    // Commit A_t.
    infected.reset_all();
    std::fill(da.begin(), da.end(), 0u);
    infected_count = 0;
    std::uint64_t degree_sum = 0;
    for (const graph::VertexId u : next_infected) {
      if (!infected.set_and_test(u)) continue;
      ++infected_count;
      degree_sum += g.degree(u);
      for (const graph::VertexId w : g.neighbors(u)) ++da[w];
    }
    trace.infected_degree.push_back(degree_sum);
    trace.rounds = t;
    if (infected_count == n) {
      trace.completed = true;
      break;
    }
  }
  return trace;
}

double trace_identity_violation(const graph::Graph& g,
                                graph::VertexId source,
                                const MartingaleTrace& trace) {
  // d(A_t) should equal d(source) + sum of Y over rounds 1..t (eq. (14)).
  double worst = 0.0;
  double running = static_cast<double>(g.degree(source));
  std::size_t step_index = 0;
  for (std::uint64_t t = 0; t < trace.rounds; ++t) {
    const std::uint64_t steps_this_round = trace.round_step_counts[t];
    for (std::uint64_t s = 0; s < steps_this_round; ++s)
      running += trace.steps[step_index++].y;
    const double recorded =
        static_cast<double>(trace.infected_degree[t]);
    worst = std::max(worst, std::fabs(running - recorded));
  }
  return worst;
}

}  // namespace cobra::core
