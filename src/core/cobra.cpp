#include "core/cobra.hpp"

#include <algorithm>
#include <bit>

namespace cobra::core {

CobraProcess::CobraProcess(const graph::Graph& g, ProcessOptions options)
    : graph_(&g),
      options_(std::move(options)),
      engine_(resolve_engine(options_.engine)) {
  options_.validate();
  COBRA_CHECK_MSG(g.num_vertices() >= 1, "empty graph");
  COBRA_CHECK_MSG(g.num_vertices() == 1 || g.min_degree() >= 1,
                  "COBRA needs every vertex to have a neighbour to push to "
                  "(the single-vertex graph is the one degree-0 exception)");
  if (engine_ != Engine::kReference) {
    if (options_.sampler) {
      COBRA_CHECK_MSG(
          &options_.sampler->graph() == graph_ &&
              options_.sampler->laziness() == options_.laziness,
          "shared NeighborSampler must match the process's graph and "
          "laziness");
      sampler_ = options_.sampler;
    } else {
      sampler_ = std::make_shared<const NeighborSampler>(g, options_.laziness);
    }
    if (engine_ != Engine::kSparse) {
      frontier_.resize(g.num_vertices());
      next_frontier_.resize(g.num_vertices());
    }
  }
  stamp_.assign(g.num_vertices(), 0);
  visited_.resize(g.num_vertices());
  reset(0);
}

void CobraProcess::reset(graph::VertexId start) {
  const graph::VertexId one[] = {start};
  reset(std::span<const graph::VertexId>(one, 1));
}

void CobraProcess::reset(std::span<const graph::VertexId> start) {
  COBRA_CHECK(!start.empty());
  ++epoch_;
  active_.clear();
  visited_.reset_all();
  visited_count_ = 0;
  round_ = 0;
  transmissions_ = 0;
  dense_mode_ = false;
  active_valid_ = true;
  dense_rounds_ = 0;
  for (const graph::VertexId u : start) {
    COBRA_CHECK(u < graph_->num_vertices());
    if (stamp_[u] == epoch_) continue;  // deduplicate
    stamp_[u] = epoch_;
    active_.push_back(u);
    if (visited_.set_and_test(u)) ++visited_count_;
  }
  num_active_ = static_cast<std::uint32_t>(active_.size());
}

std::uint32_t CobraProcess::step(rng::Rng& rng) {
  if (engine_ == Engine::kReference) return step_reference(rng);

  // Fast engines: one round key from the sequential stream; every
  // per-vertex choice below is a pure function of (round_key, vertex), so
  // the frontier representation cannot affect the outcome.
  const std::uint64_t round_key = rng.next_u64();
  bool dense = engine_ == Engine::kDense;
  if (engine_ == Engine::kAuto) {
    const double threshold =
        options_.dense_density * static_cast<double>(graph_->num_vertices());
    // Hysteresis: leave dense mode only below half the entry threshold.
    dense = static_cast<double>(num_active_) >=
            (dense_mode_ ? threshold / 2.0 : threshold);
  }
  return dense ? step_fast_dense(round_key) : step_fast_sparse(round_key);
}

std::uint32_t CobraProcess::step_reference(rng::Rng& rng) {
  const std::uint64_t next_epoch = epoch_ + 1;
  next_.clear();
  std::uint32_t newly_visited = 0;
  const double laziness = options_.laziness;

  for (const graph::VertexId u : active_) {
    const std::uint32_t fanout = draw_fanout(rng);
    transmissions_ += fanout;
    const auto nbrs = graph_->neighbors(u);
    for (std::uint32_t j = 0; j < fanout; ++j) {
      graph::VertexId dest;
      if (laziness > 0.0 && rng.bernoulli(laziness)) {
        dest = u;
      } else if (nbrs.empty()) {
        dest = u;  // single-vertex graph: every push stays put
      } else {
        dest = nbrs[static_cast<std::size_t>(rng.below(nbrs.size()))];
      }
      if (stamp_[dest] == next_epoch) continue;  // coalesce
      stamp_[dest] = next_epoch;
      next_.push_back(dest);
      if (visited_.set_and_test(dest)) ++newly_visited;
    }
  }

  epoch_ = next_epoch;
  active_.swap(next_);
  num_active_ = static_cast<std::uint32_t>(active_.size());
  active_valid_ = true;
  visited_count_ += newly_visited;
  ++round_;
  return newly_visited;
}

std::uint32_t CobraProcess::step_fast_sparse(std::uint64_t round_key) {
  if (dense_mode_) to_sparse_mode();
  const std::uint64_t next_epoch = epoch_ + 1;
  next_.clear();
  std::uint32_t newly_visited = 0;
  const Branching& branching = options_.branching;
  const NeighborSampler& sampler = *sampler_;

  for (const graph::VertexId u : active_) {
    VertexDraws draws(round_key, u);
    std::uint32_t fanout = branching.base;
    if (branching.extra_prob > 0.0 && draws.bernoulli(branching.extra_prob))
      ++fanout;
    transmissions_ += fanout;
    for (std::uint32_t j = 0; j < fanout; ++j) {
      const graph::VertexId dest = sampler.sample(u, draws.next_word());
      if (stamp_[dest] == next_epoch) continue;  // coalesce
      stamp_[dest] = next_epoch;
      next_.push_back(dest);
      if (visited_.set_and_test(dest)) ++newly_visited;
    }
  }

  epoch_ = next_epoch;
  active_.swap(next_);
  num_active_ = static_cast<std::uint32_t>(active_.size());
  active_valid_ = true;
  visited_count_ += newly_visited;
  ++round_;
  return newly_visited;
}

std::uint32_t CobraProcess::step_fast_dense(std::uint64_t round_key) {
  next_frontier_.reset_all();
  const Branching& branching = options_.branching;
  const NeighborSampler& sampler = *sampler_;

  const auto push_from = [&](graph::VertexId u) {
    VertexDraws draws(round_key, u);
    std::uint32_t fanout = branching.base;
    if (branching.extra_prob > 0.0 && draws.bernoulli(branching.extra_prob))
      ++fanout;
    transmissions_ += fanout;
    for (std::uint32_t j = 0; j < fanout; ++j)
      next_frontier_.set(sampler.sample(u, draws.next_word()));
  };

  if (dense_mode_) {
    // Ascending-id scan of the frontier bitset: adjacency reads walk the
    // CSR arrays front to back, which is what makes this mode fast.
    frontier_.for_each_set(
        [&](std::size_t u) { push_from(static_cast<graph::VertexId>(u)); });
  } else {
    // Transition round (sparse -> dense): read C_t from the vector, write
    // C_{t+1} straight into the bitset — no conversion pass needed.
    for (const graph::VertexId u : active_) push_from(u);
  }

  // Branch-free visited update: one word-parallel pass merges the new
  // frontier into the visited set and counts first visits via popcount.
  std::uint32_t newly_visited = 0;
  std::uint32_t active_count = 0;
  const auto& next_words = next_frontier_.words();
  std::uint64_t* visited_words = visited_.data();
  for (std::size_t w = 0; w < next_words.size(); ++w) {
    const std::uint64_t nw = next_words[w];
    newly_visited +=
        static_cast<std::uint32_t>(std::popcount(nw & ~visited_words[w]));
    active_count += static_cast<std::uint32_t>(std::popcount(nw));
    visited_words[w] |= nw;
  }

  std::swap(frontier_, next_frontier_);
  dense_mode_ = true;
  active_valid_ = false;
  num_active_ = active_count;
  visited_count_ += newly_visited;
  ++dense_rounds_;
  ++round_;
  return newly_visited;
}

void CobraProcess::materialize_active() const {
  active_.clear();
  frontier_.for_each_set([this](std::size_t u) {
    active_.push_back(static_cast<graph::VertexId>(u));
  });
  active_valid_ = true;
}

void CobraProcess::to_sparse_mode() {
  if (!active_valid_) materialize_active();
  ++epoch_;
  for (const graph::VertexId u : active_) stamp_[u] = epoch_;
  dense_mode_ = false;
}

const std::vector<graph::VertexId>& CobraProcess::active() const {
  if (!active_valid_) materialize_active();
  return active_;
}

std::optional<std::uint64_t> CobraProcess::run_until_cover(
    rng::Rng& rng, std::uint64_t max_rounds) {
  if (all_visited()) return round_;
  while (round_ < max_rounds) {
    step(rng);
    if (all_visited()) return round_;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> CobraProcess::run_until_hit(
    rng::Rng& rng, graph::VertexId target, std::uint64_t max_rounds) {
  COBRA_CHECK(target < graph_->num_vertices());
  if (is_visited(target)) return round_;
  while (round_ < max_rounds) {
    step(rng);
    if (is_visited(target)) return round_;
  }
  return std::nullopt;
}

}  // namespace cobra::core
