#include "core/cobra.hpp"

#include <algorithm>

namespace cobra::core {

CobraProcess::CobraProcess(const graph::Graph& g, ProcessOptions options)
    : graph_(&g), options_(options) {
  options_.validate();
  COBRA_CHECK_MSG(g.num_vertices() >= 1, "empty graph");
  COBRA_CHECK_MSG(g.min_degree() >= 1,
                  "COBRA needs every vertex to have a neighbour to push to");
  stamp_.assign(g.num_vertices(), 0);
  visited_.resize(g.num_vertices());
  reset(0);
}

void CobraProcess::reset(graph::VertexId start) {
  const graph::VertexId one[] = {start};
  reset(std::span<const graph::VertexId>(one, 1));
}

void CobraProcess::reset(std::span<const graph::VertexId> start) {
  COBRA_CHECK(!start.empty());
  ++epoch_;
  active_.clear();
  visited_.reset_all();
  visited_count_ = 0;
  round_ = 0;
  transmissions_ = 0;
  for (const graph::VertexId u : start) {
    COBRA_CHECK(u < graph_->num_vertices());
    if (stamp_[u] == epoch_) continue;  // deduplicate
    stamp_[u] = epoch_;
    active_.push_back(u);
    if (visited_.set_and_test(u)) ++visited_count_;
  }
}

std::uint32_t CobraProcess::step(rng::Rng& rng) {
  const std::uint64_t next_epoch = epoch_ + 1;
  next_.clear();
  std::uint32_t newly_visited = 0;
  const double laziness = options_.laziness;

  for (const graph::VertexId u : active_) {
    const std::uint32_t fanout = draw_fanout(rng);
    transmissions_ += fanout;
    const auto nbrs = graph_->neighbors(u);
    for (std::uint32_t j = 0; j < fanout; ++j) {
      graph::VertexId dest;
      if (laziness > 0.0 && rng.bernoulli(laziness)) {
        dest = u;
      } else {
        dest = nbrs[static_cast<std::size_t>(rng.below(nbrs.size()))];
      }
      if (stamp_[dest] == next_epoch) continue;  // coalesce
      stamp_[dest] = next_epoch;
      next_.push_back(dest);
      if (visited_.set_and_test(dest)) ++newly_visited;
    }
  }

  epoch_ = next_epoch;
  active_.swap(next_);
  visited_count_ += newly_visited;
  ++round_;
  return newly_visited;
}

std::optional<std::uint64_t> CobraProcess::run_until_cover(
    rng::Rng& rng, std::uint64_t max_rounds) {
  if (all_visited()) return round_;
  while (round_ < max_rounds) {
    step(rng);
    if (all_visited()) return round_;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> CobraProcess::run_until_hit(
    rng::Rng& rng, graph::VertexId target, std::uint64_t max_rounds) {
  COBRA_CHECK(target < graph_->num_vertices());
  if (is_visited(target)) return round_;
  while (round_ < max_rounds) {
    step(rng);
    if (is_visited(target)) return round_;
  }
  return std::nullopt;
}

}  // namespace cobra::core
