#include "core/cobra.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cobra::core {

FrontierKernel::Config CobraProcess::kernel_config() const {
  FrontierKernel::Config cfg;
  cfg.engine = engine_;
  cfg.draw_hash = options_.draw_hash;
  cfg.dense_density = options_.dense_density;
  cfg.laziness = options_.laziness;
  // The legacy reference engine draws destinations sequentially from the
  // replicate stream and never needs the alias tables.
  cfg.build_sampler = engine_ != Engine::kReference;
  cfg.track_visited = true;
  cfg.sampler = engine_ != Engine::kReference ? options_.sampler : nullptr;
  cfg.metrics = options_.metrics;
  cfg.kernel_threads = resolve_kernel_threads(options_.kernel_threads);
  return cfg;
}

CobraProcess::CobraProcess(const graph::Graph& g, ProcessOptions options)
    : graph_(&g),
      options_(std::move(options)),
      engine_((options_.validate(), resolve_engine(options_.engine))),
      kernel_(g, kernel_config()) {
  COBRA_CHECK_MSG(g.num_vertices() >= 1, "empty graph");
  COBRA_CHECK_MSG(g.num_vertices() == 1 || g.min_degree() >= 1,
                  "COBRA needs every vertex to have a neighbour to push to "
                  "(the single-vertex graph is the one degree-0 exception)");
  reset(0);
}

void CobraProcess::reset(graph::VertexId start) {
  const graph::VertexId one[] = {start};
  reset(std::span<const graph::VertexId>(one, 1));
}

void CobraProcess::reset(std::span<const graph::VertexId> start) {
  kernel_.assign(start);
  round_ = 0;
  transmissions_ = 0;
}

std::uint32_t CobraProcess::step(rng::Rng& rng) {
  if (engine_ == Engine::kReference) return step_reference(rng);

  // Fast engines: one round key from the sequential stream; every
  // per-vertex choice below is a pure function of (round_key, vertex), so
  // the frontier representation cannot affect the outcome.
  return step_fast(rng.next_u64());
}

std::uint32_t CobraProcess::step_reference(rng::Rng& rng) {
  const std::uint64_t transmissions_before = transmissions_;
  kernel_.begin_round(0.0);  // kReference: always a sparse round
  auto sink = kernel_.coalescing_sink();
  const double laziness = options_.laziness;

  kernel_.for_each_in_frontier([&](graph::VertexId u) {
    const std::uint32_t fanout = draw_fanout(rng);
    transmissions_ += fanout;
    const auto nbrs = graph_->neighbors(u);
    for (std::uint32_t j = 0; j < fanout; ++j) {
      graph::VertexId dest;
      if (laziness > 0.0 && rng.bernoulli(laziness)) {
        dest = u;
      } else if (nbrs.empty()) {
        dest = u;  // single-vertex graph: every push stays put
      } else {
        dest = nbrs[static_cast<std::size_t>(rng.below(nbrs.size()))];
      }
      sink.emit(dest);
    }
  });

  const std::uint32_t newly = kernel_.commit(FrontierKernel::Commit::kReplace);
  if (StepMetrics* m = kernel_.metrics())
    m->emissions += transmissions_ - transmissions_before;
  ++round_;
  return newly;
}

template <typename Sink>
void CobraProcess::push_round(std::uint64_t round_key, Sink sink) {
  const Branching& branching = options_.branching;
  const NeighborSampler& sampler = kernel_.sampler();
  kernel_.for_each_in_frontier([&](graph::VertexId u) {
    VertexDraws draws = kernel_.draws(round_key, u);
    std::uint32_t fanout = branching.base;
    if (branching.extra_prob > 0.0 && draws.bernoulli(branching.extra_prob))
      ++fanout;
    transmissions_ += fanout;
    for (std::uint32_t j = 0; j < fanout; ++j)
      sink.emit(sampler.sample(u, draws.next_word()));
  });
}

void CobraProcess::push_round_dense(std::uint64_t round_key) {
  const Branching& branching = options_.branching;
  const NeighborSampler& sampler = kernel_.sampler();
  transmissions_ += kernel_.scatter_frontier_scan(
      [&](FrontierKernel::DenseLane& lane, graph::VertexId u) {
        VertexDraws draws = lane.draws(round_key, u);
        std::uint32_t fanout = branching.base;
        if (branching.extra_prob > 0.0 &&
            draws.bernoulli(branching.extra_prob))
          ++fanout;
        lane.user += fanout;
        for (std::uint32_t j = 0; j < fanout; ++j)
          lane.emit(sampler.sample(u, draws.next_word()));
      });
}

std::uint32_t CobraProcess::step_fast(std::uint64_t round_key) {
  const std::uint64_t transmissions_before = transmissions_;
  const bool dense =
      kernel_.begin_round(kernel_.density_score(kernel_.frontier_size()));
  if (dense) {
    push_round_dense(round_key);
  } else {
    push_round(round_key, kernel_.coalescing_sink());
  }
  const std::uint32_t newly = kernel_.commit(FrontierKernel::Commit::kReplace);
  if (StepMetrics* m = kernel_.metrics())
    m->emissions += transmissions_ - transmissions_before;
  ++round_;
  return newly;
}

std::optional<std::uint64_t> CobraProcess::run_until_cover(
    rng::Rng& rng, std::uint64_t max_rounds) {
  if (all_visited()) return round_;
  while (round_ < max_rounds) {
    step(rng);
    if (all_visited()) return round_;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> CobraProcess::run_until_hit(
    rng::Rng& rng, graph::VertexId target, std::uint64_t max_rounds) {
  COBRA_CHECK(target < graph_->num_vertices());
  if (is_visited(target)) return round_;
  while (round_ < max_rounds) {
    step(rng);
    if (is_visited(target)) return round_;
  }
  return std::nullopt;
}

}  // namespace cobra::core
