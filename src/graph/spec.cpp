#include "graph/spec.hpp"

#include <charconv>
#include <filesystem>
#include <map>
#include <utility>

#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/random_generators.hpp"
#include "rng/stream.hpp"
#include "util/annotations.hpp"
#include "util/assert.hpp"
#include "util/metrics.hpp"

namespace cobra::graph {

namespace {

constexpr const char* kGrammar =
    "complete_N | cycle_N | path_N | star_N | hypercube_D | torus_S_dD | "
    "regular_N_rR | petersen | file:PATH";

// Fixed generator-stream salt for random families: spec-built instances
// depend only on the spec parameters, never on COBRA_SEED, so a graph
// pre-baked to disk with `cobra graph gen` is the same graph every run.
constexpr std::uint64_t kSpecStreamSalt = 0xC06AA5BEC57A11Eull;

std::uint64_t parse_number(std::string_view token, const std::string& spec) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  COBRA_CHECK_MSG(ec == std::errc() && ptr == token.data() + token.size() &&
                      !token.empty(),
                  "bad graph spec '" << spec << "': '" << token
                                     << "' is not a number (grammar: "
                                     << kGrammar << ")");
  return value;
}

std::vector<std::string_view> split_underscores(std::string_view body) {
  std::vector<std::string_view> parts;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t next = body.find('_', pos);
    if (next == std::string_view::npos) {
      parts.push_back(body.substr(pos));
      break;
    }
    parts.push_back(body.substr(pos, next - pos));
    pos = next + 1;
  }
  return parts;
}

// One parse for both uses: `build = false` only validates the grammar and
// parameter ranges (cell enumeration must stay cheap), `build = true`
// additionally constructs the graph. Returns an empty Graph in validate
// mode.
Graph parse_synthetic(const std::string& spec, bool build) {
  const auto parts = split_underscores(spec);
  const std::string_view family = parts[0];
  const auto arity = parts.size();

  if (family == "petersen" && arity == 1)
    return build ? petersen() : Graph{};

  if (family == "complete" && arity == 2) {
    const std::uint64_t n = parse_number(parts[1], spec);
    COBRA_CHECK_MSG(n >= 2 && n <= 200000,
                    "graph spec '" << spec << "': complete_N needs "
                                   << "2 <= N <= 200000");
    return build ? complete(static_cast<VertexId>(n)) : Graph{};
  }
  if (family == "cycle" && arity == 2) {
    const std::uint64_t n = parse_number(parts[1], spec);
    COBRA_CHECK_MSG(n >= 3 && n <= 0xFFFFFFFEull,
                    "graph spec '" << spec << "': cycle_N needs N >= 3");
    return build ? cycle(static_cast<VertexId>(n)) : Graph{};
  }
  if (family == "path" && arity == 2) {
    const std::uint64_t n = parse_number(parts[1], spec);
    COBRA_CHECK_MSG(n >= 2 && n <= 0xFFFFFFFEull,
                    "graph spec '" << spec << "': path_N needs N >= 2");
    return build ? path(static_cast<VertexId>(n)) : Graph{};
  }
  if (family == "star" && arity == 2) {
    const std::uint64_t n = parse_number(parts[1], spec);
    COBRA_CHECK_MSG(n >= 2 && n <= 0xFFFFFFFEull,
                    "graph spec '" << spec << "': star_N needs N >= 2");
    return build ? star(static_cast<VertexId>(n)) : Graph{};
  }
  if (family == "hypercube" && arity == 2) {
    const std::uint64_t d = parse_number(parts[1], spec);
    COBRA_CHECK_MSG(d >= 1 && d <= 30,
                    "graph spec '" << spec << "': hypercube_D needs "
                                   << "1 <= D <= 30");
    return build ? hypercube(static_cast<std::uint32_t>(d)) : Graph{};
  }
  if (family == "torus" && arity == 3 && parts[2].size() >= 2 &&
      parts[2][0] == 'd') {
    const std::uint64_t side = parse_number(parts[1], spec);
    const std::uint64_t dim = parse_number(parts[2].substr(1), spec);
    COBRA_CHECK_MSG(side >= 3 && dim >= 1 && dim <= 6,
                    "graph spec '" << spec << "': torus_S_dD needs "
                                   << "S >= 3 and 1 <= D <= 6");
    return build ? torus_power(static_cast<VertexId>(side),
                               static_cast<std::uint32_t>(dim))
                 : Graph{};
  }
  if (family == "regular" && arity == 3 && parts[2].size() >= 2 &&
      parts[2][0] == 'r') {
    const std::uint64_t n = parse_number(parts[1], spec);
    const std::uint64_t r = parse_number(parts[2].substr(1), spec);
    COBRA_CHECK_MSG(n >= 4 && n <= 0xFFFFFFFEull && r >= 3 && r < n &&
                        (n * r) % 2 == 0,
                    "graph spec '" << spec << "': regular_N_rR needs "
                                   << "N >= 4, 3 <= R < N, N*R even");
    if (!build) return Graph{};
    rng::Rng grng =
        rng::make_stream(rng::derive_seed(kSpecStreamSalt, n), r);
    return connected_random_regular(static_cast<VertexId>(n),
                                    static_cast<std::uint32_t>(r), grng);
  }
  COBRA_CHECK_MSG(false, "bad graph spec '" << spec << "' (grammar: "
                                            << kGrammar << ")");
  __builtin_unreachable();
}

bool is_cgr_path(const std::string& path) {
  return std::filesystem::path(path).extension() == ".cgr";
}

struct GraphCache {
  util::Mutex mu;
  std::map<std::string, std::shared_ptr<const Graph>> by_spec
      COBRA_GUARDED_BY(mu);
  std::map<std::uint64_t, std::shared_ptr<const Graph>> by_fingerprint
      COBRA_GUARDED_BY(mu);
  GraphCacheStats stats COBRA_GUARDED_BY(mu);
};

GraphCache& cache() {
  static GraphCache& c = *new GraphCache;  // leaked: process-lifetime
  return c;
}

// Registry mirror of the cache counters (telemetry sidecars; stats above
// stay authoritative for graph_cache_stats()).
struct GraphCacheIds {
  util::MetricId hits;
  util::MetricId misses;
  util::MetricId fingerprint_dedups;
};

const GraphCacheIds& graph_cache_ids() {
  static const GraphCacheIds ids = [] {
    util::MetricsRegistry& reg = util::MetricsRegistry::instance();
    return GraphCacheIds{reg.counter("graph.cache_hits"),
                         reg.counter("graph.cache_misses"),
                         reg.counter("graph.cache_fingerprint_dedups")};
  }();
  return ids;
}

}  // namespace

bool is_file_spec(const std::string& spec) {
  return spec.rfind("file:", 0) == 0;
}

Graph build_graph_spec(const std::string& spec) {
  if (is_file_spec(spec)) {
    const std::string path = spec.substr(5);
    COBRA_CHECK_MSG(!path.empty(),
                    "bad graph spec '" << spec << "': empty file path");
    if (is_cgr_path(path)) return load_cgr_file(path, CgrLoadMode::kMapped);
    return read_edge_list_file(path);
  }
  Graph g = parse_synthetic(spec, /*build=*/true);
  // The canonical spec string is the label everywhere (cells, CSVs, cache
  // keys); pre-baking with `cobra graph gen` persists the same label.
  g.set_name(spec);
  return g;
}

std::string graph_spec_label(const std::string& spec) {
  if (!is_file_spec(spec)) {
    // Validate eagerly so enumeration rejects typos, not cell bodies.
    (void)parse_synthetic(spec, /*build=*/false);
    return spec;
  }
  const std::string path = spec.substr(5);
  COBRA_CHECK_MSG(!path.empty(),
                  "bad graph spec '" << spec << "': empty file path");
  if (is_cgr_path(path)) return read_cgr_header(path).name;
  return std::filesystem::path(path).stem().string();
}

std::shared_ptr<const Graph> shared_graph(const std::string& spec) {
  GraphCache& c = cache();
  {
    util::MutexLock lock(c.mu);
    const auto it = c.by_spec.find(spec);
    if (it != c.by_spec.end()) {
      ++c.stats.hits;
      util::count_if_collecting(graph_cache_ids().hits);
      return it->second;
    }
  }
  // Build outside the lock (generation can take seconds); a concurrent
  // duplicate build is benign — first insert wins below.
  auto built = std::make_shared<const Graph>(build_graph_spec(spec));
  const std::uint64_t fp = built->fingerprint();

  util::MutexLock lock(c.mu);
  if (const auto it = c.by_spec.find(spec); it != c.by_spec.end()) {
    ++c.stats.hits;
    util::count_if_collecting(graph_cache_ids().hits);
    return it->second;
  }
  ++c.stats.misses;
  util::count_if_collecting(graph_cache_ids().misses);
  std::shared_ptr<const Graph> resolved = built;
  if (const auto fit = c.by_fingerprint.find(fp);
      fit != c.by_fingerprint.end()) {
    // Structurally identical to a graph we already hold (e.g. `file:` of
    // a pre-baked family): share the existing instance and its caches.
    resolved = fit->second;
    ++c.stats.fingerprint_dedups;
    util::count_if_collecting(graph_cache_ids().fingerprint_dedups);
  } else {
    c.by_fingerprint.emplace(fp, resolved);
  }
  c.by_spec.emplace(spec, resolved);
  return resolved;
}

GraphCacheStats graph_cache_stats() {
  GraphCache& c = cache();
  util::MutexLock lock(c.mu);
  return c.stats;
}

void clear_graph_cache() {
  GraphCache& c = cache();
  util::MutexLock lock(c.mu);
  c.by_spec.clear();
  c.by_fingerprint.clear();
  c.stats = GraphCacheStats{};
}

std::vector<std::string> split_graph_specs(const std::string& list) {
  std::vector<std::string> specs;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t next = list.find(',', pos);
    if (next == std::string::npos) next = list.size();
    std::string item = list.substr(pos, next - pos);
    const auto first = item.find_first_not_of(" \t");
    const auto last = item.find_last_not_of(" \t");
    if (first != std::string::npos)
      specs.push_back(item.substr(first, last - first + 1));
    pos = next + 1;
  }
  return specs;
}

}  // namespace cobra::graph
