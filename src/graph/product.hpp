// Graph products.
//
// The paper's benchmark families are products: the hypercube Q_d is the
// d-fold Cartesian power of K_2, the D-dimensional torus the D-fold power
// of a cycle. Products also give exact spectral ground truth: for regular
// factors, the walk spectrum of the Cartesian product is the degree-weighted
// mean of factor eigenvalues, and of the tensor product their pointwise
// product — used by tests to pin the iterative solvers on large instances.
//
// Vertex (u1, u2) of a product has id u1 + n1 * u2.
#pragma once

#include "graph/graph.hpp"

namespace cobra::graph {

/// Cartesian product G1 □ G2: (u1,u2) ~ (v1,v2) iff
/// (u1 = v1 and u2 ~ v2) or (u1 ~ v1 and u2 = v2).
/// deg(u1,u2) = deg(u1) + deg(u2); connected iff both factors are.
Graph cartesian_product(const Graph& g1, const Graph& g2);

/// k-fold Cartesian power G^{□k} (k >= 1).
Graph cartesian_power(const Graph& g, std::uint32_t k);

/// Tensor (categorical) product G1 × G2: (u1,u2) ~ (v1,v2) iff
/// u1 ~ v1 and u2 ~ v2. deg(u1,u2) = deg(u1)·deg(u2); connected iff both
/// factors are connected and at least one is non-bipartite.
Graph tensor_product(const Graph& g1, const Graph& g2);

/// Walk-matrix eigenvalue of the Cartesian product of regular factors:
/// mu = (r1 mu1 + r2 mu2) / (r1 + r2).
double cartesian_walk_eigenvalue(double mu1, std::uint32_t r1, double mu2,
                                 std::uint32_t r2);

/// Walk-matrix eigenvalue of the tensor product: mu = mu1 * mu2
/// (degrees cancel).
double tensor_walk_eigenvalue(double mu1, double mu2);

}  // namespace cobra::graph
