#include "graph/graph.hpp"

#include <algorithm>
#include <limits>

#include "rng/splitmix64.hpp"
#include "util/assert.hpp"

namespace cobra::graph {

std::uint64_t csr_fingerprint(std::span<const std::uint64_t> offsets,
                              std::span<const VertexId> adj) {
  // The CSR pair (offsets, adjacency) is the canonical form of the graph,
  // so mixing both arrays position-wise pins the structure exactly.
  const auto n =
      offsets.empty() ? 0u : static_cast<std::uint32_t>(offsets.size() - 1);
  std::uint64_t h = rng::mix64(0xC0BBA6F1u ^ n);
  for (std::size_t i = 0; i < offsets.size(); ++i)
    h = rng::mix64(h ^ (offsets[i] + 0xBF58476D1CE4E5B9ull * (i + 1)));
  for (std::size_t i = 0; i < adj.size(); ++i)
    h = rng::mix64(h ^ (adj[i] + 0x9E3779B97F4A7C15ull * (i + 1)));
  return h;
}

Graph::Graph(std::vector<std::uint64_t> offsets, std::vector<VertexId> adj,
             std::string name)
    : name_(std::move(name)) {
  COBRA_CHECK_MSG(!offsets.empty(), "offsets must have n+1 entries");
  COBRA_CHECK(offsets.front() == 0);
  COBRA_CHECK(offsets.back() == adj.size());
  COBRA_CHECK_MSG(adj.size() % 2 == 0,
                  "undirected adjacency must have even length");
  n_ = static_cast<VertexId>(offsets.size() - 1);
  degree_sum_ = adj.size();
  auto storage = std::make_shared<OwnedCsrStorage>(std::move(offsets),
                                                   std::move(adj));
  offsets_ = storage->offsets().data();
  adj_ = storage->adjacency().data();
  storage_ = std::move(storage);

  max_degree_ = 0;
  min_degree_ = std::numeric_limits<std::uint32_t>::max();
  if (n_ == 0) min_degree_ = 0;
  for (VertexId u = 0; u < n_; ++u) {
    COBRA_CHECK(offsets_[u] <= offsets_[u + 1]);
    const std::uint32_t d = degree(u);
    max_degree_ = std::max(max_degree_, d);
    min_degree_ = std::min(min_degree_, d);
    const auto nbrs = neighbors(u);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      COBRA_CHECK_MSG(nbrs[j] < n_, "neighbour id out of range");
      COBRA_CHECK_MSG(nbrs[j] != u, "self-loop in simple graph");
      if (j > 0)
        COBRA_CHECK_MSG(nbrs[j - 1] < nbrs[j],
                        "adjacency list must be sorted and duplicate-free");
    }
  }
}

Graph Graph::adopt(std::shared_ptr<const CsrStorage> storage,
                   std::string name, std::uint32_t min_degree,
                   std::uint32_t max_degree, std::uint64_t fingerprint) {
  COBRA_CHECK_MSG(storage != nullptr, "adopt: null storage");
  const auto offsets = storage->offsets();
  const auto adj = storage->adjacency();
  COBRA_CHECK_MSG(!offsets.empty(), "adopt: offsets must have n+1 entries");
  COBRA_CHECK(offsets.front() == 0);
  COBRA_CHECK(offsets.back() == adj.size());
  Graph g;
  g.n_ = static_cast<VertexId>(offsets.size() - 1);
  g.degree_sum_ = adj.size();
  g.offsets_ = offsets.data();
  g.adj_ = adj.data();
  g.storage_ = std::move(storage);
  g.min_degree_ = min_degree;
  g.max_degree_ = max_degree;
  g.name_ = std::move(name);
  g.fingerprint_.value.store(fingerprint, std::memory_order_relaxed);
  return g;
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::uint64_t Graph::set_degree(std::span<const VertexId> set) const {
  std::uint64_t total = 0;
  for (const VertexId u : set) total += degree(u);
  return total;
}

std::uint64_t Graph::fingerprint() const {
  const std::uint64_t cached =
      fingerprint_.value.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  const std::uint64_t h = csr_fingerprint(offsets(), adjacency());
  fingerprint_.value.store(h, std::memory_order_relaxed);
  return h;
}

std::vector<std::pair<VertexId, VertexId>> Graph::edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u)
    for (const VertexId v : neighbors(u))
      if (u < v) out.emplace_back(u, v);
  return out;
}

}  // namespace cobra::graph
