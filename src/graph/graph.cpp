#include "graph/graph.hpp"

#include <algorithm>
#include <limits>

#include "rng/splitmix64.hpp"
#include "util/assert.hpp"

namespace cobra::graph {

Graph::Graph(std::vector<std::uint64_t> offsets, std::vector<VertexId> adj,
             std::string name)
    : offsets_(std::move(offsets)),
      adj_(std::move(adj)),
      name_(std::move(name)) {
  COBRA_CHECK_MSG(!offsets_.empty(), "offsets must have n+1 entries");
  COBRA_CHECK(offsets_.front() == 0);
  COBRA_CHECK(offsets_.back() == adj_.size());
  COBRA_CHECK_MSG(adj_.size() % 2 == 0,
                  "undirected adjacency must have even length");
  const VertexId n = num_vertices();
  max_degree_ = 0;
  min_degree_ = std::numeric_limits<std::uint32_t>::max();
  if (n == 0) min_degree_ = 0;
  for (VertexId u = 0; u < n; ++u) {
    COBRA_CHECK(offsets_[u] <= offsets_[u + 1]);
    const std::uint32_t d = degree(u);
    max_degree_ = std::max(max_degree_, d);
    min_degree_ = std::min(min_degree_, d);
    const auto nbrs = neighbors(u);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      COBRA_CHECK_MSG(nbrs[j] < n, "neighbour id out of range");
      COBRA_CHECK_MSG(nbrs[j] != u, "self-loop in simple graph");
      if (j > 0)
        COBRA_CHECK_MSG(nbrs[j - 1] < nbrs[j],
                        "adjacency list must be sorted and duplicate-free");
    }
  }
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::uint64_t Graph::set_degree(std::span<const VertexId> set) const {
  std::uint64_t total = 0;
  for (const VertexId u : set) total += degree(u);
  return total;
}

std::uint64_t Graph::fingerprint() const {
  const std::uint64_t cached =
      fingerprint_.value.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  // The CSR pair (offsets, adjacency) is the canonical form of the graph,
  // so mixing both arrays position-wise pins the structure exactly.
  std::uint64_t h = rng::mix64(0xC0BBA6F1u ^ num_vertices());
  for (std::size_t i = 0; i < offsets_.size(); ++i)
    h = rng::mix64(h ^ (offsets_[i] + 0xBF58476D1CE4E5B9ull * (i + 1)));
  for (std::size_t i = 0; i < adj_.size(); ++i)
    h = rng::mix64(h ^ (adj_[i] + 0x9E3779B97F4A7C15ull * (i + 1)));
  fingerprint_.value.store(h, std::memory_order_relaxed);
  return h;
}

std::vector<std::pair<VertexId, VertexId>> Graph::edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u)
    for (const VertexId v : neighbors(u))
      if (u < v) out.emplace_back(u, v);
  return out;
}

}  // namespace cobra::graph
