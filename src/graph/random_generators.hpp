// Random graph families.
//
// The paper's regular-graph theorems are exercised on random r-regular
// graphs (which are expanders w.h.p. for r >= 3); the general-graph theorem
// additionally uses Erdős–Rényi, small-world and preferential-attachment
// graphs as heterogeneous-degree stress cases.
//
// All generators take an explicit Rng so experiments control determinism.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::graph {

/// Erdős–Rényi G(n, p) via geometric skip sampling: O(n + m) expected time.
/// Not guaranteed connected; see largest_component / ensure options below.
Graph erdos_renyi_gnp(VertexId n, double p, rng::Rng& rng);

/// Uniform-ish random r-regular simple graph via the pairing (configuration)
/// model with rejection, falling back to local edge-switch repairs after
/// `max_restarts` collisions (repairs introduce negligible bias for the
/// sizes used here; see DESIGN.md). Requires n*r even, 1 <= r < n.
Graph random_regular(VertexId n, std::uint32_t r, rng::Rng& rng,
                     std::uint32_t max_restarts = 64);

/// Watts–Strogatz small world: ring lattice with k/2 neighbours each side
/// (k even), each edge's far endpoint rewired with probability beta
/// (avoiding self-loops/duplicates). beta = 0 is the circulant lattice.
Graph watts_strogatz(VertexId n, std::uint32_t k, double beta, rng::Rng& rng);

/// Barabási–Albert preferential attachment: starts from a star on
/// `edges_per_vertex` + 1 vertices, then each new vertex attaches
/// `edges_per_vertex` edges to distinct existing vertices with probability
/// proportional to degree. Always connected.
Graph barabasi_albert(VertexId n, std::uint32_t edges_per_vertex,
                      rng::Rng& rng);

/// Connected supercritical ER graph: G(n, c·ln(n)/n) resampled (new stream)
/// until connected. c > 1 makes success probability -> 1, so the loop is
/// short; the resample count is capped and checked.
Graph connected_erdos_renyi(VertexId n, double c, rng::Rng& rng,
                            std::uint32_t max_attempts = 64);

/// Random connected r-regular graph: random_regular resampled until
/// connected (for r >= 3 the first sample is connected w.h.p.).
Graph connected_random_regular(VertexId n, std::uint32_t r, rng::Rng& rng,
                               std::uint32_t max_attempts = 64);

}  // namespace cobra::graph
