// Immutable undirected simple graph in compressed-sparse-row form.
//
// This is the substrate every process in the library runs on. Design goals:
//   * O(1) neighbour spans (the simulators' only hot operation is
//     "pick a uniform random neighbour of u"),
//   * cache-friendly contiguous adjacency,
//   * cheap degree queries and degree statistics,
//   * vertices are dense ids 0..n-1 (std::uint32_t: 4 G vertices is far
//     beyond anything a cover-time simulation can touch).
//
// Graphs are built with graph::GraphBuilder (src/graph/builder.hpp) or the
// generator functions (src/graph/generators.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace cobra::graph {

using VertexId = std::uint32_t;

class Graph {
 public:
  Graph() = default;

  /// Builds from an explicit adjacency structure. `offsets` has n+1 entries;
  /// `adj` holds each undirected edge twice (u in v's list and vice versa),
  /// with every list sorted ascending. Validated in O(n + m).
  Graph(std::vector<std::uint64_t> offsets, std::vector<VertexId> adj,
        std::string name = "");

  /// Number of vertices n.
  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0
                            : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges m.
  [[nodiscard]] std::uint64_t num_edges() const { return adj_.size() / 2; }

  /// Sum of degrees = 2m.
  [[nodiscard]] std::uint64_t degree_sum() const { return adj_.size(); }

  [[nodiscard]] std::uint32_t degree(VertexId u) const {
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Sorted neighbours of u.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId u) const {
    return {adj_.data() + offsets_[u],
            adj_.data() + offsets_[u + 1]};
  }

  /// The j-th neighbour of u (0-based); j < degree(u).
  [[nodiscard]] VertexId neighbor(VertexId u, std::uint32_t j) const {
    return adj_[offsets_[u] + j];
  }

  /// Binary search in u's sorted list; O(log degree(u)).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  [[nodiscard]] std::uint32_t max_degree() const { return max_degree_; }
  [[nodiscard]] std::uint32_t min_degree() const { return min_degree_; }

  /// True iff every vertex has the same degree.
  [[nodiscard]] bool is_regular() const { return max_degree_ == min_degree_; }

  /// Degree of a vertex set: d(S) = sum of deg(u) for u in S.
  [[nodiscard]] std::uint64_t set_degree(std::span<const VertexId> set) const;

  /// Human-readable family label (e.g. "hypercube(10)"), set by generators.
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// All undirected edges as (u, v) with u < v, in CSR order.
  [[nodiscard]] std::vector<std::pair<VertexId, VertexId>> edges() const;

  /// A 64-bit structural digest of (n, adjacency), mixed via SplitMix64
  /// over the CSR arrays. Two graphs with the same fingerprint are, for
  /// caching purposes, the same graph regardless of how they were
  /// generated — this keys the spectral cache so sharded cells that
  /// rebuild an identical graph (same generator, seed and scale) reuse
  /// one Lanczos solve. Computed once on first use, O(n + m); not part of
  /// equality semantics.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<VertexId> adj_;
  std::uint32_t max_degree_ = 0;
  std::uint32_t min_degree_ = 0;
  std::string name_;

  // Lazy fingerprint cache; 0 = not yet computed (the mix never yields 0
  // for a non-empty graph input in practice, and a recompute is benign).
  // Atomic (relaxed) so concurrent compute_lambda_cached callers sharing
  // one graph race benignly instead of undefined-behaviourally; the
  // wrapper restores copyability (copies carry the cached value, graphs
  // are returned by value from every generator).
  struct FingerprintCache {
    std::atomic<std::uint64_t> value{0};
    FingerprintCache() = default;
    FingerprintCache(const FingerprintCache& other)
        : value(other.value.load(std::memory_order_relaxed)) {}
    FingerprintCache& operator=(const FingerprintCache& other) {
      value.store(other.value.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      return *this;
    }
  };
  mutable FingerprintCache fingerprint_;
};

}  // namespace cobra::graph
