// Immutable undirected simple graph in compressed-sparse-row form.
//
// This is the substrate every process in the library runs on. Design goals:
//   * O(1) neighbour spans (the simulators' only hot operation is
//     "pick a uniform random neighbour of u"),
//   * cache-friendly contiguous adjacency,
//   * cheap degree queries and degree statistics,
//   * vertices are dense ids 0..n-1 (std::uint32_t: 4 G vertices is far
//     beyond anything a cover-time simulation can touch),
//   * storage-backend pluggability: the CSR arrays live in a
//     graph::CsrStorage backend — owned vectors (generators, builders) or
//     a read-only mmap of an on-disk `.cgr` file (graph/binary_io.hpp) —
//     and the hot accessors read through raw pointers either way, so the
//     backend choice is invisible to the simulators.
//
// Graphs are built with graph::GraphBuilder (src/graph/builder.hpp), the
// generator functions (src/graph/generators.hpp), or loaded from disk with
// graph::load_cgr_file / graph::build_graph_spec. Copies share the backend
// (the arrays are immutable), so passing Graphs by value is cheap.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/storage.hpp"

namespace cobra::graph {

/// Structural digest of a CSR pair: SplitMix64-mixed position-wise over
/// both arrays (the CSR pair is the graph's canonical form, so equal
/// digests mean equal structure for caching purposes). This exact mix is
/// what Graph::fingerprint() caches and what `.cgr` headers persist.
[[nodiscard]] std::uint64_t csr_fingerprint(
    std::span<const std::uint64_t> offsets, std::span<const VertexId> adj);

class Graph {
 public:
  Graph() = default;

  /// Builds from an explicit adjacency structure. `offsets` has n+1 entries;
  /// `adj` holds each undirected edge twice (u in v's list and vice versa),
  /// with every list sorted ascending. Validated in O(n + m).
  Graph(std::vector<std::uint64_t> offsets, std::vector<VertexId> adj,
        std::string name = "");

  /// Adopts pre-validated storage without the O(n + m) structural scan:
  /// the binary loader's path, where the `.cgr` writer already validated
  /// the structure at ingest and the header carries the degree stats and
  /// fingerprint. `fingerprint` primes the lazy cache (0 = recompute on
  /// first use). Callers must have verified offsets/adjacency extents.
  static Graph adopt(std::shared_ptr<const CsrStorage> storage,
                     std::string name, std::uint32_t min_degree,
                     std::uint32_t max_degree, std::uint64_t fingerprint);

  /// Number of vertices n.
  [[nodiscard]] VertexId num_vertices() const { return n_; }

  /// Number of undirected edges m.
  [[nodiscard]] std::uint64_t num_edges() const { return degree_sum_ / 2; }

  /// Sum of degrees = 2m.
  [[nodiscard]] std::uint64_t degree_sum() const { return degree_sum_; }

  [[nodiscard]] std::uint32_t degree(VertexId u) const {
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Sorted neighbours of u.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId u) const {
    return {adj_ + offsets_[u], adj_ + offsets_[u + 1]};
  }

  /// The j-th neighbour of u (0-based); j < degree(u).
  [[nodiscard]] VertexId neighbor(VertexId u, std::uint32_t j) const {
    return adj_[offsets_[u] + j];
  }

  /// Binary search in u's sorted list; O(log degree(u)).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  [[nodiscard]] std::uint32_t max_degree() const { return max_degree_; }
  [[nodiscard]] std::uint32_t min_degree() const { return min_degree_; }

  /// True iff every vertex has the same degree.
  [[nodiscard]] bool is_regular() const { return max_degree_ == min_degree_; }

  /// Degree of a vertex set: d(S) = sum of deg(u) for u in S.
  [[nodiscard]] std::uint64_t set_degree(std::span<const VertexId> set) const;

  /// Human-readable family label (e.g. "hypercube(10)"), set by generators.
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// All undirected edges as (u, v) with u < v, in CSR order.
  [[nodiscard]] std::vector<std::pair<VertexId, VertexId>> edges() const;

  /// A 64-bit structural digest of (n, adjacency) — csr_fingerprint over
  /// the CSR arrays. Two graphs with the same fingerprint are, for caching
  /// purposes, the same graph regardless of how they were generated — this
  /// keys the spectral and graph caches so sharded cells that rebuild an
  /// identical graph (same generator, seed and scale) reuse one solve.
  /// Computed once on first use, O(n + m); graphs loaded from `.cgr` trust
  /// the digest computed at ingest and stored in the header, so calling
  /// this on an mmap'd graph stays O(1). Not part of equality semantics.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// The n+1 CSR row offsets (backend-independent view).
  [[nodiscard]] std::span<const std::uint64_t> offsets() const {
    return {offsets_, offsets_ == nullptr ? 0 : static_cast<std::size_t>(n_) + 1};
  }

  /// The concatenated adjacency array (backend-independent view).
  [[nodiscard]] std::span<const VertexId> adjacency() const {
    return {adj_, degree_sum_};
  }

  /// Which backend holds the CSR arrays: "owned", "mmap", or "none" for a
  /// default-constructed graph.
  [[nodiscard]] std::string_view storage_backend() const {
    return storage_ == nullptr ? std::string_view("none")
                               : storage_->backend_name();
  }

 private:
  std::shared_ptr<const CsrStorage> storage_;
  // Raw views into storage_ (the simulators' hot path; kept in sync with
  // storage_ by the constructors and adopt()).
  const std::uint64_t* offsets_ = nullptr;
  const VertexId* adj_ = nullptr;
  VertexId n_ = 0;
  std::uint64_t degree_sum_ = 0;
  std::uint32_t max_degree_ = 0;
  std::uint32_t min_degree_ = 0;
  std::string name_;

  // Lazy fingerprint cache; 0 = not yet computed (the mix never yields 0
  // for a non-empty graph input in practice, and a recompute is benign).
  // Atomic (relaxed) so concurrent compute_lambda_cached callers sharing
  // one graph race benignly instead of undefined-behaviourally; the
  // wrapper restores copyability (copies carry the cached value, graphs
  // are returned by value from every generator).
  struct FingerprintCache {
    std::atomic<std::uint64_t> value{0};
    FingerprintCache() = default;
    FingerprintCache(const FingerprintCache& other)
        : value(other.value.load(std::memory_order_relaxed)) {}
    FingerprintCache& operator=(const FingerprintCache& other) {
      value.store(other.value.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      return *this;
    }
  };
  mutable FingerprintCache fingerprint_;
};

}  // namespace cobra::graph
