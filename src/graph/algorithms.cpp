#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace cobra::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId source) {
  const VertexId n = g.num_vertices();
  COBRA_CHECK(source < n);
  std::vector<std::uint32_t> dist(n, kUnreachable);
  std::vector<VertexId> frontier{source};
  dist[source] = 0;
  std::uint32_t level = 0;
  std::vector<VertexId> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const VertexId u : frontier)
      for (const VertexId v : g.neighbors(u))
        if (dist[v] == kUnreachable) {
          dist[v] = level;
          next.push_back(v);
        }
    frontier.swap(next);
  }
  return dist;
}

std::optional<std::uint32_t> eccentricity(const Graph& g, VertexId source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (const std::uint32_t d : dist) {
    if (d == kUnreachable) return std::nullopt;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return false;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(), [](std::uint32_t d) {
    return d == kUnreachable;
  });
}

std::uint32_t count_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<bool> seen(n, false);
  std::uint32_t components = 0;
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    ++components;
    seen[s] = true;
    stack.assign(1, s);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const VertexId v : g.neighbors(u))
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
        }
    }
  }
  return components;
}

bool is_bipartite(const Graph& g) {
  const VertexId n = g.num_vertices();
  // 0/1 colours; 2 = uncoloured.
  std::vector<std::uint8_t> colour(n, 2);
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (colour[s] != 2) continue;
    colour[s] = 0;
    stack.assign(1, s);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const VertexId v : g.neighbors(u)) {
        if (colour[v] == 2) {
          colour[v] = static_cast<std::uint8_t>(1 - colour[u]);
          stack.push_back(v);
        } else if (colour[v] == colour[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

std::optional<std::uint32_t> exact_diameter(const Graph& g,
                                            std::uint64_t work_limit) {
  const VertexId n = g.num_vertices();
  if (n == 0) return std::nullopt;
  const std::uint64_t work =
      static_cast<std::uint64_t>(n) * std::max<std::uint64_t>(g.degree_sum(), n);
  if (work > work_limit) return std::nullopt;
  std::uint32_t diameter = 0;
  for (VertexId s = 0; s < n; ++s) {
    const auto ecc = eccentricity(g, s);
    if (!ecc.has_value()) return std::nullopt;  // disconnected
    diameter = std::max(diameter, *ecc);
  }
  return diameter;
}

std::uint32_t pseudo_diameter(const Graph& g) {
  COBRA_CHECK(g.num_vertices() > 0);
  auto farthest = [&](VertexId s) {
    const auto dist = bfs_distances(g, s);
    VertexId arg = s;
    std::uint32_t best = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (dist[v] != kUnreachable && dist[v] > best) {
        best = dist[v];
        arg = v;
      }
    return std::make_pair(arg, best);
  };
  const auto [far1, d1] = farthest(0);
  const auto [far2, d2] = farthest(far1);
  (void)far2;
  return std::max(d1, d2);
}

DiameterEstimate diameter_estimate(const Graph& g) {
  if (const auto exact = exact_diameter(g); exact.has_value())
    return {*exact, true};
  return {pseudo_diameter(g), false};
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  s.min = g.min_degree();
  s.max = g.max_degree();
  s.mean = g.num_vertices() == 0
               ? 0.0
               : static_cast<double>(g.degree_sum()) /
                     static_cast<double>(g.num_vertices());
  return s;
}

}  // namespace cobra::graph
