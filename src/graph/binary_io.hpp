// Versioned on-disk binary CSR format (`.cgr`) with mmap loading.
//
// Layout (all integers little-endian, i.e. host order on every platform
// this library targets; the endianness tag rejects foreign files):
//
//   [0, 128)    CgrHeader — magic "CGRC", version, endianness tag, n,
//               degree_sum (= 2m), structural fingerprint, degree stats,
//               section table (byte offsets + lengths), total file size.
//   name        UTF-8 graph name, immediately after the header.
//   offsets     (n+1) x u64 CSR row offsets, 64-byte aligned.
//   adjacency   degree_sum x u32 neighbour ids, 64-byte aligned.
//
// The 64-byte section alignment means an mmap'd file can be used in place:
// load_cgr_file(kMapped) validates the header, spot-checks the CSR frame
// (offsets[0] == 0, offsets[n] == degree_sum) and adopts the mapping as
// the graph's storage backend — O(header) work, no allocation proportional
// to the graph. The fingerprint is computed once at ingest/write time and
// trusted from the header on load; pass `verify = true` (cobra graph info
// --verify) to rehash and deep-validate the structure instead.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace cobra::graph {

/// First four bytes of every `.cgr` file ("CGRC" in memory order).
inline constexpr std::uint32_t kCgrMagic = 0x43524743u;
/// Format version this build reads and writes.
inline constexpr std::uint32_t kCgrVersion = 1;
/// Byte-order probe: reads back as 0x01020304 only on a same-endian host.
inline constexpr std::uint32_t kCgrEndianTag = 0x01020304u;

/// Parsed `.cgr` header — everything `cobra graph info` prints without
/// touching the array sections.
struct CgrInfo {
  std::uint32_t version = 0;       ///< format version from the header
  std::uint64_t n = 0;             ///< number of vertices
  std::uint64_t degree_sum = 0;    ///< 2m (adjacency length)
  std::uint64_t fingerprint = 0;   ///< csr_fingerprint stored at ingest
  std::uint32_t min_degree = 0;    ///< smallest degree
  std::uint32_t max_degree = 0;    ///< largest degree
  std::string name;                ///< embedded graph name
  std::uint64_t file_bytes = 0;    ///< total file size the header claims
};

/// Writes `g` to `path` in `.cgr` form (creating parent directories),
/// including its fingerprint, so later loads skip the O(n + m) rehash.
/// Throws util::CheckError on I/O failure.
void write_cgr_file(const Graph& g, const std::string& path);

/// Reads and validates only the header — O(1) in the graph size. Throws
/// util::CheckError with the path and the specific defect (bad magic,
/// foreign endianness, unsupported version, truncation, inconsistent
/// section table) on anything malformed.
CgrInfo read_cgr_header(const std::string& path);

/// How load_cgr_file should back the graph.
enum class CgrLoadMode {
  kMapped,  ///< mmap the file; shared, lazily faulted, O(header) open
  kOwned,   ///< copy the sections into vectors (anonymous memory)
};

/// Opens a `.cgr` file as a Graph. Header validation and CSR frame spot
/// checks always run; `verify` additionally rehashes the arrays against
/// the stored fingerprint and deep-validates the structure (sortedness,
/// id ranges, no self-loops) — O(n + m), for `cobra graph info --verify`
/// and distrusted files.
Graph load_cgr_file(const std::string& path,
                    CgrLoadMode mode = CgrLoadMode::kMapped,
                    bool verify = false);

/// Streaming text-edge-list → `.cgr` converter: two passes over the input
/// file (degree count, then adjacency fill), so the edge list is never
/// materialized in memory — peak footprint is the CSR itself. The input
/// format is graph/io.hpp's ("n m" header, one "u v" per line, '#'
/// comments); malformed input is reported with the line number and the
/// offending token. `name` defaults to the input file's stem and becomes
/// the graph's registry label. Returns the written header.
CgrInfo ingest_edge_list_file(const std::string& edge_list_path,
                              const std::string& cgr_path,
                              const std::string& name = "");

}  // namespace cobra::graph
