#include "graph/storage.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/assert.hpp"

namespace cobra::graph {

MappedFile MappedFile::open_read(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  COBRA_CHECK_MSG(fd >= 0, "cannot open " << path << " for mapping: "
                                          << std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    COBRA_CHECK_MSG(false,
                    "cannot stat " << path << ": " << std::strerror(err));
  }
  MappedFile mapped;
  mapped.path_ = path;
  mapped.size_ = static_cast<std::size_t>(st.st_size);
  if (mapped.size_ > 0) {
    void* addr = ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      COBRA_CHECK_MSG(false,
                      "cannot mmap " << path << ": " << std::strerror(err));
    }
    mapped.data_ = static_cast<const std::byte*>(addr);
  }
  // The mapping holds its own reference to the file; the descriptor is
  // not needed once mmap succeeded.
  ::close(fd);
  return mapped;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr)
      ::munmap(const_cast<std::byte*>(data_), size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(const_cast<std::byte*>(data_), size_);
}

}  // namespace cobra::graph
