#include "graph/binary_io.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "graph/io.hpp"
#include "util/assert.hpp"
#include "util/metrics.hpp"

namespace cobra::graph {

namespace {

// On-disk header, 128 bytes. Plain old data: written and read with
// memcpy-like stream operations, never pointer-cast out of the mapping
// without alignment being guaranteed (the header starts at offset 0 of a
// page-aligned mapping).
struct CgrHeader {
  std::uint32_t magic = kCgrMagic;
  std::uint32_t version = kCgrVersion;
  std::uint32_t endian = kCgrEndianTag;
  std::uint32_t header_bytes = 128;
  std::uint64_t n = 0;
  std::uint64_t degree_sum = 0;
  std::uint64_t fingerprint = 0;
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  std::uint64_t name_offset = 0;
  std::uint64_t name_bytes = 0;
  std::uint64_t offsets_offset = 0;
  std::uint64_t offsets_bytes = 0;
  std::uint64_t adj_offset = 0;
  std::uint64_t adj_bytes = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t reserved[3] = {0, 0, 0};
};
static_assert(sizeof(CgrHeader) == 128, ".cgr header must stay 128 bytes");

constexpr std::uint64_t kSectionAlign = 64;

std::uint64_t align_up(std::uint64_t value) {
  return (value + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

std::uint32_t byte_swap32(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) |
         (v << 24);
}

// Lays out the section table for a graph of the given shape. The returned
// header still needs degree stats and the fingerprint filled in.
CgrHeader layout_header(std::uint64_t n, std::uint64_t degree_sum,
                        std::size_t name_bytes) {
  CgrHeader h;
  h.n = n;
  h.degree_sum = degree_sum;
  h.name_offset = sizeof(CgrHeader);
  h.name_bytes = name_bytes;
  h.offsets_offset = align_up(h.name_offset + h.name_bytes);
  h.offsets_bytes = (n + 1) * sizeof(std::uint64_t);
  h.adj_offset = align_up(h.offsets_offset + h.offsets_bytes);
  h.adj_bytes = degree_sum * sizeof(VertexId);
  h.file_bytes = h.adj_offset + h.adj_bytes;
  return h;
}

void write_padding(std::ostream& os, std::uint64_t from, std::uint64_t to) {
  static const char zeros[kSectionAlign] = {};
  COBRA_CHECK(to >= from && to - from < kSectionAlign);
  os.write(zeros, static_cast<std::streamsize>(to - from));
}

// Full header validation against the actual file size. Every rejection
// names the path and says what to do about it.
void validate_header(const CgrHeader& h, const std::string& path,
                     std::uint64_t actual_bytes) {
  if (h.magic != kCgrMagic) {
    COBRA_CHECK_MSG(byte_swap32(h.magic) != kCgrMagic,
                    path << ": .cgr endianness mismatch (file written on "
                         << "an opposite-endian host; re-run `cobra graph "
                         << "ingest` on this machine)");
    COBRA_CHECK_MSG(false, path << ": not a .cgr file (bad magic "
                                << h.magic << ")");
  }
  COBRA_CHECK_MSG(h.endian == kCgrEndianTag,
                  path << ": .cgr endianness mismatch (file written on an "
                       << "opposite-endian host; re-run `cobra graph "
                       << "ingest` on this machine)");
  COBRA_CHECK_MSG(h.version == kCgrVersion,
                  path << ": unsupported .cgr version " << h.version
                       << " (this build reads version " << kCgrVersion
                       << "; re-ingest the source graph)");
  COBRA_CHECK_MSG(h.header_bytes == sizeof(CgrHeader),
                  path << ": corrupt .cgr header (header_bytes "
                       << h.header_bytes << ", expected "
                       << sizeof(CgrHeader) << ")");
  COBRA_CHECK_MSG(h.n >= 1 && h.n <= 0xFFFFFFFFull - 1,
                  path << ": corrupt .cgr header (vertex count " << h.n
                       << " out of range)");
  COBRA_CHECK_MSG(h.degree_sum % 2 == 0,
                  path << ": corrupt .cgr header (odd degree sum "
                       << h.degree_sum << ")");
  const CgrHeader expect = layout_header(h.n, h.degree_sum, h.name_bytes);
  COBRA_CHECK_MSG(h.name_offset == expect.name_offset &&
                      h.offsets_offset == expect.offsets_offset &&
                      h.offsets_bytes == expect.offsets_bytes &&
                      h.adj_offset == expect.adj_offset &&
                      h.adj_bytes == expect.adj_bytes &&
                      h.file_bytes == expect.file_bytes,
                  path << ": corrupt .cgr header (section table does not "
                       << "match n = " << h.n << ", degree_sum = "
                       << h.degree_sum << ")");
  COBRA_CHECK_MSG(actual_bytes == h.file_bytes,
                  path << ": truncated or padded .cgr (header claims "
                       << h.file_bytes << " bytes, file has "
                       << actual_bytes << "); re-ingest or re-copy it");
}

CgrHeader header_from_bytes(const std::byte* data, std::size_t size,
                            const std::string& path) {
  COBRA_CHECK_MSG(size >= sizeof(CgrHeader),
                  path << ": truncated .cgr (file is " << size
                       << " bytes, the header alone needs "
                       << sizeof(CgrHeader) << ")");
  CgrHeader h;
  std::memcpy(&h, data, sizeof(CgrHeader));
  return h;
}

std::string name_from_bytes(const std::byte* data, const CgrHeader& h) {
  return std::string(reinterpret_cast<const char*>(data + h.name_offset),
                     h.name_bytes);
}

CgrInfo info_from_header(const CgrHeader& h, std::string name) {
  CgrInfo info;
  info.version = h.version;
  info.n = h.n;
  info.degree_sum = h.degree_sum;
  info.fingerprint = h.fingerprint;
  info.min_degree = h.min_degree;
  info.max_degree = h.max_degree;
  info.name = std::move(name);
  info.file_bytes = h.file_bytes;
  return info;
}

// O(n + m) structural validation of a loaded CSR (verify mode): the same
// invariants the owned Graph constructor enforces, with path context.
void deep_validate(std::span<const std::uint64_t> offsets,
                   std::span<const VertexId> adj, const std::string& path) {
  const auto n = static_cast<VertexId>(offsets.size() - 1);
  for (VertexId u = 0; u < n; ++u) {
    COBRA_CHECK_MSG(offsets[u] <= offsets[u + 1] &&
                        offsets[u + 1] <= adj.size(),
                    path << ": corrupt .cgr (offsets not monotone at "
                         << "vertex " << u << ")");
    for (std::uint64_t j = offsets[u]; j < offsets[u + 1]; ++j) {
      COBRA_CHECK_MSG(adj[j] < n, path << ": corrupt .cgr (neighbour id "
                                       << adj[j] << " out of range at "
                                       << "vertex " << u << ")");
      COBRA_CHECK_MSG(adj[j] != u, path << ": corrupt .cgr (self-loop at "
                                        << "vertex " << u << ")");
      COBRA_CHECK_MSG(j == offsets[u] || adj[j - 1] < adj[j],
                      path << ": corrupt .cgr (unsorted or duplicate "
                           << "adjacency at vertex " << u << ")");
    }
  }
}

}  // namespace

void write_cgr_file(const Graph& g, const std::string& path) {
  COBRA_CHECK_MSG(g.num_vertices() >= 1,
                  "write_cgr_file: refusing to write an empty graph");
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  CgrHeader h = layout_header(g.num_vertices(), g.degree_sum(),
                              g.name().size());
  h.fingerprint = g.fingerprint();
  h.min_degree = g.min_degree();
  h.max_degree = g.max_degree();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  COBRA_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(reinterpret_cast<const char*>(&h),
            static_cast<std::streamsize>(sizeof(h)));
  out.write(g.name().data(),
            static_cast<std::streamsize>(g.name().size()));
  write_padding(out, h.name_offset + h.name_bytes, h.offsets_offset);
  const auto offsets = g.offsets();
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(h.offsets_bytes));
  write_padding(out, h.offsets_offset + h.offsets_bytes, h.adj_offset);
  const auto adj = g.adjacency();
  out.write(reinterpret_cast<const char*>(adj.data()),
            static_cast<std::streamsize>(h.adj_bytes));
  out.flush();
  COBRA_CHECK_MSG(out.good(), "write failed for " << path);
}

CgrInfo read_cgr_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  COBRA_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  in.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  std::byte raw[sizeof(CgrHeader)] = {};
  in.read(reinterpret_cast<char*>(raw),
          static_cast<std::streamsize>(
              std::min<std::uint64_t>(file_bytes, sizeof(CgrHeader))));
  const CgrHeader h = header_from_bytes(
      raw, static_cast<std::size_t>(file_bytes), path);
  validate_header(h, path, file_bytes);
  std::string name(h.name_bytes, '\0');
  in.seekg(static_cast<std::streamoff>(h.name_offset));
  in.read(name.data(), static_cast<std::streamsize>(h.name_bytes));
  COBRA_CHECK_MSG(in.good(), path << ": read failed inside the header");
  return info_from_header(h, std::move(name));
}

Graph load_cgr_file(const std::string& path, CgrLoadMode mode,
                    bool verify) {
  MappedFile file = MappedFile::open_read(path);
  if (util::metrics_collecting()) {
    util::MetricsRegistry& reg = util::MetricsRegistry::instance();
    static const util::MetricId opens = reg.counter("graph.mmap_opens");
    static const util::MetricId bytes = reg.counter("graph.mmap_bytes");
    reg.add(opens, 1);
    reg.add(bytes, file.size());
  }
  const CgrHeader h = header_from_bytes(file.data(), file.size(), path);
  validate_header(h, path, file.size());

  const auto* offsets_ptr = reinterpret_cast<const std::uint64_t*>(
      file.data() + h.offsets_offset);
  const auto* adj_ptr =
      reinterpret_cast<const VertexId*>(file.data() + h.adj_offset);
  const std::span<const std::uint64_t> offsets{
      offsets_ptr, static_cast<std::size_t>(h.n) + 1};
  const std::span<const VertexId> adj{
      adj_ptr, static_cast<std::size_t>(h.degree_sum)};

  // CSR frame spot checks: O(1), catch gross corruption without faulting
  // the whole file in. Everything deeper is `verify`'s job — the format
  // trusts its own ingest-time validation so opens stay O(header).
  COBRA_CHECK_MSG(offsets.front() == 0,
                  path << ": corrupt .cgr (offsets[0] != 0)");
  COBRA_CHECK_MSG(offsets.back() == h.degree_sum,
                  path << ": corrupt .cgr (offsets[n] "
                       << offsets.back() << " != degree_sum "
                       << h.degree_sum << ")");
  if (verify) {
    deep_validate(offsets, adj, path);
    const std::uint64_t rehash = csr_fingerprint(offsets, adj);
    COBRA_CHECK_MSG(rehash == h.fingerprint,
                    path << ": fingerprint mismatch (header "
                         << h.fingerprint << ", arrays hash to " << rehash
                         << ") — the file was modified after ingest");
  }

  const std::string name = name_from_bytes(file.data(), h);
  std::shared_ptr<const CsrStorage> storage;
  if (mode == CgrLoadMode::kMapped) {
    storage = std::make_shared<MappedCsrStorage>(std::move(file), offsets,
                                                 adj);
  } else {
    storage = std::make_shared<OwnedCsrStorage>(
        std::vector<std::uint64_t>(offsets.begin(), offsets.end()),
        std::vector<VertexId>(adj.begin(), adj.end()));
  }
  return Graph::adopt(std::move(storage), name, h.min_degree, h.max_degree,
                      h.fingerprint);
}

CgrInfo ingest_edge_list_file(const std::string& edge_list_path,
                              const std::string& cgr_path,
                              const std::string& name) {
  // Pass 1: degrees only. The edge list itself is never held in memory —
  // the two text passes build the CSR in place.
  std::ifstream pass1(edge_list_path);
  COBRA_CHECK_MSG(pass1.good(),
                  "cannot open " << edge_list_path << " for reading");
  std::vector<std::uint32_t> degree;
  const EdgeListHeader header = scan_edge_list(
      pass1, edge_list_path,
      [&](const EdgeListHeader& hd) {
        degree.assign(static_cast<std::size_t>(hd.n), 0);
      },
      [&](VertexId u, VertexId v) {
        ++degree[u];
        ++degree[v];
      });
  pass1.close();

  const auto n = static_cast<std::size_t>(header.n);
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u)
    offsets[u + 1] = offsets[u] + degree[u];

  // Pass 2: fill adjacency. `degree[u]` now counts the slots still free
  // at the *end* of u's range, so no extra cursor array is needed.
  std::vector<VertexId> adj(static_cast<std::size_t>(offsets[n]));
  std::ifstream pass2(edge_list_path);
  COBRA_CHECK_MSG(pass2.good(),
                  "cannot reopen " << edge_list_path << " for pass 2");
  scan_edge_list(
      pass2, edge_list_path, nullptr, [&](VertexId u, VertexId v) {
        adj[offsets[u + 1] - degree[u]] = v;
        adj[offsets[v + 1] - degree[v]] = u;
        --degree[u];
        --degree[v];
      });
  pass2.close();
  degree.clear();
  degree.shrink_to_fit();

  // Sort each list and give duplicate edges an actionable message before
  // the validating Graph constructor sees them.
  for (std::size_t u = 0; u < n; ++u) {
    const auto first = adj.begin() + static_cast<std::ptrdiff_t>(offsets[u]);
    const auto last =
        adj.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]);
    std::sort(first, last);
    const auto dup = std::adjacent_find(first, last);
    COBRA_CHECK_MSG(dup == last,
                    edge_list_path << ": duplicate edge {" << u << ", "
                                   << *dup << "} (each undirected edge "
                                   << "must appear once)");
  }

  std::string graph_name = name;
  if (graph_name.empty())
    graph_name = std::filesystem::path(edge_list_path).stem().string();
  const Graph g(std::move(offsets), std::move(adj), graph_name);
  write_cgr_file(g, cgr_path);
  return read_cgr_header(cgr_path);
}

}  // namespace cobra::graph
