#include "graph/product.hpp"

#include <sstream>

#include "graph/builder.hpp"
#include "util/assert.hpp"

namespace cobra::graph {

namespace {

void check_product_size(const Graph& g1, const Graph& g2) {
  COBRA_CHECK(g1.num_vertices() >= 1 && g2.num_vertices() >= 1);
  const std::uint64_t n =
      static_cast<std::uint64_t>(g1.num_vertices()) * g2.num_vertices();
  COBRA_CHECK_MSG(n <= 0xFFFFFFFFull, "product graph too large");
  COBRA_CHECK_MSG(n >= 2, "product graph needs at least two vertices");
}

}  // namespace

Graph cartesian_product(const Graph& g1, const Graph& g2) {
  check_product_size(g1, g2);
  const VertexId n1 = g1.num_vertices();
  const VertexId n2 = g2.num_vertices();
  GraphBuilder b(n1 * n2);
  b.reserve(static_cast<std::size_t>(g1.num_edges()) * n2 +
            static_cast<std::size_t>(g2.num_edges()) * n1);
  // Copies of G1 along each fixed u2.
  for (VertexId u2 = 0; u2 < n2; ++u2)
    for (VertexId u1 = 0; u1 < n1; ++u1)
      for (const VertexId v1 : g1.neighbors(u1))
        if (u1 < v1) b.add_edge(u1 + n1 * u2, v1 + n1 * u2);
  // Copies of G2 along each fixed u1.
  for (VertexId u1 = 0; u1 < n1; ++u1)
    for (VertexId u2 = 0; u2 < n2; ++u2)
      for (const VertexId v2 : g2.neighbors(u2))
        if (u2 < v2) b.add_edge(u1 + n1 * u2, u1 + n1 * v2);
  std::ostringstream name;
  name << "(" << g1.name() << " box " << g2.name() << ")";
  return std::move(b).build(name.str());
}

Graph cartesian_power(const Graph& g, std::uint32_t k) {
  COBRA_CHECK(k >= 1);
  Graph result = g;
  for (std::uint32_t i = 1; i < k; ++i)
    result = cartesian_product(result, g);
  std::ostringstream name;
  name << g.name() << "^box" << k;
  result.set_name(name.str());
  return result;
}

Graph tensor_product(const Graph& g1, const Graph& g2) {
  check_product_size(g1, g2);
  const VertexId n1 = g1.num_vertices();
  GraphBuilder b(n1 * g2.num_vertices(), DuplicatePolicy::kDeduplicate);
  for (VertexId u1 = 0; u1 < n1; ++u1)
    for (const VertexId v1 : g1.neighbors(u1))
      for (VertexId u2 = 0; u2 < g2.num_vertices(); ++u2)
        for (const VertexId v2 : g2.neighbors(u2)) {
          const VertexId a = u1 + n1 * u2;
          const VertexId c = v1 + n1 * v2;
          if (a < c) b.add_edge(a, c);
        }
  std::ostringstream name;
  name << "(" << g1.name() << " tensor " << g2.name() << ")";
  return std::move(b).build(name.str());
}

double cartesian_walk_eigenvalue(double mu1, std::uint32_t r1, double mu2,
                                 std::uint32_t r2) {
  COBRA_CHECK(r1 >= 1 && r2 >= 1);
  const double d1 = static_cast<double>(r1);
  const double d2 = static_cast<double>(r2);
  return (d1 * mu1 + d2 * mu2) / (d1 + d2);
}

double tensor_walk_eigenvalue(double mu1, double mu2) { return mu1 * mu2; }

}  // namespace cobra::graph
