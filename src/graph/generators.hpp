// Deterministic graph families.
//
// Every family named in the paper (complete graphs, r-regular structures,
// D-dimensional grids/tori, hypercubes) plus the classic stress families for
// the general-graph bound of Theorem 1.1 (paths, cycles, stars, trees,
// barbells, lollipops, complete bipartite, circulants, Petersen).
// Generators return connected simple graphs with a descriptive name().
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace cobra::graph {

/// K_n, n >= 2.
Graph complete(VertexId n);

/// Cycle C_n, n >= 3.
Graph cycle(VertexId n);

/// Path P_n (n vertices, n-1 edges), n >= 2.
Graph path(VertexId n);

/// Star K_{1,n-1}: centre 0, n >= 2.
Graph star(VertexId n);

/// Complete bipartite K_{a,b}; sides are [0,a) and [a,a+b).
Graph complete_bipartite(VertexId a, VertexId b);

/// d-dimensional hypercube Q_d: n = 2^d vertices, ids are bit strings,
/// edges flip one bit. Regular of degree d; bipartite.
Graph hypercube(std::uint32_t d);

/// Axis-aligned grid with side lengths `dims` (all >= 1, product >= 2).
/// `torus` wraps every axis (paper's "D-dimensional grid" is the torus,
/// which is 2D-regular when every side > 2).
Graph grid(const std::vector<VertexId>& dims, bool torus);

/// Convenience: D-dimensional torus with equal side length.
Graph torus_power(VertexId side, std::uint32_t dimension);

/// Complete binary tree on n vertices (heap indexing), n >= 2.
Graph binary_tree(VertexId n);

/// Complete k-ary tree on n vertices, k >= 2, n >= 2.
Graph kary_tree(VertexId n, std::uint32_t k);

/// Two cliques K_k joined by a path with `bridge_edges` >= 1 edges.
/// The classic worst case family for random-walk cover times.
Graph barbell(VertexId k, VertexId bridge_edges = 1);

/// Clique K_k with a path of `tail` extra vertices attached ("lollipop").
Graph lollipop(VertexId k, VertexId tail);

/// Circulant graph C_n(offsets): i ~ i +- s (mod n) for each offset s.
/// Offsets must be in [1, n/2]. Regular; connected iff gcd(offsets, n) = 1
/// in the generated-subgroup sense (caller's responsibility; checked by
/// tests for families we use).
Graph circulant(VertexId n, const std::vector<VertexId>& offsets);

/// The Petersen graph (n = 10, 3-regular, lambda = 2/3 for A/r... known
/// adjacency spectrum {3, 1^5, (-2)^4}).
Graph petersen();

}  // namespace cobra::graph
