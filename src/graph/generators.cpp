#include "graph/generators.hpp"

#include <numeric>
#include <sstream>

#include "graph/builder.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace cobra::graph {

Graph complete(VertexId n) {
  COBRA_CHECK(n >= 2);
  GraphBuilder b(n);
  b.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return std::move(b).build("complete(" + std::to_string(n) + ")");
}

Graph cycle(VertexId n) {
  COBRA_CHECK(n >= 3);
  GraphBuilder b(n);
  b.reserve(n);
  for (VertexId u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1);
  b.add_edge(n - 1, 0);
  return std::move(b).build("cycle(" + std::to_string(n) + ")");
}

Graph path(VertexId n) {
  COBRA_CHECK(n >= 2);
  GraphBuilder b(n);
  b.reserve(n - 1);
  for (VertexId u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1);
  return std::move(b).build("path(" + std::to_string(n) + ")");
}

Graph star(VertexId n) {
  COBRA_CHECK(n >= 2);
  GraphBuilder b(n);
  b.reserve(n - 1);
  for (VertexId v = 1; v < n; ++v) b.add_edge(0, v);
  return std::move(b).build("star(" + std::to_string(n) + ")");
}

Graph complete_bipartite(VertexId a, VertexId b_side) {
  COBRA_CHECK(a >= 1 && b_side >= 1 && a + b_side >= 2);
  GraphBuilder b(a + b_side);
  b.reserve(static_cast<std::size_t>(a) * b_side);
  for (VertexId u = 0; u < a; ++u)
    for (VertexId v = 0; v < b_side; ++v) b.add_edge(u, a + v);
  std::ostringstream name;
  name << "complete_bipartite(" << a << "," << b_side << ")";
  return std::move(b).build(name.str());
}

Graph hypercube(std::uint32_t d) {
  COBRA_CHECK(d >= 1 && d < 31);
  const VertexId n = static_cast<VertexId>(1u) << d;
  GraphBuilder b(n);
  b.reserve(static_cast<std::size_t>(n) * d / 2);
  for (VertexId u = 0; u < n; ++u)
    for (std::uint32_t bit = 0; bit < d; ++bit) {
      const VertexId v = u ^ (VertexId{1} << bit);
      if (u < v) b.add_edge(u, v);
    }
  return std::move(b).build("hypercube(" + std::to_string(d) + ")");
}

Graph grid(const std::vector<VertexId>& dims, bool torus) {
  COBRA_CHECK(!dims.empty());
  std::uint64_t n64 = 1;
  for (const VertexId s : dims) {
    COBRA_CHECK(s >= 1);
    n64 *= s;
    COBRA_CHECK_MSG(n64 <= 0xFFFFFFFFull, "grid too large for 32-bit ids");
  }
  const auto n = static_cast<VertexId>(n64);
  COBRA_CHECK(n >= 2);

  // Mixed-radix index: vertex id = sum_k coord[k] * stride[k].
  std::vector<std::uint64_t> stride(dims.size());
  stride[0] = 1;
  for (std::size_t k = 1; k < dims.size(); ++k)
    stride[k] = stride[k - 1] * dims[k - 1];

  GraphBuilder b(n, DuplicatePolicy::kDeduplicate);
  std::vector<VertexId> coord(dims.size(), 0);
  for (VertexId u = 0; u < n; ++u) {
    for (std::size_t k = 0; k < dims.size(); ++k) {
      if (dims[k] == 1) continue;
      if (coord[k] + 1 < dims[k]) {
        b.add_edge(u, u + static_cast<VertexId>(stride[k]));
      } else if (torus && dims[k] > 2) {
        // Wrap edge (side-1) -> 0; for side == 2 it would duplicate the
        // normal edge, hence the > 2 guard.
        b.add_edge(u, u - static_cast<VertexId>(stride[k] * (dims[k] - 1)));
      }
    }
    // Increment mixed-radix coordinate.
    for (std::size_t k = 0; k < dims.size(); ++k) {
      if (++coord[k] < dims[k]) break;
      coord[k] = 0;
    }
  }
  std::ostringstream name;
  name << (torus ? "torus(" : "grid(");
  for (std::size_t k = 0; k < dims.size(); ++k)
    name << (k ? "x" : "") << dims[k];
  name << ")";
  return std::move(b).build(name.str());
}

Graph torus_power(VertexId side, std::uint32_t dimension) {
  COBRA_CHECK(dimension >= 1);
  return grid(std::vector<VertexId>(dimension, side), /*torus=*/true);
}

Graph binary_tree(VertexId n) { return kary_tree(n, 2); }

Graph kary_tree(VertexId n, std::uint32_t k) {
  COBRA_CHECK(n >= 2 && k >= 2);
  GraphBuilder b(n);
  b.reserve(n - 1);
  for (VertexId v = 1; v < n; ++v) b.add_edge(v, (v - 1) / k);
  std::ostringstream name;
  name << (k == 2 ? "binary_tree(" : "kary_tree(");
  name << n;
  if (k != 2) name << ",k=" << k;
  name << ")";
  return std::move(b).build(name.str());
}

Graph barbell(VertexId k, VertexId bridge_edges) {
  COBRA_CHECK(k >= 3 && bridge_edges >= 1);
  // Vertices: [0, k) left clique, [k, k + bridge_edges - 1) path interior,
  // [k + bridge_edges - 1, 2k + bridge_edges - 1) right clique.
  const VertexId interior = bridge_edges - 1;
  const VertexId n = 2 * k + interior;
  GraphBuilder b(n);
  for (VertexId u = 0; u < k; ++u)
    for (VertexId v = u + 1; v < k; ++v) b.add_edge(u, v);
  const VertexId right0 = k + interior;
  for (VertexId u = 0; u < k; ++u)
    for (VertexId v = u + 1; v < k; ++v) b.add_edge(right0 + u, right0 + v);
  // Bridge path from left clique vertex k-1 to right clique vertex right0.
  VertexId prev = k - 1;
  for (VertexId i = 0; i < interior; ++i) {
    b.add_edge(prev, k + i);
    prev = k + i;
  }
  b.add_edge(prev, right0);
  std::ostringstream name;
  name << "barbell(" << k << ",bridge=" << bridge_edges << ")";
  return std::move(b).build(name.str());
}

Graph lollipop(VertexId k, VertexId tail) {
  COBRA_CHECK(k >= 3 && tail >= 1);
  const VertexId n = k + tail;
  GraphBuilder b(n);
  for (VertexId u = 0; u < k; ++u)
    for (VertexId v = u + 1; v < k; ++v) b.add_edge(u, v);
  VertexId prev = k - 1;
  for (VertexId i = 0; i < tail; ++i) {
    b.add_edge(prev, k + i);
    prev = k + i;
  }
  std::ostringstream name;
  name << "lollipop(" << k << ",tail=" << tail << ")";
  return std::move(b).build(name.str());
}

Graph circulant(VertexId n, const std::vector<VertexId>& offsets) {
  COBRA_CHECK(n >= 3);
  COBRA_CHECK(!offsets.empty());
  GraphBuilder b(n, DuplicatePolicy::kDeduplicate);
  for (const VertexId s : offsets) {
    COBRA_CHECK_MSG(s >= 1 && s <= n / 2, "circulant offset out of range");
    for (VertexId u = 0; u < n; ++u)
      b.add_edge(u, static_cast<VertexId>((u + s) % n));
  }
  std::ostringstream name;
  name << "circulant(" << n << ";";
  for (std::size_t i = 0; i < offsets.size(); ++i)
    name << (i ? "," : "") << offsets[i];
  name << ")";
  return std::move(b).build(name.str());
}

Graph petersen() {
  GraphBuilder b(10);
  for (VertexId i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5);            // outer pentagon
    b.add_edge(i, i + 5);                  // spokes
    b.add_edge(i + 5, 5 + (i + 2) % 5);    // inner pentagram
  }
  return std::move(b).build("petersen");
}

}  // namespace cobra::graph
