// Graph specs: one-string descriptions of where a graph comes from, plus
// the per-process cache that makes resolving the same spec twice free.
//
// A spec is either a synthetic family, canonically named so the spec
// string doubles as the graph's label (and as the cell id in the runner):
//
//   complete_N        K_N                     complete_1024
//   cycle_N           C_N                     cycle_4096
//   path_N            P_N                     path_513
//   star_N            K_{1,N-1}               star_512
//   hypercube_D       Q_D (n = 2^D)           hypercube_10
//   torus_S_dD        D-dim torus, side S     torus_64_d2
//   regular_N_rR      connected random        regular_262144_r8
//                     r-regular (generator
//                     stream derived from
//                     (N, R) only, so the
//                     instance is stable
//                     across seeds/runs)
//   petersen          the Petersen graph
//
// or a file reference:
//
//   file:PATH         PATH ending in .cgr is mmap-loaded (O(header) open,
//                     pages shared between processes — see
//                     graph/binary_io.hpp); any other extension is parsed
//                     as a text edge list. The label is the name embedded
//                     at ingest, so a pre-baked synthetic family keeps its
//                     spec string as its label.
//
// shared_graph() resolves specs through a process-wide cache keyed by the
// spec string and deduplicated by Graph::fingerprint, so multi-cell runs
// and estimator replicates that name the same graph share one instance
// (and one alias table / spectrum via the fingerprint-keyed caches above).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace cobra::graph {

/// True when `spec` is a `file:PATH` reference (vs a synthetic family).
[[nodiscard]] bool is_file_spec(const std::string& spec);

/// Builds the spec's graph, uncached. Synthetic graphs are named with the
/// canonical spec string; file graphs keep their embedded/ingested name.
/// Throws util::CheckError on an unknown family, out-of-range parameter
/// or unreadable file.
[[nodiscard]] Graph build_graph_spec(const std::string& spec);

/// The spec's display label without building the graph: the spec string
/// itself for synthetic families, the embedded name for `file:` specs
/// (read from the `.cgr` header in O(1); the file stem for edge lists).
/// Cheap enough for cell enumeration.
[[nodiscard]] std::string graph_spec_label(const std::string& spec);

/// Resolves `spec` through the per-process cache: the same spec string
/// returns the same instance, and two specs that build structurally
/// identical graphs (equal fingerprints — e.g. `file:` of a pre-baked
/// family and the family itself) share one instance.
[[nodiscard]] std::shared_ptr<const Graph> shared_graph(
    const std::string& spec);

/// Cache effectiveness counters (tests, diagnostics).
struct GraphCacheStats {
  std::uint64_t hits = 0;    ///< spec already resolved
  std::uint64_t misses = 0;  ///< spec built (or loaded) fresh
  std::uint64_t fingerprint_dedups = 0;  ///< fresh build matched an
                                         ///< existing graph's fingerprint
};

/// Snapshot of the process-wide cache counters.
[[nodiscard]] GraphCacheStats graph_cache_stats();

/// Empties the cache and zeroes the counters (tests).
void clear_graph_cache();

/// Splits a comma-separated spec list (the COBRA_GRAPHS / --graphs
/// format), trimming whitespace and dropping empty entries.
[[nodiscard]] std::vector<std::string> split_graph_specs(
    const std::string& list);

}  // namespace cobra::graph
