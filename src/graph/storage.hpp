// Pluggable storage backends for the CSR arrays behind graph::Graph.
//
// A Graph is two arrays — (n+1) 64-bit offsets and degree_sum 32-bit
// neighbour ids — plus a handful of scalars. Where those arrays live is a
// backend decision:
//
//   * OwnedCsrStorage  — std::vectors in anonymous memory. What every
//     generator and GraphBuilder produces; zero-cost for existing callers.
//   * MappedCsrStorage — a read-only mmap of a `.cgr` file (see
//     graph/binary_io.hpp). Opening is O(header); pages fault in on first
//     touch and are shared copy-free between every process that maps the
//     same file — this is what lets k sweep workers on one host run a
//     multi-gigabyte graph without k copies.
//
// Graph holds one shared_ptr<const CsrStorage> and raw spans into it, so
// the hot accessors (neighbors/degree) cost exactly what the old
// vector-owning layout cost. Copies of a Graph share the backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cobra::graph {

using VertexId = std::uint32_t;

/// Immutable home of a graph's CSR arrays. Implementations guarantee the
/// spans stay valid and constant for the storage object's lifetime.
class CsrStorage {
 public:
  virtual ~CsrStorage() = default;

  /// The n+1 CSR row offsets (offsets()[n] == adjacency().size()).
  [[nodiscard]] virtual std::span<const std::uint64_t> offsets() const = 0;

  /// The concatenated sorted adjacency lists (each undirected edge twice).
  [[nodiscard]] virtual std::span<const VertexId> adjacency() const = 0;

  /// Backend label for diagnostics/tests: "owned" or "mmap".
  [[nodiscard]] virtual std::string_view backend_name() const = 0;
};

/// Vector-owning backend — the classic in-memory representation.
class OwnedCsrStorage final : public CsrStorage {
 public:
  OwnedCsrStorage(std::vector<std::uint64_t> offsets,
                  std::vector<VertexId> adjacency)
      : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {}

  [[nodiscard]] std::span<const std::uint64_t> offsets() const override {
    return offsets_;
  }
  [[nodiscard]] std::span<const VertexId> adjacency() const override {
    return adjacency_;
  }
  [[nodiscard]] std::string_view backend_name() const override {
    return "owned";
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<VertexId> adjacency_;
};

/// RAII read-only memory mapping of a whole file. Move-only; unmaps on
/// destruction. Throws util::CheckError when the file cannot be opened,
/// stat'ed or mapped (the message names the path and the OS error).
class MappedFile {
 public:
  /// Maps `path` read-only. Empty files are legal (data() == nullptr).
  static MappedFile open_read(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// First mapped byte; nullptr for an empty or default-constructed map.
  [[nodiscard]] const std::byte* data() const { return data_; }
  /// Mapped length in bytes.
  [[nodiscard]] std::size_t size() const { return size_; }
  /// The mapped path (diagnostics).
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

/// Backend over a mapped `.cgr` file: the offset/adjacency spans point
/// straight into the page cache. Constructed by graph::load_cgr_file after
/// header validation; keeps the mapping alive for the spans' lifetime.
class MappedCsrStorage final : public CsrStorage {
 public:
  MappedCsrStorage(MappedFile file, std::span<const std::uint64_t> offsets,
                   std::span<const VertexId> adjacency)
      : file_(std::move(file)), offsets_(offsets), adjacency_(adjacency) {}

  [[nodiscard]] std::span<const std::uint64_t> offsets() const override {
    return offsets_;
  }
  [[nodiscard]] std::span<const VertexId> adjacency() const override {
    return adjacency_;
  }
  [[nodiscard]] std::string_view backend_name() const override {
    return "mmap";
  }

 private:
  MappedFile file_;
  std::span<const std::uint64_t> offsets_;
  std::span<const VertexId> adjacency_;
};

}  // namespace cobra::graph
