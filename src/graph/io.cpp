#include "graph/io.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string_view>

#include "graph/builder.hpp"
#include "util/assert.hpp"

namespace cobra::graph {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << "# " << g.name() << '\n';
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (const VertexId v : g.neighbors(u))
      if (u < v) os << u << ' ' << v << '\n';
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::trunc);
  COBRA_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_edge_list(g, out);
  COBRA_CHECK_MSG(out.good(), "write failed for " << path);
}

namespace {

// Splits `line` into whitespace-separated tokens, parsing each as u64.
// On a bad token, reports it verbatim with its position.
struct LineTokens {
  std::uint64_t values[2] = {0, 0};
  int count = 0;  // tokens seen (stops counting at 3)
};

LineTokens parse_line(std::string_view line, const std::string& context,
                      std::uint64_t line_number) {
  LineTokens out;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t' ||
                                 line[pos] == '\r'))
      ++pos;
    if (pos >= line.size()) break;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != '\r')
      ++end;
    const std::string_view token = line.substr(pos, end - pos);
    if (out.count < 2) {
      std::uint64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      COBRA_CHECK_MSG(ec == std::errc() && ptr == token.data() + token.size(),
                      context << " line " << line_number << ": bad token '"
                              << token << "' (expected a non-negative "
                              << "integer)");
      out.values[out.count] = value;
    }
    ++out.count;
    pos = end;
  }
  return out;
}

}  // namespace

EdgeListHeader scan_edge_list(
    std::istream& is, const std::string& context,
    const std::function<void(const EdgeListHeader&)>& on_header,
    const std::function<void(VertexId, VertexId)>& edge) {
  EdgeListHeader header;
  bool have_header = false;
  std::uint64_t edges_seen = 0;
  std::uint64_t line_number = 0;
  std::string line;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const LineTokens tokens = parse_line(line, context, line_number);
    if (tokens.count == 0) continue;  // whitespace-only line
    COBRA_CHECK_MSG(tokens.count == 2,
                    context << " line " << line_number << ": expected two "
                            << "fields, got " << tokens.count << " in '"
                            << line << "'");
    if (!have_header) {
      header.n = tokens.values[0];
      header.m = tokens.values[1];
      COBRA_CHECK_MSG(header.n >= 1 && header.n <= 0xFFFFFFFFull,
                      context << " line " << line_number
                              << ": vertex count " << header.n
                              << " out of range [1, 2^32 - 1]");
      have_header = true;
      if (on_header) on_header(header);
      continue;
    }
    const std::uint64_t u = tokens.values[0];
    const std::uint64_t v = tokens.values[1];
    COBRA_CHECK_MSG(u < header.n && v < header.n,
                    context << " line " << line_number << ": endpoint "
                            << (u < header.n ? v : u)
                            << " out of range (n = " << header.n << ")");
    COBRA_CHECK_MSG(u != v, context << " line " << line_number
                                    << ": self-loop " << u << " " << v
                                    << " (simple graphs only)");
    edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    ++edges_seen;
  }
  COBRA_CHECK_MSG(have_header,
                  context << ": missing 'n m' header line");
  COBRA_CHECK_MSG(edges_seen == header.m,
                  context << ": header claims " << header.m
                          << " edges, found " << edges_seen);
  return header;
}

Graph read_edge_list(std::istream& is, const std::string& name) {
  std::optional<GraphBuilder> builder;
  scan_edge_list(
      is, name,
      [&](const EdgeListHeader& header) {
        builder.emplace(static_cast<VertexId>(header.n));
        builder->reserve(header.m);
      },
      [&](VertexId u, VertexId v) { builder->add_edge(u, v); });
  return std::move(*builder).build(name);
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  COBRA_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  return read_edge_list(in, std::filesystem::path(path).stem().string());
}

}  // namespace cobra::graph
