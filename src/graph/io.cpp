#include "graph/io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/builder.hpp"
#include "util/assert.hpp"

namespace cobra::graph {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << "# " << g.name() << '\n';
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (const VertexId v : g.neighbors(u))
      if (u < v) os << u << ' ' << v << '\n';
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::trunc);
  COBRA_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_edge_list(g, out);
  COBRA_CHECK_MSG(out.good(), "write failed for " << path);
}

Graph read_edge_list(std::istream& is, const std::string& name) {
  std::string line;
  std::uint64_t n = 0, m = 0;
  bool have_header = false;
  GraphBuilder* builder = nullptr;
  GraphBuilder storage(1);  // replaced after header parse
  std::uint64_t edges_seen = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (!have_header) {
      COBRA_CHECK_MSG(static_cast<bool>(ls >> n >> m),
                      "edge list: bad header line '" << line << "'");
      COBRA_CHECK_MSG(n >= 1 && n <= 0xFFFFFFFFull, "edge list: bad n");
      storage = GraphBuilder(static_cast<VertexId>(n));
      storage.reserve(m);
      builder = &storage;
      have_header = true;
      continue;
    }
    std::uint64_t u = 0, v = 0;
    COBRA_CHECK_MSG(static_cast<bool>(ls >> u >> v),
                    "edge list: bad edge line '" << line << "'");
    COBRA_CHECK_MSG(u < n && v < n, "edge list: endpoint out of range");
    builder->add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    ++edges_seen;
  }
  COBRA_CHECK_MSG(have_header, "edge list: missing header");
  COBRA_CHECK_MSG(edges_seen == m, "edge list: header claims "
                                       << m << " edges, found " << edges_seen);
  return std::move(storage).build(name);
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  COBRA_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  return read_edge_list(in, std::filesystem::path(path).stem().string());
}

}  // namespace cobra::graph
