#include "graph/builder.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cobra::graph {

GraphBuilder::GraphBuilder(VertexId num_vertices, DuplicatePolicy policy)
    : n_(num_vertices), policy_(policy) {}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  COBRA_CHECK_MSG(u < n_ && v < n_, "edge endpoint out of range");
  COBRA_CHECK_MSG(u != v, "self-loops are not allowed in simple graphs");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

void GraphBuilder::reserve(std::size_t num_edges) {
  edges_.reserve(num_edges);
}

Graph GraphBuilder::build(std::string name) && {
  std::sort(edges_.begin(), edges_.end());
  const auto first_dup = std::adjacent_find(edges_.begin(), edges_.end());
  if (first_dup != edges_.end()) {
    COBRA_CHECK_MSG(policy_ == DuplicatePolicy::kDeduplicate,
                    "duplicate edge {" << first_dup->first << ","
                                       << first_dup->second << "}");
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  }

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> adj(edges_.size() * 2);
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    adj[cursor[u]++] = v;
    adj[cursor[v]++] = u;
  }
  // Each u's slice was filled in increasing v order for the (u, v) half
  // (edges_ sorted lexicographically) but the (v, u) half arrives in u order
  // interleaved, so sort each list; lists are short relative to m.
  for (VertexId u = 0; u < n_; ++u)
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(offsets[u]),
              adj.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]));

  return Graph(std::move(offsets), std::move(adj), std::move(name));
}

}  // namespace cobra::graph
