// GraphBuilder: accumulates undirected edges, then produces a validated CSR
// Graph. Self-loops are rejected; parallel edges are either rejected or
// silently deduplicated depending on policy (generators that may emit the
// same edge twice, e.g. circulant offsets with s = n/2, use kDeduplicate).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace cobra::graph {

enum class DuplicatePolicy {
  kReject,       // duplicate edge is a logic error (default)
  kDeduplicate,  // keep one copy silently
};

class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices,
                        DuplicatePolicy policy = DuplicatePolicy::kReject);

  /// Adds undirected edge {u, v}; u != v, both < n.
  void add_edge(VertexId u, VertexId v);

  void reserve(std::size_t num_edges);

  [[nodiscard]] std::size_t num_edges_added() const { return edges_.size(); }

  /// Sorts, validates/dedups and emits the Graph. The builder is consumed.
  Graph build(std::string name = "") &&;

 private:
  VertexId n_;
  DuplicatePolicy policy_;
  std::vector<std::pair<VertexId, VertexId>> edges_;  // canonical u < v
};

}  // namespace cobra::graph
