// Plain-text edge-list I/O.
//
// Format: first line "n m", then one "u v" pair per line (0-based vertex
// ids, u != v, each undirected edge once). Lines starting with '#' are
// comments. This is the lingua franca for exchanging graphs with plotting
// scripts and external tools.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace cobra::graph {

void write_edge_list(const Graph& g, std::ostream& os);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Parses the format above. Throws util::CheckError on malformed input.
Graph read_edge_list(std::istream& is, const std::string& name = "loaded");
Graph read_edge_list_file(const std::string& path);

}  // namespace cobra::graph
