// Plain-text edge-list I/O.
//
// Format: first line "n m", then one "u v" pair per line (0-based vertex
// ids, u != v, each undirected edge once). Lines starting with '#' are
// comments. This is the lingua franca for exchanging graphs with plotting
// scripts and external tools; `cobra graph ingest` converts it to the
// binary `.cgr` form (graph/binary_io.hpp) for mmap loading.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace cobra::graph {

void write_edge_list(const Graph& g, std::ostream& os);
void write_edge_list_file(const Graph& g, const std::string& path);

/// The "n m" first line of an edge list.
struct EdgeListHeader {
  std::uint64_t n = 0;  ///< vertex count (1 <= n <= 2^32 - 1)
  std::uint64_t m = 0;  ///< undirected edge count the header claims
};

/// Streaming edge-list scanner shared by read_edge_list and the `.cgr`
/// ingest converter: reads `is` line by line, invokes `on_header` once
/// when the "n m" line is parsed (before any edge), then `edge(u, v)`
/// once per edge line, and returns the parsed header. Every malformed
/// line — bad token, wrong field count, out-of-range endpoint, self-loop,
/// edge count mismatch — throws util::CheckError naming `context` (path
/// or stream label), the 1-based line number and the offending token.
EdgeListHeader scan_edge_list(
    std::istream& is, const std::string& context,
    const std::function<void(const EdgeListHeader&)>& on_header,
    const std::function<void(VertexId, VertexId)>& edge);

/// Parses the format above into a Graph. Throws util::CheckError with
/// line-number context on malformed input.
Graph read_edge_list(std::istream& is, const std::string& name = "loaded");
Graph read_edge_list_file(const std::string& path);

}  // namespace cobra::graph
