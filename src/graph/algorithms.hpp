// Classic graph algorithms used by the experiment harness:
// connectivity, bipartiteness, BFS distances, diameter (exact and
// double-sweep lower bound) and degree statistics.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace cobra::graph {

/// BFS distances from `source`; unreachable vertices get kUnreachable.
inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;
std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId source);

/// Largest BFS distance from `source` (eccentricity); requires connected
/// component of source == V, otherwise returns nullopt.
std::optional<std::uint32_t> eccentricity(const Graph& g, VertexId source);

[[nodiscard]] bool is_connected(const Graph& g);

/// Number of connected components (n == 0 -> 0).
std::uint32_t count_components(const Graph& g);

/// Two-colourability test.
[[nodiscard]] bool is_bipartite(const Graph& g);

/// Exact diameter by all-source BFS. Cost O(n·m); refuses (returns nullopt)
/// when n·m exceeds `work_limit` or the graph is disconnected.
std::optional<std::uint32_t> exact_diameter(const Graph& g,
                                            std::uint64_t work_limit =
                                                std::uint64_t{1} << 33);

/// Double-sweep heuristic: runs BFS from a vertex, then from the farthest
/// vertex found. Returns a lower bound on the diameter (exact on trees).
std::uint32_t pseudo_diameter(const Graph& g);

/// Diameter used by experiments: exact when affordable, else double-sweep
/// (flagged via `exact`).
struct DiameterEstimate {
  std::uint32_t value = 0;
  bool exact = false;
};
DiameterEstimate diameter_estimate(const Graph& g);

struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0.0;
};
DegreeStats degree_stats(const Graph& g);

}  // namespace cobra::graph
