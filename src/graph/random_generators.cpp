#include "graph/random_generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/assert.hpp"

namespace cobra::graph {

Graph erdos_renyi_gnp(VertexId n, double p, rng::Rng& rng) {
  COBRA_CHECK(n >= 2);
  COBRA_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  std::ostringstream name;
  name << "gnp(" << n << ",p=" << p << ")";

  if (p <= 0.0) return std::move(b).build(name.str());
  if (p >= 1.0) return complete(n);

  // Enumerate pairs (u, v), u < v, as a flat index and jump geometrically:
  // between successive edges there are Geom(p)-distributed failures, so the
  // expected cost is O(n + m) instead of O(n^2).
  const double log1mp = std::log1p(-p);
  const std::uint64_t total =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  // Flat index k -> pair: row u covers (n-1-u) pairs starting at row_start.
  std::int64_t k = -1;
  VertexId u = 0;
  std::uint64_t row_start = 0;            // flat index of (u, u+1)
  std::uint64_t row_len = n - 1;          // pairs in row u
  while (true) {
    const double x = rng.uniform01();
    const double skip = std::floor(std::log1p(-x) / log1mp);
    // skip can exceed any integer range for tiny p; clamp via total.
    if (skip >= static_cast<double>(total)) break;
    k += static_cast<std::int64_t>(skip) + 1;
    const auto ku = static_cast<std::uint64_t>(k);
    if (ku >= total) break;
    while (ku >= row_start + row_len) {
      row_start += row_len;
      ++u;
      row_len = n - 1 - u;
    }
    const VertexId v = u + 1 + static_cast<VertexId>(ku - row_start);
    b.add_edge(u, v);
  }
  return std::move(b).build(name.str());
}

namespace {

/// One pairing-model attempt; returns edges or empty when a collision
/// (self-loop / parallel edge) occurs.
bool try_pairing(VertexId n, std::uint32_t r, rng::Rng& rng,
                 std::vector<std::pair<VertexId, VertexId>>& edges) {
  std::vector<VertexId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * r);
  for (VertexId v = 0; v < n; ++v)
    for (std::uint32_t i = 0; i < r; ++i) stubs.push_back(v);
  rng.shuffle(stubs.begin(), stubs.end());

  edges.clear();
  std::set<std::pair<VertexId, VertexId>> seen;
  for (std::size_t i = 0; i < stubs.size(); i += 2) {
    VertexId a = stubs[i], b = stubs[i + 1];
    if (a == b) return false;
    if (a > b) std::swap(a, b);
    if (!seen.emplace(a, b).second) return false;
    edges.emplace_back(a, b);
  }
  return true;
}

/// Pairing attempt that keeps collisions, then repairs them with random
/// edge switches: replace {(u,v) bad, (x,y) good} by {(u,x),(v,y)} when the
/// result is simple. Terminates quickly because collisions are O(r^2) in
/// expectation while good edges are ~ nr/2.
void pairing_with_repair(VertexId n, std::uint32_t r, rng::Rng& rng,
                         std::vector<std::pair<VertexId, VertexId>>& edges) {
  std::vector<VertexId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * r);
  for (VertexId v = 0; v < n; ++v)
    for (std::uint32_t i = 0; i < r; ++i) stubs.push_back(v);
  rng.shuffle(stubs.begin(), stubs.end());

  edges.clear();
  for (std::size_t i = 0; i < stubs.size(); i += 2)
    edges.emplace_back(stubs[i], stubs[i + 1]);

  auto canonical = [](std::pair<VertexId, VertexId> e) {
    if (e.first > e.second) std::swap(e.first, e.second);
    return e;
  };
  std::set<std::pair<VertexId, VertexId>> simple;
  std::vector<std::size_t> bad;
  std::vector<char> is_bad(edges.size(), 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto e = canonical(edges[i]);
    if (e.first == e.second || !simple.emplace(e).second) {
      bad.push_back(i);
      is_bad[i] = 1;
    }
  }

  std::uint64_t guard = 0;
  const std::uint64_t guard_limit =
      1000 + 200 * static_cast<std::uint64_t>(bad.size() + 1) *
                 static_cast<std::uint64_t>(r + 1);
  while (!bad.empty()) {
    COBRA_CHECK_MSG(++guard < guard_limit,
                    "random_regular repair failed to converge (n="
                        << n << ", r=" << r << ")");
    const std::size_t i = bad.back();
    const std::size_t j = static_cast<std::size_t>(rng.below(edges.size()));
    if (i == j) continue;
    // j must be a good edge: testing `simple` membership is NOT enough —
    // a duplicate bad edge's canonical form is in `simple` via its good
    // twin, and switching with it would strand that twin outside `simple`
    // (a later switch could then re-create the pair, leaving a duplicate
    // in the final edge list).
    if (is_bad[j]) continue;
    const auto ej = canonical(edges[j]);
    // Propose switch: (u,v),(x,y) -> (u,x),(v,y).
    const auto [u, v] = edges[i];
    const auto [x, y] = edges[j];
    const auto e1 = canonical({u, x});
    const auto e2 = canonical({v, y});
    if (e1.first == e1.second || e2.first == e2.second) continue;
    if (simple.count(e1) != 0 || simple.count(e2) != 0 || e1 == e2) continue;
    simple.erase(ej);
    simple.insert(e1);
    simple.insert(e2);
    edges[i] = e1;
    edges[j] = e2;
    is_bad[i] = 0;
    bad.pop_back();
  }
}

}  // namespace

Graph random_regular(VertexId n, std::uint32_t r, rng::Rng& rng,
                     std::uint32_t max_restarts) {
  COBRA_CHECK(n >= 2 && r >= 1 && r < n);
  COBRA_CHECK_MSG((static_cast<std::uint64_t>(n) * r) % 2 == 0,
                  "n*r must be even for an r-regular graph");
  std::ostringstream name;
  name << "random_regular(" << n << ",r=" << r << ")";

  std::vector<std::pair<VertexId, VertexId>> edges;
  // Rejection keeps exact uniformity over simple pairings; success
  // probability is roughly exp(-(r^2-1)/4), so give up early for large r.
  const std::uint32_t restarts = r <= 8 ? max_restarts : max_restarts / 8 + 1;
  for (std::uint32_t attempt = 0; attempt < restarts; ++attempt) {
    if (try_pairing(n, r, rng, edges)) {
      GraphBuilder b(n);
      for (const auto& [u, v] : edges) b.add_edge(u, v);
      return std::move(b).build(name.str());
    }
  }
  pairing_with_repair(n, r, rng, edges);
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return std::move(b).build(name.str());
}

Graph watts_strogatz(VertexId n, std::uint32_t k, double beta,
                     rng::Rng& rng) {
  COBRA_CHECK(n >= 4);
  COBRA_CHECK_MSG(k >= 2 && k % 2 == 0 && k < n,
                  "watts_strogatz needs even 2 <= k < n");
  COBRA_CHECK(beta >= 0.0 && beta <= 1.0);

  // Edge set as a sorted set for O(log) duplicate checks during rewiring.
  std::set<std::pair<VertexId, VertexId>> edge_set;
  auto canonical = [](VertexId a, VertexId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  for (VertexId u = 0; u < n; ++u)
    for (std::uint32_t s = 1; s <= k / 2; ++s)
      edge_set.insert(canonical(u, static_cast<VertexId>((u + s) % n)));

  // Rewire pass (lattice order, as in the original model).
  for (VertexId u = 0; u < n; ++u) {
    for (std::uint32_t s = 1; s <= k / 2; ++s) {
      const auto v = static_cast<VertexId>((u + s) % n);
      const auto e = canonical(u, v);
      if (edge_set.find(e) == edge_set.end()) continue;  // already rewired
      if (!rng.bernoulli(beta)) continue;
      // Try a handful of replacement endpoints; keep the edge on failure.
      for (int tries = 0; tries < 32; ++tries) {
        const auto w = static_cast<VertexId>(rng.below(n));
        if (w == u || w == v) continue;
        const auto f = canonical(u, w);
        if (edge_set.find(f) != edge_set.end()) continue;
        edge_set.erase(e);
        edge_set.insert(f);
        break;
      }
    }
  }

  GraphBuilder b(n);
  for (const auto& [x, y] : edge_set) b.add_edge(x, y);
  std::ostringstream name;
  name << "watts_strogatz(" << n << ",k=" << k << ",beta=" << beta << ")";
  return std::move(b).build(name.str());
}

Graph barabasi_albert(VertexId n, std::uint32_t edges_per_vertex,
                      rng::Rng& rng) {
  const std::uint32_t m = edges_per_vertex;
  COBRA_CHECK(m >= 1);
  COBRA_CHECK(n >= m + 2);

  GraphBuilder b(n);
  // Endpoint multiset for degree-proportional sampling.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(n) * m);

  // Seed: star on vertices 0..m (vertex m is the hub) keeps everything
  // connected from the start.
  for (VertexId v = 0; v < m; ++v) {
    b.add_edge(v, m);
    endpoints.push_back(v);
    endpoints.push_back(m);
  }

  std::vector<VertexId> targets;
  for (VertexId v = m + 1; v < n; ++v) {
    targets.clear();
    while (targets.size() < m) {
      const VertexId t =
          endpoints[static_cast<std::size_t>(rng.below(endpoints.size()))];
      if (std::find(targets.begin(), targets.end(), t) == targets.end())
        targets.push_back(t);
    }
    for (const VertexId t : targets) {
      b.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  std::ostringstream name;
  name << "barabasi_albert(" << n << ",m=" << m << ")";
  return std::move(b).build(name.str());
}

Graph connected_erdos_renyi(VertexId n, double c, rng::Rng& rng,
                            std::uint32_t max_attempts) {
  COBRA_CHECK(c > 1.0);
  const double p = std::min(1.0, c * std::log(static_cast<double>(n)) /
                                     static_cast<double>(n));
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    Graph g = erdos_renyi_gnp(n, p, rng);
    if (is_connected(g)) return g;
  }
  COBRA_CHECK_MSG(false, "connected_erdos_renyi: no connected sample in "
                             << max_attempts << " attempts (n=" << n
                             << ", c=" << c << ")");
  return Graph{};  // unreachable
}

Graph connected_random_regular(VertexId n, std::uint32_t r, rng::Rng& rng,
                               std::uint32_t max_attempts) {
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    Graph g = random_regular(n, r, rng);
    if (is_connected(g)) return g;
  }
  COBRA_CHECK_MSG(false, "connected_random_regular: no connected sample in "
                             << max_attempts << " attempts (n=" << n
                             << ", r=" << r << ")");
  return Graph{};  // unreachable
}

}  // namespace cobra::graph
