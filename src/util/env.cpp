#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <thread>

#include "util/assert.hpp"

namespace cobra::util {

namespace {
// CLI-provided values (runner/options) that shadow the environment. Plain
// statics: overrides are applied once at process startup, before any
// experiment code runs.
std::optional<double> scale_override;
std::optional<std::uint64_t> seed_override;
std::optional<int> threads_override;
std::optional<std::string> engine_override;
std::optional<std::string> graphs_override;
std::optional<std::string> metrics_override;
std::optional<int> kernel_threads_override;
}  // namespace

void set_scale_override(double value) {
  COBRA_CHECK_MSG(value > 0.0, "scale override must be positive");
  scale_override = value;
}

void set_seed_override(std::uint64_t value) { seed_override = value; }

void set_threads_override(int value) {
  threads_override = std::clamp(value, 1, 1024);
}

void set_engine_override(const std::string& value) {
  COBRA_CHECK_MSG(!value.empty(), "engine override must not be empty");
  engine_override = value;
}

void set_graphs_override(const std::string& value) {
  graphs_override = value;
}

void set_metrics_override(const std::string& value) {
  COBRA_CHECK_MSG(!value.empty(), "metrics override must not be empty");
  metrics_override = value;
}

void set_kernel_threads_override(int value) {
  kernel_threads_override = std::clamp(value, 1, 256);
}

void clear_env_overrides() {
  scale_override.reset();
  seed_override.reset();
  threads_override.reset();
  engine_override.reset();
  graphs_override.reset();
  metrics_override.reset();
  kernel_threads_override.reset();
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(value);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

double scale() {
  if (scale_override) return *scale_override;
  const double s = env_double("COBRA_SCALE", 1.0);
  return s > 0.0 ? s : 1.0;
}

std::int64_t scaled(std::int64_t base, std::int64_t min_value) {
  const double s = scale();
  const double v = static_cast<double>(base) * s;
  return std::max<std::int64_t>(min_value, static_cast<std::int64_t>(v));
}

int max_threads() {
  if (threads_override) return *threads_override;
  const auto hw = static_cast<std::int64_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  const std::int64_t cap = env_int("COBRA_THREADS", hw);
  return static_cast<int>(std::clamp<std::int64_t>(cap, 1, 1024));
}

std::uint64_t global_seed() {
  if (seed_override) return *seed_override;
  return static_cast<std::uint64_t>(env_int("COBRA_SEED", 20170724));
}

std::string engine() {
  if (engine_override) return *engine_override;
  return env_string("COBRA_ENGINE", "auto");
}

std::string graphs() {
  if (graphs_override) return *graphs_override;
  return env_string("COBRA_GRAPHS", "");
}

std::string metrics() {
  if (metrics_override) return *metrics_override;
  return env_string("COBRA_METRICS", "off");
}

int kernel_threads() {
  if (kernel_threads_override) return *kernel_threads_override;
  const std::int64_t lanes = env_int("COBRA_KERNEL_THREADS", 1);
  return static_cast<int>(std::clamp<std::int64_t>(lanes, 1, 256));
}

}  // namespace cobra::util
