#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace cobra::util {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(value);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

double scale() {
  const double s = env_double("COBRA_SCALE", 1.0);
  return s > 0.0 ? s : 1.0;
}

std::int64_t scaled(std::int64_t base, std::int64_t min_value) {
  const double s = scale();
  const double v = static_cast<double>(base) * s;
  return std::max<std::int64_t>(min_value, static_cast<std::int64_t>(v));
}

int max_threads() {
  const auto hw = static_cast<std::int64_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  const std::int64_t cap = env_int("COBRA_THREADS", hw);
  return static_cast<int>(std::clamp<std::int64_t>(cap, 1, 1024));
}

std::uint64_t global_seed() {
  return static_cast<std::uint64_t>(env_int("COBRA_SEED", 20170724));
}

}  // namespace cobra::util
