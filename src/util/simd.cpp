#include "util/simd.hpp"

#include <bit>

#if defined(__x86_64__) && defined(__GNUC__)
#define COBRA_SIMD_X86 1
#include <immintrin.h>
#else
#define COBRA_SIMD_X86 0
#endif

namespace cobra::util::simd {

namespace {

bool scalar_forced = false;

// --- scalar reference path (auto-vectorised by the compiler) -------------

std::uint64_t popcount_words_scalar(const std::uint64_t* words,
                                    std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(words[i]));
  return total;
}

void or_words_scalar(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void merge_visited_scalar(const std::uint64_t* next, std::uint64_t* visited,
                          std::size_t n, std::uint64_t* newly,
                          std::uint64_t* active) {
  std::uint64_t nw = 0, ac = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w = next[i];
    nw += static_cast<std::uint64_t>(std::popcount(w & ~visited[i]));
    ac += static_cast<std::uint64_t>(std::popcount(w));
    visited[i] |= w;
  }
  *newly += nw;
  *active += ac;
}

std::uint64_t or_count_new_scalar(const std::uint64_t* next,
                                  std::uint64_t* dst, std::size_t n) {
  std::uint64_t added = 0;
  for (std::size_t i = 0; i < n; ++i) {
    added += static_cast<std::uint64_t>(std::popcount(next[i] & ~dst[i]));
    dst[i] |= next[i];
  }
  return added;
}

#if COBRA_SIMD_X86

// --- AVX2 path -----------------------------------------------------------

/// Per-64-bit-lane popcount of a 256-bit vector: nibble-LUT (vpshufb) into
/// byte counts, folded to quadword counts with vpsadbw against zero.
__attribute__((target("avx2"))) inline __m256i popcount_epi64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline std::uint64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

__attribute__((target("avx2"))) std::uint64_t popcount_words_avx2(
    const std::uint64_t* words, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(v));
  }
  std::uint64_t total = hsum_epi64(acc);
  for (; i < n; ++i)
    total += static_cast<std::uint64_t>(std::popcount(words[i]));
  return total;
}

__attribute__((target("avx2"))) void or_words_avx2(std::uint64_t* dst,
                                                   const std::uint64_t* src,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) void merge_visited_avx2(
    const std::uint64_t* next, std::uint64_t* visited, std::size_t n,
    std::uint64_t* newly, std::uint64_t* active) {
  __m256i newly_acc = _mm256_setzero_si256();
  __m256i active_acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i nx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(next + i));
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(visited + i));
    newly_acc = _mm256_add_epi64(
        newly_acc, popcount_epi64(_mm256_andnot_si256(vi, nx)));
    active_acc = _mm256_add_epi64(active_acc, popcount_epi64(nx));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(visited + i),
                        _mm256_or_si256(vi, nx));
  }
  std::uint64_t nw = hsum_epi64(newly_acc);
  std::uint64_t ac = hsum_epi64(active_acc);
  for (; i < n; ++i) {
    const std::uint64_t w = next[i];
    nw += static_cast<std::uint64_t>(std::popcount(w & ~visited[i]));
    ac += static_cast<std::uint64_t>(std::popcount(w));
    visited[i] |= w;
  }
  *newly += nw;
  *active += ac;
}

__attribute__((target("avx2"))) std::uint64_t or_count_new_avx2(
    const std::uint64_t* next, std::uint64_t* dst, std::size_t n) {
  __m256i added_acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i nx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(next + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    added_acc = _mm256_add_epi64(added_acc,
                                 popcount_epi64(_mm256_andnot_si256(d, nx)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, nx));
  }
  std::uint64_t added = hsum_epi64(added_acc);
  for (; i < n; ++i) {
    added += static_cast<std::uint64_t>(std::popcount(next[i] & ~dst[i]));
    dst[i] |= next[i];
  }
  return added;
}

bool detect_avx2() { return __builtin_cpu_supports("avx2") != 0; }

#else

bool detect_avx2() { return false; }

#endif  // COBRA_SIMD_X86

bool use_avx2() {
  static const bool supported = detect_avx2();
  return supported && !scalar_forced;
}

}  // namespace

bool avx2_available() {
  // Capability introspection only: unaffected by force_scalar, which
  // redirects dispatch (use_avx2) without changing what the CPU can do.
  static const bool supported = detect_avx2();
  return supported;
}

void force_scalar(bool off) { scalar_forced = off; }

std::uint64_t popcount_words(const std::uint64_t* words, std::size_t n) {
#if COBRA_SIMD_X86
  if (use_avx2()) return popcount_words_avx2(words, n);
#endif
  return popcount_words_scalar(words, n);
}

void or_words(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
#if COBRA_SIMD_X86
  if (use_avx2()) return or_words_avx2(dst, src, n);
#endif
  or_words_scalar(dst, src, n);
}

void merge_visited_words(const std::uint64_t* next, std::uint64_t* visited,
                         std::size_t n, std::uint64_t* newly,
                         std::uint64_t* active) {
#if COBRA_SIMD_X86
  if (use_avx2())
    return merge_visited_avx2(next, visited, n, newly, active);
#endif
  merge_visited_scalar(next, visited, n, newly, active);
}

std::uint64_t or_count_new_words(const std::uint64_t* next,
                                 std::uint64_t* dst, std::size_t n) {
#if COBRA_SIMD_X86
  if (use_avx2()) return or_count_new_avx2(next, dst, n);
#endif
  return or_count_new_scalar(next, dst, n);
}

}  // namespace cobra::util::simd
