// Lightweight runtime checking macros.
//
// COBRA_CHECK is always on (benchmarks included): simulation code validates
// its inputs once per run, never in inner loops, so the cost is negligible.
// COBRA_DCHECK compiles away in release builds and may appear in hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cobra::util {

/// Thrown by COBRA_CHECK on failure. Carries file/line and the failed
/// expression so tests can assert on misuse without aborting the process.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace cobra::util

#define COBRA_CHECK(expr)                                                 \
  do {                                                                    \
    if (!(expr))                                                          \
      ::cobra::util::check_failed(#expr, __FILE__, __LINE__, "");         \
  } while (0)

#define COBRA_CHECK_MSG(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream cobra_check_os_;                                 \
      cobra_check_os_ << msg;                                             \
      ::cobra::util::check_failed(#expr, __FILE__, __LINE__,              \
                                  cobra_check_os_.str());                 \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define COBRA_DCHECK(expr) ((void)0)
#else
#define COBRA_DCHECK(expr) COBRA_CHECK(expr)
#endif
