#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace cobra::util {

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  COBRA_CHECK(!header_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  COBRA_CHECK_MSG(!rows_.empty(), "call row() before add()");
  COBRA_CHECK_MSG(rows_.back().size() < header_.size(),
                  "row has more cells than header columns");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int decimals) {
  return add(format_double(value, decimals));
}

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }

Table& Table::rule() {
  rules_.push_back(rows_.size());
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  const auto total = [&] {
    std::size_t t = 0;
    for (const std::size_t w : width) t += w + 3;
    return t > 1 ? t - 1 : t;
  }();
  const std::string rule_line(total, '-');

  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << std::string(width[c] - cell.size(), ' ') << cell;
      if (c + 1 < header_.size()) os << " | ";
    }
    os << '\n';
  };

  print_row(header_);
  os << rule_line << '\n';
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(rules_.begin(), rules_.end(), r) != rules_.end() && r != 0)
      os << rule_line << '\n';
    print_row(rows_[r]);
  }
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace cobra::util
