// Console table rendering for experiment output.
//
// Experiments print paper-style tables: a header row, aligned numeric
// columns, optional rule lines. Cells are stored as strings; numeric
// convenience overloads format with sensible defaults.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cobra::util {

/// Formats a double with `digits` significant-looking decimals, trimming
/// trailing zeros ("12.50" -> "12.5", "3.00" -> "3").
std::string format_double(double value, int decimals = 3);

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls append cells to it.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(double value, int decimals = 3);
  Table& add(std::int64_t value);
  Table& add(std::uint64_t value);
  Table& add(int value) { return add(static_cast<std::int64_t>(value)); }

  /// Inserts a horizontal rule before the next row.
  Table& rule();

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  /// Renders with single-space-padded, right-aligned columns.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> rules_;  // row indices preceded by a rule
};

}  // namespace cobra::util
