// Word-parallel primitives for the frontier kernel's dense hot loops:
// popcounts, OR/AND-NOT merges and the fused visited-merge, each with a
// portable scalar implementation and an AVX2 fast path.
//
// Dispatch is resolved once per process: on x86-64 the AVX2 kernels are
// compiled via per-function target attributes (no global -mavx2, so the
// binary still runs on pre-AVX2 machines) and selected at first use with
// __builtin_cpu_supports; everywhere else the scalar loops — which GCC
// auto-vectorises for the build target — are the only path. Both paths
// compute bit-identical results on identical inputs (asserted by
// tests/test_util_simd.cpp property tests), so SIMD selection can never
// perturb fixed-seed archives.
//
// AVX2 has no 64-bit popcount instruction; the vector kernels use the
// classic nibble-LUT popcount (one vpshufb per nibble half, vpsadbw to
// fold bytes into 64-bit lanes), which beats scalar popcntq once the
// merge also saves its load/store passes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cobra::util::simd {

/// True when the AVX2 kernels are compiled in and the CPU supports them
/// (introspection for tests/benches; callers never need to branch).
bool avx2_available();

/// Forces the scalar fallbacks for this process when `off` is true
/// (tests compare the two paths; never needed in production).
void force_scalar(bool off);

/// Sum of popcounts over words[0..n).
std::uint64_t popcount_words(const std::uint64_t* words, std::size_t n);

/// dst[i] |= src[i] for i in [0, n) — the lane-scratch merge.
void or_words(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);

/// The fused dense-commit pass over [0, n):
///   newly  += popcount(next[i] & ~visited[i])
///   active += popcount(next[i])
///   visited[i] |= next[i]
/// Returns nothing; the two counters accumulate into *newly / *active.
void merge_visited_words(const std::uint64_t* next, std::uint64_t* visited,
                         std::size_t n, std::uint64_t* newly,
                         std::uint64_t* active);

/// The dense-accumulate pass over [0, n):
///   added  += popcount(next[i] & ~dst[i]); dst[i] |= next[i]
/// Returns the added count.
std::uint64_t or_count_new_words(const std::uint64_t* next,
                                 std::uint64_t* dst, std::size_t n);

}  // namespace cobra::util::simd
