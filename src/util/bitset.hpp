// DynamicBitset: a fixed-capacity, runtime-sized bit vector tuned for the
// visited/infected-set bookkeeping in the process simulators.
//
// Differences from std::vector<bool>:
//   * word-level access (popcount, fast reset, union/intersection),
//   * set_and_test() for branch-free "first visit" detection,
//   * explicit 64-bit word storage so the compiler can vectorise.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace cobra::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  explicit DynamicBitset(std::size_t size, bool value = false)
      : size_(size), words_(word_count(size), value ? ~0ull : 0ull) {
    trim_tail();
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void resize(std::size_t size, bool value = false) {
    const std::size_t old_words = words_.size();
    size_ = size;
    words_.resize(word_count(size), value ? ~0ull : 0ull);
    if (value && !words_.empty() && old_words > 0 && old_words <= words_.size()) {
      // Bits of the old tail word beyond the previous size must be set too.
      // Simplicity over cleverness: refill entirely when growing with ones.
      for (std::size_t w = old_words - 1; w < words_.size(); ++w)
        words_[w] = ~0ull;
    }
    trim_tail();
  }

  [[nodiscard]] bool test(std::size_t i) const {
    COBRA_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1ull;
  }

  void set(std::size_t i) {
    COBRA_DCHECK(i < size_);
    words_[i >> 6] |= 1ull << (i & 63);
  }

  void reset(std::size_t i) {
    COBRA_DCHECK(i < size_);
    words_[i >> 6] &= ~(1ull << (i & 63));
  }

  /// Sets bit i; returns true iff the bit was previously clear.
  /// This is the hot operation for "newly visited vertex" detection.
  bool set_and_test(std::size_t i) {
    COBRA_DCHECK(i < size_);
    const std::uint64_t mask = 1ull << (i & 63);
    std::uint64_t& w = words_[i >> 6];
    const bool was_clear = (w & mask) == 0;
    w |= mask;
    return was_clear;
  }

  /// Clears every bit.
  void reset_all() { std::fill(words_.begin(), words_.end(), 0ull); }

  /// Sets every bit.
  void set_all() {
    std::fill(words_.begin(), words_.end(), ~0ull);
    trim_tail();
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) c += std::popcount(w);
    return c;
  }

  [[nodiscard]] bool all() const { return count() == size_; }
  [[nodiscard]] bool none() const {
    for (const std::uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  [[nodiscard]] bool any() const { return !none(); }

  /// True iff this and `other` share at least one set bit.
  [[nodiscard]] bool intersects(const DynamicBitset& other) const;

  /// Calls fn(index) for every set bit in ascending order. The word-scan
  /// idiom (countr_zero + clear-lowest-bit) shared by the dense process
  /// engines; ~1 ns per set bit at moderate densities.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto tz = static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        fn((w << 6) + tz);
      }
    }
  }

  /// Index of the lowest set bit, or size() when none.
  [[nodiscard]] std::size_t find_first() const;

  /// Index of the lowest set bit strictly greater than i, or size().
  [[nodiscard]] std::size_t find_next(std::size_t i) const;

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Raw word storage (read-only), for word-parallel consumers.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

  /// Mutable raw word storage for word-parallel writers (the dense COBRA
  /// engine ORs whole frontiers in here). Callers must keep the tail
  /// invariant: bits at positions >= size() stay clear.
  [[nodiscard]] std::uint64_t* data() { return words_.data(); }

 private:
  static std::size_t word_count(std::size_t size) { return (size + 63) / 64; }

  // Keeps bits past `size_` clear so count()/all()/== stay meaningful.
  void trim_tail() {
    const std::size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty())
      words_.back() &= (1ull << tail) - 1;
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace cobra::util
