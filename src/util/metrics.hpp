// Low-overhead telemetry registry: named counters, gauges and log2
// histograms backed by plain uint64_t slot arrays.
//
// Design constraints (ISSUE 7 / ROADMAP "observability substrate"):
//
//   * zero atomics on the hot path — a metric update is `slots[id] += v`
//     into a thread-local slot array; names are resolved to stable slot
//     ids once, at registration, under a mutex;
//   * deterministic output — snapshots are sorted by metric name and the
//     JSON serializer is canonical (no whitespace, fixed key order,
//     unsigned decimals), so write → parse → re-emit is byte-identical;
//   * mergeable — snapshots form a commutative monoid under merge()
//     (counters/histograms add, gauges take the max, the empty snapshot
//     is the identity), so per-cell, per-shard and per-sweep views are
//     all the same fold.
//
// Thread model: every thread that touches a metric gets its own slot
// array (registered with the registry on first use). drain()/snapshot()
// fold all thread arrays; callers must only drain at quiescence — in the
// runner that is a cell boundary, after the Monte-Carlo pool has joined
// its tasks (task completion gives the happens-before edge).
//
// Collection is gated by the session metrics mode (COBRA_METRICS /
// --metrics = off|summary|rounds). Cold call sites use count()/observe()
// below, which no-op when the mode is off; hot loops (the frontier
// kernel) instead capture a pointer once per construction and branch on
// it (core/metrics.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cobra::util {

/// Session telemetry mode, resolved from COBRA_METRICS / `--metrics`.
enum class MetricsMode : std::uint8_t {
  kOff,      ///< no collection; instrumented paths are a null-check away
  kSummary,  ///< per-cell totals (counters/gauges/histograms) only
  kRounds,   ///< totals plus per-round frontier trajectories
};

/// Parses a metrics-mode name ("off" | "summary" | "rounds"); aborts via
/// COBRA_CHECK with the offending name otherwise.
MetricsMode parse_metrics_mode(std::string_view name);

/// Canonical name of a metrics mode ("off" | "summary" | "rounds").
const char* metrics_mode_name(MetricsMode mode);

/// The session metrics mode: util::metrics() (COBRA_METRICS or the
/// `--metrics` override) parsed and validated.
MetricsMode metrics_mode();

/// True when the session metrics mode is not kOff — the gate cold call
/// sites (cache hit/miss counts, alias-table builds, mmap opens) check
/// before touching the registry.
bool metrics_collecting();

/// What a registered metric accumulates.
enum class MetricKind : std::uint8_t {
  kCounter,    ///< monotonic sum; merge adds
  kGauge,      ///< high-water mark; merge takes the max
  kHistogram,  ///< log2-bucketed value distribution; merge adds buckets
};

/// Histogram bucket count: bucket i holds values whose bit_width is i,
/// i.e. bucket 0 is exactly 0, bucket i (i >= 1) is [2^(i-1), 2^i).
inline constexpr std::size_t kHistogramBuckets = 65;

/// Stable handle for a registered metric: an index into every thread's
/// slot array (histograms own kHistogramBuckets consecutive slots).
using MetricId = std::uint32_t;

/// One metric's folded value in a snapshot.
struct MetricValue {
  /// Registered name (e.g. "kernel.rounds").
  std::string name;
  /// What the slots accumulate (determines diff/merge semantics).
  MetricKind kind = MetricKind::kCounter;
  /// Counter sum or gauge high-water mark; unused for histograms.
  std::uint64_t value = 0;
  /// Histogram buckets (kHistogramBuckets entries); empty otherwise.
  std::vector<std::uint64_t> buckets;
};

/// A deterministic, mergeable point-in-time view of the registry (or of
/// any subset of metrics): entries sorted by name, zero-valued entries
/// omitted.
struct MetricsSnapshot {
  /// Folded metric values, sorted by MetricValue::name.
  std::vector<MetricValue> values;

  /// True when no metric recorded a nonzero value.
  bool empty() const { return values.empty(); }
  /// The entry named `name`, or nullptr.
  const MetricValue* find(std::string_view name) const;
  /// Convenience: the counter/gauge value of `name`, or 0 when absent.
  std::uint64_t value_of(std::string_view name) const;
};

/// Snapshot difference `after - before` (counter and histogram values
/// subtract, saturating at 0; gauges keep `after`'s high-water mark).
MetricsSnapshot diff(const MetricsSnapshot& after,
                     const MetricsSnapshot& before);

/// Snapshot merge (counters/histograms add, gauges max). Commutative and
/// associative; the empty snapshot is the identity.
MetricsSnapshot merge(const MetricsSnapshot& a, const MetricsSnapshot& b);

/// Serializes a snapshot as one canonical JSON object —
/// `{"counters":{...},"gauges":{...},"histograms":{"name":{"bit":count}}}`
/// with sections omitted when empty, keys in name order, no whitespace.
/// Canonical form makes re-emission byte-identical after a parse.
std::string snapshot_to_json(const MetricsSnapshot& snapshot);

/// Parses the object form produced by snapshot_to_json (aborts via
/// COBRA_CHECK on malformed input).
MetricsSnapshot snapshot_from_json(std::string_view json);

struct JsonValue;

/// Same, from an already-parsed JSON object — for callers (the runner
/// sidecar) that embed a snapshot inside a larger document.
MetricsSnapshot snapshot_from_json_value(const JsonValue& value);

/// Version tag of the metrics JSONL line format.
inline constexpr int kMetricsJsonlVersion = 1;

/// Serializes a snapshot as one versioned JSONL line:
/// `{"v":1,"counters":...}` (no trailing newline).
std::string snapshot_to_jsonl(const MetricsSnapshot& snapshot);

/// Parses a line produced by snapshot_to_jsonl, checking the version.
MetricsSnapshot snapshot_from_jsonl(std::string_view line);

/// The process-wide metric registry. Registration (name → slot id) is
/// mutex-protected and idempotent; updates go to thread-local slot
/// arrays with no synchronization at all.
class MetricsRegistry {
 public:
  /// The process-wide instance (never destroyed).
  static MetricsRegistry& instance();

  /// Registers (or looks up) a counter. Re-registering the same name
  /// returns the same id; registering it as a different kind aborts.
  MetricId counter(std::string_view name);
  /// Registers (or looks up) a gauge (merged by max).
  MetricId gauge(std::string_view name);
  /// Registers (or looks up) a log2 histogram (kHistogramBuckets slots).
  MetricId histogram(std::string_view name);

  /// Adds `delta` to a counter in this thread's slots.
  void add(MetricId id, std::uint64_t delta = 1);
  /// Raises a gauge's high-water mark in this thread's slots.
  void gauge_max(MetricId id, std::uint64_t value);
  /// Records one observation of `value` into a histogram.
  void observe(MetricId id, std::uint64_t value);

  /// This thread's slot array base pointer, for hot loops that update
  /// slots directly (`slots[id] += v`). The array has kMaxSlots entries
  /// regardless of how many metrics are registered, so the pointer stays
  /// valid across later registrations.
  std::uint64_t* local_slots();

  /// Folds every thread's slots into a snapshot. With `reset`, also
  /// zeroes all slots — the per-cell "snapshot and reset" the runner
  /// uses. Caller must guarantee no thread is concurrently updating
  /// (cell boundaries after pool joins).
  MetricsSnapshot drain(bool reset = true);

  /// Upper bound on registered slots (histograms use 65 each). Fixed so
  /// thread arrays never reallocate; registration past it aborts.
  static constexpr std::size_t kMaxSlots = 4096;

  /// Internal shared state (defined in metrics.cpp; public only so the
  /// thread-local slot holders there can reach it).
  struct Impl;

 private:
  MetricsRegistry() = default;
  MetricId register_metric(std::string_view name, MetricKind kind,
                           std::size_t slots);

  Impl& impl();
};

/// Cold-site helper: bumps counter `id` iff metrics_collecting().
inline void count_if_collecting(MetricId id, std::uint64_t delta = 1) {
  if (metrics_collecting()) MetricsRegistry::instance().add(id, delta);
}

/// Minimal JSON value used by the metrics (de)serializers and the runner
/// sidecar parser. Supports exactly what the telemetry formats emit:
/// objects (insertion-ordered), arrays, strings, and unsigned integers.
struct JsonValue {
  /// JSON value kind.
  enum class Type : std::uint8_t { kNull, kUInt, kString, kArray, kObject };
  /// The kind of this value.
  Type type = Type::kNull;
  /// Payload for Type::kUInt.
  std::uint64_t number = 0;
  /// Payload for Type::kString.
  std::string text;
  /// Payload for Type::kArray.
  std::vector<JsonValue> array;
  /// Payload for Type::kObject, in document order.
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Member `key` as an unsigned integer, or `fallback` when absent.
  std::uint64_t uint_or(std::string_view key, std::uint64_t fallback) const;
};

/// Parses a complete JSON document (aborts via COBRA_CHECK, with the
/// byte offset, on malformed input or trailing garbage).
JsonValue parse_json(std::string_view text);

/// Escapes and quotes `s` as a JSON string literal.
std::string json_quote(std::string_view s);

}  // namespace cobra::util
