#include "util/bitset.hpp"

#include <algorithm>

namespace cobra::util {

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i)
    if ((words_[i] & other.words_[i]) != 0) return true;
  return false;
}

std::size_t DynamicBitset::find_first() const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] != 0)
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(words_[w]));
  return size_;
}

std::size_t DynamicBitset::find_next(std::size_t i) const {
  ++i;
  if (i >= size_) return size_;
  std::size_t w = i >> 6;
  std::uint64_t word = words_[w] & (~0ull << (i & 63));
  while (true) {
    if (word != 0)
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
    if (++w >= words_.size()) return size_;
    word = words_[w];
  }
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  COBRA_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  COBRA_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  COBRA_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  trim_tail();
  return *this;
}

}  // namespace cobra::util
