// Small integer/floating-point helpers shared across modules.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace cobra::util {

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t floor_log2(std::uint64_t x) {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x | 1));
}

/// ceil(log2(x)) for x >= 1; ceil_log2(1) == 0.
constexpr std::uint32_t ceil_log2(std::uint64_t x) {
  return x <= 1 ? 0u : floor_log2(x - 1) + 1;
}

constexpr bool is_power_of_two(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

template <typename T>
constexpr T sq(T x) {
  return x * x;
}

/// Integer power by repeated squaring.
constexpr std::uint64_t ipow(std::uint64_t base, std::uint32_t exp) {
  std::uint64_t r = 1;
  while (exp != 0) {
    if (exp & 1u) r *= base;
    base *= base;
    exp >>= 1;
  }
  return r;
}

/// Relative closeness test for floating-point comparisons in tests and
/// iterative-solver stopping rules.
inline bool approx_equal(double a, double b, double rel_tol = 1e-9,
                         double abs_tol = 1e-12) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

/// Natural log of n, guarded so bound formulas behave for tiny n.
inline double safe_log(double n) { return std::log(std::max(n, 2.0)); }

/// H_n = 1 + 1/2 + ... + 1/n (harmonic number), used by random-walk
/// baselines (e.g. expected cover time of K_n is (n-1) H_{n-1}).
inline double harmonic(std::uint64_t n) {
  // Exact summation below the switch point; asymptotic expansion above.
  if (n == 0) return 0.0;
  if (n < 1024) {
    double h = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  const double x = static_cast<double>(n);
  constexpr double kEulerGamma = 0.57721566490153286061;
  return std::log(x) + kEulerGamma + 1.0 / (2 * x) - 1.0 / (12 * x * x);
}

}  // namespace cobra::util
