// A small fixed-size thread pool.
//
// The Monte-Carlo engine prefers OpenMP when available (see sim/monte_carlo),
// but the pool provides an always-available fallback and serves components
// that need long-lived workers (e.g. overlapping graph generation with
// simulation in examples).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace cobra::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when the task completes.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      MutexLock lock(mutex_);
      tasks_.emplace([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs f(i) for i in [0, count) across the pool; blocks until done.
  void parallel_for_index(std::size_t count,
                          const std::function<void(std::size_t)>& f);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ COBRA_GUARDED_BY(mutex_);
  std::condition_variable cv_;
  bool stopping_ COBRA_GUARDED_BY(mutex_) = false;
};

}  // namespace cobra::util
