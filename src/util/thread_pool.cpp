#include "util/thread_pool.hpp"

#include <atomic>

#include "util/assert.hpp"

namespace cobra::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  COBRA_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Manual wait loop rather than the predicate overload: the guarded
      // accesses stay in this scope, where the analysis can see the
      // capability held (a predicate lambda is a separate function the
      // lock set does not flow into).
      while (!stopping_ && tasks_.empty()) cv_.wait(lock.native());
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_index(
    std::size_t count, const std::function<void(std::size_t)>& f) {
  if (count == 0) return;
  // Dynamic scheduling over a shared atomic counter: replicate costs vary a
  // lot (cover times are heavy-tailed), so static chunking would straggle.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  std::vector<std::future<void>> futures;
  const std::size_t lanes = std::min(count, workers_.size());
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([next, count, &f] {
      while (true) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        f(i);
      }
    }));
  }
  for (auto& fut : futures) fut.get();
}

}  // namespace cobra::util
