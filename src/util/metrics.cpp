#include "util/metrics.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>

#include "util/annotations.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace cobra::util {

// ---------------------------------------------------------------------------
// Modes

MetricsMode parse_metrics_mode(std::string_view name) {
  if (name == "off") return MetricsMode::kOff;
  if (name == "summary") return MetricsMode::kSummary;
  if (name == "rounds") return MetricsMode::kRounds;
  COBRA_CHECK_MSG(false, "unknown metrics mode '"
                             << std::string(name)
                             << "' (expected off|summary|rounds)");
  return MetricsMode::kOff;  // unreachable
}

const char* metrics_mode_name(MetricsMode mode) {
  switch (mode) {
    case MetricsMode::kOff: return "off";
    case MetricsMode::kSummary: return "summary";
    case MetricsMode::kRounds: return "rounds";
  }
  return "off";
}

MetricsMode metrics_mode() { return parse_metrics_mode(metrics()); }

bool metrics_collecting() { return metrics_mode() != MetricsMode::kOff; }

// ---------------------------------------------------------------------------
// Registry

namespace {

struct MetricDef {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  MetricId slot = 0;  // base slot; histograms own kHistogramBuckets slots
};

using Slots = std::array<std::uint64_t, MetricsRegistry::kMaxSlots>;

}  // namespace

struct MetricsRegistry::Impl {
  Mutex mu;
  // Definitions in name order (std::map keeps drain output sorted for
  // free) plus the next free slot index.
  std::map<std::string, MetricDef, std::less<>> defs COBRA_GUARDED_BY(mu);
  std::size_t next_slot COBRA_GUARDED_BY(mu) = 0;
  // Live per-thread slot arrays, plus the folded slots of exited threads
  // (a worker dying between drains must not lose its counts). The
  // *pointers* are guarded; each pointee is a thread-local array its
  // owning thread updates lock-free — drain() may only fold them at
  // quiescence (see the header).
  std::vector<Slots*> threads COBRA_GUARDED_BY(mu);
  Slots retired COBRA_GUARDED_BY(mu) = {};
};

namespace {

// Thread-local slot storage: registers with the registry on first use,
// folds itself into `retired` on thread exit.
struct ThreadSlots {
  MetricsRegistry::Impl* impl = nullptr;
  std::unique_ptr<Slots> slots;

  std::uint64_t* get(MetricsRegistry::Impl& registry_impl) {
    if (!slots) {
      slots = std::make_unique<Slots>();
      impl = &registry_impl;
      MutexLock lock(impl->mu);
      impl->threads.push_back(slots.get());
    }
    return slots->data();
  }

  ~ThreadSlots() {
    if (!slots) return;
    MutexLock lock(impl->mu);
    for (std::size_t i = 0; i < slots->size(); ++i)
      impl->retired[i] += (*slots)[i];
    // Gauge slots fold by max, not sum — several exiting threads must not
    // inflate a high-water mark.
    for (const auto& [name, def] : impl->defs) {
      if (def.kind != MetricKind::kGauge) continue;
      impl->retired[def.slot] =
          std::max(impl->retired[def.slot] - (*slots)[def.slot],
                   (*slots)[def.slot]);
    }
    std::erase(impl->threads, slots.get());
  }
};

thread_local ThreadSlots tl_slots;

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: thread-local ThreadSlots destructors may run
  // after static destruction would have torn a non-leaked instance down.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() {
  static Impl* const impl = new Impl();
  return *impl;
}

MetricId MetricsRegistry::register_metric(std::string_view name,
                                          MetricKind kind,
                                          std::size_t slots) {
  COBRA_CHECK_MSG(!name.empty(), "metric name must not be empty");
  Impl& im = impl();
  MutexLock lock(im.mu);
  auto it = im.defs.find(name);
  if (it != im.defs.end()) {
    COBRA_CHECK_MSG(it->second.kind == kind,
                    "metric '" << std::string(name)
                               << "' re-registered as a different kind");
    return it->second.slot;
  }
  COBRA_CHECK_MSG(im.next_slot + slots <= kMaxSlots,
                  "metric registry slot budget exhausted");
  MetricDef def;
  def.name = std::string(name);
  def.kind = kind;
  def.slot = static_cast<MetricId>(im.next_slot);
  im.next_slot += slots;
  im.defs.emplace(def.name, def);
  return def.slot;
}

MetricId MetricsRegistry::counter(std::string_view name) {
  return register_metric(name, MetricKind::kCounter, 1);
}

MetricId MetricsRegistry::gauge(std::string_view name) {
  return register_metric(name, MetricKind::kGauge, 1);
}

MetricId MetricsRegistry::histogram(std::string_view name) {
  return register_metric(name, MetricKind::kHistogram, kHistogramBuckets);
}

std::uint64_t* MetricsRegistry::local_slots() {
  return tl_slots.get(impl());
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) {
  local_slots()[id] += delta;
}

void MetricsRegistry::gauge_max(MetricId id, std::uint64_t value) {
  std::uint64_t* slots = local_slots();
  slots[id] = std::max(slots[id], value);
}

void MetricsRegistry::observe(MetricId id, std::uint64_t value) {
  local_slots()[id + std::bit_width(value)] += 1;
}

MetricsSnapshot MetricsRegistry::drain(bool reset) {
  Impl& im = impl();
  MutexLock lock(im.mu);
  Slots folded{};
  for (std::size_t i = 0; i < folded.size(); ++i) folded[i] = im.retired[i];
  for (Slots* t : im.threads)
    for (std::size_t i = 0; i < folded.size(); ++i) folded[i] += (*t)[i];
  // Gauges fold by max, not sum: redo those slots from the defs.
  for (const auto& [name, def] : im.defs) {
    if (def.kind != MetricKind::kGauge) continue;
    std::uint64_t hi = im.retired[def.slot];
    for (Slots* t : im.threads) hi = std::max(hi, (*t)[def.slot]);
    folded[def.slot] = hi;
  }
  if (reset) {
    im.retired.fill(0);
    for (Slots* t : im.threads) t->fill(0);
  }

  MetricsSnapshot snapshot;
  for (const auto& [name, def] : im.defs) {
    MetricValue v;
    v.name = name;
    v.kind = def.kind;
    if (def.kind == MetricKind::kHistogram) {
      bool any = false;
      v.buckets.assign(kHistogramBuckets, 0);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        v.buckets[b] = folded[def.slot + b];
        any = any || v.buckets[b] != 0;
      }
      if (!any) continue;
    } else {
      v.value = folded[def.slot];
      if (v.value == 0) continue;
    }
    snapshot.values.push_back(std::move(v));
  }
  return snapshot;
}

// ---------------------------------------------------------------------------
// Snapshots

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  auto it = std::lower_bound(
      values.begin(), values.end(), name,
      [](const MetricValue& v, std::string_view n) { return v.name < n; });
  if (it == values.end() || it->name != name) return nullptr;
  return &*it;
}

std::uint64_t MetricsSnapshot::value_of(std::string_view name) const {
  const MetricValue* v = find(name);
  return v == nullptr ? 0 : v->value;
}

namespace {

// Shared shape of diff and merge: a sorted two-way walk combining entries
// with the same name; `combine` returns false to drop the entry.
template <typename Combine, typename Lone>
MetricsSnapshot walk(const MetricsSnapshot& a, const MetricsSnapshot& b,
                     Combine combine, Lone lone_b) {
  MetricsSnapshot out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.values.size() || j < b.values.size()) {
    if (j == b.values.size() ||
        (i < a.values.size() && a.values[i].name < b.values[j].name)) {
      out.values.push_back(a.values[i++]);
      continue;
    }
    if (i == a.values.size() || b.values[j].name < a.values[i].name) {
      MetricValue v = b.values[j++];
      if (lone_b(v)) out.values.push_back(std::move(v));
      continue;
    }
    MetricValue v = a.values[i++];
    const MetricValue& other = b.values[j++];
    COBRA_CHECK_MSG(v.kind == other.kind,
                    "metric '" << v.name << "' has mismatched kinds");
    if (combine(v, other)) out.values.push_back(std::move(v));
  }
  return out;
}

bool nonzero(const MetricValue& v) {
  if (v.kind == MetricKind::kHistogram)
    return std::any_of(v.buckets.begin(), v.buckets.end(),
                       [](std::uint64_t b) { return b != 0; });
  return v.value != 0;
}

}  // namespace

MetricsSnapshot diff(const MetricsSnapshot& after,
                     const MetricsSnapshot& before) {
  // `after` drives: entries only in `before` subtract to <= 0 and drop.
  return walk(
      after, before,
      [](MetricValue& v, const MetricValue& prev) {
        switch (v.kind) {
          case MetricKind::kCounter:
            v.value = v.value > prev.value ? v.value - prev.value : 0;
            break;
          case MetricKind::kGauge:
            break;  // keep `after`'s high-water mark
          case MetricKind::kHistogram:
            for (std::size_t b = 0;
                 b < v.buckets.size() && b < prev.buckets.size(); ++b)
              v.buckets[b] = v.buckets[b] > prev.buckets[b]
                                 ? v.buckets[b] - prev.buckets[b]
                                 : 0;
            break;
        }
        return nonzero(v);
      },
      [](MetricValue&) { return false; });
}

MetricsSnapshot merge(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  return walk(
      a, b,
      [](MetricValue& v, const MetricValue& other) {
        switch (v.kind) {
          case MetricKind::kCounter:
            v.value += other.value;
            break;
          case MetricKind::kGauge:
            v.value = std::max(v.value, other.value);
            break;
          case MetricKind::kHistogram:
            if (v.buckets.size() < other.buckets.size())
              v.buckets.resize(other.buckets.size(), 0);
            for (std::size_t b = 0; b < other.buckets.size(); ++b)
              v.buckets[b] += other.buckets[b];
            break;
        }
        return nonzero(v);
      },
      [](MetricValue& v) { return nonzero(v); });
}

// ---------------------------------------------------------------------------
// Canonical JSON emission

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xF]);
          out.push_back(hex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void append_section(std::string& out, const char* section,
                    const MetricsSnapshot& snapshot, MetricKind kind,
                    bool& first_section) {
  std::string body;
  bool first = true;
  for (const MetricValue& v : snapshot.values) {
    if (v.kind != kind) continue;
    if (!first) body.push_back(',');
    first = false;
    body += json_quote(v.name);
    body.push_back(':');
    if (kind == MetricKind::kHistogram) {
      body.push_back('{');
      bool first_bucket = true;
      for (std::size_t b = 0; b < v.buckets.size(); ++b) {
        if (v.buckets[b] == 0) continue;
        if (!first_bucket) body.push_back(',');
        first_bucket = false;
        body += json_quote(std::to_string(b));
        body.push_back(':');
        body += std::to_string(v.buckets[b]);
      }
      body.push_back('}');
    } else {
      body += std::to_string(v.value);
    }
  }
  if (first) return;  // empty section: omit
  if (!first_section) out.push_back(',');
  first_section = false;
  out += json_quote(section);
  out.push_back(':');
  out.push_back('{');
  out += body;
  out.push_back('}');
}

}  // namespace

std::string snapshot_to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  append_section(out, "counters", snapshot, MetricKind::kCounter, first);
  append_section(out, "gauges", snapshot, MetricKind::kGauge, first);
  append_section(out, "histograms", snapshot, MetricKind::kHistogram, first);
  out.push_back('}');
  return out;
}

std::string snapshot_to_jsonl(const MetricsSnapshot& snapshot) {
  std::string body = snapshot_to_json(snapshot);
  std::string out = "{\"v\":";
  out += std::to_string(kMetricsJsonlVersion);
  if (body.size() > 2) {  // non-empty object: splice after the version
    out.push_back(',');
    out.append(body, 1, body.size() - 1);
  } else {
    out.push_back('}');
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON parsing

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    COBRA_CHECK_MSG(pos_ == text_.size(),
                    "trailing garbage at byte " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    COBRA_CHECK_MSG(false, "malformed JSON: " << what << " at byte " << pos_);
    std::abort();  // unreachable: COBRA_CHECK_MSG throws
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (code > 0x7F) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    JsonValue v;
    if (c == '{') {
      v.type = JsonValue::Type::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.type = JsonValue::Type::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.text = parse_string();
      return v;
    }
    if (c >= '0' && c <= '9') {
      v.type = JsonValue::Type::kUInt;
      std::uint64_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        const std::uint64_t digit =
            static_cast<std::uint64_t>(text_[pos_] - '0');
        COBRA_CHECK_MSG(n <= (UINT64_MAX - digit) / 10,
                        "integer overflow at byte " << pos_);
        n = n * 10 + digit;
        ++pos_;
      }
      v.number = n;
      return v;
    }
    if (c == 'n' && text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return v;
    }
    fail("unexpected value");
    return v;  // unreachable
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

std::uint64_t JsonValue::uint_or(std::string_view key,
                                 std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->type == Type::kUInt) ? v->number : fallback;
}

namespace {

void parse_section(const JsonValue& doc, const char* section, MetricKind kind,
                   std::vector<MetricValue>& out) {
  const JsonValue* sec = doc.find(section);
  if (sec == nullptr) return;
  COBRA_CHECK_MSG(sec->type == JsonValue::Type::kObject,
                  "metrics section '" << section << "' is not an object");
  for (const auto& [name, val] : sec->object) {
    MetricValue v;
    v.name = name;
    v.kind = kind;
    if (kind == MetricKind::kHistogram) {
      COBRA_CHECK_MSG(val.type == JsonValue::Type::kObject,
                      "histogram '" << name << "' is not an object");
      v.buckets.assign(kHistogramBuckets, 0);
      for (const auto& [bucket, n] : val.object) {
        COBRA_CHECK_MSG(n.type == JsonValue::Type::kUInt,
                        "histogram '" << name << "' bucket is not a number");
        std::size_t b = 0;
        for (char c : bucket) {
          COBRA_CHECK_MSG(c >= '0' && c <= '9',
                          "histogram '" << name << "' has a bad bucket key");
          b = b * 10 + static_cast<std::size_t>(c - '0');
        }
        COBRA_CHECK_MSG(b < kHistogramBuckets,
                        "histogram '" << name << "' bucket out of range");
        v.buckets[b] = n.number;
      }
    } else {
      COBRA_CHECK_MSG(val.type == JsonValue::Type::kUInt,
                      "metric '" << name << "' is not a number");
      v.value = val.number;
    }
    out.push_back(std::move(v));
  }
}

}  // namespace

MetricsSnapshot snapshot_from_json_value(const JsonValue& doc) {
  COBRA_CHECK_MSG(doc.type == JsonValue::Type::kObject,
                  "metrics snapshot is not a JSON object");
  MetricsSnapshot snapshot;
  parse_section(doc, "counters", MetricKind::kCounter, snapshot.values);
  parse_section(doc, "gauges", MetricKind::kGauge, snapshot.values);
  parse_section(doc, "histograms", MetricKind::kHistogram, snapshot.values);
  std::sort(snapshot.values.begin(), snapshot.values.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snapshot;
}

MetricsSnapshot snapshot_from_json(std::string_view json) {
  return snapshot_from_json_value(parse_json(json));
}

MetricsSnapshot snapshot_from_jsonl(std::string_view line) {
  const JsonValue doc = parse_json(line);
  COBRA_CHECK_MSG(doc.type == JsonValue::Type::kObject,
                  "metrics line is not a JSON object");
  COBRA_CHECK_MSG(doc.uint_or("v", 0) == kMetricsJsonlVersion,
                  "unsupported metrics line version");
  return snapshot_from_json_value(doc);
}

}  // namespace cobra::util
