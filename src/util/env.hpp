// Environment-variable configuration shared by benches and examples.
//
// The experiment harness sizes its workloads by a single multiplier so the
// whole suite can be scaled up (overnight run) or down (CI smoke) without
// editing code:
//   COBRA_SCALE    — positive double, default 1.0
//   COBRA_THREADS  — max worker threads for Monte-Carlo; default: hardware
//   COBRA_SEED     — global base seed for experiments; default 20170724
//                    (the paper's presentation date at SPAA'17).
//   COBRA_ENGINE   — default stepping engine for processes built with
//                    Engine::kDefault: reference|sparse|dense|auto;
//                    default "auto" (the fast density-switched frontier).
//   COBRA_GRAPHS   — comma-separated graph specs (graph/spec.hpp grammar,
//                    incl. file:PATH for ingested .cgr graphs) consumed by
//                    spec-driven experiments such as `workload`; default
//                    empty (the experiment's built-in list).
//   COBRA_METRICS  — session telemetry mode: off|summary|rounds; default
//                    "off" (util/metrics.hpp parses and documents it).
//   COBRA_KERNEL_THREADS — in-round worker lanes for the frontier kernel's
//                    parallel dense scans (core/frontier_kernel); default 1
//                    (serial). Results are bit-identical at every setting.
#pragma once

#include <cstdint>
#include <string>

namespace cobra::util {

/// Reads an environment variable; returns `fallback` when unset or invalid.
double env_double(const char* name, double fallback);
std::int64_t env_int(const char* name, std::int64_t fallback);
std::string env_string(const char* name, const std::string& fallback);

/// Global experiment scale multiplier (COBRA_SCALE).
double scale();

/// Programmatic overrides, set by the runner CLI when `--scale`, `--seed`
/// or `--threads` are passed: they take precedence over the environment
/// variables in scale()/global_seed()/max_threads(). Values are validated
/// the same way as their env counterparts (scale must be positive, threads
/// are clamped to [1, 1024]).
void set_scale_override(double value);
void set_seed_override(std::uint64_t value);
void set_threads_override(int value);
void set_engine_override(const std::string& value);
void set_graphs_override(const std::string& value);
void set_metrics_override(const std::string& value);
void set_kernel_threads_override(int value);

/// Drops all programmatic overrides (tests; the CLI never needs this).
void clear_env_overrides();

/// Scales an integer quantity by COBRA_SCALE, keeping at least `min_value`.
std::int64_t scaled(std::int64_t base, std::int64_t min_value = 1);

/// Worker thread cap (COBRA_THREADS), at least 1.
int max_threads();

/// Base seed for experiments (COBRA_SEED).
std::uint64_t global_seed();

/// Session-wide stepping-engine name (COBRA_ENGINE / --engine), as a raw
/// string: core::parse_engine validates it where it is consumed.
std::string engine();

/// Comma-separated graph-spec list (COBRA_GRAPHS / --graphs), raw:
/// graph::split_graph_specs and the spec parser validate it where it is
/// consumed. Empty when unset.
std::string graphs();

/// Session telemetry mode name (COBRA_METRICS / --metrics), as a raw
/// string: util::parse_metrics_mode validates it where it is consumed.
/// "off" when unset.
std::string metrics();

/// In-round frontier-kernel lane count (COBRA_KERNEL_THREADS /
/// --kernel-threads), clamped to [1, 256]; 1 (the default) is the serial
/// kernel. Orthogonal to max_threads(), which caps the Monte-Carlo
/// replicate fan-out — their product is the worst-case thread count.
int kernel_threads();

}  // namespace cobra::util
