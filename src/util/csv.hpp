// Minimal CSV writing for experiment result archiving.
//
// Every bench/exp_* binary writes its rows to bench_results/<name>.csv so
// EXPERIMENTS.md numbers are regenerable and plottable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cobra::util {

class CsvWriter {
 public:
  /// Opens `path` for writing (directories are created as needed) and emits
  /// the header line. Throws CheckError on I/O failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  CsvWriter& row();
  CsvWriter& add(const std::string& cell);
  CsvWriter& add(double value);
  CsvWriter& add(std::int64_t value);
  CsvWriter& add(std::uint64_t value);
  CsvWriter& add(int value) { return add(static_cast<std::int64_t>(value)); }

  /// Flushes and closes; further writes are invalid.
  void close();

 private:
  void end_row_if_open();

  struct Impl;
  Impl* impl_;
};

/// Quotes a CSV field if it contains separators/quotes/newlines.
std::string csv_escape(const std::string& field);

}  // namespace cobra::util
