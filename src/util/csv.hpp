// Minimal CSV writing/reading for experiment result archiving.
//
// Every bench/exp_* binary writes its rows to bench_results/<name>.csv so
// EXPERIMENTS.md numbers are regenerable and plottable. The runner
// subsystem additionally appends to per-shard fragments (resume) and reads
// them back (merge), so the writer supports reopening an existing archive
// and a small reader understands the writer's quoting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cobra::util {

class CsvWriter {
 public:
  enum class Mode {
    kTruncate,  // start a fresh file (header is always written)
    kAppend,    // reopen an existing archive; validates the stored header
  };

  /// Opens `path` for writing (directories are created as needed) and emits
  /// the header line. In kAppend mode an existing non-empty file is
  /// continued instead: its header must equal `header` (COBRA_CHECK) and no
  /// second header line is written. Throws CheckError on I/O failure.
  CsvWriter(const std::string& path, std::vector<std::string> header,
            Mode mode = Mode::kTruncate);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  CsvWriter& row();
  CsvWriter& add(const std::string& cell);
  CsvWriter& add(double value);
  CsvWriter& add(std::int64_t value);
  CsvWriter& add(std::uint64_t value);
  CsvWriter& add(int value) { return add(static_cast<std::int64_t>(value)); }

  /// Writes one complete row of already-formatted cells (merge/replay).
  CsvWriter& add_row(const std::vector<std::string>& cells);

  /// Flushes buffered rows to disk without closing (resume journaling).
  void flush();

  /// Flushes and closes; further writes are invalid.
  void close();

 private:
  void end_row_if_open();

  struct Impl;
  Impl* impl_ = nullptr;
};

/// Quotes a CSV field if it contains separators/quotes/newlines.
std::string csv_escape(const std::string& field);

/// A parsed CSV file: header plus data rows of unescaped cell values.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  [[nodiscard]] std::size_t num_rows() const { return rows.size(); }

  /// Index of a header column; throws CheckError when absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;

  /// All values of one column, parsed as doubles.
  [[nodiscard]] std::vector<double> numeric_column(
      const std::string& name) const;
};

/// Parses a numeric CSV cell (0.0 on malformed input).
double csv_number(const std::string& cell);

/// Parses CSV text produced by CsvWriter (RFC-4180-style quoting, embedded
/// commas/quotes/newlines supported). The first record is the header.
CsvTable parse_csv(const std::string& text);

/// Reads and parses a CSV file. Throws CheckError if the file cannot be
/// opened.
CsvTable read_csv(const std::string& path);

}  // namespace cobra::util
