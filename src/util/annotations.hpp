// Clang thread-safety annotations and the annotated mutex the shared-state
// modules use (docs/ARCHITECTURE.md, "Static analysis & the determinism
// contract").
//
// The determinism contract (archives byte-identical at every lane count,
// engine and metrics mode) leans on a handful of carefully guarded shared
// structures: the thread pool's task queue, the metrics registry's slot
// bookkeeping, the spectral and graph caches, and the sweep supervisor's
// shard board. Clang's -Wthread-safety analysis proves, at compile time,
// that every access to those structures happens under the declared lock —
// the static counterpart of the TSan CI job.
//
// Everything here is a no-op on non-clang compilers: the macros expand to
// nothing and Mutex/MutexLock compile down to std::mutex/std::unique_lock
// exactly (the bench baselines gate the hot paths at zero overhead either
// way). libstdc++'s std::mutex carries no capability attributes, so the
// analysis needs this thin annotated wrapper — the same approach Abseil
// takes — rather than raw std::mutex members.
#pragma once

#include <mutex>

#if defined(__clang__)
#define COBRA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define COBRA_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a type to be a capability ("mutex") the analysis can track.
#define COBRA_CAPABILITY(x) COBRA_THREAD_ANNOTATION(capability(x))

/// Declares that a member/variable may only be accessed while holding `x`.
#define COBRA_GUARDED_BY(x) COBRA_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the pointed-to data may only be accessed holding `x`.
#define COBRA_PT_GUARDED_BY(x) COBRA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that a function may only be called while holding `...`.
#define COBRA_REQUIRES(...) \
  COBRA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Declares that a function acquires `...` and does not release it.
#define COBRA_ACQUIRE(...) \
  COBRA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Declares that a function releases `...`.
#define COBRA_RELEASE(...) \
  COBRA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Declares that a function must be called *without* holding `...`
/// (deadlock prevention: re-entry on a non-recursive mutex).
#define COBRA_EXCLUDES(...) \
  COBRA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a try-lock: acquires `...` iff the return value is `result`.
#define COBRA_TRY_ACQUIRE(result, ...) \
  COBRA_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define COBRA_SCOPED_CAPABILITY COBRA_THREAD_ANNOTATION(scoped_lockable)

/// Escape hatch: disables the analysis inside one function. Every use
/// needs a comment justifying why the analysis cannot see the invariant.
#define COBRA_NO_THREAD_SAFETY_ANALYSIS \
  COBRA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cobra::util {

/// std::mutex with capability annotations: lock()/unlock() teach the
/// analysis when the capability is held, so COBRA_GUARDED_BY members are
/// checked at every access. Same size and cost as std::mutex.
class COBRA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Acquires the mutex (blocking).
  void lock() COBRA_ACQUIRE() { mu_.lock(); }
  /// Releases the mutex.
  void unlock() COBRA_RELEASE() { mu_.unlock(); }
  /// Acquires the mutex iff it returns true.
  bool try_lock() COBRA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop that needs the real type
  /// (std::condition_variable waits on std::unique_lock<std::mutex>).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex (the std::lock_guard/std::unique_lock of the
/// annotated world). Holds from construction to destruction; waiting on a
/// condition variable through native() is invisible to the analysis, which
/// conservatively treats the capability as held throughout — exactly the
/// invariant a cv wait re-establishes before returning.
class COBRA_SCOPED_CAPABILITY MutexLock {
 public:
  /// Acquires `mu` for the lifetime of the lock.
  explicit MutexLock(Mutex& mu) COBRA_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() COBRA_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying std::unique_lock, for condition-variable waits.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace cobra::util
