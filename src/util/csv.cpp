#include "util/csv.hpp"

#include <filesystem>
#include <fstream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace cobra::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

struct CsvWriter::Impl {
  std::ofstream out;
  std::size_t columns = 0;
  std::size_t cells_in_row = 0;
  bool row_open = false;
};

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : impl_(new Impl) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  impl_->out.open(path, std::ios::trunc);
  COBRA_CHECK_MSG(impl_->out.good(), "cannot open CSV file " << path);
  impl_->columns = header.size();
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << csv_escape(header[i]);
  }
  impl_->out << '\n';
}

CsvWriter::~CsvWriter() {
  if (impl_ != nullptr) close();
}

void CsvWriter::end_row_if_open() {
  if (impl_->row_open) {
    impl_->out << '\n';
    impl_->row_open = false;
    impl_->cells_in_row = 0;
  }
}

CsvWriter& CsvWriter::row() {
  COBRA_CHECK(impl_ != nullptr);
  end_row_if_open();
  impl_->row_open = true;
  return *this;
}

CsvWriter& CsvWriter::add(const std::string& cell) {
  COBRA_CHECK(impl_ != nullptr && impl_->row_open);
  COBRA_CHECK_MSG(impl_->cells_in_row < impl_->columns,
                  "more cells than header columns");
  if (impl_->cells_in_row) impl_->out << ',';
  impl_->out << csv_escape(cell);
  ++impl_->cells_in_row;
  return *this;
}

CsvWriter& CsvWriter::add(double value) {
  return add(format_double(value, 6));
}

CsvWriter& CsvWriter::add(std::int64_t value) {
  return add(std::to_string(value));
}

CsvWriter& CsvWriter::add(std::uint64_t value) {
  return add(std::to_string(value));
}

void CsvWriter::close() {
  if (impl_ == nullptr) return;
  end_row_if_open();
  impl_->out.flush();
  delete impl_;
  impl_ = nullptr;
}

}  // namespace cobra::util
