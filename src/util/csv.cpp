#include "util/csv.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace cobra::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

struct CsvWriter::Impl {
  std::ofstream out;
  std::size_t columns = 0;
  std::size_t cells_in_row = 0;
  bool row_open = false;
};

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header, Mode mode) {
  // Owned locally until construction succeeds: the checks below throw,
  // and a half-constructed writer must not leak its Impl.
  auto impl = std::make_unique<Impl>();
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  impl->columns = header.size();

  bool continue_existing = false;
  if (mode == Mode::kAppend) {
    std::error_code ec;
    continue_existing = std::filesystem::exists(p, ec) &&
                        std::filesystem::file_size(p, ec) > 0;
    if (continue_existing) {
      // The archive being continued must agree on the schema; a mismatch
      // means the caller is appending to some unrelated file. Only the
      // header line is read — fragments can be large.
      std::ifstream in(path, std::ios::binary);
      COBRA_CHECK_MSG(in.good(), "cannot read CSV file " << path);
      std::string first_line;
      std::getline(in, first_line);
      const CsvTable existing = parse_csv(first_line + "\n");
      COBRA_CHECK_MSG(existing.header == header,
                      "append to " << path << ": header mismatch");
    }
  }

  impl->out.open(path, continue_existing ? std::ios::app : std::ios::trunc);
  COBRA_CHECK_MSG(impl->out.good(), "cannot open CSV file " << path);
  if (!continue_existing) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (i) impl->out << ',';
      impl->out << csv_escape(header[i]);
    }
    impl->out << '\n';
  }
  impl_ = impl.release();
}

CsvWriter::~CsvWriter() {
  if (impl_ != nullptr) close();
}

void CsvWriter::end_row_if_open() {
  if (impl_->row_open) {
    impl_->out << '\n';
    impl_->row_open = false;
    impl_->cells_in_row = 0;
  }
}

CsvWriter& CsvWriter::row() {
  COBRA_CHECK(impl_ != nullptr);
  end_row_if_open();
  impl_->row_open = true;
  return *this;
}

CsvWriter& CsvWriter::add(const std::string& cell) {
  COBRA_CHECK(impl_ != nullptr && impl_->row_open);
  COBRA_CHECK_MSG(impl_->cells_in_row < impl_->columns,
                  "more cells than header columns");
  if (impl_->cells_in_row) impl_->out << ',';
  impl_->out << csv_escape(cell);
  ++impl_->cells_in_row;
  return *this;
}

CsvWriter& CsvWriter::add(double value) {
  return add(format_double(value, 6));
}

CsvWriter& CsvWriter::add(std::int64_t value) {
  return add(std::to_string(value));
}

CsvWriter& CsvWriter::add(std::uint64_t value) {
  return add(std::to_string(value));
}

CsvWriter& CsvWriter::add_row(const std::vector<std::string>& cells) {
  row();
  for (const std::string& cell : cells) add(cell);
  return *this;
}

void CsvWriter::flush() {
  COBRA_CHECK(impl_ != nullptr);
  end_row_if_open();
  impl_->out.flush();
}

void CsvWriter::close() {
  if (impl_ == nullptr) return;
  end_row_if_open();
  impl_->out.flush();
  delete impl_;
  impl_ = nullptr;
}

CsvTable parse_csv(const std::string& text) {
  CsvTable table;
  std::vector<std::string> record;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;  // record has at least one cell (even empty)

  const auto end_cell = [&] {
    record.push_back(cell);
    cell.clear();
    cell_started = false;
  };
  const auto end_record = [&] {
    end_cell();
    if (table.header.empty() && table.rows.empty()) {
      table.header = record;
    } else {
      table.rows.push_back(record);
    }
    record.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        cell_started = true;  // a separator implies a following cell
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_record();
        break;
      default:
        cell += ch;
        cell_started = true;
        break;
    }
  }
  // Final record without a trailing newline.
  if (cell_started || !cell.empty() || !record.empty()) end_record();
  COBRA_CHECK_MSG(!in_quotes, "CSV ends inside a quoted field");
  return table;
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  COBRA_CHECK_MSG(false, "no CSV column named " << name);
}

std::vector<double> CsvTable::numeric_column(const std::string& name) const {
  const std::size_t index = column(name);
  std::vector<double> values;
  values.reserve(rows.size());
  for (const auto& row : rows) {
    values.push_back(index < row.size() ? csv_number(row[index]) : 0.0);
  }
  return values;
}

double csv_number(const std::string& cell) {
  return std::strtod(cell.c_str(), nullptr);
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  COBRA_CHECK_MSG(in.good(), "cannot read CSV file " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

}  // namespace cobra::util
