#include "runner/options.hpp"

#include <cstdlib>

#include "core/process.hpp"
#include "util/env.hpp"

namespace cobra::runner {

namespace {

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

bool parse_int(const std::string& text, std::int64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtoll(text.c_str(), &end, 10);
  return end == text.c_str() + text.size();
}

// "i/k" with 1 <= i <= k.
bool parse_shard(const std::string& text, int& index, int& count) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return false;
  std::int64_t i = 0, k = 0;
  if (!parse_int(text.substr(0, slash), i)) return false;
  if (!parse_int(text.substr(slash + 1), k)) return false;
  if (k < 1 || i < 1 || i > k || k > 1'000'000) return false;
  index = static_cast<int>(i);
  count = static_cast<int>(k);
  return true;
}

}  // namespace

std::optional<std::string> parse_args(const std::vector<std::string>& args,
                                      RunnerOptions& options) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.empty()) continue;
    if (arg == "-h" || arg == "--help" || arg == "help") {
      options.help = true;
      continue;
    }
    if (arg[0] != '-') {
      options.positional.push_back(arg);
      continue;
    }

    // Split "--flag=value"; "--flag value" consumes the next argument.
    std::string name = arg;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    const auto take_value = [&]() -> std::optional<std::string> {
      if (inline_value) return inline_value;
      if (i + 1 < args.size()) return args[++i];
      return std::nullopt;
    };

    if (name == "--list") {
      options.list = true;
    } else if (name == "--resume") {
      options.resume = true;
    } else if (name == "--scale") {
      const auto value = take_value();
      double parsed = 0.0;
      if (!value || !parse_double(*value, parsed) || parsed <= 0.0)
        return "--scale expects a positive number";
      options.scale = parsed;
    } else if (name == "--seed") {
      const auto value = take_value();
      std::int64_t parsed = 0;
      if (!value || !parse_int(*value, parsed))
        return "--seed expects an integer";
      options.seed = static_cast<std::uint64_t>(parsed);
    } else if (name == "--threads") {
      const auto value = take_value();
      std::int64_t parsed = 0;
      if (!value || !parse_int(*value, parsed) || parsed < 1)
        return "--threads expects a positive integer";
      options.threads = static_cast<int>(parsed);
    } else if (name == "--kernel-threads") {
      const auto value = take_value();
      std::int64_t parsed = 0;
      if (!value || !parse_int(*value, parsed) || parsed < 1 || parsed > 256)
        return "--kernel-threads expects a lane count between 1 and 256";
      options.kernel_threads = static_cast<int>(parsed);
    } else if (name == "--engine") {
      const auto value = take_value();
      const auto parsed = value ? core::parse_engine(*value) : std::nullopt;
      if (!parsed)
        return "--engine expects one of reference|sparse|dense|auto";
      // Canonical name: "--engine fast" journals as "auto", so a resume
      // under either spelling matches.
      options.engine = core::engine_name(*parsed);
    } else if (name == "--graphs") {
      const auto value = take_value();
      if (!value || value->empty())
        return "--graphs expects a comma-separated graph-spec list";
      options.graphs = *value;
    } else if (name == "--metrics") {
      const auto value = take_value();
      if (!value ||
          (*value != "off" && *value != "summary" && *value != "rounds"))
        return "--metrics expects one of off|summary|rounds";
      options.metrics = *value;
    } else if (name == "--watch") {
      const auto value = take_value();
      double parsed = 0.0;
      if (!value || !parse_double(*value, parsed) || parsed < 0.0)
        return "--watch expects a non-negative number of seconds";
      options.watch = parsed;
    } else if (name == "--status") {
      options.status = true;
    } else if (name == "-o" || name == "--out") {
      const auto value = take_value();
      if (!value || value->empty()) return "--out expects a file path";
      options.out_path = *value;
    } else if (name == "--name") {
      const auto value = take_value();
      if (!value || value->empty()) return "--name expects a graph name";
      options.graph_name = *value;
    } else if (name == "--verify") {
      options.verify = true;
    } else if (name == "--out-dir") {
      const auto value = take_value();
      if (!value || value->empty()) return "--out-dir expects a path";
      options.out_dir = *value;
    } else if (name == "--shard") {
      const auto value = take_value();
      if (!value || !parse_shard(*value, options.shard_index,
                                 options.shard_count))
        return "--shard expects i/k with 1 <= i <= k (e.g. --shard 2/8)";
    } else if (name == "-j" || name == "--jobs") {
      const auto value = take_value();
      std::int64_t parsed = 0;
      if (!value || !parse_int(*value, parsed) || parsed < 1 ||
          parsed > 4096)
        return "--jobs expects a worker count between 1 and 4096";
      options.jobs = static_cast<int>(parsed);
    } else if (name == "--costs") {
      const auto value = take_value();
      if (!value || value->empty()) return "--costs expects a file path";
      options.costs = *value;
    } else if (name == "--heartbeat-timeout") {
      const auto value = take_value();
      double parsed = 0.0;
      if (!value || !parse_double(*value, parsed) || parsed < 0.0)
        return "--heartbeat-timeout expects a non-negative number of "
               "seconds (0 disables wedge detection)";
      options.heartbeat_timeout = parsed;
    } else if (name == "--max-restarts") {
      const auto value = take_value();
      std::int64_t parsed = 0;
      if (!value || !parse_int(*value, parsed) || parsed < 0)
        return "--max-restarts expects a non-negative integer";
      options.max_restarts = static_cast<int>(parsed);
    } else if (name == "--inject-kill") {
      const auto value = take_value();
      std::int64_t parsed = 0;
      if (!value || !parse_int(*value, parsed) || parsed < 1)
        return "--inject-kill expects a shard index (1-based)";
      options.inject_kill = static_cast<int>(parsed);
    } else if (name == "--filter") {
      const auto value = take_value();
      if (!value) return "--filter expects a substring";
      options.filter = *value;
    } else if (name == "--max-cells") {
      const auto value = take_value();
      std::int64_t parsed = 0;
      if (!value || !parse_int(*value, parsed) || parsed < 0)
        return "--max-cells expects a non-negative integer";
      options.max_cells = parsed;
    } else {
      return "unknown flag: " + name + " (see --help)";
    }
    if (inline_value &&
        (name == "--list" || name == "--resume" || name == "--verify" ||
         name == "--status"))
      return name + " does not take a value";
  }
  return std::nullopt;
}

void apply_env_overrides(const RunnerOptions& options) {
  if (options.scale) util::set_scale_override(*options.scale);
  if (options.seed) util::set_seed_override(*options.seed);
  if (options.threads) util::set_threads_override(*options.threads);
  if (options.kernel_threads)
    util::set_kernel_threads_override(*options.kernel_threads);
  if (options.engine) util::set_engine_override(*options.engine);
  if (options.graphs) util::set_graphs_override(*options.graphs);
  if (options.metrics) util::set_metrics_override(*options.metrics);
}

std::string usage() {
  return R"(cobra — unified experiment runner for the COBRA reproduction

Usage:
  cobra list [--filter SUB]            enumerate registered experiments
  cobra run  [NAME...] [options]       run experiments (all when no NAME)
  cobra sweep NAME... [-j K] [options] supervised distributed sweep: spawn
                                       K `cobra run --shard i/K --resume`
                                       workers, watch their journals for
                                       liveness, respawn dead or wedged
                                       workers, auto-merge on completion
  cobra merge NAME... [--out-dir DIR]  stitch shard fragments into the
                                       canonical CSV and print the summary
  cobra top [DIR] [--watch S]          fleet view of a run directory:
                                       per-shard cell progress from the
                                       journals, worker liveness and
                                       respawn/wedge counters from the
                                       sweep status file, ETA from the
                                       archived .costs model; --watch S
                                       re-renders every S seconds
  cobra report [DIR]                   render archived metrics sidecars
                                       (<exp>.metrics.jsonl) as per-cell
                                       comparison tables, no re-running
  cobra sweep --status [--out-dir DIR] one-shot fleet view (same as top)
  cobra graph ingest EDGELIST -o G.cgr [--name N]
                                       convert a text edge list to the
                                       binary .cgr format (streaming; full
                                       structural validation + fingerprint)
  cobra graph gen SPEC -o G.cgr        pre-bake a synthetic family (spec
                                       grammar below) to disk
  cobra graph info G.cgr [--verify]    print a .cgr header; --verify also
                                       deep-validates the CSR and rehashes
                                       the fingerprint
  cobra help                           this text

Options (each flag overrides its COBRA_* environment variable):
  --scale S        workload multiplier            (env COBRA_SCALE,  default 1)
  --seed N         base experiment seed           (env COBRA_SEED,   default 20170724)
  --threads T      Monte-Carlo worker cap         (env COBRA_THREADS, default hardware)
  --kernel-threads L  in-round kernel lanes       (env COBRA_KERNEL_THREADS, default 1)
                   fan the frontier kernel's dense scans and commit merge
                   out over L lanes; results are bit-identical at every L
                   (orthogonal to --threads: worst case spawns T x L threads)
  --engine E       frontier-kernel engine         (env COBRA_ENGINE, default auto)
                   reference — plain sparse loop (COBRA: legacy sequential draws)
                   sparse    — counter-based draws, vector frontier
                   dense     — counter-based draws, bitset frontier
                   auto      — sparse<->dense switch on frontier density
                   (engines agree bit for bit per process; COBRA's reference
                   agrees in distribution — see docs/ARCHITECTURE.md)
  --graphs LIST    comma-separated graph specs    (env COBRA_GRAPHS)
                   for spec-driven experiments (`workload`):
                   complete_N cycle_N path_N star_N hypercube_D torus_S_dD
                   regular_N_rR petersen file:PATH  (PATH: .cgr is
                   mmap-loaded, anything else is a text edge list)
  --metrics M      telemetry mode                 (env COBRA_METRICS, default off)
                   off     — no collection (zero-cost null checks)
                   summary — per-cell counter totals archived to the
                             <exp>.metrics.jsonl sidecar next to the journal
                   rounds  — totals plus per-round frontier trajectories
                   Fixed-seed results are bit-identical in every mode;
                   `cobra report` renders the archived sidecars.
  --out-dir DIR    result/journal directory       (default bench_results)
  --shard i/k      run only cells with index % k == i-1 (1-based i)
  --resume         continue a journaled run: completed cells are skipped,
                   CSV fragments are reopened in append mode
  --filter SUB     restrict list/run to experiments whose name contains SUB
  --list           with run: print the selected cells, run nothing;
                   with sweep: print each shard's slice, spawn nothing
  --max-cells N    stop after N cells (chunked runs); combine with --resume
  --costs FILE     per-cell cost model (an <experiment>.costs file archived
                   by a previous completed run or merge): shard slices are
                   balanced by weighted LPT instead of round-robin; every
                   worker and resume of one run must use the same file
  -j, --jobs K     sweep worker process count           (default 2)
  --heartbeat-timeout S  sweep: seconds without journal growth before a
                   live worker counts as wedged and is respawned
                   (default 300; 0 disables). Floored per shard at 3x its
                   heaviest --costs cell and doubled after each wedge
                   kill, so honest long cells never drain the budget
  --max-restarts N sweep: respawn budget per shard      (default 3)
  --inject-kill I  sweep fault injection (tests/CI): shard I's first
                   worker SIGKILLs itself after its first journaled cell
  -h, --help       this text

With --metrics summary|rounds every completed cell appends one JSON line
to the shard's <exp>[.<i>of<k>].metrics.jsonl sidecar; merge and completed
unsharded runs compact/re-order the sidecars deterministically. A running
sweep additionally maintains <exp>.sweep.status (atomic rewrite, ~1/s)
which `cobra top` and `cobra sweep --status` combine with the journals
and the archived .costs model into a live fleet view with ETA.

Sharded sweeps write <table>.shard<i>of<k>.csv fragments plus a
<experiment>.<i>of<k>.journal manifest into --out-dir; `cobra merge`
validates that every shard completed and reassembles the canonical
<table>.csv in cell-enumeration order (byte-identical to an unsharded run
at the same seed and scale). `cobra sweep` drives the whole cycle in one
command: k worker processes, journal-heartbeat liveness, automatic
respawn-and-resume of dead shards, automatic merge. Completed runs and
merges archive per-cell wall times to <out-dir>/<experiment>.costs —
feed that file back via --costs to balance the next sweep's slices.
)";
}

}  // namespace cobra::runner
