// Per-run checkpoint manifest for resumable sweeps.
//
// A shard's journal records the run parameters (experiment, shard, seed,
// scale — a resume with different parameters is refused) and one line per
// completed cell with the number of CSV rows the cell contributed to each
// table plus the cell's wall time. Row counts let the resume path truncate
// a torn fragment (a crash between "rows flushed" and "cell journaled")
// back to the last journaled cell, so a resumed run's output is
// byte-identical to an uninterrupted one. Wall times feed `cobra merge`'s
// cost summary and are the groundwork for cost-model shard balancing
// (ROADMAP): they never affect resume/merge validation.
//
// Format (tab-separated, one record per line; the trailing "ok" marker
// makes records self-delimiting, so a line torn by a crash mid-write is
// recognisably incomplete and treated as not journaled):
//   cobra-journal	v4
//   run	<experiment>	<shard>/<count>	<seed>	<scale>	<engine>	<kernel threads>
//   heartbeat	<cell id>
//   cell	<cell id>	<rows table 0>[,<rows table 1>,...]	<wall µs>	ok
//
// "heartbeat" lines are liveness markers appended (and flushed) when a
// cell *starts*: the sweep supervisor tails journal growth to tell a slow
// worker from a wedged one. Readers skip them — only "cell ... ok"
// records count as journaled — so journals with heartbeats stay readable
// by any v4 reader, including ones that predate heartbeats.
//
// Parsing is strict about completed records: a header or a "cell ... ok"
// line with a non-numeric field fails loudly with the journal path, line
// number and offending token (corruption must never be silently coerced
// into shard 0/0 or zero counts). Only a line *without* the "ok"
// terminator — the signature of a crash mid-write — is skipped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cobra::runner {

/// Run parameters a journal is bound to; a resume under different
/// parameters is refused.
struct JournalHeader {
  std::string experiment;     ///< registry name
  int shard_index = 1;        ///< 1-based shard i of i/k
  int shard_count = 1;        ///< shard count k
  std::uint64_t seed = 0;     ///< util::global_seed() of the run
  double scale = 1.0;         ///< util::scale() of the run
  /// util::engine() of the run — sparse/dense/auto archives are
  /// byte-identical to each other but not to reference archives (the COBRA
  /// reference engine keeps the legacy draw protocol), so a resume or
  /// merge across engine settings is refused like a seed mismatch.
  std::string engine = "auto";
  /// util::kernel_threads() of the run — in-round frontier-kernel lanes.
  /// Results are bit-identical at every setting, but the value is still
  /// journaled and pinned so a resumed shard reproduces the original
  /// run's wall-time profile (cost-model balancing reads journaled wall
  /// times) and so the recorded provenance of an archive is complete; a
  /// mismatch is refused like a seed mismatch.
  int kernel_threads = 1;

  /// Field-wise comparison (resume validation).
  bool operator==(const JournalHeader&) const = default;
};

/// One journaled (completed) cell.
struct JournalEntry {
  std::string cell_id;  ///< CellDef::id
  std::vector<std::size_t> rows_per_table;  ///< CSV rows it contributed
  std::uint64_t wall_us = 0;  ///< cell body wall time, microseconds
};

/// Append-only checkpoint manifest of one shard's run.
class Journal {
 public:
  /// Journal path for shard index/count of `experiment` under `out_dir`.
  static std::string path_for(const std::string& out_dir,
                              const std::string& experiment, int shard_index,
                              int shard_count);

  /// Starts a fresh journal at `path` (truncating any previous one) and
  /// writes the header.
  static Journal create(const std::string& path,
                        const JournalHeader& header);

  /// Loads an existing journal, validating that its header equals
  /// `expected` (CheckError otherwise), and reopens it for appending.
  static Journal resume(const std::string& path,
                        const JournalHeader& expected);

  /// Parses a journal without opening it for writing (merge validation).
  static std::pair<JournalHeader, std::vector<JournalEntry>> read(
      const std::string& path);

  /// Move-constructs, transferring ownership of the open file.
  Journal(Journal&&) noexcept;
  Journal& operator=(Journal&&) = delete;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  /// Closes the underlying file.
  ~Journal();

  /// Appends a completed cell and flushes to disk.
  void record(const JournalEntry& entry);

  /// Appends a liveness marker (`heartbeat\t<cell id>`) and flushes.
  /// Written when a cell starts; skipped by every reader, so it never
  /// affects resume or merge — it only makes the journal file grow at
  /// cell boundaries for the supervisor's wedge detection.
  void heartbeat(const std::string& cell_id);

  /// Cells journaled so far (including those loaded by resume()).
  [[nodiscard]] const std::vector<JournalEntry>& entries() const {
    return entries_;
  }

  /// Total rows journaled for table `table_index` — the number of data
  /// rows its fragment must contain for the journal to be consistent.
  [[nodiscard]] std::size_t journaled_rows(std::size_t table_index) const;

 private:
  Journal() = default;

  struct Impl;
  Impl* impl_ = nullptr;
  std::vector<JournalEntry> entries_;
};

/// Strict full-token base-10 parse shared by the journal and cost-model
/// readers: the whole `token` must be a number, otherwise CheckError with
/// `path`, the 1-based `line_no`, the `field` name and the offending
/// token — manifest corruption must fail loudly where it is read, never
/// be silently coerced to 0 (the old std::atoi behaviour).
std::uint64_t parse_u64_field(const std::string& token, const char* field,
                              const std::string& path,
                              std::size_t line_no);

}  // namespace cobra::runner
