#include "runner/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <memory>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "runner/journal.hpp"
#include "runner/telemetry.hpp"
#include "sim/experiment.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/metrics.hpp"

namespace cobra::runner {

namespace {

std::vector<CellDef> enumerate_cells(const ExperimentDef& def) {
  std::vector<CellDef> cells = def.cells();
  COBRA_CHECK_MSG(!cells.empty(), def.name << " enumerated no cells");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      COBRA_CHECK_MSG(cells[i].id != cells[j].id,
                      def.name << " cell id not unique: " << cells[i].id);
    }
  }
  return cells;
}

/// Journaled entries must replay the slice in order (the sweep always
/// walks its slice front to back), so a valid journal is a prefix of the
/// slice. Anything else means the enumeration changed under the journal.
void check_journal_prefix(const ExperimentDef& def,
                          const std::vector<CellDef>& cells,
                          const std::vector<std::size_t>& slice,
                          const std::vector<JournalEntry>& entries,
                          const std::string& journal_path) {
  COBRA_CHECK_MSG(entries.size() <= slice.size(),
                  journal_path << " lists more cells than the slice has");
  for (std::size_t j = 0; j < entries.size(); ++j) {
    COBRA_CHECK_MSG(
        entries[j].cell_id == cells[slice[j]].id,
        journal_path << " does not match the current enumeration of "
                     << def.name << " (journaled '" << entries[j].cell_id
                     << "' where '" << cells[slice[j]].id
                     << "' was expected) — was it written at a different "
                     << "scale or with a different --costs model?");
  }
}

/// Rows grouped by the cell that produced them, one vector per table:
/// the unit both renderers and the merge work with.
struct CellRows {
  std::string group;
  std::vector<std::string> notes;
  std::vector<std::vector<CellRow>> tables;  // [table][row]
};

/// Prints the classic per-experiment console output (banner, aligned
/// table, rules between groups, notes under the last table).
void render_console(const ExperimentDef& def,
                    const std::vector<CellRows>& cells,
                    const std::vector<std::string>& extra_notes) {
  for (std::size_t t = 0; t < def.tables.size(); ++t) {
    const TableDef& table = def.tables[t];
    sim::Experiment exp(table.id, table.title, table.columns,
                        sim::ExperimentOutput{.csv_path = {},
                                              .write_csv = false,
                                              .append = false,
                                              .console = true});
    std::string last_group;
    bool first = true;
    for (const CellRows& cell : cells) {
      if (cell.tables[t].empty()) continue;
      if (!first && cell.group != last_group) exp.rule();
      first = false;
      last_group = cell.group;
      for (const CellRow& row : cell.tables[t]) {
        exp.row();
        for (const CellValue& value : row)
          exp.add_formatted(value.console_text, value.csv_text);
      }
    }
    if (t + 1 == def.tables.size()) {
      for (const CellRows& cell : cells)
        for (const std::string& n : cell.notes) exp.note(n);
      for (const std::string& n : extra_notes) exp.note(n);
    }
    exp.finish();
  }
}

/// Runs def.summarize over the canonical CSVs (all cells present) and
/// returns computed notes followed by the experiment's fixed notes.
std::vector<std::string> collect_summary_notes(const ExperimentDef& def,
                                               const std::string& out_dir) {
  std::vector<std::string> notes;
  if (def.summarize) {
    std::vector<util::CsvTable> tables;
    tables.reserve(def.tables.size());
    for (const TableDef& table : def.tables)
      tables.push_back(util::read_csv(out_dir + "/" + table.id + ".csv"));
    notes = def.summarize(tables);
  }
  notes.insert(notes.end(), def.notes.begin(), def.notes.end());
  return notes;
}

/// Truncates `path` back to its first `keep_rows` data rows. Used when a
/// crash left rows of an unjournaled cell at the fragment's tail.
void truncate_fragment(const std::string& path,
                       const std::vector<std::string>& columns,
                       std::size_t keep_rows) {
  util::CsvTable table = util::read_csv(path);
  // A worker killed before its first flush leaves a 0-byte fragment (the
  // CsvWriter buffers the header until the first cell is flushed). With
  // no rows journaled that is consistent: the append-mode reopen sees an
  // empty file and rewrites the header.
  if (table.header.empty() && table.num_rows() == 0) {
    COBRA_CHECK_MSG(keep_rows == 0,
                    path << " is empty but its journal records "
                         << keep_rows << " rows — the fragment was "
                         << "modified; delete the run directory and "
                         << "restart");
    return;
  }
  COBRA_CHECK_MSG(table.header == columns,
                  path << ": fragment header mismatch");
  COBRA_CHECK_MSG(table.num_rows() >= keep_rows,
                  path << " holds fewer rows than its journal records — "
                       << "the fragment was modified; delete the run "
                       << "directory and restart");
  if (table.num_rows() == keep_rows) return;
  util::CsvWriter writer(path, columns);
  for (std::size_t r = 0; r < keep_rows; ++r) writer.add_row(table.rows[r]);
  writer.close();
}

}  // namespace

std::string format_wall_time(std::uint64_t wall_us) {
  std::ostringstream os;
  const auto with_unit = [&](double value, const char* unit) {
    // Fixed notation, ~3 significant digits (never scientific).
    os << std::fixed
       << std::setprecision(value < 10 ? 2 : (value < 100 ? 1 : 0)) << value
       << ' ' << unit;
  };
  if (wall_us < 1000) {
    os << wall_us << " µs";
  } else if (wall_us < 1000 * 1000) {
    with_unit(static_cast<double>(wall_us) / 1e3, "ms");
  } else if (wall_us < 60ull * 1000 * 1000) {
    with_unit(static_cast<double>(wall_us) / 1e6, "s");
  } else {
    with_unit(static_cast<double>(wall_us) / 60e6, "min");
  }
  return os.str();
}

std::string fragment_path(const std::string& out_dir, const TableDef& table,
                          int shard_index, int shard_count) {
  if (shard_count == 1) return out_dir + "/" + table.id + ".csv";
  std::ostringstream os;
  os << out_dir << '/' << table.id << ".shard" << shard_index << "of"
     << shard_count << ".csv";
  return os.str();
}

std::string costs_path_for(const std::string& out_dir,
                           const std::string& experiment) {
  return out_dir + "/" + experiment + ".costs";
}

void write_costs_file(const std::string& path,
                      const std::vector<JournalEntry>& entries) {
  std::ofstream out(path, std::ios::trunc);
  COBRA_CHECK_MSG(out.good(), "cannot write cost model " << path);
  out << "cobra-costs\tv1\n";
  for (const JournalEntry& entry : entries)
    out << "cell\t" << entry.cell_id << '\t' << entry.wall_us << '\n';
  out.flush();
  COBRA_CHECK_MSG(out.good(), "failed writing cost model " << path);
}

std::map<std::string, std::uint64_t> read_costs_file(
    const std::string& path) {
  std::ifstream in(path);
  COBRA_CHECK_MSG(in.good(), "cannot read cost model " << path);
  std::string line;
  COBRA_CHECK_MSG(std::getline(in, line) && line == "cobra-costs\tv1",
                  path << " line 1: not a cobra-costs v1 file");
  std::map<std::string, std::uint64_t> costs;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto tab1 = line.find('\t');
    const auto tab2 =
        tab1 == std::string::npos ? tab1 : line.find('\t', tab1 + 1);
    COBRA_CHECK_MSG(tab2 != std::string::npos &&
                        line.compare(0, tab1, "cell") == 0,
                    path << " line " << line_no
                         << ": malformed cost record '" << line << "'");
    const std::string id = line.substr(tab1 + 1, tab2 - tab1 - 1);
    const std::uint64_t wall_us =
        parse_u64_field(line.substr(tab2 + 1), "wall time", path, line_no);
    COBRA_CHECK_MSG(costs.emplace(id, wall_us).second,
                    path << " line " << line_no << ": duplicate cell '"
                         << id << "'");
  }
  return costs;
}

std::vector<std::uint64_t> cell_costs(const std::vector<CellDef>& cells,
                                      const std::string& costs_path) {
  // No model (or none archived yet): empty — the caller slices round
  // robin. A file that exists but is corrupt fails loudly in
  // read_costs_file.
  if (costs_path.empty() || !std::filesystem::exists(costs_path))
    return {};
  const auto costs = read_costs_file(costs_path);
  std::vector<std::uint64_t> known;
  known.reserve(costs.size());
  for (const auto& [id, wall_us] : costs) known.push_back(wall_us);
  std::sort(known.begin(), known.end());
  // Cells the model does not know (the costs were archived at another
  // scale) default to the median known cost: deterministic, and neutral
  // under the heavy-tailed distributions the model exists for.
  const std::uint64_t fallback =
      known.empty() ? 1 : known[known.size() / 2];
  std::vector<std::uint64_t> per_cell(cells.size(), fallback);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto it = costs.find(cells[i].id);
    if (it != costs.end()) per_cell[i] = it->second;
  }
  return per_cell;
}

std::vector<std::vector<std::size_t>> partition_for(
    std::size_t num_cells, int count,
    const std::vector<std::uint64_t>& costs) {
  if (!costs.empty()) return weighted_shard_partition(costs, count);
  std::vector<std::vector<std::size_t>> partition;
  partition.reserve(static_cast<std::size_t>(count));
  for (int i = 1; i <= count; ++i)
    partition.push_back(shard_slice(num_cells, i, count));
  return partition;
}

std::vector<std::size_t> slice_for(const std::vector<CellDef>& cells,
                                   int index, int count,
                                   const std::string& costs_path) {
  const std::vector<std::uint64_t> costs = cell_costs(cells, costs_path);
  if (costs.empty()) return shard_slice(cells.size(), index, count);
  return weighted_shard_slice(costs, index, count);
}

SweepResult run_experiment(const ExperimentDef& def,
                           const SweepConfig& config) {
  COBRA_CHECK_MSG(config.shard_count >= 1 && config.shard_index >= 1 &&
                      config.shard_index <= config.shard_count,
                  "invalid shard " << config.shard_index << "/"
                                   << config.shard_count);

  const std::vector<CellDef> cells = enumerate_cells(def);
  const std::vector<std::size_t> slice = slice_for(
      cells, config.shard_index, config.shard_count, config.costs_path);

  // Fault injection for the supervisor's kill/reassign tests: when set,
  // the worker SIGKILLs itself after journaling this many cells — a
  // deterministic stand-in for a worker dying mid-shard.
  const std::int64_t kill_after_cells =
      util::env_int("COBRA_SWEEP_KILL_AFTER_CELLS", 0);

  // Canonical engine name (COBRA_ENGINE=fast journals as "auto", like the
  // --engine flag); also rejects an invalid session engine before any
  // cell runs rather than inside the first process construction.
  const std::string engine =
      core::engine_name(core::resolve_engine(core::Engine::kDefault));
  const JournalHeader header{def.name, config.shard_index,
                             config.shard_count, util::global_seed(),
                             util::scale(), engine,
                             util::kernel_threads()};
  const std::string journal_path = Journal::path_for(
      config.out_dir, def.name, config.shard_index, config.shard_count);

  std::size_t skip = 0;
  bool fresh = true;
  std::unique_ptr<Journal> journal;
  if (config.resume && std::filesystem::exists(journal_path)) {
    fresh = false;
    journal = std::make_unique<Journal>(
        Journal::resume(journal_path, header));
    check_journal_prefix(def, cells, slice, journal->entries(),
                         journal_path);
    for (const JournalEntry& entry : journal->entries()) {
      COBRA_CHECK_MSG(entry.rows_per_table.size() == def.tables.size(),
                      journal_path << ": entry '" << entry.cell_id
                                   << "' records " << entry.rows_per_table.size()
                                   << " tables, expected "
                                   << def.tables.size());
    }
    skip = journal->entries().size();
    // Reconcile fragments with the journal: a torn tail (crash between a
    // cell's flush and its journal line) is cut off so the resumed run
    // re-executes that cell exactly once.
    for (std::size_t t = 0; t < def.tables.size(); ++t) {
      const std::string path = fragment_path(
          config.out_dir, def.tables[t], config.shard_index,
          config.shard_count);
      const std::size_t expected = journal->journaled_rows(t);
      if (std::filesystem::exists(path)) {
        truncate_fragment(path, def.tables[t].columns, expected);
      } else {
        COBRA_CHECK_MSG(expected == 0,
                        path << " is missing but its journal records "
                             << expected << " rows");
      }
    }
  } else {
    // A fresh run (or --resume with nothing to resume) starts clean.
    journal =
        std::make_unique<Journal>(Journal::create(journal_path, header));
  }

  // Telemetry sidecar: one JSONL record per cell, appended write-ahead of
  // the journal line (a crash in between re-runs the cell and appends a
  // duplicate; readers keep the last record per cell). A fresh run clears
  // any stale sidecar; metrics-off runs write nothing.
  const util::MetricsMode metrics_mode = util::metrics_mode();
  const std::string sidecar_path = metrics_sidecar_path(
      config.out_dir, def.name, config.shard_index, config.shard_count);
  if (fresh) {
    std::error_code ec;
    std::filesystem::remove(sidecar_path, ec);
  }
  if (metrics_mode != util::MetricsMode::kOff) {
    // Discard whatever accumulated before this slice (registry state is
    // process-wide), so the first cell's record is not polluted.
    core::drain_cell_metrics();
  }

  std::vector<std::unique_ptr<util::CsvWriter>> writers;
  for (const TableDef& table : def.tables) {
    writers.push_back(std::make_unique<util::CsvWriter>(
        fragment_path(config.out_dir, table, config.shard_index,
                      config.shard_count),
        table.columns,
        fresh ? util::CsvWriter::Mode::kTruncate
              : util::CsvWriter::Mode::kAppend));
  }

  SweepResult result;
  result.cells_total = slice.size();
  result.cells_skipped = skip;

  std::vector<CellRows> executed;  // console replay on unsharded runs
  const bool keep_rows_in_memory =
      config.shard_count == 1 && config.console && skip == 0;

  for (std::size_t j = skip; j < slice.size(); ++j) {
    if (config.max_cells >= 0 &&
        result.cells_run >= static_cast<std::size_t>(config.max_cells)) {
      break;
    }
    const CellDef& cell = cells[slice[j]];
    if (config.log) {
      *config.log << "[" << (j + 1) << "/" << slice.size() << "] "
                  << def.name << "/" << cell.id << " ..." << std::flush;
    }
    // Liveness marker at cell start: the supervisor distinguishes a slow
    // worker (journal still grows at cell boundaries) from a wedged one.
    journal->heartbeat(cell.id);

    const auto cell_start = std::chrono::steady_clock::now();
    CellContext context(def.tables.size());
    cell.run(context);
    const auto cell_wall =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - cell_start);

    JournalEntry entry;
    entry.cell_id = cell.id;
    entry.wall_us = static_cast<std::uint64_t>(cell_wall.count());
    for (std::size_t t = 0; t < def.tables.size(); ++t) {
      for (const CellRow& row : context.tables()[t]) {
        writers[t]->row();
        for (const CellValue& value : row) writers[t]->add(value.csv_text);
      }
      writers[t]->flush();
      entry.rows_per_table.push_back(context.rows_in_table(t));
    }
    if (metrics_mode != util::MetricsMode::kOff) {
      core::CellMetrics cell_metrics = core::drain_cell_metrics();
      CellMetricsRecord record;
      record.cell_id = cell.id;
      record.mode = util::metrics_mode_name(metrics_mode);
      record.wall_us = entry.wall_us;
      record.snapshot = std::move(cell_metrics.snapshot);
      record.rounds = std::move(cell_metrics.rounds);
      append_metrics_record(sidecar_path, record);
    }
    // Rows are durable before the journal line: a crash in between makes
    // the cell re-run on resume, and the reconciliation above drops the
    // orphaned rows first.
    journal->record(entry);
    ++result.cells_run;
    result.wall_us_run += entry.wall_us;
    if (kill_after_cells > 0 &&
        result.cells_run >= static_cast<std::size_t>(kill_after_cells)) {
      std::raise(SIGKILL);  // fault injection: die hard, journal intact
    }

    if (config.log) {
      std::size_t rows = 0;
      for (const auto& table : context.tables()) rows += table.size();
      *config.log << " done (" << rows << " rows, "
                  << format_wall_time(entry.wall_us) << ")\n";
      for (const std::string& n : context.notes())
        *config.log << "    note: " << n << '\n';
    }
    if (keep_rows_in_memory) {
      executed.push_back(CellRows{cell.group,
                                  context.notes(),
                                  context.tables()});
    }
  }
  result.cells_remaining =
      slice.size() - result.cells_skipped - result.cells_run;

  for (auto& writer : writers) writer->close();

  if (result.complete() && config.shard_count == 1) {
    // Archive the cost model: the journal holds every cell's wall time,
    // and a later `--costs` run balances its shard slices with it.
    write_costs_file(costs_path_for(config.out_dir, def.name),
                     journal->entries());
    // Compact the sidecar into journal order: crash-duplicate records
    // collapse (last wins) and the archive becomes deterministic — the
    // same lines a sharded run's merged sidecar would hold.
    if (std::filesystem::exists(sidecar_path)) {
      std::vector<std::string> order;
      order.reserve(journal->entries().size());
      for (const JournalEntry& entry : journal->entries())
        order.push_back(entry.cell_id);
      write_metrics_sidecar(
          sidecar_path,
          order_records(read_metrics_sidecar(sidecar_path), order));
    }
  }

  if (result.complete() && config.shard_count == 1 && config.console) {
    const std::vector<std::string> summary =
        collect_summary_notes(def, config.out_dir);
    if (keep_rows_in_memory) {
      render_console(def, executed, summary);
    } else {
      // Some rows were restored from the journal, so replay the archive:
      // journal order is enumeration order, and each entry records how
      // many rows its cell contributed per table. Cell notes are not
      // journaled, so warn rather than silently diverging from an
      // uninterrupted run's output.
      std::vector<util::CsvTable> archives;
      for (std::size_t t = 0; t < def.tables.size(); ++t) {
        archives.push_back(util::read_csv(config.out_dir + "/" +
                                          def.tables[t].id + ".csv"));
        COBRA_CHECK_MSG(archives.back().num_rows() ==
                            journal->journaled_rows(t),
                        def.tables[t].id
                            << ".csv row count disagrees with the journal");
      }
      std::vector<std::size_t> cursor(def.tables.size(), 0);
      std::vector<CellRows> replay;
      for (std::size_t j = 0; j < journal->entries().size(); ++j) {
        const JournalEntry& entry = journal->entries()[j];
        CellRows cell;
        cell.group = cells[slice[j]].group;
        cell.tables.resize(def.tables.size());
        for (std::size_t t = 0; t < def.tables.size(); ++t) {
          for (std::size_t r = 0; r < entry.rows_per_table[t]; ++r) {
            CellRow row;
            for (const std::string& text :
                 archives[t].rows[cursor[t] + r])
              row.push_back(CellValue{text, text});
            cell.tables[t].push_back(std::move(row));
          }
          cursor[t] += entry.rows_per_table[t];
        }
        replay.push_back(std::move(cell));
      }
      std::vector<std::string> notes = summary;
      if (result.cells_skipped > 0) {
        notes.push_back(
            "(resumed run: values shown at archive precision; per-cell "
            "notes from the " + std::to_string(result.cells_skipped) +
            " cells completed by earlier invocations appeared in their "
            "own run logs and are not repeated here)");
      }
      render_console(def, replay, notes);
    }
  } else if (config.log && result.complete() && config.shard_count > 1) {
    *config.log << def.name << " shard " << config.shard_index << "/"
                << config.shard_count
                << " complete; run `cobra merge " << def.name
                << " --out-dir " << config.out_dir
                << "` once all shards finished\n";
  }
  return result;
}

MergeResult merge_experiment(const ExperimentDef& def,
                             const std::string& out_dir, std::ostream* log) {
  namespace fs = std::filesystem;

  // Discover this experiment's shard journals.
  int shard_count = 0;
  std::vector<std::string> journal_paths;
  {
    std::vector<std::pair<int, std::string>> found;  // (index, path)
    const std::string prefix = def.name + ".";
    COBRA_CHECK_MSG(fs::exists(out_dir),
                    "no such run directory: " << out_dir);
    for (const auto& entry : fs::directory_iterator(out_dir)) {
      const std::string file = entry.path().filename().string();
      if (file.rfind(prefix, 0) != 0) continue;
      if (entry.path().extension() != ".journal") continue;
      // <name>.<i>of<k>.journal
      const std::string spec = file.substr(
          prefix.size(), file.size() - prefix.size() - 8 /* ".journal" */);
      const auto of = spec.find("of");
      if (of == std::string::npos) continue;
      const int index = std::atoi(spec.substr(0, of).c_str());
      const int count = std::atoi(spec.substr(of + 2).c_str());
      if (index < 1 || count < 1) continue;
      COBRA_CHECK_MSG(shard_count == 0 || shard_count == count,
                      out_dir << " mixes journals of different shard "
                              << "counts for " << def.name);
      shard_count = count;
      found.emplace_back(index, entry.path().string());
    }
    COBRA_CHECK_MSG(!found.empty(),
                    "no journals for " << def.name << " under " << out_dir);
    std::sort(found.begin(), found.end());
    for (int i = 1; i <= shard_count; ++i) {
      COBRA_CHECK_MSG(static_cast<std::size_t>(i) <= found.size() &&
                          found[static_cast<std::size_t>(i) - 1].first == i,
                      "shard " << i << "/" << shard_count << " of "
                               << def.name << " has no journal in "
                               << out_dir);
      journal_paths.push_back(found[static_cast<std::size_t>(i) - 1].second);
    }
  }

  // All shards must come from one run configuration; adopt it (seed and
  // scale drive the enumeration we validate against).
  std::vector<std::vector<JournalEntry>> shard_entries;
  JournalHeader first_header;
  for (int s = 1; s <= shard_count; ++s) {
    auto [header, entries] =
        Journal::read(journal_paths[static_cast<std::size_t>(s) - 1]);
    if (s == 1) {
      first_header = header;
    } else {
      COBRA_CHECK_MSG(header.seed == first_header.seed &&
                          header.scale == first_header.scale &&
                          header.engine == first_header.engine,
                      def.name << " shards were run with different "
                               << "seed/scale/engine; refusing to merge");
    }
    COBRA_CHECK_MSG(header.experiment == def.name &&
                        header.shard_index == s,
                    journal_paths[static_cast<std::size_t>(s) - 1]
                        << ": unexpected journal header");
    shard_entries.push_back(std::move(entries));
  }
  util::set_seed_override(first_header.seed);
  util::set_scale_override(first_header.scale);
  util::set_engine_override(first_header.engine);  // banner fidelity

  const std::vector<CellDef> cells = enumerate_cells(def);

  // Map each shard's journaled cells onto the global enumeration. Merge
  // is deliberately slicing-agnostic: round-robin shards, cost-weighted
  // shards and any future deterministic partition all merge identically,
  // because every journal names its cells and the fragments follow
  // journal order. What must hold: each shard walks the enumeration
  // monotonically, and the shards together cover every cell exactly once.
  std::unordered_map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < cells.size(); ++i)
    index_of.emplace(cells[i].id, i);
  std::vector<int> owner(cells.size(), 0);  // journaling shard; 0 = none
  // entry_cells[s-1][j]: global cell index of shard s's j-th entry.
  std::vector<std::vector<std::size_t>> entry_cells(
      static_cast<std::size_t>(shard_count));
  for (int s = 1; s <= shard_count; ++s) {
    const auto& entries = shard_entries[static_cast<std::size_t>(s) - 1];
    const std::string& jpath =
        journal_paths[static_cast<std::size_t>(s) - 1];
    auto& mapped = entry_cells[static_cast<std::size_t>(s) - 1];
    for (const JournalEntry& entry : entries) {
      const auto it = index_of.find(entry.cell_id);
      COBRA_CHECK_MSG(it != index_of.end(),
                      jpath << " journals unknown cell '" << entry.cell_id
                            << "' — was it written at a different scale?");
      COBRA_CHECK_MSG(mapped.empty() || it->second > mapped.back(),
                      jpath << " journals '" << entry.cell_id
                            << "' out of enumeration order — was it "
                            << "written at a different scale or with a "
                            << "different --costs model?");
      COBRA_CHECK_MSG(owner[it->second] == 0,
                      def.name << " cell '" << entry.cell_id
                               << "' is journaled by both shard "
                               << owner[it->second] << " and shard " << s
                               << " — the shards were run with different "
                               << "slicings; refusing to merge");
      owner[it->second] = s;
      mapped.push_back(it->second);
    }
  }
  {
    std::size_t missing = 0;
    std::string first_missing;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (owner[i] != 0) continue;
      if (missing == 0) first_missing = cells[i].id;
      ++missing;
    }
    COBRA_CHECK_MSG(missing == 0,
                    def.name << " is incomplete: " << missing << " of "
                             << cells.size()
                             << " cells are journaled by no shard (first "
                             << "missing: '" << first_missing
                             << "'); resume the shards before merging");
  }

  MergeResult result;
  result.shard_count = shard_count;

  for (std::size_t t = 0; t < def.tables.size(); ++t) {
    const TableDef& table = def.tables[t];

    // Load fragments and cut them into per-cell chunks via the journals.
    // chunk[cell index in global enumeration] = that cell's rows.
    std::vector<std::vector<std::vector<std::string>>> chunks(cells.size());
    for (int s = 1; s <= shard_count; ++s) {
      const util::CsvTable fragment = util::read_csv(
          fragment_path(out_dir, table, s, shard_count));
      COBRA_CHECK_MSG(fragment.header == table.columns,
                      table.id << " shard " << s
                               << ": fragment header mismatch");
      const auto& entries = shard_entries[static_cast<std::size_t>(s) - 1];
      const auto& mapped = entry_cells[static_cast<std::size_t>(s) - 1];
      std::size_t cursor = 0;
      for (std::size_t j = 0; j < entries.size(); ++j) {
        COBRA_CHECK_MSG(t < entries[j].rows_per_table.size(),
                        def.name << " shard " << s << ": journal entry '"
                                 << entries[j].cell_id
                                 << "' lacks a count for table " << t);
        const std::size_t rows = entries[j].rows_per_table[t];
        COBRA_CHECK_MSG(cursor + rows <= fragment.num_rows(),
                        table.id << " shard " << s
                                 << ": fragment shorter than its journal");
        auto& chunk = chunks[mapped[j]];
        for (std::size_t r = 0; r < rows; ++r)
          chunk.push_back(fragment.rows[cursor + r]);
        cursor += rows;
      }
      COBRA_CHECK_MSG(cursor == fragment.num_rows(),
                      table.id << " shard " << s
                               << ": fragment has rows no journal entry "
                               << "accounts for");
    }

    // Emit in global enumeration order: byte-identical to an unsharded
    // run at the same seed/scale.
    util::CsvWriter writer(out_dir + "/" + table.id + ".csv",
                           table.columns);
    std::size_t rows = 0;
    for (const auto& chunk : chunks) {
      for (const auto& row : chunk) {
        writer.add_row(row);
        ++rows;
      }
    }
    writer.close();
    result.rows_per_table.push_back(rows);
    if (log) {
      *log << "merged " << table.id << ".csv: " << rows << " rows from "
           << shard_count << " shards\n";
    }
  }

  // Archive the cost model in enumeration order: per-cell wall times for
  // weighted re-sharding (`--costs`) of the next run at this scale.
  {
    std::vector<const JournalEntry*> by_cell(cells.size(), nullptr);
    for (int s = 1; s <= shard_count; ++s) {
      const auto& entries = shard_entries[static_cast<std::size_t>(s) - 1];
      const auto& mapped = entry_cells[static_cast<std::size_t>(s) - 1];
      for (std::size_t j = 0; j < entries.size(); ++j)
        by_cell[mapped[j]] = &entries[j];
    }
    std::vector<JournalEntry> ordered;
    ordered.reserve(by_cell.size());
    for (const JournalEntry* entry : by_cell) ordered.push_back(*entry);
    write_costs_file(costs_path_for(out_dir, def.name), ordered);
  }

  // Merge the metrics sidecars the same way the fragments merged: every
  // shard's records concatenated, deduplicated (last record per cell) and
  // re-ordered by the global cell enumeration into the canonical
  // <experiment>.metrics.jsonl. Shards that ran with metrics off simply
  // contribute nothing.
  {
    std::vector<CellMetricsRecord> records;
    for (int s = 1; s <= shard_count; ++s) {
      std::vector<CellMetricsRecord> shard_records = read_metrics_sidecar(
          metrics_sidecar_path(out_dir, def.name, s, shard_count));
      for (CellMetricsRecord& record : shard_records)
        records.push_back(std::move(record));
    }
    if (!records.empty()) {
      std::vector<std::string> order;
      order.reserve(cells.size());
      for (const CellDef& cell : cells) order.push_back(cell.id);
      records = order_records(std::move(records), order);
      write_metrics_sidecar(
          metrics_sidecar_path(out_dir, def.name, 1, 1), records);
      if (log) {
        *log << "merged " << def.name << ".metrics.jsonl: "
             << records.size() << " cell records from " << shard_count
             << " shards\n";
      }
    }
  }

  // Journal v3 cost summary: where the run's wall time went (the input
  // to cost-model shard balancing, see ROADMAP). Totals and the top-3
  // slowest cells are returned so `cobra sweep` can surface them in its
  // completion output.
  {
    std::vector<std::pair<std::uint64_t, const JournalEntry*>> by_cost;
    for (const auto& entries : shard_entries) {
      for (const JournalEntry& entry : entries) {
        result.total_wall_us += entry.wall_us;
        by_cost.emplace_back(entry.wall_us, &entry);
      }
    }
    result.cells = by_cost.size();
    std::sort(by_cost.begin(), by_cost.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t i = 0; i < by_cost.size() && i < 3; ++i)
      result.slowest.emplace_back(by_cost[i].second->cell_id,
                                  by_cost[i].first);
  }
  if (log) {
    *log << "cell wall time: " << format_wall_time(result.total_wall_us)
         << " across " << result.cells << " cells";
    if (!result.slowest.empty() && result.total_wall_us > 0) {
      *log << "; slowest:";
      for (std::size_t i = 0; i < result.slowest.size(); ++i) {
        *log << (i ? ", " : " ") << result.slowest[i].first << " ("
             << format_wall_time(result.slowest[i].second) << ")";
      }
    }
    *log << '\n';
    for (const std::string& n : collect_summary_notes(def, out_dir))
      *log << "  * " << n << '\n';
  }
  return result;
}

}  // namespace cobra::runner
