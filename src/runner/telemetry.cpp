#include "runner/telemetry.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "runner/journal.hpp"
#include "runner/sweep.hpp"
#include "util/assert.hpp"

namespace cobra::runner {

namespace {

namespace fs = std::filesystem;

/// Strict full-token signed parse for status-file fields (pids may be -1).
std::int64_t parse_i64_field(const std::string& token, const char* field,
                             const std::string& path, std::size_t line_no) {
  char* end = nullptr;
  const std::int64_t value = std::strtoll(token.c_str(), &end, 10);
  COBRA_CHECK_MSG(!token.empty() && end == token.c_str() + token.size(),
                  path << " line " << line_no << ": " << field
                       << " is not a number: '" << token << "'");
  return value;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const auto tab = line.find('\t', start);
    fields.push_back(line.substr(start, tab - start));
    if (tab == std::string::npos) return fields;
    start = tab + 1;
  }
}

/// Atomic rewrite shared by the sidecar compactor and the status writer:
/// a reader never observes a torn file, only the old or the new one.
void write_atomically(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    COBRA_CHECK_MSG(out.good(), "cannot write " << tmp);
    out << content;
    out.flush();
    COBRA_CHECK_MSG(out.good(), "failed writing " << tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  COBRA_CHECK_MSG(!ec,
                  "cannot rename " << tmp << " -> " << path << ": "
                                   << ec.message());
}

/// `<experiment>.<i>of<k>` shard spec parsed off a journal/sidecar file
/// name; false when `stem` does not match the pattern.
bool parse_shard_stem(const std::string& stem, std::string& experiment,
                      int& index, int& count) {
  const auto dot = stem.rfind('.');
  if (dot == std::string::npos || dot == 0) return false;
  const std::string spec = stem.substr(dot + 1);
  const auto of = spec.find("of");
  if (of == std::string::npos || of == 0) return false;
  char* end = nullptr;
  const std::string left = spec.substr(0, of);
  const std::string right = spec.substr(of + 2);
  index = static_cast<int>(std::strtol(left.c_str(), &end, 10));
  if (end != left.c_str() + left.size()) return false;
  count = static_cast<int>(std::strtol(right.c_str(), &end, 10));
  if (end != right.c_str() + right.size()) return false;
  if (index < 1 || count < 1 || index > count) return false;
  experiment = stem.substr(0, dot);
  return true;
}

}  // namespace

std::string metrics_sidecar_path(const std::string& out_dir,
                                 const std::string& experiment,
                                 int shard_index, int shard_count) {
  if (shard_count == 1) return out_dir + "/" + experiment + ".metrics.jsonl";
  std::ostringstream os;
  os << out_dir << '/' << experiment << '.' << shard_index << "of"
     << shard_count << ".metrics.jsonl";
  return os.str();
}

std::string record_to_jsonl(const CellMetricsRecord& record) {
  std::ostringstream os;
  os << "{\"v\":" << kMetricsSidecarVersion
     << ",\"cell\":" << util::json_quote(record.cell_id)
     << ",\"mode\":" << util::json_quote(record.mode)
     << ",\"wall_us\":" << record.wall_us;
  if (!record.snapshot.empty())
    os << ",\"metrics\":" << util::snapshot_to_json(record.snapshot);
  if (!record.rounds.empty()) {
    os << ",\"rounds\":[";
    for (std::size_t i = 0; i < record.rounds.size(); ++i) {
      const core::RoundStat& r = record.rounds[i];
      os << (i ? "," : "") << '[' << r.processes << ',' << r.frontier << ','
         << r.newly << ',' << r.dense << ']';
    }
    os << ']';
  }
  os << '}';
  return os.str();
}

CellMetricsRecord record_from_jsonl(std::string_view line) {
  const util::JsonValue doc = util::parse_json(line);
  COBRA_CHECK_MSG(doc.type == util::JsonValue::Type::kObject,
                  "metrics sidecar line is not a JSON object");
  COBRA_CHECK_MSG(doc.uint_or("v", 0) == kMetricsSidecarVersion,
                  "metrics sidecar line has unsupported version "
                      << doc.uint_or("v", 0) << " (expected "
                      << kMetricsSidecarVersion << ")");
  CellMetricsRecord record;
  const util::JsonValue* cell = doc.find("cell");
  COBRA_CHECK_MSG(cell != nullptr &&
                      cell->type == util::JsonValue::Type::kString,
                  "metrics sidecar line lacks a \"cell\" id");
  record.cell_id = cell->text;
  if (const util::JsonValue* mode = doc.find("mode");
      mode != nullptr && mode->type == util::JsonValue::Type::kString)
    record.mode = mode->text;
  record.wall_us = doc.uint_or("wall_us", 0);
  if (const util::JsonValue* metrics = doc.find("metrics");
      metrics != nullptr)
    record.snapshot = util::snapshot_from_json_value(*metrics);
  if (const util::JsonValue* rounds = doc.find("rounds");
      rounds != nullptr) {
    COBRA_CHECK_MSG(rounds->type == util::JsonValue::Type::kArray,
                    "metrics sidecar \"rounds\" is not an array");
    record.rounds.reserve(rounds->array.size());
    for (const util::JsonValue& entry : rounds->array) {
      COBRA_CHECK_MSG(entry.type == util::JsonValue::Type::kArray &&
                          entry.array.size() == 4,
                      "metrics sidecar round entry is not a 4-tuple");
      core::RoundStat stat;
      stat.processes = entry.array[0].number;
      stat.frontier = entry.array[1].number;
      stat.newly = entry.array[2].number;
      stat.dense = entry.array[3].number;
      record.rounds.push_back(stat);
    }
  }
  return record;
}

std::vector<CellMetricsRecord> read_metrics_sidecar(
    const std::string& path) {
  std::vector<CellMetricsRecord> records;
  std::ifstream in(path);
  if (!in.good()) return records;  // metrics-off runs write no sidecar
  std::string line;
  std::size_t line_no = 0;
  std::unordered_map<std::string, std::size_t> last;  // cell -> index
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    CellMetricsRecord record;
    try {
      record = record_from_jsonl(line);
    } catch (const util::CheckError& e) {
      COBRA_CHECK_MSG(false,
                      path << " line " << line_no << ": " << e.what());
    }
    const auto it = last.find(record.cell_id);
    if (it != last.end()) {
      // A crash between the sidecar append and the journal line made the
      // resumed run re-run (and re-append) the cell: last record wins.
      records[it->second] = std::move(record);
    } else {
      last.emplace(record.cell_id, records.size());
      records.push_back(std::move(record));
    }
  }
  return records;
}

void write_metrics_sidecar(const std::string& path,
                           const std::vector<CellMetricsRecord>& records) {
  std::ostringstream os;
  for (const CellMetricsRecord& record : records)
    os << record_to_jsonl(record) << '\n';
  write_atomically(path, os.str());
}

void append_metrics_record(const std::string& path,
                           const CellMetricsRecord& record) {
  std::ofstream out(path, std::ios::app | std::ios::binary);
  COBRA_CHECK_MSG(out.good(), "cannot append to metrics sidecar " << path);
  out << record_to_jsonl(record) << '\n';
  out.flush();
  COBRA_CHECK_MSG(out.good(), "failed writing metrics sidecar " << path);
}

std::vector<CellMetricsRecord> order_records(
    std::vector<CellMetricsRecord> records,
    const std::vector<std::string>& cell_order) {
  std::unordered_map<std::string, std::size_t> rank;
  rank.reserve(cell_order.size());
  for (std::size_t i = 0; i < cell_order.size(); ++i)
    rank.emplace(cell_order[i], i);
  // Last record per cell wins (mirrors read_metrics_sidecar, for callers
  // concatenating several sidecars), unknown cells drop.
  std::unordered_map<std::string, std::size_t> last;
  std::vector<CellMetricsRecord> kept;
  for (CellMetricsRecord& record : records) {
    if (rank.find(record.cell_id) == rank.end()) continue;
    const auto it = last.find(record.cell_id);
    if (it != last.end()) {
      kept[it->second] = std::move(record);
    } else {
      last.emplace(record.cell_id, kept.size());
      kept.push_back(std::move(record));
    }
  }
  std::sort(kept.begin(), kept.end(),
            [&](const CellMetricsRecord& a, const CellMetricsRecord& b) {
              return rank.at(a.cell_id) < rank.at(b.cell_id);
            });
  return kept;
}

std::string sweep_status_path(const std::string& out_dir,
                              const std::string& experiment) {
  return out_dir + "/" + experiment + ".sweep.status";
}

void write_sweep_status(const std::string& path,
                        const SweepStatus& status) {
  std::ostringstream os;
  os << "cobra-sweep-status\tv1\n";
  os << "run\t" << status.experiment << '\t' << status.shard_count << '\n';
  for (const ShardStatus& shard : status.shards) {
    os << "shard\t" << shard.index << '\t' << shard.pid << '\t'
       << shard.restarts << '\t' << shard.wedges << '\t' << shard.state
       << '\t' << shard.cells_done << '\t' << shard.cells_total << '\n';
  }
  write_atomically(path, os.str());
}

std::optional<SweepStatus> read_sweep_status(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  std::string line;
  COBRA_CHECK_MSG(std::getline(in, line) && line == "cobra-sweep-status\tv1",
                  path << " line 1: not a cobra-sweep-status v1 file");
  SweepStatus status;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_tabs(line);
    if (fields[0] == "run") {
      COBRA_CHECK_MSG(fields.size() == 3,
                      path << " line " << line_no << ": malformed run line");
      status.experiment = fields[1];
      status.shard_count = static_cast<int>(
          parse_i64_field(fields[2], "shard count", path, line_no));
    } else if (fields[0] == "shard") {
      COBRA_CHECK_MSG(fields.size() == 8,
                      path << " line " << line_no
                           << ": malformed shard line");
      ShardStatus shard;
      shard.index = static_cast<int>(
          parse_i64_field(fields[1], "shard index", path, line_no));
      shard.pid = parse_i64_field(fields[2], "pid", path, line_no);
      shard.restarts = static_cast<int>(
          parse_i64_field(fields[3], "restarts", path, line_no));
      shard.wedges = static_cast<int>(
          parse_i64_field(fields[4], "wedges", path, line_no));
      shard.state = fields[5];
      shard.cells_done =
          parse_u64_field(fields[6], "cells done", path, line_no);
      shard.cells_total =
          parse_u64_field(fields[7], "cells total", path, line_no);
      status.shards.push_back(std::move(shard));
    } else {
      COBRA_CHECK_MSG(false, path << " line " << line_no
                                  << ": unknown record '" << fields[0]
                                  << "'");
    }
  }
  return status;
}

std::string last_journal_cell(const std::string& journal_path) {
  std::ifstream in(journal_path);
  if (!in.good()) return "";
  std::string line;
  std::string last;
  while (std::getline(in, line)) {
    const auto tab = line.find('\t');
    if (tab == std::string::npos) continue;
    const std::string kind = line.substr(0, tab);
    if (kind != "heartbeat" && kind != "cell") continue;
    const auto next = line.find('\t', tab + 1);
    last = line.substr(tab + 1, next - tab - 1);
  }
  return last;
}

namespace {

/// One discovered run: every shard journal of one experiment.
struct RunFiles {
  int shard_count = 0;
  std::vector<std::pair<int, std::string>> journals;  // (index, path)
};

/// Journals under `out_dir`, grouped by experiment name.
std::map<std::string, RunFiles> discover_runs(const std::string& out_dir) {
  std::map<std::string, RunFiles> runs;
  if (!fs::exists(out_dir)) return runs;
  for (const auto& entry : fs::directory_iterator(out_dir)) {
    if (entry.path().extension() != ".journal") continue;
    std::string experiment;
    int index = 0, count = 0;
    if (!parse_shard_stem(entry.path().stem().string(), experiment, index,
                          count))
      continue;
    RunFiles& run = runs[experiment];
    // Mixed shard counts (a stale 1of1 beside a sweep) render the larger
    // fleet; the merge rejects such directories loudly, the viewer just
    // shows what is there.
    if (count > run.shard_count) run.shard_count = count;
    run.journals.emplace_back(index, entry.path().string());
  }
  for (auto& [experiment, run] : runs)
    std::sort(run.journals.begin(), run.journals.end());
  return runs;
}

}  // namespace

std::size_t render_fleet_status(const std::string& out_dir,
                                std::ostream& out) {
  const std::map<std::string, RunFiles> runs = discover_runs(out_dir);
  for (const auto& [experiment, run] : runs) {
    const std::optional<SweepStatus> status =
        read_sweep_status(sweep_status_path(out_dir, experiment));

    // Completed cells and their costs, per shard and in total.
    std::unordered_set<std::string> completed;
    std::size_t done_total = 0;
    std::uint64_t spent_us = 0;
    struct ShardView {
      int index = 0;
      std::size_t done = 0;
      std::string last_cell;
    };
    std::vector<ShardView> shards;
    for (const auto& [index, path] : run.journals) {
      const auto [header, entries] = Journal::read(path);
      ShardView view;
      view.index = index;
      view.done = entries.size();
      view.last_cell = last_journal_cell(path);
      done_total += entries.size();
      for (const JournalEntry& entry : entries) {
        completed.insert(entry.cell_id);
        spent_us += entry.wall_us;
      }
      shards.push_back(std::move(view));
    }

    // ETA from the archived cost model: the summed cost of every cell
    // the model knows that no journal has completed yet, split across
    // the shards still working.
    std::uint64_t remaining_us = 0;
    bool have_model = false;
    std::size_t cells_known = 0;
    const std::string costs = costs_path_for(out_dir, experiment);
    if (fs::exists(costs)) {
      have_model = true;
      for (const auto& [cell, wall_us] : read_costs_file(costs)) {
        ++cells_known;
        if (completed.find(cell) == completed.end())
          remaining_us += wall_us;
      }
    }

    std::size_t total_cells = 0;
    for (const ShardView& view : shards) {
      std::size_t shard_total = 0;
      if (status) {
        for (const ShardStatus& s : status->shards)
          if (s.index == view.index) shard_total = s.cells_total;
      }
      total_cells += shard_total;
    }
    if (total_cells == 0 && have_model) total_cells = cells_known;

    std::size_t active = 0;
    for (const ShardView& view : shards) {
      std::size_t shard_total = 0;
      if (status) {
        for (const ShardStatus& s : status->shards)
          if (s.index == view.index) shard_total = s.cells_total;
      }
      if (shard_total == 0 || view.done < shard_total) ++active;
    }
    if (active == 0) active = 1;

    out << experiment << ": " << done_total;
    if (total_cells > 0) {
      out << "/" << total_cells << " cells ("
          << (100 * done_total / std::max<std::size_t>(total_cells, 1))
          << "%)";
    } else {
      out << " cells done";
    }
    out << ", " << run.journals.size() << " shard"
        << (run.journals.size() == 1 ? "" : "s")
        << ", spent " << format_wall_time(spent_us);
    if (have_model) {
      if (remaining_us == 0) {
        out << ", complete";
      } else {
        out << ", ETA ~"
            << format_wall_time(remaining_us /
                                static_cast<std::uint64_t>(active));
      }
    }
    out << '\n';

    for (const ShardView& view : shards) {
      out << "  shard " << view.index << "/" << run.shard_count << ": "
          << view.done;
      const ShardStatus* s = nullptr;
      if (status) {
        for (const ShardStatus& candidate : status->shards)
          if (candidate.index == view.index) s = &candidate;
      }
      if (s != nullptr && s->cells_total > 0) out << "/" << s->cells_total;
      out << " cells";
      if (s != nullptr) {
        out << ", " << s->state;
        if (s->pid > 0 && s->state == "running")
          out << " (pid " << s->pid << ")";
        if (s->restarts > 0) {
          out << ", " << s->restarts << " respawn"
              << (s->restarts == 1 ? "" : "s");
          if (s->wedges > 0)
            out << " (" << s->wedges << " wedge"
                << (s->wedges == 1 ? "" : "s") << ")";
        }
      }
      if (!view.last_cell.empty()) out << ", last: " << view.last_cell;
      out << '\n';
    }
  }
  return runs.size();
}

namespace {

/// Right-pads or left-pads `text` to `width`.
std::string pad(const std::string& text, std::size_t width, bool left) {
  if (text.size() >= width) return text;
  const std::string fill(width - text.size(), ' ');
  return left ? text + fill : fill + text;
}

/// Prints `rows` (first row = header) with aligned columns: the first
/// column left-aligned, the rest right-aligned.
void print_table(const std::vector<std::vector<std::string>>& rows,
                 std::ostream& out) {
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  for (const auto& row : rows) {
    out << "  ";
    for (std::size_t c = 0; c < row.size(); ++c)
      out << (c ? "  " : "") << pad(row[c], widths[c], c == 0);
    out << '\n';
  }
}

}  // namespace

std::size_t render_metrics_report(const std::string& out_dir,
                                  std::ostream& out) {
  // Canonical sidecars first (merged/compacted), shard fragments only
  // for experiments that have no canonical file yet (mid-sweep).
  std::vector<std::string> paths;
  std::unordered_set<std::string> canonical;
  if (fs::exists(out_dir)) {
    std::vector<std::string> fragments;
    for (const auto& entry : fs::directory_iterator(out_dir)) {
      const std::string file = entry.path().filename().string();
      constexpr std::string_view suffix = ".metrics.jsonl";
      if (file.size() <= suffix.size() ||
          file.compare(file.size() - suffix.size(), suffix.size(),
                       suffix) != 0)
        continue;
      const std::string stem = file.substr(0, file.size() - suffix.size());
      std::string experiment;
      int index = 0, count = 0;
      if (parse_shard_stem(stem, experiment, index, count)) {
        fragments.push_back(entry.path().string());
      } else {
        canonical.insert(stem);
        paths.push_back(entry.path().string());
      }
    }
    for (std::string& path : fragments) {
      constexpr std::string_view suffix = ".metrics.jsonl";
      const std::string file = fs::path(path).filename().string();
      std::string experiment;
      int index = 0, count = 0;
      parse_shard_stem(file.substr(0, file.size() - suffix.size()),
                       experiment, index, count);
      if (canonical.find(experiment) == canonical.end())
        paths.push_back(std::move(path));
    }
  }
  std::sort(paths.begin(), paths.end());

  // The headline kernel columns; everything else folds into the summary
  // line below the table.
  struct Column {
    const char* header;
    const char* metric;
  };
  static constexpr Column kColumns[] = {
      {"rounds", "kernel.rounds"},
      {"dense", "kernel.rounds_dense"},
      {"switches", "kernel.mode_switches"},
      {"peak-frontier", "kernel.frontier_peak"},
      {"first-visits", "kernel.first_visits"},
      {"emissions", "kernel.emissions"},
      {"dedup", "kernel.dedup_hits"},
  };

  std::size_t rendered = 0;
  for (const std::string& path : paths) {
    const std::vector<CellMetricsRecord> records =
        read_metrics_sidecar(path);
    if (records.empty()) continue;
    ++rendered;
    out << fs::path(path).filename().string() << ": " << records.size()
        << " cells (mode " << records.front().mode << ")\n";

    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> header{"cell", "wall"};
    for (const Column& column : kColumns) header.push_back(column.header);
    rows.push_back(std::move(header));

    util::MetricsSnapshot totals;
    std::uint64_t wall_total = 0;
    std::uint64_t rounds_recorded = 0;
    for (const CellMetricsRecord& record : records) {
      std::vector<std::string> row{record.cell_id,
                                   format_wall_time(record.wall_us)};
      for (const Column& column : kColumns)
        row.push_back(
            std::to_string(record.snapshot.value_of(column.metric)));
      rows.push_back(std::move(row));
      totals = util::merge(totals, record.snapshot);
      wall_total += record.wall_us;
      rounds_recorded += record.rounds.size();
    }
    std::vector<std::string> total_row{"(total)",
                                       format_wall_time(wall_total)};
    for (const Column& column : kColumns)
      total_row.push_back(std::to_string(totals.value_of(column.metric)));
    rows.push_back(std::move(total_row));
    print_table(rows, out);

    // Everything the table does not show, folded across all cells.
    std::ostringstream others;
    for (const util::MetricValue& value : totals.values) {
      if (value.kind == util::MetricKind::kHistogram) continue;
      bool shown = false;
      for (const Column& column : kColumns)
        if (value.name == column.metric) shown = true;
      if (shown || value.name == "kernel.frontier_sum" ||
          value.name == "kernel.draw_streams" ||
          value.name == "kernel.words_scanned" ||
          value.name == "kernel.merged_words")
        continue;
      others << ' ' << value.name << '=' << value.value;
    }
    if (!others.str().empty()) out << "  other:" << others.str() << '\n';
    if (rounds_recorded > 0)
      out << "  per-round trajectories: " << rounds_recorded
          << " rounds archived across " << records.size() << " cells\n";
  }
  return rendered;
}

}  // namespace cobra::runner
