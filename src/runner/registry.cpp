#include "runner/registry.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cobra::runner {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(ExperimentDef def) {
  COBRA_CHECK_MSG(!def.name.empty(), "experiment must be named");
  COBRA_CHECK_MSG(!def.tables.empty(),
                  "experiment " << def.name << " declares no tables");
  COBRA_CHECK_MSG(static_cast<bool>(def.cells),
                  "experiment " << def.name << " has no cell enumerator");
  COBRA_CHECK_MSG(find(def.name) == nullptr,
                  "duplicate experiment name " << def.name);
  experiments_.push_back(std::move(def));
}

std::vector<const ExperimentDef*> Registry::all() const {
  return match("");
}

std::vector<const ExperimentDef*> Registry::match(
    std::string_view filter) const {
  std::vector<const ExperimentDef*> out;
  for (const ExperimentDef& def : experiments_) {
    if (filter.empty() || def.name.find(filter) != std::string::npos)
      out.push_back(&def);
  }
  std::sort(out.begin(), out.end(),
            [](const ExperimentDef* a, const ExperimentDef* b) {
              return a->name < b->name;
            });
  return out;
}

const ExperimentDef* Registry::find(std::string_view name) const {
  for (const ExperimentDef& def : experiments_) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

std::vector<std::size_t> shard_slice(std::size_t num_cells, int index,
                                     int count) {
  COBRA_CHECK_MSG(count >= 1 && index >= 1 && index <= count,
                  "invalid shard " << index << "/" << count);
  std::vector<std::size_t> slice;
  for (std::size_t i = static_cast<std::size_t>(index - 1); i < num_cells;
       i += static_cast<std::size_t>(count)) {
    slice.push_back(i);
  }
  return slice;
}

std::vector<std::vector<std::size_t>> weighted_shard_partition(
    const std::vector<std::uint64_t>& costs, int count) {
  COBRA_CHECK_MSG(count >= 1, "invalid shard count " << count);
  std::vector<std::size_t> order(costs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Decreasing cost; stable_sort pins the tie order to the enumeration.
  std::stable_sort(order.begin(), order.end(),
                   [&costs](std::size_t a, std::size_t b) {
                     return costs[a] > costs[b];
                   });

  std::vector<std::uint64_t> load(static_cast<std::size_t>(count), 0);
  std::vector<std::vector<std::size_t>> partition(
      static_cast<std::size_t>(count));
  for (const std::size_t cell : order) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < load.size(); ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    load[lightest] += costs[cell];
    partition[lightest].push_back(cell);
  }
  for (auto& slice : partition) std::sort(slice.begin(), slice.end());
  return partition;
}

std::vector<std::size_t> weighted_shard_slice(
    const std::vector<std::uint64_t>& costs, int index, int count) {
  COBRA_CHECK_MSG(count >= 1 && index >= 1 && index <= count,
                  "invalid shard " << index << "/" << count);
  return weighted_shard_partition(costs, count)[
      static_cast<std::size_t>(index - 1)];
}

}  // namespace cobra::runner
