// Sharded, resumable execution of registered experiments, plus the merge
// that reassembles shard fragments into the canonical archives and the
// per-cell cost model (`<experiment>.costs`) that weighted re-sharding
// feeds on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "runner/journal.hpp"
#include "runner/registry.hpp"

namespace cobra::runner {

/// Execution parameters for one run_experiment() invocation.
struct SweepConfig {
  std::string out_dir = "bench_results";  ///< fragment/journal directory
  int shard_index = 1;                    ///< 1-based shard i of i/k
  int shard_count = 1;                    ///< shard count k
  bool resume = false;                    ///< continue an existing journal
  /// Stop after this many cells (negative: unlimited). The journal keeps
  /// the run resumable, so chunked execution composes with --resume.
  std::int64_t max_cells = -1;
  /// Render the console tables when an unsharded run completes.
  bool console = true;
  /// Progress log (one line per cell); nullptr silences it.
  std::ostream* log = nullptr;
  /// Cost-model file for weighted shard slicing ("" = round-robin). Every
  /// shard of one run — and every resume of a shard — must use the same
  /// file content, or the journal prefix check refuses to continue.
  std::string costs_path;
};

/// What one run_experiment() invocation did.
struct SweepResult {
  std::size_t cells_total = 0;      ///< cells in this shard's slice
  std::size_t cells_run = 0;        ///< executed by this invocation
  std::size_t cells_skipped = 0;    ///< journaled by a previous invocation
  std::size_t cells_remaining = 0;  ///< left behind by --max-cells
  /// Summed cell body wall time of the cells this invocation ran, µs.
  std::uint64_t wall_us_run = 0;
  /// True when the shard's slice is fully journaled.
  [[nodiscard]] bool complete() const { return cells_remaining == 0; }
};

/// Runs the shard's slice of `def`, journaling each completed cell and
/// appending its rows to the shard's CSV fragments. With resume enabled an
/// existing journal is continued: completed cells are skipped and torn
/// fragment tails (crash between flush and journal) are truncated first.
/// Unsharded complete runs write the canonical <table>.csv directly and,
/// when configured, print the familiar console tables.
SweepResult run_experiment(const ExperimentDef& def,
                           const SweepConfig& config);

/// What merge_experiment() reassembled.
struct MergeResult {
  int shard_count = 0;  ///< k of the merged run
  std::vector<std::size_t> rows_per_table;  ///< data rows per canonical CSV
  std::size_t cells = 0;            ///< journaled cells across all shards
  std::uint64_t total_wall_us = 0;  ///< summed cell body wall time, µs
  /// The (up to) three slowest cells, heaviest first: (cell id, wall µs).
  /// Callers surface these — humanized via format_wall_time — in sweep
  /// completion output.
  std::vector<std::pair<std::string, std::uint64_t>> slowest;
};

/// Discovers the shard journals of `def` under `out_dir`, validates that
/// they form one complete run (consistent k, shards 1..k, matching
/// seed/scale, every slice fully journaled), and stitches the fragments
/// into canonical <table>.csv files in cell-enumeration order — so the
/// merged archive is byte-identical to an unsharded run. Prints the
/// experiment's summary notes to `log`.
MergeResult merge_experiment(const ExperimentDef& def,
                             const std::string& out_dir, std::ostream* log);

/// The fragment CSV path for one table of one shard; shard 1/1 is the
/// canonical <out_dir>/<table id>.csv itself.
std::string fragment_path(const std::string& out_dir, const TableDef& table,
                          int shard_index, int shard_count);

/// Where a run archives its per-cell cost model:
/// `<out_dir>/<experiment>.costs`. Written by a completed unsharded run
/// and by merge_experiment(); consumed by slice_for() via --costs.
std::string costs_path_for(const std::string& out_dir,
                           const std::string& experiment);

/// Writes a cost-model file: a `cobra-costs\tv1` header followed by one
/// `cell\t<cell id>\t<wall µs>` line per journaled cell.
void write_costs_file(const std::string& path,
                      const std::vector<JournalEntry>& entries);

/// Parses a cost-model file into cell id → wall µs. Fails (CheckError)
/// with the path and line number on malformed content or duplicate ids.
std::map<std::string, std::uint64_t> read_costs_file(
    const std::string& path);

/// Per-cell costs (wall µs) aligned with `cells`, read from `costs_path`:
/// archived values where the model knows the cell, the median known cost
/// elsewhere (the model was archived at another scale). Empty when the
/// path is empty or the file does not exist yet — the round-robin
/// fallback. A file that exists but is corrupt fails loudly.
std::vector<std::uint64_t> cell_costs(const std::vector<CellDef>& cells,
                                      const std::string& costs_path);

/// All `count` slices over `num_cells` cells at once: the weighted LPT
/// partition when `costs` (a cell_costs() result) is non-empty, the
/// round-robin one otherwise. Element i is shard i+1's slice.
std::vector<std::vector<std::size_t>> partition_for(
    std::size_t num_cells, int count,
    const std::vector<std::uint64_t>& costs);

/// The slice of `cells` owned by shard `index`/`count`:
/// weighted_shard_slice over cell_costs() when a model is available,
/// classic round-robin shard_slice otherwise.
std::vector<std::size_t> slice_for(const std::vector<CellDef>& cells,
                                   int index, int count,
                                   const std::string& costs_path);

/// Human-readable wall time for journal cost summaries: "734 µs",
/// "12.3 ms", "4.56 s", "3.2 min".
std::string format_wall_time(std::uint64_t wall_us);

}  // namespace cobra::runner
