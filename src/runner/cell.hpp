// The row buffer a cell body writes into.
//
// Mirrors sim::Experiment's fluent add() interface, but keeps every cell
// as (console text, CSV text) pairs in memory instead of streaming to
// disk: the sweep layer flushes a cell's rows and journals the cell as one
// atomic unit, which is what makes interrupted shards resumable without
// duplicated or torn rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cobra::runner {

/// One table cell, formatted for both output channels (the console shows
/// per-column decimals, the CSV archives six).
struct CellValue {
  std::string console_text;
  std::string csv_text;
};

using CellRow = std::vector<CellValue>;

class CellContext {
 public:
  explicit CellContext(std::size_t num_tables);

  /// Targets subsequent row()/add() calls at table `index` (default 0).
  CellContext& table(std::size_t index);

  CellContext& row();
  CellContext& add(const std::string& cell);
  CellContext& add(const char* cell);
  CellContext& add(double value, int decimals = 3);
  CellContext& add(std::int64_t value);
  CellContext& add(std::uint64_t value);
  CellContext& add(int value) { return add(static_cast<std::int64_t>(value)); }

  /// Cell-local observation (e.g. "3 timeouts!"); printed with the cell's
  /// progress line and, on unsharded runs, under the table.
  void note(const std::string& text);

  [[nodiscard]] const std::vector<std::vector<CellRow>>& tables() const {
    return tables_;
  }
  [[nodiscard]] const std::vector<std::string>& notes() const {
    return notes_;
  }

  /// Rows buffered for table `index`.
  [[nodiscard]] std::size_t rows_in_table(std::size_t index) const {
    return tables_[index].size();
  }

 private:
  std::vector<std::vector<CellRow>> tables_;  // [table][row][cell]
  std::vector<std::string> notes_;
  std::size_t current_table_ = 0;
  bool row_open_ = false;
};

}  // namespace cobra::runner
