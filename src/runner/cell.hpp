// The row buffer a cell body writes into.
//
// Mirrors sim::Experiment's fluent add() interface, but keeps every cell
// as (console text, CSV text) pairs in memory instead of streaming to
// disk: the sweep layer flushes a cell's rows and journals the cell as one
// atomic unit, which is what makes interrupted shards resumable without
// duplicated or torn rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cobra::runner {

/// One table cell, formatted for both output channels (the console shows
/// per-column decimals, the CSV archives six).
struct CellValue {
  std::string console_text;  ///< rendering in the console table
  std::string csv_text;      ///< rendering in the CSV archive
};

/// One buffered table row.
using CellRow = std::vector<CellValue>;

/// The row buffer a registered cell body writes its results into.
class CellContext {
 public:
  /// Buffers for `num_tables` tables (the experiment's TableDef count).
  explicit CellContext(std::size_t num_tables);

  /// Targets subsequent row()/add() calls at table `index` (default 0).
  CellContext& table(std::size_t index);

  /// Starts a new row in the current table.
  CellContext& row();
  /// Appends one cell to the open row (string form).
  CellContext& add(const std::string& cell);
  /// Appends one cell to the open row (C-string form).
  CellContext& add(const char* cell);
  /// Appends a double, shown with `decimals` places on the console.
  CellContext& add(double value, int decimals = 3);
  /// Appends a signed integer cell.
  CellContext& add(std::int64_t value);
  /// Appends an unsigned integer cell.
  CellContext& add(std::uint64_t value);
  /// Appends an int cell.
  CellContext& add(int value) { return add(static_cast<std::int64_t>(value)); }

  /// Cell-local observation (e.g. "3 timeouts!"); printed with the cell's
  /// progress line and, on unsharded runs, under the table.
  void note(const std::string& text);

  /// All buffered rows, indexed [table][row][cell].
  [[nodiscard]] const std::vector<std::vector<CellRow>>& tables() const {
    return tables_;
  }
  /// Notes recorded by the cell body, in order.
  [[nodiscard]] const std::vector<std::string>& notes() const {
    return notes_;
  }

  /// Rows buffered for table `index`.
  [[nodiscard]] std::size_t rows_in_table(std::size_t index) const {
    return tables_[index].size();
  }

 private:
  std::vector<std::vector<CellRow>> tables_;  // [table][row][cell]
  std::vector<std::string> notes_;
  std::size_t current_table_ = 0;
  bool row_open_ = false;
};

}  // namespace cobra::runner
