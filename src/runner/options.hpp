// Dependency-free command-line parsing for the cobra runner.
//
// Every flag shadows one of the historical COBRA_* environment variables
// (or configures the sweep machinery that replaced the per-driver
// plumbing). Flags always win over the environment; unset flags leave the
// env defaults in util/env untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cobra::runner {

/// Parsed command line of the `cobra` binary (and the exp_* shims).
struct RunnerOptions {
  std::optional<double> scale;         ///< --scale: COBRA_SCALE override
  std::optional<std::uint64_t> seed;   ///< --seed: COBRA_SEED override
  std::optional<int> threads;          ///< --threads: COBRA_THREADS override
  /// --kernel-threads: COBRA_KERNEL_THREADS override — in-round worker
  /// lanes for the frontier kernel's dense scans and commit merge (1 =
  /// serial; results are bit-identical at every setting). Orthogonal to
  /// --threads, which caps the Monte-Carlo replicate fan-out.
  std::optional<int> kernel_threads;
  /// --engine: COBRA stepping engine (core::Engine) for every process the
  /// selected experiments construct: reference|sparse|dense|auto
  /// (validated at parse time; "fast" is an alias for auto).
  std::optional<std::string> engine;
  /// --graphs: COBRA_GRAPHS override — comma-separated graph specs
  /// (graph/spec.hpp grammar, incl. file:PATH) for spec-driven
  /// experiments such as `workload`.
  std::optional<std::string> graphs;
  /// --metrics: COBRA_METRICS override — telemetry mode off|summary|rounds
  /// (validated at parse time). "summary" archives per-cell counter
  /// totals to the <experiment>.metrics.jsonl sidecar; "rounds" adds the
  /// per-round frontier trajectory. Neither perturbs fixed-seed results.
  std::optional<std::string> metrics;

  std::string out_dir = "bench_results";  ///< result/journal directory
  int shard_index = 1;                    ///< 1-based i of --shard i/k
  int shard_count = 1;                    ///< k of --shard i/k
  bool resume = false;                    ///< --resume: continue a journal

  /// -j/--jobs: worker count for `cobra sweep` (0 = unset, default 2).
  int jobs = 0;
  /// --costs: cost-model file for weighted shard slicing ("" = round
  /// robin). Applies to `cobra run --shard` and to `cobra sweep` workers.
  std::string costs;
  /// --heartbeat-timeout: seconds without journal growth before the sweep
  /// supervisor declares a live worker wedged and respawns it (0 = never).
  double heartbeat_timeout = 300.0;
  /// --max-restarts: per-shard respawn budget before the sweep aborts.
  int max_restarts = 3;
  /// --inject-kill: fault injection for tests/CI — shard i's first worker
  /// SIGKILLs itself after its first journaled cell (0 = off).
  int inject_kill = 0;

  bool list = false;   ///< --list: print cells instead of running them
  bool help = false;   ///< --help / -h
  std::string filter;  ///< substring match on experiment names

  /// -o/--out: output file for `cobra graph ingest|gen` (.cgr path).
  std::string out_path;
  /// --name: graph name embedded in the .cgr header at ingest ("" = use
  /// the spec string / the edge-list file stem).
  std::string graph_name;
  /// --verify: `cobra graph info` — deep-validate the CSR and rehash the
  /// fingerprint instead of trusting the header.
  bool verify = false;

  /// --watch: `cobra top` refresh interval in seconds (0 = render once).
  double watch = 0.0;
  /// --status: `cobra sweep` — render the fleet status of an existing
  /// out-dir (journals + supervisor status file) instead of sweeping.
  bool status = false;

  /// Stop after this many cells (chunked runs, interruption tests);
  /// negative means unlimited.
  std::int64_t max_cells = -1;

  /// Everything that is not a flag: subcommand and experiment names.
  std::vector<std::string> positional;
};

/// Parses `args` (argv without the program name). Returns std::nullopt on
/// success; otherwise a human-readable error message. `--flag value` and
/// `--flag=value` are both accepted.
std::optional<std::string> parse_args(const std::vector<std::string>& args,
                                      RunnerOptions& options);

/// Pushes --scale/--seed/--threads into the util/env override slots so all
/// downstream code (default_replicates, make_stream, worker_count) sees
/// them. Call once, before enumerating or running any experiment.
void apply_env_overrides(const RunnerOptions& options);

/// The --help text, kept in sync with README.md's "Running experiments".
std::string usage();

}  // namespace cobra::runner
