// Dependency-free command-line parsing for the cobra runner.
//
// Every flag shadows one of the historical COBRA_* environment variables
// (or configures the sweep machinery that replaced the per-driver
// plumbing). Flags always win over the environment; unset flags leave the
// env defaults in util/env untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cobra::runner {

struct RunnerOptions {
  // util/env overrides (--scale, --seed, --threads).
  std::optional<double> scale;
  std::optional<std::uint64_t> seed;
  std::optional<int> threads;

  // Sweep configuration.
  std::string out_dir = "bench_results";
  int shard_index = 1;  // 1-based, --shard i/k
  int shard_count = 1;
  bool resume = false;

  // Selection / inspection.
  bool list = false;    // --list: print cells instead of running them
  bool help = false;    // --help / -h
  std::string filter;   // substring match on experiment names

  // Stop after this many cells (chunked runs, interruption tests);
  // negative means unlimited.
  std::int64_t max_cells = -1;

  // Everything that is not a flag: subcommand and experiment names.
  std::vector<std::string> positional;
};

/// Parses `args` (argv without the program name). Returns std::nullopt on
/// success; otherwise a human-readable error message. `--flag value` and
/// `--flag=value` are both accepted.
std::optional<std::string> parse_args(const std::vector<std::string>& args,
                                      RunnerOptions& options);

/// Pushes --scale/--seed/--threads into the util/env override slots so all
/// downstream code (default_replicates, make_stream, worker_count) sees
/// them. Call once, before enumerating or running any experiment.
void apply_env_overrides(const RunnerOptions& options);

/// The --help text, kept in sync with README.md's "Running experiments".
std::string usage();

}  // namespace cobra::runner
