// Dependency-free command-line parsing for the cobra runner.
//
// Every flag shadows one of the historical COBRA_* environment variables
// (or configures the sweep machinery that replaced the per-driver
// plumbing). Flags always win over the environment; unset flags leave the
// env defaults in util/env untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cobra::runner {

/// Parsed command line of the `cobra` binary (and the exp_* shims).
struct RunnerOptions {
  std::optional<double> scale;         ///< --scale: COBRA_SCALE override
  std::optional<std::uint64_t> seed;   ///< --seed: COBRA_SEED override
  std::optional<int> threads;          ///< --threads: COBRA_THREADS override
  /// --engine: COBRA stepping engine (core::Engine) for every process the
  /// selected experiments construct: reference|sparse|dense|auto
  /// (validated at parse time; "fast" is an alias for auto).
  std::optional<std::string> engine;

  std::string out_dir = "bench_results";  ///< result/journal directory
  int shard_index = 1;                    ///< 1-based i of --shard i/k
  int shard_count = 1;                    ///< k of --shard i/k
  bool resume = false;                    ///< --resume: continue a journal

  bool list = false;   ///< --list: print cells instead of running them
  bool help = false;   ///< --help / -h
  std::string filter;  ///< substring match on experiment names

  /// Stop after this many cells (chunked runs, interruption tests);
  /// negative means unlimited.
  std::int64_t max_cells = -1;

  /// Everything that is not a flag: subcommand and experiment names.
  std::vector<std::string> positional;
};

/// Parses `args` (argv without the program name). Returns std::nullopt on
/// success; otherwise a human-readable error message. `--flag value` and
/// `--flag=value` are both accepted.
std::optional<std::string> parse_args(const std::vector<std::string>& args,
                                      RunnerOptions& options);

/// Pushes --scale/--seed/--threads into the util/env override slots so all
/// downstream code (default_replicates, make_stream, worker_count) sees
/// them. Call once, before enumerating or running any experiment.
void apply_env_overrides(const RunnerOptions& options);

/// The --help text, kept in sync with README.md's "Running experiments".
std::string usage();

}  // namespace cobra::runner
