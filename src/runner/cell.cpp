#include "runner/cell.hpp"

#include "util/assert.hpp"
#include "util/table.hpp"

namespace cobra::runner {

CellContext::CellContext(std::size_t num_tables) : tables_(num_tables) {
  COBRA_CHECK(num_tables > 0);
}

CellContext& CellContext::table(std::size_t index) {
  COBRA_CHECK_MSG(index < tables_.size(),
                  "cell targets table " << index << " of "
                                        << tables_.size());
  current_table_ = index;
  row_open_ = false;
  return *this;
}

CellContext& CellContext::row() {
  tables_[current_table_].emplace_back();
  row_open_ = true;
  return *this;
}

CellContext& CellContext::add(const std::string& cell) {
  COBRA_CHECK_MSG(row_open_, "add() before row()");
  tables_[current_table_].back().push_back(CellValue{cell, cell});
  return *this;
}

CellContext& CellContext::add(const char* cell) {
  return add(std::string(cell));
}

CellContext& CellContext::add(double value, int decimals) {
  COBRA_CHECK_MSG(row_open_, "add() before row()");
  tables_[current_table_].back().push_back(CellValue{
      util::format_double(value, decimals), util::format_double(value, 6)});
  return *this;
}

CellContext& CellContext::add(std::int64_t value) {
  return add(std::to_string(value));
}

CellContext& CellContext::add(std::uint64_t value) {
  return add(std::to_string(value));
}

void CellContext::note(const std::string& text) { notes_.push_back(text); }

}  // namespace cobra::runner
