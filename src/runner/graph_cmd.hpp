// `cobra graph` — offline tooling for the binary `.cgr` graph format:
//   ingest EDGELIST -o G.cgr [--name N]   text edge list -> .cgr
//   gen SPEC -o G.cgr [--name N]          pre-bake a synthetic family
//   info G.cgr [--verify]                 print (and optionally verify)
//                                         a .cgr header
#pragma once

#include <string>
#include <vector>

namespace cobra::runner {

struct RunnerOptions;

/// Dispatches the `graph` subcommand. `names` is the positional tail after
/// "graph" (action + its argument). Returns a process exit code; usage
/// errors print to stderr and return 2.
int cmd_graph(const RunnerOptions& options,
              const std::vector<std::string>& names);

}  // namespace cobra::runner
