// Entry points for the `cobra` binary and the thin back-compat exp_*
// binaries.
#pragma once

#include <string>

namespace cobra::runner {

/// Full CLI: `cobra <list|run|sweep|merge|help> [NAME...] [flags]`.
/// `argv` excludes the program name. Returns the process exit code.
int cli_main(int argc, const char* const* argv);

/// Back-compat driver: behaves like `cobra run <experiment>` with the same
/// flags appended, so `exp_hypercube` keeps its historical one-shot
/// behaviour (full console table, canonical CSV) while gaining
/// --shard/--resume/--scale for free.
int standalone_main(const std::string& experiment, int argc,
                    const char* const* argv);

}  // namespace cobra::runner
