#include "runner/graph_cmd.hpp"

#include <iomanip>
#include <iostream>
#include <sstream>

#include "graph/binary_io.hpp"
#include "graph/spec.hpp"
#include "runner/options.hpp"

namespace cobra::runner {

namespace {

std::string hex64(std::uint64_t value) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setw(16) << std::setfill('0') << value;
  return os.str();
}

void print_info(const std::string& path, const graph::CgrInfo& info) {
  std::cout << "path:        " << path << '\n'
            << "name:        " << info.name << '\n'
            << "version:     " << info.version << '\n'
            << "vertices:    " << info.n << '\n'
            << "edges:       " << info.degree_sum / 2 << '\n'
            << "degree:      min " << info.min_degree << ", max "
            << info.max_degree << '\n'
            << "fingerprint: " << hex64(info.fingerprint) << '\n'
            << "file bytes:  " << info.file_bytes << '\n';
}

int usage_error(const std::string& message) {
  std::cerr << "cobra graph: " << message << '\n'
            << "usage:\n"
            << "  cobra graph ingest EDGELIST -o G.cgr [--name N]\n"
            << "  cobra graph gen SPEC -o G.cgr [--name N]\n"
            << "  cobra graph info G.cgr [--verify]\n";
  return 2;
}

int graph_ingest(const RunnerOptions& options, const std::string& input) {
  if (options.out_path.empty())
    return usage_error("ingest needs -o/--out for the .cgr output path");
  const graph::CgrInfo info = graph::ingest_edge_list_file(
      input, options.out_path, options.graph_name);
  print_info(options.out_path, info);
  return 0;
}

int graph_gen(const RunnerOptions& options, const std::string& spec) {
  if (options.out_path.empty())
    return usage_error("gen needs -o/--out for the .cgr output path");
  if (graph::is_file_spec(spec))
    return usage_error("gen expects a synthetic family spec, not '" +
                       spec + "' (use ingest for files)");
  graph::Graph g = graph::build_graph_spec(spec);
  // The embedded name is the registry label; default to the spec string
  // so `file:` runs of a pre-baked family match the family's cells.
  if (!options.graph_name.empty()) g.set_name(options.graph_name);
  graph::write_cgr_file(g, options.out_path);
  print_info(options.out_path, graph::read_cgr_header(options.out_path));
  return 0;
}

int graph_info(const RunnerOptions& options, const std::string& path) {
  print_info(path, graph::read_cgr_header(path));
  if (options.verify) {
    // Deep validation: rehash the arrays against the stored fingerprint
    // and check the CSR invariants. Throws (caught by cli_main) on any
    // mismatch; reaching the next line means the file is sound.
    (void)graph::load_cgr_file(path, graph::CgrLoadMode::kMapped,
                               /*verify=*/true);
    std::cout << "verify:      ok (fingerprint rehash + structural "
                 "validation passed)\n";
  }
  return 0;
}

}  // namespace

int cmd_graph(const RunnerOptions& options,
              const std::vector<std::string>& names) {
  if (names.empty())
    return usage_error("expected an action: ingest, gen or info");
  const std::string& action = names[0];
  if (names.size() != 2)
    return usage_error(action == "ingest"
                           ? "ingest expects exactly one edge-list path"
                       : action == "gen"
                           ? "gen expects exactly one graph spec"
                       : action == "info"
                           ? "info expects exactly one .cgr path"
                           : "unknown action '" + action + "'");
  if (action == "ingest") return graph_ingest(options, names[1]);
  if (action == "gen") return graph_gen(options, names[1]);
  if (action == "info") return graph_info(options, names[1]);
  return usage_error("unknown action '" + action + "'");
}

}  // namespace cobra::runner
