// The experiment registry: every bench/exp_* driver registers itself as a
// named, self-describing unit of work.
//
// An experiment owns one or more output tables (console table + CSV
// archive, e.g. exp_families has three sections and exp_cover_profile adds
// a per-round curves archive) and enumerates a list of independent *cells*
// — one graph-family × size point each. Cells are the unit of sharding
// (`cobra run families --shard 2/8` executes indices 1, 9, 17, ... of the
// enumeration) and of checkpointing (a cell is journaled exactly when all
// of its rows are on disk). Cell bodies must therefore derive their
// randomness from util::global_seed() plus cell-local salts only — never
// from state shared with other cells — so any shard/resume schedule
// reproduces the unsharded run bit for bit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "runner/cell.hpp"
#include "util/csv.hpp"

namespace cobra::runner {

/// One console table + CSV archive produced by an experiment.
struct TableDef {
  std::string id;     ///< CSV base name, e.g. "exp_families_grid"
  std::string title;  ///< banner line (the paper claim being reproduced)
  std::vector<std::string> columns;  ///< shared table/CSV header
};

/// One independently runnable slice of an experiment.
struct CellDef {
  std::string id;     ///< stable within the experiment (journal key)
  std::string group;  ///< console grouping: a rule is drawn on group change
  std::function<void(CellContext&)> run;  ///< the cell body
};

/// A registered experiment: metadata, outputs and its cell enumeration.
struct ExperimentDef {
  std::string name;         ///< registry key, e.g. "families"
  std::string description;  ///< one-liner for `cobra list`
  std::vector<TableDef> tables;  ///< output tables, in definition order
  /// Enumerates the cells at the *current* scale (call after flag/env
  /// overrides are applied). Must be cheap — no graph construction — and
  /// deterministic: same scale, same list.
  std::function<std::vector<CellDef>()> cells;
  /// Fixed observations printed under the tables.
  std::vector<std::string> notes;
  /// Optional: notes computed from the complete result set (fitted
  /// exponents, cross-cell maxima). Receives one parsed CSV per TableDef,
  /// in definition order; runs after an unsharded run or a merge, when all
  /// cells are present.
  std::function<std::vector<std::string>(
      const std::vector<util::CsvTable>&)> summarize;
  /// True when the experiment's cells come from the COBRA_GRAPHS /
  /// --graphs spec list (graph/spec.hpp). The sweep supervisor pre-bakes
  /// such a list once to <out-dir>/graphs/*.cgr and hands every worker
  /// `file:` references, so all workers mmap one shared on-disk CSR
  /// instead of regenerating the graph per process.
  bool uses_graph_specs = false;
};

class Registry {
 public:
  /// The process-wide registry (Meyers singleton: safe to use from static
  /// registration objects in any TU).
  static Registry& instance();

  /// Registers an experiment; names must be unique.
  void add(ExperimentDef def);

  /// All experiments, sorted by name.
  [[nodiscard]] std::vector<const ExperimentDef*> all() const;

  /// Experiments whose name contains `filter` (all when empty), sorted.
  [[nodiscard]] std::vector<const ExperimentDef*> match(
      std::string_view filter) const;

  /// Lookup by exact name; nullptr when absent.
  [[nodiscard]] const ExperimentDef* find(std::string_view name) const;

 private:
  std::vector<ExperimentDef> experiments_;
};

/// Static registration helper:
///   namespace { const runner::Registration reg(make_my_experiment); }
struct Registration {
  /// Runs `factory` and adds its experiment to the global registry.
  explicit Registration(ExperimentDef (*factory)()) {
    Registry::instance().add(factory());
  }
};

/// The deterministic slice of cell indices owned by shard `index`/`count`
/// (1-based index): round-robin by enumeration position, so size-ordered
/// sweeps spread their heavy tail across shards.
std::vector<std::size_t> shard_slice(std::size_t num_cells, int index,
                                     int count);

/// Cost-balanced variant of shard_slice: given one non-negative cost per
/// cell (journal-v3 wall times, microseconds), assigns cells to shards by
/// deterministic longest-processing-time greedy — cells in decreasing
/// cost order (ties: lower enumeration index first) each go to the
/// currently lightest shard (ties: lowest shard) — and returns shard
/// `index`'s cells sorted back into enumeration order. The classic LPT
/// guarantee (max shard load <= mean load + max single cost) keeps
/// heavy-tailed sweeps like general_bound from serialising on one
/// unlucky round-robin shard. Every shard calling this with the same
/// costs sees the same disjoint, covering partition.
std::vector<std::size_t> weighted_shard_slice(
    const std::vector<std::uint64_t>& costs, int index, int count);

/// All `count` weighted slices at once (the partition weighted_shard_slice
/// indexes into): element i is shard i+1's slice. The supervisor uses
/// this to set up every shard with one LPT pass instead of k.
std::vector<std::vector<std::size_t>> weighted_shard_partition(
    const std::vector<std::uint64_t>& costs, int count);

}  // namespace cobra::runner
