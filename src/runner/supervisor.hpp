// The distributed-sweep supervisor behind `cobra sweep`.
//
// Spawns k worker processes, each running
// `<worker_binary> run <experiment> --shard i/k --resume ...`, and babysits
// them until the whole sweep is merged:
//
//   * Liveness is read from the shard journals: workers append a
//     heartbeat line when a cell starts and a "cell ... ok" record when it
//     finishes, so a healthy worker's journal grows at every cell
//     boundary. A worker whose process died (crash, OOM kill, SIGKILL) is
//     detected via waitpid; a worker that is alive but has not grown its
//     journal for `heartbeat_timeout_s` seconds is declared wedged and
//     SIGKILLed.
//   * Either way the shard is reassigned: a fresh worker is spawned with
//     `--resume`, picks the journal up, truncates any torn fragment tail
//     and re-runs only the unfinished cells — at most `max_restarts`
//     times per shard before the sweep aborts with the worker's log.
//   * Once every shard has journaled its full slice, the supervisor runs
//     the order-restoring merge, so the final <table>.csv files are
//     byte-identical to an unsharded run at the same seed/scale/engine.
//
// Slices are round-robin by default; pointing `costs_path` at a
// `<experiment>.costs` file (archived by any completed run or merge)
// switches to cost-weighted LPT slices so heavy-tailed sweeps stop
// serialising on one unlucky shard. A costs path that does not exist
// falls back to round-robin with a log notice.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "runner/registry.hpp"
#include "runner/sweep.hpp"

namespace cobra::runner {

/// Configuration of one supervised sweep.
struct SupervisorConfig {
  std::string out_dir = "bench_results";  ///< fragment/journal directory
  int workers = 2;                        ///< shard/worker count k
  /// Executable to spawn as workers — the `cobra` binary itself (the CLI
  /// resolves /proc/self/exe). The supervisor appends
  /// `run <experiment> --shard i/k --resume --out-dir ...` plus pinned
  /// `--seed/--scale/--engine` so every respawn resumes the exact run
  /// configuration.
  std::string worker_binary;
  /// Extra argv appended to every worker command (e.g. `--threads 2`).
  std::vector<std::string> worker_args;
  /// Cost-model file for weighted slicing ("" = round-robin; a
  /// non-existent file falls back to round-robin with a notice).
  std::string costs_path;
  /// Seconds without journal growth before a live worker counts as
  /// wedged and is killed + respawned. 0 disables wedge detection.
  /// Heartbeats tick at cell boundaries, so honest long cells must not
  /// read as wedges: the effective per-shard threshold is floored at 3x
  /// the shard's heaviest expected cell when a cost model is available,
  /// and doubles after every wedge kill (an underestimate self-corrects
  /// instead of re-killing the same heavy cell until the budget drains).
  double heartbeat_timeout_s = 300.0;
  int max_restarts = 3;  ///< respawn budget per shard
  /// Fault injection (tests/CI): this shard's first worker runs with
  /// COBRA_SWEEP_KILL_AFTER_CELLS=1 and SIGKILLs itself after its first
  /// journaled cell. 0 = off.
  int inject_kill_shard = 0;
  double poll_interval_s = 0.05;  ///< supervisor loop period
  std::ostream* log = nullptr;    ///< progress log; nullptr silences it
  /// Test hook, called after each successful spawn with (shard, pid).
  std::function<void(int, long)> on_spawn;
};

/// Per-shard outcome of a supervised sweep.
struct ShardOutcome {
  std::size_t cells = 0;  ///< cells in the shard's slice
  int restarts = 0;       ///< times the shard's worker was respawned
  int wedges = 0;         ///< wedge kills among those (no journal growth)
};

/// What one supervised sweep did.
struct SupervisorResult {
  int workers = 0;             ///< shard count k
  int restarts_total = 0;      ///< respawns across all shards
  int wedges_total = 0;        ///< wedge kills across all shards
  std::string costs_path;      ///< cost model used ("" = round-robin)
  std::vector<ShardOutcome> shards;  ///< indexed shard-1
  MergeResult merge;           ///< the automatic final merge
};

/// Runs the full supervised sweep of `def` (spawn → watch → respawn →
/// merge) and returns what happened. Throws util::CheckError when a shard
/// exhausts its restart budget or any journal/merge validation fails.
SupervisorResult supervise_experiment(const ExperimentDef& def,
                                      const SupervisorConfig& config);

}  // namespace cobra::runner
