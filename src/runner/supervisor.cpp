#include "runner/supervisor.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <thread>

#include "core/process.hpp"
#include "graph/binary_io.hpp"
#include "graph/spec.hpp"
#include "runner/journal.hpp"
#include "runner/telemetry.hpp"
#include "util/annotations.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"
#include "util/metrics.hpp"

extern "C" char** environ;

namespace cobra::runner {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/// One supervised shard and the worker process currently owning it.
struct Shard {
  int index = 0;              // 1-based shard i of i/k
  std::size_t cells = 0;      // slice size (completion target)
  std::string journal_path;
  std::string log_path;       // worker stdout+stderr
  pid_t pid = -1;             // -1: no live worker
  int restarts = 0;
  int wedges = 0;             // wedge kills among the restarts
  bool complete = false;
  std::uintmax_t last_size = 0;         // journal size at last progress
  Clock::time_point last_progress{};    // journal growth or spawn time
  /// Wedge threshold for this shard (0 = disabled). Floored at 3x the
  /// shard's heaviest expected cell when a cost model is available, and
  /// doubled after every wedge kill: heartbeats only tick at cell
  /// boundaries, so an honest long cell must never burn the restart
  /// budget — an underestimated timeout self-corrects instead of
  /// re-killing the same heavy cell until the sweep aborts.
  double timeout_s = 0;
};

/// Pre-bakes the session's --graphs/COBRA_GRAPHS list for the workers of
/// a spec-driven experiment: synthetic specs and text edge lists are
/// written once to <out_dir>/graphs/<label>.cgr and rewritten as `file:`
/// references, so every worker mmaps the same on-disk CSR (one page-cache
/// copy, zero per-worker generation) instead of rebuilding the graph per
/// process. Cell labels and seeds are derived from the embedded name and
/// the fingerprint respectively, so the rewrite is invisible in the
/// output. Already-binary `file:*.cgr` specs pass through untouched.
/// Returns "" when no spec list is set (the experiment's built-in default
/// list stays in-process).
std::string prebake_graph_specs(const std::string& out_dir,
                                std::ostream* log) {
  const std::string list = util::graphs();
  if (list.empty()) return "";
  std::string rewritten;
  for (const std::string& spec : graph::split_graph_specs(list)) {
    std::string resolved = spec;
    const bool already_baked =
        graph::is_file_spec(spec) &&
        fs::path(spec.substr(5)).extension() == ".cgr";
    if (!already_baked) {
      const std::string label = graph::graph_spec_label(spec);
      std::string file_name = label;
      for (char& c : file_name)
        if (c == '/' || c == '\\' || c == ' ') c = '_';
      const fs::path cgr =
          fs::path(out_dir) / "graphs" / (file_name + ".cgr");
      graph::Graph g = graph::build_graph_spec(spec);
      // The embedded name is the workers' cell label — pin it to the
      // label this supervisor enumerated so the journals line up.
      g.set_name(label);
      graph::write_cgr_file(g, cgr.string());
      resolved = "file:" + cgr.string();
      if (log) {
        *log << "[sweep] pre-baked graph " << spec << " -> "
             << cgr.string() << '\n';
      }
    }
    if (!rewritten.empty()) rewritten += ',';
    rewritten += resolved;
  }
  return rewritten;
}

/// The last ~8 lines of a worker log, indented — appended to the abort
/// message so the shard's actual failure is visible without digging.
std::string log_tail(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return "  (no worker log at " + path + ")";
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
    if (lines.size() > 8) lines.erase(lines.begin());
  }
  std::ostringstream os;
  for (const std::string& l : lines) os << "  | " << l << '\n';
  return os.str();
}

std::string describe_exit(int status) {
  std::ostringstream os;
  if (WIFEXITED(status)) {
    os << "exited with code " << WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    os << "killed by signal " << WTERMSIG(status);
  } else {
    os << "stopped with status " << status;
  }
  return os.str();
}

/// Spawns one worker for `shard`. `argv_head` is the full worker command
/// minus the `--shard i/k` pair, which is appended here. When `inject`
/// is set the child runs with COBRA_SWEEP_KILL_AFTER_CELLS=1 (fault
/// injection: it SIGKILLs itself after its first journaled cell).
pid_t spawn_worker(const std::vector<std::string>& argv_head,
                   const Shard& shard, int shard_count, bool inject) {
  std::vector<std::string> args = argv_head;
  args.push_back("--shard");
  args.push_back(std::to_string(shard.index) + "/" +
                 std::to_string(shard_count));

  // argv/envp are assembled before fork(): the child must only touch
  // async-signal-safe calls (open/dup2/execve) between fork and exec.
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  std::vector<std::string> env_strings;
  for (char** e = environ; *e != nullptr; ++e) env_strings.emplace_back(*e);
  if (inject) env_strings.emplace_back("COBRA_SWEEP_KILL_AFTER_CELLS=1");
  std::vector<char*> envp;
  envp.reserve(env_strings.size() + 1);
  for (std::string& e : env_strings) envp.push_back(e.data());
  envp.push_back(nullptr);

  const pid_t pid = fork();
  COBRA_CHECK_MSG(pid >= 0, "fork failed: " << std::strerror(errno));
  if (pid == 0) {
    const int fd = open(shard.log_path.c_str(),
                        O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      dup2(fd, STDOUT_FILENO);
      dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) close(fd);
    }
    execve(argv[0], argv.data(), envp.data());
    _exit(127);  // exec failed; the supervisor reads the status
  }
  return pid;
}

/// Refuses to start when `out_dir` holds journals of `experiment` with a
/// shard count other than `workers`: they would sail through the whole
/// sweep unnoticed and only blow up the final auto-merge ("mixes
/// journals of different shard counts") after every cell already ran —
/// e.g. the 1of1 journal a plain `cobra run` left in the directory, or a
/// previous sweep at a different -j.
void check_no_conflicting_journals(const std::string& out_dir,
                                   const std::string& experiment,
                                   int workers) {
  if (!fs::exists(out_dir)) return;
  const std::string prefix = experiment + ".";
  std::vector<std::string> conflicts;
  for (const auto& entry : fs::directory_iterator(out_dir)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind(prefix, 0) != 0) continue;
    if (entry.path().extension() != ".journal") continue;
    // <experiment>.<i>of<k>.journal
    const std::string spec = file.substr(
        prefix.size(), file.size() - prefix.size() - 8 /* ".journal" */);
    const auto of = spec.find("of");
    if (of == std::string::npos) continue;
    int count = 0;
    const std::string count_text = spec.substr(of + 2);
    const auto [ptr, ec] = std::from_chars(
        count_text.data(), count_text.data() + count_text.size(), count);
    if (ec != std::errc() ||
        ptr != count_text.data() + count_text.size()) {
      continue;
    }
    if (count != workers) conflicts.push_back(file);
  }
  if (conflicts.empty()) return;
  std::sort(conflicts.begin(), conflicts.end());
  std::ostringstream os;
  for (const std::string& file : conflicts) os << ' ' << file;
  COBRA_CHECK_MSG(false,
                  out_dir << " holds " << experiment
                          << " journals from a different shard count:"
                          << os.str() << " — the final merge would refuse "
                          << "to mix them with a -j " << workers
                          << " sweep. Use a fresh --out-dir, or delete "
                          << "the stale journals (and their fragments) "
                          << "if that run is no longer needed");
}

/// Per-shard facts fixed before any worker (or the status thread) starts:
/// shared across threads without a lock because nothing ever writes them
/// again.
struct ShardFacts {
  int index = 0;              // 1-based shard i of i/k
  std::size_t cells = 0;      // slice size (completion target)
  std::string journal_path;
};

/// The live shard board shared between the poll loop (sole writer) and
/// the status thread (reader). The poll loop publishes cheap snapshots of
/// the mutable worker bookkeeping; the status thread turns them into the
/// `cobra top` sidecar off the critical path, so the slow Journal::read
/// that counts a shard's finished cells no longer delays waitpid reaping
/// or wedge detection between polls.
struct ShardBoard {
  /// Mutable slice of one Shard, as the status thread sees it.
  struct Entry {
    long pid = -1;
    int restarts = 0;
    int wedges = 0;
    bool complete = false;
  };
  util::Mutex mu;
  std::vector<Entry> entries COBRA_GUARDED_BY(mu);
  bool stop COBRA_GUARDED_BY(mu) = false;
  std::condition_variable cv;  // signals `stop` for a prompt join
};

/// Snapshot of the mutable per-shard state for the board.
std::vector<ShardBoard::Entry> entries_from(const std::vector<Shard>& shards) {
  std::vector<ShardBoard::Entry> entries;
  entries.reserve(shards.size());
  for (const Shard& shard : shards) {
    entries.push_back(ShardBoard::Entry{static_cast<long>(shard.pid),
                                        shard.restarts, shard.wedges,
                                        shard.complete});
  }
  return entries;
}

/// Builds the fleet snapshot for `cobra top` / `cobra sweep --status`.
/// `done` carries the last known journaled-cell count per shard across
/// calls: a worker may be mid-append, and a transiently unreadable
/// journal keeps the previous count rather than failing the sweep.
SweepStatus build_sweep_status(const std::string& experiment,
                               const std::vector<ShardFacts>& facts,
                               const std::vector<ShardBoard::Entry>& entries,
                               std::vector<std::size_t>& done) {
  SweepStatus status;
  status.experiment = experiment;
  status.shard_count = static_cast<int>(facts.size());
  for (std::size_t i = 0; i < facts.size(); ++i) {
    const ShardFacts& fact = facts[i];
    const ShardBoard::Entry& entry = entries[i];
    if (!entry.complete && fs::exists(fact.journal_path)) {
      try {
        done[i] = Journal::read(fact.journal_path).second.size();
      } catch (const util::CheckError&) {
      }
    }
    ShardStatus s;
    s.index = fact.index;
    s.pid = entry.pid;
    s.restarts = entry.restarts;
    s.wedges = entry.wedges;
    s.state = entry.complete ? "complete"
                             : (entry.pid > 0 ? "running" : "dead");
    s.cells_done = entry.complete ? fact.cells : done[i];
    s.cells_total = fact.cells;
    status.shards.push_back(std::move(s));
  }
  return status;
}

/// Body of the status thread: about once a second, snapshot the board,
/// count journaled cells and rewrite the status sidecar — all journal
/// I/O outside the lock. Returns on stop *without* a last write; the
/// supervisor writes the initial and final snapshots itself, so the
/// "initial + ~1/s + final" contract holds regardless of thread timing.
void status_writer_loop(ShardBoard& board,
                        const std::vector<ShardFacts>& facts,
                        const std::string& status_path,
                        const std::string& experiment) {
  std::vector<std::size_t> done(facts.size(), 0);
  for (;;) {
    std::vector<ShardBoard::Entry> entries;
    {
      util::MutexLock lock(board.mu);
      // Manual deadline loop rather than the predicate overload: the
      // guarded reads stay in this scope, where the analysis can see the
      // capability held (and a spurious wakeup cannot write early).
      const auto deadline = Clock::now() + std::chrono::seconds(1);
      while (!board.stop && Clock::now() < deadline)
        board.cv.wait_until(lock.native(), deadline);
      if (board.stop) return;
      entries = board.entries;
    }
    write_sweep_status(status_path,
                       build_sweep_status(experiment, facts, entries, done));
  }
}

/// Stops and joins the status thread on every exit path. Declared *after*
/// the Reaper so it destructs first: the thread must be gone before the
/// board and shards it reads are torn down.
struct StatusThread {
  ShardBoard* board;
  std::thread thread;
  ~StatusThread() {
    {
      util::MutexLock lock(board->mu);
      board->stop = true;
    }
    board->cv.notify_all();
    if (thread.joinable()) thread.join();
  }
};

/// Kills (SIGKILL) and reaps every still-live worker — exception-path
/// cleanup so an aborting sweep never leaks orphan processes.
struct Reaper {
  std::vector<Shard>* shards;
  bool disarmed = false;
  ~Reaper() {
    if (disarmed) return;
    for (Shard& shard : *shards) {
      if (shard.pid <= 0) continue;
      kill(shard.pid, SIGKILL);
      int status = 0;
      waitpid(shard.pid, &status, 0);
      shard.pid = -1;
    }
  }
};

}  // namespace

SupervisorResult supervise_experiment(const ExperimentDef& def,
                                      const SupervisorConfig& config) {
  COBRA_CHECK_MSG(config.workers >= 1 && config.workers <= 4096,
                  "invalid sweep worker count " << config.workers);
  COBRA_CHECK_MSG(!config.worker_binary.empty(),
                  "sweep supervisor needs the worker binary path");
  COBRA_CHECK_MSG(config.inject_kill_shard >= 0 &&
                      config.inject_kill_shard <= config.workers,
                  "--inject-kill shard " << config.inject_kill_shard
                                         << " is outside 1.."
                                         << config.workers);
  const int k = config.workers;
  check_no_conflicting_journals(config.out_dir, def.name, k);

  // Resolve the slicing once: an explicit cost model that does not exist
  // falls back to round-robin (first runs have nothing archived yet); a
  // corrupt one fails here, before any worker is spawned.
  std::string costs = config.costs_path;
  if (!costs.empty() && !fs::exists(costs)) {
    if (config.log) {
      *config.log << "[sweep] cost model " << costs
                  << " does not exist; using round-robin slices\n";
    }
    costs.clear();
  }
  const std::vector<CellDef> cells = def.cells();
  // One cost-file read and one LPT pass set up every shard; the empty
  // vector means round-robin.
  const std::vector<std::uint64_t> costs_us = cell_costs(cells, costs);
  const std::vector<std::vector<std::size_t>> partition =
      partition_for(cells.size(), k, costs_us);

  // Pin the run configuration on the worker command line: respawned
  // workers and the final merge must see the exact seed/scale/engine this
  // supervisor resolved, regardless of environment drift.
  std::vector<std::string> argv_head;
  argv_head.push_back(config.worker_binary);
  argv_head.push_back("run");
  argv_head.push_back(def.name);
  argv_head.push_back("--resume");
  argv_head.push_back("--out-dir");
  argv_head.push_back(config.out_dir);
  argv_head.push_back("--seed");
  argv_head.push_back(std::to_string(util::global_seed()));
  {
    std::ostringstream os;
    os << std::setprecision(17) << util::scale();
    argv_head.push_back("--scale");
    argv_head.push_back(os.str());
  }
  argv_head.push_back("--engine");
  argv_head.push_back(
      core::engine_name(core::resolve_engine(core::Engine::kDefault)));
  argv_head.push_back("--metrics");
  argv_head.push_back(util::metrics_mode_name(util::metrics_mode()));
  // Kernel lanes never change results, but a respawned worker must still
  // journal (and run with) the same value the supervisor resolved, or its
  // resume would be refused on the header mismatch.
  argv_head.push_back("--kernel-threads");
  argv_head.push_back(std::to_string(util::kernel_threads()));
  if (!costs.empty()) {
    argv_head.push_back("--costs");
    argv_head.push_back(costs);
  }
  if (def.uses_graph_specs) {
    const std::string baked =
        prebake_graph_specs(config.out_dir, config.log);
    if (!baked.empty()) {
      argv_head.push_back("--graphs");
      argv_head.push_back(baked);
    }
  }
  argv_head.insert(argv_head.end(), config.worker_args.begin(),
                   config.worker_args.end());

  // Workers redirect into per-shard logs under out_dir; create it first.
  {
    std::error_code ec;
    fs::create_directories(config.out_dir, ec);
    COBRA_CHECK_MSG(!ec, "cannot create sweep directory " << config.out_dir
                                                          << ": "
                                                          << ec.message());
  }

  std::vector<Shard> shards(static_cast<std::size_t>(k));
  for (int i = 1; i <= k; ++i) {
    Shard& shard = shards[static_cast<std::size_t>(i - 1)];
    shard.index = i;
    const auto& slice = partition[static_cast<std::size_t>(i - 1)];
    shard.cells = slice.size();
    shard.journal_path =
        Journal::path_for(config.out_dir, def.name, i, k);
    std::ostringstream os;
    os << config.out_dir << '/' << def.name << '.' << i << "of" << k
       << ".worker.log";
    shard.log_path = os.str();
    shard.timeout_s = config.heartbeat_timeout_s;
    if (shard.timeout_s > 0 && !costs_us.empty()) {
      std::uint64_t heaviest_us = 0;
      for (const std::size_t cell : slice)
        heaviest_us = std::max(heaviest_us, costs_us[cell]);
      shard.timeout_s = std::max(
          shard.timeout_s, 3.0 * static_cast<double>(heaviest_us) / 1e6);
    }
  }

  if (config.log) {
    *config.log << "[sweep] " << def.name << ": " << k << " workers over "
                << cells.size() << " cells ("
                << (costs.empty() ? std::string("round-robin slices")
                                  : "cost-weighted slices from " + costs)
                << ")\n";
  }

  Reaper reaper{&shards};
  bool inject_pending = config.inject_kill_shard > 0;

  // Fleet snapshot for `cobra top` / `cobra sweep --status`: rewritten
  // atomically at most once a second (plus once at start and at the end),
  // so an observer process always reads a consistent view. The periodic
  // writes run on a dedicated status thread reading the shard board.
  const std::string status_path =
      sweep_status_path(config.out_dir, def.name);
  std::vector<ShardFacts> facts;
  facts.reserve(shards.size());
  for (const Shard& shard : shards)
    facts.push_back(ShardFacts{shard.index, shard.cells, shard.journal_path});
  ShardBoard board;
  const auto publish = [&shards, &board]() {
    std::vector<ShardBoard::Entry> entries = entries_from(shards);
    util::MutexLock lock(board.mu);
    board.entries = std::move(entries);
  };
  // The supervisor's own journaled-cell counts, for the initial and final
  // status writes (the status thread keeps its own).
  std::vector<std::size_t> done(shards.size(), 0);

  const auto spawn = [&](Shard& shard) {
    const bool inject =
        inject_pending && shard.index == config.inject_kill_shard;
    if (inject) inject_pending = false;
    shard.pid = spawn_worker(argv_head, shard, k, inject);
    std::error_code ec;
    const auto size = fs::file_size(shard.journal_path, ec);
    shard.last_size = ec ? 0 : size;
    shard.last_progress = Clock::now();
    if (config.log) {
      *config.log << "[sweep] shard " << shard.index << "/" << k
                  << ": worker pid " << shard.pid << " started ("
                  << shard.cells << " cells"
                  << (inject ? ", fault injection armed" : "") << ")\n";
    }
    if (config.on_spawn) config.on_spawn(shard.index, shard.pid);
  };
  // Respawn bookkeeping shared by the dead- and wedged-worker paths;
  // aborts (with the worker's log tail) once the budget is exhausted.
  const auto respawn = [&](Shard& shard, const std::string& why) {
    shard.pid = -1;
    ++shard.restarts;
    COBRA_CHECK_MSG(
        shard.restarts <= config.max_restarts,
        "sweep " << def.name << " shard " << shard.index << "/" << k
                 << " failed " << shard.restarts << " times (last: " << why
                 << "); giving up — worker log " << shard.log_path << ":\n"
                 << log_tail(shard.log_path));
    if (config.log) {
      // The dying worker's last journaled/heartbeat cell plus its log
      // tail: enough to see *where* it died without digging through the
      // run directory.
      const std::string last_cell = last_journal_cell(shard.journal_path);
      *config.log << "[sweep] shard " << shard.index << "/" << k
                  << " worker " << why << " (last journal cell: "
                  << (last_cell.empty() ? "<none>" : last_cell)
                  << "); worker log tail:\n" << log_tail(shard.log_path)
                  << "[sweep] respawning shard " << shard.index << "/" << k
                  << " (attempt " << shard.restarts << "/"
                  << config.max_restarts << ")\n";
    }
    spawn(shard);
  };

  for (Shard& shard : shards) spawn(shard);
  publish();
  write_sweep_status(
      status_path, build_sweep_status(def.name, facts, entries_from(shards),
                                      done));
  StatusThread status_thread{
      &board, std::thread([&board, &facts, &status_path, &def] {
        status_writer_loop(board, facts, status_path, def.name);
      })};

  for (;;) {
    bool all_complete = true;
    for (Shard& shard : shards) {
      if (shard.complete) continue;
      all_complete = false;

      int status = 0;
      const pid_t reaped = waitpid(shard.pid, &status, WNOHANG);
      COBRA_CHECK_MSG(reaped >= 0, "waitpid failed: "
                                       << std::strerror(errno));
      if (reaped == shard.pid) {
        shard.pid = -1;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          // Exit 0 promises a fully journaled slice; trust but verify —
          // a worker that lied (or raced a deleted journal) respawns.
          const auto [header, entries] =
              Journal::read(shard.journal_path);
          if (entries.size() == shard.cells) {
            shard.complete = true;
            if (config.log) {
              *config.log << "[sweep] shard " << shard.index << "/" << k
                          << " complete (" << shard.cells << " cells)\n";
            }
            continue;
          }
          respawn(shard, "exited cleanly with an incomplete journal");
        } else {
          respawn(shard, describe_exit(status));
        }
        continue;
      }

      // Worker is alive: journal growth is its heartbeat. A worker that
      // neither finishes cells nor starts new ones within the timeout is
      // wedged (deadlock, livelock, stuck I/O) and gets reassigned.
      std::error_code ec;
      const auto size = fs::file_size(shard.journal_path, ec);
      if (!ec && size != shard.last_size) {
        shard.last_size = size;
        shard.last_progress = Clock::now();
      } else if (shard.timeout_s > 0 &&
                 Clock::now() - shard.last_progress >
                     std::chrono::duration<double>(shard.timeout_s)) {
        kill(shard.pid, SIGKILL);
        waitpid(shard.pid, &status, 0);
        shard.pid = -1;
        std::ostringstream os;
        os << "wedged (no journal growth for " << std::fixed
           << std::setprecision(1) << shard.timeout_s
           << " s; SIGKILLed)";
        ++shard.wedges;
        // Backoff: if this was an honest long cell, the doubled window
        // lets the respawn finish it instead of draining the budget.
        shard.timeout_s *= 2;
        respawn(shard, os.str());
      }
    }
    publish();
    if (all_complete) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config.poll_interval_s));
  }
  reaper.disarmed = true;  // nothing left alive to reap
  {
    // Stop the status thread before the final snapshot so the two writers
    // never interleave on the status file.
    util::MutexLock lock(board.mu);
    board.stop = true;
  }
  board.cv.notify_all();
  if (status_thread.thread.joinable()) status_thread.thread.join();
  write_sweep_status(
      status_path, build_sweep_status(def.name, facts, entries_from(shards),
                                      done));  // final: every shard complete

  if (config.log) {
    *config.log << "[sweep] all " << k << " shards complete; merging\n";
  }

  SupervisorResult result;
  result.workers = k;
  result.costs_path = costs;
  for (const Shard& shard : shards) {
    result.shards.push_back(
        ShardOutcome{shard.cells, shard.restarts, shard.wedges});
    result.restarts_total += shard.restarts;
    result.wedges_total += shard.wedges;
  }
  result.merge = merge_experiment(def, config.out_dir, config.log);
  return result;
}

}  // namespace cobra::runner
