#include "runner/cli.hpp"

#include <chrono>
#include <exception>
#include <filesystem>
#include <iostream>
#include <thread>
#include <vector>

#include "runner/graph_cmd.hpp"
#include "runner/options.hpp"
#include "runner/registry.hpp"
#include "runner/supervisor.hpp"
#include "runner/sweep.hpp"
#include "runner/telemetry.hpp"
#include "util/env.hpp"

namespace cobra::runner {

namespace {

std::vector<const ExperimentDef*> select_experiments(
    const RunnerOptions& options, const std::vector<std::string>& names,
    std::string& error) {
  std::vector<const ExperimentDef*> selected;
  if (!names.empty()) {
    for (const std::string& name : names) {
      const ExperimentDef* def = Registry::instance().find(name);
      if (def == nullptr) {
        error = "unknown experiment: " + name + " (try `cobra list`)";
        return {};
      }
      selected.push_back(def);
    }
    return selected;
  }
  selected = Registry::instance().match(options.filter);
  if (selected.empty()) {
    error = options.filter.empty()
                ? std::string("no experiments registered")
                : "no experiment matches --filter " + options.filter;
  }
  return selected;
}

int cmd_list(const RunnerOptions& options) {
  for (const ExperimentDef* def : Registry::instance().match(
           options.filter)) {
    std::cout << def->name << "  (" << def->cells().size() << " cells)\n"
              << "    " << def->description << '\n';
  }
  return 0;
}

int cmd_run(const RunnerOptions& options,
            const std::vector<std::string>& names) {
  std::string error;
  const auto selected = select_experiments(options, names, error);
  if (selected.empty()) {
    std::cerr << "cobra: " << error << '\n';
    return 2;
  }

  if (options.list) {
    // Dry run: show the cells this invocation would execute.
    for (const ExperimentDef* def : selected) {
      const auto cells = def->cells();
      const auto slice = slice_for(cells, options.shard_index,
                                   options.shard_count, options.costs);
      std::cout << def->name << " shard " << options.shard_index << "/"
                << options.shard_count << ": " << slice.size() << " of "
                << cells.size() << " cells\n";
      for (const std::size_t index : slice)
        std::cout << "  [" << index << "] " << cells[index].id << '\n';
    }
    return 0;
  }

  bool all_complete = true;
  for (const ExperimentDef* def : selected) {
    SweepConfig config;
    config.out_dir = options.out_dir;
    config.shard_index = options.shard_index;
    config.shard_count = options.shard_count;
    config.resume = options.resume;
    config.max_cells = options.max_cells;
    config.console = true;
    config.log = &std::cout;
    config.costs_path = options.costs;
    const SweepResult result = run_experiment(*def, config);
    std::cout << def->name << ": " << result.cells_run << " run, "
              << result.cells_skipped << " resumed, "
              << result.cells_remaining << " remaining";
    if (result.cells_run > 0)
      std::cout << " (" << format_wall_time(result.wall_us_run)
                << " cell wall time)";
    std::cout << '\n';
    all_complete = all_complete && result.complete();
  }
  return all_complete ? 0 : 3;  // 3: interrupted by --max-cells
}

int cmd_sweep(const RunnerOptions& options,
              const std::vector<std::string>& names) {
  if (options.status) {
    // Fleet view of an existing run directory; spawns nothing.
    if (render_fleet_status(options.out_dir, std::cout) == 0) {
      std::cerr << "cobra: no run journals under " << options.out_dir
                << '\n';
      return 2;
    }
    return 0;
  }
  std::string error;
  const auto selected = select_experiments(options, names, error);
  if (selected.empty()) {
    std::cerr << "cobra: " << error << '\n';
    return 2;
  }
  if (options.shard_count != 1 || options.resume ||
      options.max_cells >= 0) {
    std::cerr << "cobra: sweep manages --shard/--resume/--max-cells "
                 "itself; drop them (see --help)\n";
    return 2;
  }
  const int workers = options.jobs > 0 ? options.jobs : 2;

  if (options.list) {
    // Dry run: show how the sweep would slice its shards, run nothing.
    for (const ExperimentDef* def : selected) {
      const auto cells = def->cells();
      const auto costs = cell_costs(cells, options.costs);
      const auto partition = partition_for(cells.size(), workers, costs);
      std::cout << def->name << " sweep -j " << workers << " ("
                << (costs.empty()
                        ? std::string("round-robin slices")
                        : "cost-weighted slices from " + options.costs)
                << "):\n";
      for (int i = 1; i <= workers; ++i) {
        const auto& slice = partition[static_cast<std::size_t>(i - 1)];
        std::cout << "  shard " << i << "/" << workers << ": "
                  << slice.size() << " of " << cells.size() << " cells\n";
        for (const std::size_t index : slice)
          std::cout << "    [" << index << "] " << cells[index].id << '\n';
      }
    }
    return 0;
  }

  // The workers are this very binary, re-invoked as `cobra run ...`.
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) {
    std::cerr << "cobra: cannot resolve own binary path for sweep "
                 "workers: " << ec.message() << '\n';
    return 1;
  }

  for (const ExperimentDef* def : selected) {
    SupervisorConfig config;
    config.out_dir = options.out_dir;
    config.workers = workers;
    config.worker_binary = self.string();
    config.costs_path = options.costs;
    config.heartbeat_timeout_s = options.heartbeat_timeout;
    config.max_restarts = options.max_restarts;
    config.inject_kill_shard = options.inject_kill;
    if (options.threads) {
      config.worker_args = {"--threads",
                            std::to_string(*options.threads)};
    }
    config.log = &std::cout;
    const SupervisorResult result = supervise_experiment(*def, config);
    std::cout << def->name << ": swept by " << result.workers
              << " workers (" << result.restarts_total << " respawns, "
              << result.wedges_total << " wedges); merged "
              << result.merge.cells << " cells, "
              << format_wall_time(result.merge.total_wall_us)
              << " cell wall time";
    if (!result.merge.slowest.empty()) {
      std::cout << "; slowest:";
      for (std::size_t i = 0; i < result.merge.slowest.size(); ++i) {
        std::cout << (i ? ", " : " ") << result.merge.slowest[i].first
                  << " (" << format_wall_time(result.merge.slowest[i].second)
                  << ")";
      }
    }
    std::cout << '\n';
  }
  return 0;
}

int cmd_top(const RunnerOptions& options,
            const std::vector<std::string>& names) {
  // `cobra top <out-dir>`: the directory may come positionally or via
  // --out-dir; positional wins.
  const std::string out_dir = names.empty() ? options.out_dir : names[0];
  for (;;) {
    if (render_fleet_status(out_dir, std::cout) == 0) {
      std::cerr << "cobra: no run journals under " << out_dir << '\n';
      return 2;
    }
    if (options.watch <= 0) return 0;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.watch));
    std::cout << "---\n";
  }
}

int cmd_report(const RunnerOptions& options,
               const std::vector<std::string>& names) {
  const std::string out_dir = names.empty() ? options.out_dir : names[0];
  if (render_metrics_report(out_dir, std::cout) == 0) {
    std::cerr << "cobra: no metrics sidecars under " << out_dir
              << " (run with --metrics summary|rounds to archive them)\n";
    return 2;
  }
  return 0;
}

int cmd_merge(const RunnerOptions& options,
              const std::vector<std::string>& names) {
  std::string error;
  const auto selected = select_experiments(options, names, error);
  if (selected.empty()) {
    std::cerr << "cobra: " << error << '\n';
    return 2;
  }
  for (const ExperimentDef* def : selected)
    merge_experiment(*def, options.out_dir, &std::cout);
  return 0;
}

}  // namespace

int cli_main(int argc, const char* const* argv) {
  RunnerOptions options;
  std::vector<std::string> args(argv, argv + argc);
  if (const auto error = parse_args(args, options)) {
    std::cerr << "cobra: " << *error << '\n';
    return 2;
  }
  if (options.help ||
      (options.positional.empty() && !options.list)) {
    std::cout << usage();
    return options.help ? 0 : 2;
  }

  apply_env_overrides(options);

  std::string command = "run";
  std::vector<std::string> names = options.positional;
  if (!names.empty() &&
      (names[0] == "list" || names[0] == "run" || names[0] == "sweep" ||
       names[0] == "merge" || names[0] == "graph" || names[0] == "top" ||
       names[0] == "report")) {
    command = names[0];
    names.erase(names.begin());
  }

  try {
    if (command == "list") return cmd_list(options);
    if (command == "sweep") return cmd_sweep(options, names);
    if (command == "merge") return cmd_merge(options, names);
    if (command == "graph") return cmd_graph(options, names);
    if (command == "top") return cmd_top(options, names);
    if (command == "report") return cmd_report(options, names);
    // `cobra run [NAME...] --list` dry-runs the cell selection (all
    // experiments when no NAME) in cmd_run; `cobra list` is the
    // experiment catalogue.
    return cmd_run(options, names);
  } catch (const std::exception& e) {
    std::cerr << "cobra: " << e.what() << '\n';
    return 1;
  }
}

int standalone_main(const std::string& experiment, int argc,
                    const char* const* argv) {
  std::vector<const char*> args;
  args.push_back("run");
  args.push_back(experiment.c_str());
  for (int i = 0; i < argc; ++i) args.push_back(argv[i]);
  return cli_main(static_cast<int>(args.size()), args.data());
}

}  // namespace cobra::runner
