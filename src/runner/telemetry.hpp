// Run-level telemetry archives and the fleet status views built on them.
//
// Three file formats live here, all beside the shard journals in the run
// directory:
//
//   * `<experiment>.metrics.jsonl` (sharded:
//     `<experiment>.<i>of<k>.metrics.jsonl`) — the per-cell metrics
//     sidecar. One versioned JSON line per completed cell holding the
//     drained registry snapshot and, in rounds mode, the per-round
//     frontier trajectory. The journal stays the single source of truth
//     for resume/merge; the sidecar is write-ahead of the journal line,
//     so a cell re-run after a crash appends a duplicate record and
//     readers keep the *last* record per cell id.
//   * `<experiment>.sweep.status` — the supervisor's fleet snapshot
//     (per-shard pid / restarts / wedges / progress), rewritten
//     atomically (temp + rename) about once a second while a sweep runs.
//   * the existing `<experiment>.costs` model, which `cobra top` reads to
//     turn "cells remaining" into an ETA.
//
// `cobra top` / `cobra sweep --status` render journals + status files +
// cost models into a live progress view; `cobra report` renders archived
// metrics sidecars into per-cell comparison tables. Both work purely off
// the files — no experiment needs to be re-enumerated or re-run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "util/metrics.hpp"

namespace cobra::runner {

/// Version tag of the metrics sidecar line format.
inline constexpr int kMetricsSidecarVersion = 1;

/// One cell's archived telemetry: everything a sidecar line holds.
struct CellMetricsRecord {
  std::string cell_id;          ///< CellDef::id (journal key)
  std::string mode;             ///< metrics mode the cell ran under
  std::uint64_t wall_us = 0;    ///< cell body wall time, microseconds
  util::MetricsSnapshot snapshot;       ///< drained registry snapshot
  std::vector<core::RoundStat> rounds;  ///< trajectory ("rounds" mode)
};

/// The sidecar path for shard index/count of `experiment` under
/// `out_dir`; shard 1/1 is the canonical `<experiment>.metrics.jsonl`.
std::string metrics_sidecar_path(const std::string& out_dir,
                                 const std::string& experiment,
                                 int shard_index, int shard_count);

/// Serializes a record as one canonical JSONL line
/// (`{"v":1,"cell":...,"mode":...,"wall_us":...,"metrics":{...},
/// "rounds":[[processes,frontier,newly,dense],...]}`, empty sections
/// omitted, no trailing newline). Canonical form makes parse → re-emit
/// byte-identical.
std::string record_to_jsonl(const CellMetricsRecord& record);

/// Parses a sidecar line (CheckError on malformed input or an unknown
/// version).
CellMetricsRecord record_from_jsonl(std::string_view line);

/// Reads a sidecar file, keeping the last record per cell id (a crash
/// between the sidecar append and the journal line makes the resumed run
/// re-append the cell). Returns an empty vector when the file does not
/// exist — a run with metrics off writes no sidecar.
std::vector<CellMetricsRecord> read_metrics_sidecar(
    const std::string& path);

/// Rewrites `path` from `records`, one canonical line each, atomically
/// (temp + rename). Used to compact a finished run's sidecar into
/// journal order and by the merge.
void write_metrics_sidecar(const std::string& path,
                           const std::vector<CellMetricsRecord>& records);

/// Appends one record to `path` (created on first use) and flushes — the
/// per-cell write-ahead append of run_experiment.
void append_metrics_record(const std::string& path,
                           const CellMetricsRecord& record);

/// Orders `records` by position of their cell id in `cell_order`
/// (records of unknown cells are dropped — the enumeration changed), so
/// merged and compacted sidecars are deterministic regardless of which
/// shard ran which cell when.
std::vector<CellMetricsRecord> order_records(
    std::vector<CellMetricsRecord> records,
    const std::vector<std::string>& cell_order);

/// The supervisor status path: `<out_dir>/<experiment>.sweep.status`.
std::string sweep_status_path(const std::string& out_dir,
                              const std::string& experiment);

/// One shard's line in the supervisor status file.
struct ShardStatus {
  int index = 0;               ///< 1-based shard i of i/k
  long pid = -1;               ///< live worker pid; -1 when none
  int restarts = 0;            ///< respawns so far
  int wedges = 0;              ///< wedge kills so far (subset of restarts)
  std::string state;           ///< "running" | "complete" | "dead"
  std::size_t cells_done = 0;  ///< journaled cells
  std::size_t cells_total = 0; ///< slice size
};

/// The supervisor's fleet snapshot.
struct SweepStatus {
  std::string experiment;
  int shard_count = 0;
  std::vector<ShardStatus> shards;  ///< indexed shard-1
};

/// Atomically rewrites the status file (temp + rename, so `cobra top`
/// never reads a torn snapshot).
void write_sweep_status(const std::string& path, const SweepStatus& status);

/// Parses a status file; std::nullopt when it does not exist. Malformed
/// content fails loudly (CheckError) like every other manifest.
std::optional<SweepStatus> read_sweep_status(const std::string& path);

/// Renders the fleet view of every experiment with journals under
/// `out_dir`: per-shard cell progress (journals), worker liveness and
/// respawn/wedge counters (status file, when a sweep wrote one) and an
/// ETA from the archived `<experiment>.costs` model (when present).
/// Returns the number of experiments found — `cobra top` exits non-zero
/// when the directory holds no runs at all.
std::size_t render_fleet_status(const std::string& out_dir,
                                std::ostream& out);

/// Renders the archived metrics sidecars under `out_dir` as per-cell
/// comparison tables (`cobra report`): one table per experiment with the
/// headline kernel counters as columns, followed by a totals line and
/// the merged non-kernel counters. Returns the number of sidecars
/// rendered.
std::size_t render_metrics_report(const std::string& out_dir,
                                  std::ostream& out);

/// The cell id of the last heartbeat or completed-cell line of a journal
/// ("" when the journal is missing or holds neither) — what a worker was
/// last seen doing, for respawn logs and the fleet view.
std::string last_journal_cell(const std::string& journal_path);

}  // namespace cobra::runner
