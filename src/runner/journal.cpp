#include "runner/journal.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace cobra::runner {

namespace {

constexpr char kMagic[] = "cobra-journal";
// v2 added the engine header field; v3 the per-cell wall time.
constexpr char kVersion[] = "v3";

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(line);
  while (std::getline(in, part, sep)) parts.push_back(part);
  return parts;
}

std::string format_header(const JournalHeader& h) {
  std::ostringstream os;
  // max_digits10 precision: the scale strtod-round-trips bit-exactly, so
  // resume/merge can compare it with plain equality.
  os << "run\t" << h.experiment << '\t' << h.shard_index << '/'
     << h.shard_count << '\t' << h.seed << '\t'
     << std::setprecision(17) << h.scale << '\t' << h.engine;
  return os.str();
}

}  // namespace

struct Journal::Impl {
  std::ofstream out;
};

std::string Journal::path_for(const std::string& out_dir,
                              const std::string& experiment, int shard_index,
                              int shard_count) {
  std::ostringstream os;
  os << out_dir << '/' << experiment << '.' << shard_index << "of"
     << shard_count << ".journal";
  return os.str();
}

Journal::Journal(Journal&& other) noexcept
    : impl_(other.impl_), entries_(std::move(other.entries_)) {
  other.impl_ = nullptr;
}

Journal::~Journal() { delete impl_; }

Journal Journal::create(const std::string& path,
                        const JournalHeader& header) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  Journal journal;
  journal.impl_ = new Impl;
  journal.impl_->out.open(path, std::ios::trunc);
  COBRA_CHECK_MSG(journal.impl_->out.good(),
                  "cannot open journal " << path);
  journal.impl_->out << kMagic << '\t' << kVersion << '\n'
                     << format_header(header) << '\n';
  journal.impl_->out.flush();
  return journal;
}

std::pair<JournalHeader, std::vector<JournalEntry>> Journal::read(
    const std::string& path) {
  std::ifstream in(path);
  COBRA_CHECK_MSG(in.good(), "cannot read journal " << path);
  std::string line;

  COBRA_CHECK_MSG(std::getline(in, line) &&
                      split(line, '\t') ==
                          std::vector<std::string>({kMagic, kVersion}),
                  path << " is not a " << kVersion << " cobra journal");

  JournalHeader header;
  COBRA_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                  path << ": missing run header");
  {
    const auto parts = split(line, '\t');
    COBRA_CHECK_MSG(parts.size() == 6 && parts[0] == "run",
                    path << ": malformed run header");
    header.experiment = parts[1];
    const auto shard = split(parts[2], '/');
    COBRA_CHECK_MSG(shard.size() == 2, path << ": malformed shard spec");
    header.shard_index = std::atoi(shard[0].c_str());
    header.shard_count = std::atoi(shard[1].c_str());
    header.seed = std::strtoull(parts[3].c_str(), nullptr, 10);
    header.scale = std::strtod(parts[4].c_str(), nullptr);
    header.engine = parts[5];
  }

  std::vector<JournalEntry> entries;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto parts = split(line, '\t');
    // A torn final line (crash mid-write) lacks the "ok" terminator —
    // even when it broke inside the counts list — and is treated as not
    // journaled, so the cell re-runs on resume.
    if (parts.size() != 5 || parts[0] != "cell" || parts[4] != "ok")
      continue;
    JournalEntry entry;
    entry.cell_id = parts[1];
    for (const std::string& count : split(parts[2], ',')) {
      entry.rows_per_table.push_back(
          static_cast<std::size_t>(std::strtoull(count.c_str(), nullptr, 10)));
    }
    entry.wall_us = std::strtoull(parts[3].c_str(), nullptr, 10);
    entries.push_back(std::move(entry));
  }
  return {header, entries};
}

Journal Journal::resume(const std::string& path,
                        const JournalHeader& expected) {
  auto [header, entries] = read(path);
  COBRA_CHECK_MSG(
      header == expected,
      "journal " << path << " was written by a different run configuration "
                 << "(experiment/shard/seed/scale/engine mismatch); refusing "
                 << "to resume — delete it or rerun with matching flags");

  // A crash can cut the trailing newline of the last (now discarded)
  // record; without this repair the next record would glue onto it.
  bool ends_in_newline = true;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (in.good() && in.tellg() > 0) {
      in.seekg(-1, std::ios::end);
      ends_in_newline = in.get() == '\n';
    }
  }

  Journal journal;
  journal.impl_ = new Impl;
  journal.impl_->out.open(path, std::ios::app);
  COBRA_CHECK_MSG(journal.impl_->out.good(),
                  "cannot reopen journal " << path);
  if (!ends_in_newline) journal.impl_->out << '\n';
  journal.entries_ = std::move(entries);
  return journal;
}

void Journal::record(const JournalEntry& entry) {
  COBRA_CHECK(impl_ != nullptr);
  COBRA_CHECK_MSG(entry.cell_id.find_first_of("\t\n\r") == std::string::npos,
                  "cell id contains journal separators: " << entry.cell_id);
  impl_->out << "cell\t" << entry.cell_id << '\t';
  for (std::size_t i = 0; i < entry.rows_per_table.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << entry.rows_per_table[i];
  }
  impl_->out << '\t' << entry.wall_us << "\tok\n";
  impl_->out.flush();
  entries_.push_back(entry);
}

std::size_t Journal::journaled_rows(std::size_t table_index) const {
  std::size_t total = 0;
  for (const JournalEntry& entry : entries_) {
    if (table_index < entry.rows_per_table.size())
      total += entry.rows_per_table[table_index];
  }
  return total;
}

}  // namespace cobra::runner
