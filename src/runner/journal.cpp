#include "runner/journal.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace cobra::runner {

namespace {

constexpr char kMagic[] = "cobra-journal";
// v2 added the engine header field; v3 the per-cell wall time (heartbeat
// lines ride on v3: every v3 reader already skips unknown records); v4
// the kernel-threads header field.
constexpr char kVersion[] = "v4";
// Versions this build recognises but can no longer read: their shards
// must be re-run, which is a very different failure from a corrupt file.
constexpr const char* kRetiredVersions[] = {"v1", "v2", "v3"};

/// Strict double parse (run-header scale): full-token match, finite and
/// positive, same loud failure contract as parse_u64_field.
double parse_scale_field(const std::string& token, const std::string& path,
                         std::size_t line_no) {
  char* end = nullptr;
  const double value =
      token.empty() ? 0.0 : std::strtod(token.c_str(), &end);
  COBRA_CHECK_MSG(!token.empty() && end == token.c_str() + token.size() &&
                      std::isfinite(value) && value > 0.0,
                  path << " line " << line_no
                       << ": scale is not a positive number: '" << token
                       << "'");
  return value;
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(line);
  while (std::getline(in, part, sep)) parts.push_back(part);
  return parts;
}

std::string format_header(const JournalHeader& h) {
  std::ostringstream os;
  // max_digits10 precision: the scale strtod-round-trips bit-exactly, so
  // resume/merge can compare it with plain equality.
  os << "run\t" << h.experiment << '\t' << h.shard_index << '/'
     << h.shard_count << '\t' << h.seed << '\t'
     << std::setprecision(17) << h.scale << '\t' << h.engine << '\t'
     << h.kernel_threads;
  return os.str();
}

}  // namespace

std::uint64_t parse_u64_field(const std::string& token, const char* field,
                              const std::string& path,
                              std::size_t line_no) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value, 10);
  COBRA_CHECK_MSG(ec == std::errc() && ptr == token.data() + token.size(),
                  path << " line " << line_no << ": " << field
                       << " is not a number: '" << token << "'");
  return value;
}

struct Journal::Impl {
  std::ofstream out;
};

std::string Journal::path_for(const std::string& out_dir,
                              const std::string& experiment, int shard_index,
                              int shard_count) {
  std::ostringstream os;
  os << out_dir << '/' << experiment << '.' << shard_index << "of"
     << shard_count << ".journal";
  return os.str();
}

Journal::Journal(Journal&& other) noexcept
    : impl_(other.impl_), entries_(std::move(other.entries_)) {
  other.impl_ = nullptr;
}

Journal::~Journal() { delete impl_; }

Journal Journal::create(const std::string& path,
                        const JournalHeader& header) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    COBRA_CHECK_MSG(!ec, "cannot create journal directory "
                             << p.parent_path().string() << ": "
                             << ec.message());
  }
  Journal journal;
  journal.impl_ = new Impl;
  journal.impl_->out.open(path, std::ios::trunc);
  COBRA_CHECK_MSG(journal.impl_->out.good(),
                  "cannot open journal " << path);
  journal.impl_->out << kMagic << '\t' << kVersion << '\n'
                     << format_header(header) << '\n';
  journal.impl_->out.flush();
  return journal;
}

std::pair<JournalHeader, std::vector<JournalEntry>> Journal::read(
    const std::string& path) {
  std::ifstream in(path);
  COBRA_CHECK_MSG(in.good(), "cannot read journal " << path);
  std::string line;

  COBRA_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                  path << ": empty or truncated journal (missing '"
                       << kMagic << "' header line)");
  {
    const auto parts = split(line, '\t');
    COBRA_CHECK_MSG(parts.size() == 2 && parts[0] == kMagic,
                    path << " line 1: not a cobra journal (expected '"
                         << kMagic << "\t<version>', found '" << line
                         << "')");
    if (parts[1] != kVersion) {
      // A known older version is a stale-but-valid file, not garbage:
      // say which version it is, which this build reads, and what to do.
      for (const char* old_version : kRetiredVersions) {
        COBRA_CHECK_MSG(
            parts[1] != old_version,
            path << " is a " << old_version << " cobra journal, but this "
                 << "build reads " << kVersion << " — the shard must be "
                 << "re-run: delete the journal (and its CSV fragments) "
                 << "and run it again without --resume");
      }
      COBRA_CHECK_MSG(false,
                      path << " line 1: unrecognised cobra journal version "
                           << "'" << parts[1] << "' (this build reads "
                           << kVersion << "; was it written by a newer "
                           << "cobra?)");
    }
  }

  JournalHeader header;
  COBRA_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                  path << ": truncated journal (missing run header on "
                       << "line 2)");
  {
    const auto parts = split(line, '\t');
    COBRA_CHECK_MSG(parts.size() == 7 && parts[0] == "run",
                    path << " line 2: malformed run header (expected 7 "
                         << "tab-separated 'run' fields, found '" << line
                         << "')");
    header.experiment = parts[1];
    const auto shard = split(parts[2], '/');
    COBRA_CHECK_MSG(shard.size() == 2,
                    path << " line 2: malformed shard spec '" << parts[2]
                         << "' (expected <index>/<count>)");
    header.shard_index = static_cast<int>(
        parse_u64_field(shard[0], "shard index", path, 2));
    header.shard_count = static_cast<int>(
        parse_u64_field(shard[1], "shard count", path, 2));
    COBRA_CHECK_MSG(header.shard_index >= 1 && header.shard_count >= 1 &&
                        header.shard_index <= header.shard_count,
                    path << " line 2: invalid shard spec '" << parts[2]
                         << "' (need 1 <= index <= count)");
    header.seed = parse_u64_field(parts[3], "seed", path, 2);
    header.scale = parse_scale_field(parts[4], path, 2);
    header.engine = parts[5];
    header.kernel_threads = static_cast<int>(
        parse_u64_field(parts[6], "kernel threads", path, 2));
    COBRA_CHECK_MSG(header.kernel_threads >= 1 &&
                        header.kernel_threads <= 256,
                    path << " line 2: kernel threads out of range: '"
                         << parts[6] << "' (need 1..256)");
  }

  std::vector<JournalEntry> entries;
  std::size_t line_no = 2;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto parts = split(line, '\t');
    // A torn final line (crash mid-write) lacks the "ok" terminator —
    // even when it broke inside the counts list — and is treated as not
    // journaled, so the cell re-runs on resume. Heartbeat liveness
    // markers are skipped the same way (they are not journaled cells).
    if (parts.size() != 5 || parts[0] != "cell" || parts[4] != "ok")
      continue;
    // The line claims to be a complete record, so every field must parse:
    // garbage behind an "ok" terminator is corruption, not a torn write.
    JournalEntry entry;
    entry.cell_id = parts[1];
    for (const std::string& count : split(parts[2], ',')) {
      entry.rows_per_table.push_back(static_cast<std::size_t>(
          parse_u64_field(count, "cell row count", path, line_no)));
    }
    entry.wall_us = parse_u64_field(parts[3], "cell wall time", path,
                                    line_no);
    entries.push_back(std::move(entry));
  }
  return {header, entries};
}

Journal Journal::resume(const std::string& path,
                        const JournalHeader& expected) {
  auto [header, entries] = read(path);
  COBRA_CHECK_MSG(
      header == expected,
      "journal " << path << " was written by a different run configuration "
                 << "(experiment/shard/seed/scale/engine/kernel-threads "
                 << "mismatch); refusing to resume — delete it or rerun "
                 << "with matching flags");

  // A crash can cut the trailing newline of the last (now discarded)
  // record; without this repair the next record would glue onto it.
  bool ends_in_newline = true;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (in.good() && in.tellg() > 0) {
      in.seekg(-1, std::ios::end);
      ends_in_newline = in.get() == '\n';
    }
  }

  Journal journal;
  journal.impl_ = new Impl;
  journal.impl_->out.open(path, std::ios::app);
  COBRA_CHECK_MSG(journal.impl_->out.good(),
                  "cannot reopen journal " << path);
  if (!ends_in_newline) journal.impl_->out << '\n';
  journal.entries_ = std::move(entries);
  return journal;
}

void Journal::record(const JournalEntry& entry) {
  COBRA_CHECK(impl_ != nullptr);
  COBRA_CHECK_MSG(entry.cell_id.find_first_of("\t\n\r") == std::string::npos,
                  "cell id contains journal separators: " << entry.cell_id);
  impl_->out << "cell\t" << entry.cell_id << '\t';
  for (std::size_t i = 0; i < entry.rows_per_table.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << entry.rows_per_table[i];
  }
  impl_->out << '\t' << entry.wall_us << "\tok\n";
  impl_->out.flush();
  entries_.push_back(entry);
}

void Journal::heartbeat(const std::string& cell_id) {
  COBRA_CHECK(impl_ != nullptr);
  COBRA_CHECK_MSG(cell_id.find_first_of("\t\n\r") == std::string::npos,
                  "cell id contains journal separators: " << cell_id);
  impl_->out << "heartbeat\t" << cell_id << '\n';
  impl_->out.flush();
}

std::size_t Journal::journaled_rows(std::size_t table_index) const {
  std::size_t total = 0;
  for (const JournalEntry& entry : entries_) {
    if (table_index < entry.rows_per_table.size())
      total += entry.rows_per_table[table_index];
  }
  return total;
}

}  // namespace cobra::runner
