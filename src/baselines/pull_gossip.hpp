// Pull and push-pull rumour spreading.
//
// Pull: every round, every UNinformed vertex contacts one uniform random
// neighbour and becomes informed if that neighbour is informed — the
// information-spreading mirror of BIPS's polling dynamics (without the
// refresh). Push-pull combines both directions and is the classic optimal
// gossip protocol. Both complement the push baseline for experiment E12.
//
// Both run on the frontier kernel with the informed set as a monotone
// frontier and keyed per-(round, vertex) contacts, so the engines are
// bit-for-bit identical. Pull iterates the COMPLEMENT of the informed set;
// its dense rounds scan complement words (O(n/64 + uninformed)), which is
// where the dense engine pays off in the late phase. Push-pull contacts
// every vertex every round, so its engines differ only in bookkeeping.
#pragma once

#include <cstdint>

#include "baselines/baseline.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::baselines {

/// Outcome of one pull / push-pull broadcast.
struct PullResult {
  std::uint64_t rounds = 0;         ///< rounds until all informed
  std::uint64_t transmissions = 0;  ///< contacts made
  bool completed = false;           ///< all vertices informed
};

/// Pull gossip cover from `start`.
PullResult pull_gossip_cover(const graph::Graph& g, graph::VertexId start,
                             rng::Rng& rng, std::uint64_t max_rounds,
                             const BaselineOptions& options = {});

/// Push-pull gossip cover from `start`.
PullResult push_pull_gossip_cover(const graph::Graph& g,
                                  graph::VertexId start, rng::Rng& rng,
                                  std::uint64_t max_rounds,
                                  const BaselineOptions& options = {});

}  // namespace cobra::baselines
