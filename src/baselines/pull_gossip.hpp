// Pull and push-pull rumour spreading.
//
// Pull: every round, every UNinformed vertex contacts one uniform random
// neighbour and becomes informed if that neighbour is informed — the
// information-spreading mirror of BIPS's polling dynamics (without the
// refresh). Push-pull combines both directions and is the classic optimal
// gossip protocol. Both complement the push baseline for experiment E12.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::baselines {

struct PullResult {
  std::uint64_t rounds = 0;
  std::uint64_t transmissions = 0;  // contacts made
  bool completed = false;
};

PullResult pull_gossip_cover(const graph::Graph& g, graph::VertexId start,
                             rng::Rng& rng, std::uint64_t max_rounds);

PullResult push_pull_gossip_cover(const graph::Graph& g,
                                  graph::VertexId start, rng::Rng& rng,
                                  std::uint64_t max_rounds);

}  // namespace cobra::baselines
