#include "baselines/multi_walk.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/bitset.hpp"

namespace cobra::baselines {

MultiWalkResult multi_walk_cover(const graph::Graph& g,
                                 graph::VertexId start, std::uint32_t k,
                                 rng::Rng& rng, std::uint64_t max_rounds,
                                 const BaselineOptions& options) {
  COBRA_CHECK(start < g.num_vertices());
  COBRA_CHECK(k >= 1);
  COBRA_CHECK(g.min_degree() >= 1);
  core::resolve_engine(options.engine);  // validate the session engine
  const core::DrawHash hash = core::resolve_draw_hash(options.draw_hash);
  std::shared_ptr<const core::NeighborSampler> sampler = options.sampler;
  if (sampler) {
    COBRA_CHECK_MSG(&sampler->graph() == &g && sampler->laziness() == 0.0,
                    "shared NeighborSampler must match the graph with "
                    "laziness 0");
  } else {
    sampler = std::make_shared<const core::NeighborSampler>(g, 0.0);
  }

  util::DynamicBitset visited(g.num_vertices());
  visited.set(start);
  std::uint32_t remaining = g.num_vertices() - 1;
  std::vector<graph::VertexId> particles(k, start);

  MultiWalkResult result;
  while (remaining > 0 && result.rounds < max_rounds) {
    const std::uint64_t round_key = rng.next_u64();
    for (std::uint32_t i = 0; i < k; ++i) {
      core::VertexDraws draws(hash, round_key, i);
      graph::VertexId& u = particles[i];
      u = sampler->sample(u, draws.next_word());
      if (visited.set_and_test(u)) --remaining;
    }
    ++result.rounds;
    result.transmissions += k;
  }
  result.completed = (remaining == 0);
  return result;
}

}  // namespace cobra::baselines
