#include "baselines/multi_walk.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/bitset.hpp"

namespace cobra::baselines {

MultiWalkResult multi_walk_cover(const graph::Graph& g,
                                 graph::VertexId start, std::uint32_t k,
                                 rng::Rng& rng, std::uint64_t max_rounds) {
  COBRA_CHECK(start < g.num_vertices());
  COBRA_CHECK(k >= 1);
  COBRA_CHECK(g.min_degree() >= 1);

  util::DynamicBitset visited(g.num_vertices());
  visited.set(start);
  std::uint32_t remaining = g.num_vertices() - 1;
  std::vector<graph::VertexId> particles(k, start);

  MultiWalkResult result;
  while (remaining > 0 && result.rounds < max_rounds) {
    for (graph::VertexId& u : particles) {
      const auto nbrs = g.neighbors(u);
      u = nbrs[static_cast<std::size_t>(rng.below(nbrs.size()))];
      if (visited.set_and_test(u)) --remaining;
    }
    ++result.rounds;
    result.transmissions += k;
  }
  result.completed = (remaining == 0);
  return result;
}

}  // namespace cobra::baselines
