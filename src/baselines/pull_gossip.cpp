#include "baselines/pull_gossip.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/bitset.hpp"

namespace cobra::baselines {

PullResult pull_gossip_cover(const graph::Graph& g, graph::VertexId start,
                             rng::Rng& rng, std::uint64_t max_rounds) {
  COBRA_CHECK(start < g.num_vertices());
  COBRA_CHECK(g.min_degree() >= 1);
  const graph::VertexId n = g.num_vertices();

  util::DynamicBitset informed(n);
  informed.set(start);
  std::uint32_t remaining = n - 1;

  PullResult result;
  std::vector<graph::VertexId> newly;
  while (remaining > 0 && result.rounds < max_rounds) {
    newly.clear();
    for (graph::VertexId u = 0; u < n; ++u) {
      if (informed.test(u)) continue;
      const auto nbrs = g.neighbors(u);
      const graph::VertexId contact =
          nbrs[static_cast<std::size_t>(rng.below(nbrs.size()))];
      ++result.transmissions;
      if (informed.test(contact)) newly.push_back(u);
    }
    // Synchronous semantics: pulls read this round's starting state.
    for (const graph::VertexId u : newly) {
      informed.set(u);
      --remaining;
    }
    ++result.rounds;
  }
  result.completed = (remaining == 0);
  return result;
}

PullResult push_pull_gossip_cover(const graph::Graph& g,
                                  graph::VertexId start, rng::Rng& rng,
                                  std::uint64_t max_rounds) {
  COBRA_CHECK(start < g.num_vertices());
  COBRA_CHECK(g.min_degree() >= 1);
  const graph::VertexId n = g.num_vertices();

  util::DynamicBitset informed(n);
  informed.set(start);
  std::uint32_t remaining = n - 1;

  PullResult result;
  std::vector<graph::VertexId> newly;
  while (remaining > 0 && result.rounds < max_rounds) {
    newly.clear();
    for (graph::VertexId u = 0; u < n; ++u) {
      const auto nbrs = g.neighbors(u);
      const graph::VertexId contact =
          nbrs[static_cast<std::size_t>(rng.below(nbrs.size()))];
      ++result.transmissions;
      if (informed.test(u)) {
        // Push: u informs its contact.
        if (!informed.test(contact)) newly.push_back(contact);
      } else if (informed.test(contact)) {
        // Pull: u learns from its contact.
        newly.push_back(u);
      }
    }
    for (const graph::VertexId u : newly) {
      if (informed.set_and_test(u)) --remaining;
    }
    ++result.rounds;
  }
  result.completed = (remaining == 0);
  return result;
}

}  // namespace cobra::baselines
