#include "baselines/pull_gossip.hpp"

#include "util/assert.hpp"

namespace cobra::baselines {

namespace {

core::FrontierKernel make_gossip_kernel(const graph::Graph& g,
                                        const BaselineOptions& options) {
  core::FrontierKernel::Config cfg;
  cfg.engine = core::resolve_engine(options.engine);
  cfg.draw_hash = options.draw_hash;
  cfg.dense_density = options.dense_density;
  cfg.kernel_threads = core::resolve_kernel_threads(options.kernel_threads);
  cfg.sampler = options.sampler;
  return core::FrontierKernel(g, cfg);
}

}  // namespace

PullResult pull_gossip_cover(const graph::Graph& g, graph::VertexId start,
                             rng::Rng& rng, std::uint64_t max_rounds,
                             const BaselineOptions& options) {
  COBRA_CHECK(start < g.num_vertices());
  COBRA_CHECK(g.min_degree() >= 1);
  using core::FrontierKernel;
  FrontierKernel kernel = make_gossip_kernel(g, options);
  const graph::VertexId one[] = {start};
  kernel.assign(one);
  const core::NeighborSampler& sampler = kernel.sampler();

  PullResult result;
  while (!kernel.all_visited() && result.rounds < max_rounds) {
    const std::uint64_t round_key = rng.next_u64();
    const bool dense =
        kernel.begin_round(kernel.density_score(kernel.frontier_size()));
    // Synchronous semantics: pulls test the round's starting frontier; new
    // adopters join only at commit.
    if (dense) {
      result.transmissions += kernel.scatter_complement_scan(
          [&](core::FrontierKernel::DenseLane& lane, graph::VertexId u) {
            const graph::VertexId contact =
                sampler.sample(u, lane.draws(round_key, u).next_word());
            ++lane.user;
            if (kernel.in_frontier(contact)) lane.emit(u);
          });
    } else {
      auto sink = kernel.growth_sink();
      kernel.for_each_outside_frontier([&](graph::VertexId u) {
        const graph::VertexId contact =
            sampler.sample(u, kernel.draws(round_key, u).next_word());
        ++result.transmissions;
        if (kernel.in_frontier(contact)) sink.emit(u);
      });
    }
    kernel.commit(FrontierKernel::Commit::kAccumulate);
    ++result.rounds;
  }
  result.completed = kernel.all_visited();
  return result;
}

PullResult push_pull_gossip_cover(const graph::Graph& g,
                                  graph::VertexId start, rng::Rng& rng,
                                  std::uint64_t max_rounds,
                                  const BaselineOptions& options) {
  COBRA_CHECK(start < g.num_vertices());
  COBRA_CHECK(g.min_degree() >= 1);
  using core::FrontierKernel;
  const graph::VertexId n = g.num_vertices();
  FrontierKernel kernel = make_gossip_kernel(g, options);
  const graph::VertexId one[] = {start};
  kernel.assign(one);
  const core::NeighborSampler& sampler = kernel.sampler();

  PullResult result;
  while (!kernel.all_visited() && result.rounds < max_rounds) {
    const std::uint64_t round_key = rng.next_u64();
    // Every vertex contacts every round, so the representation never
    // changes the work; the round inherits the current one.
    const bool dense = kernel.begin_round(
        kernel.dense_mode() ? 1.0 : 0.0);
    if (dense) {
      result.transmissions += kernel.scatter_vertex_scan(
          [&](core::FrontierKernel::DenseLane& lane, graph::VertexId u) {
            const graph::VertexId contact =
                sampler.sample(u, lane.draws(round_key, u).next_word());
            ++lane.user;
            if (kernel.in_frontier(u)) {
              // Push: u informs its contact.
              if (!kernel.in_frontier(contact)) lane.emit(contact);
            } else if (kernel.in_frontier(contact)) {
              // Pull: u learns from its contact.
              lane.emit(u);
            }
          });
    } else {
      auto sink = kernel.growth_sink();
      for (graph::VertexId u = 0; u < n; ++u) {
        const graph::VertexId contact =
            sampler.sample(u, kernel.draws(round_key, u).next_word());
        ++result.transmissions;
        if (kernel.in_frontier(u)) {
          // Push: u informs its contact.
          if (!kernel.in_frontier(contact)) sink.emit(contact);
        } else if (kernel.in_frontier(contact)) {
          // Pull: u learns from its contact.
          sink.emit(u);
        }
      }
    }
    kernel.commit(FrontierKernel::Commit::kAccumulate);
    ++result.rounds;
  }
  result.completed = kernel.all_visited();
  return result;
}

}  // namespace cobra::baselines
