#include "baselines/flooding.hpp"

#include "util/assert.hpp"

namespace cobra::baselines {

FloodingResult flooding_cover(const graph::Graph& g, graph::VertexId start,
                              std::uint64_t max_rounds,
                              const BaselineOptions& options) {
  COBRA_CHECK(start < g.num_vertices());
  using core::FrontierKernel;
  FrontierKernel::Config cfg;
  cfg.engine = core::resolve_engine(options.engine);
  cfg.dense_density = options.dense_density;
  cfg.kernel_threads = core::resolve_kernel_threads(options.kernel_threads);
  cfg.build_sampler = false;  // deterministic: no destinations to sample
  cfg.track_visited = true;
  FrontierKernel kernel(g, cfg);
  const graph::VertexId one[] = {start};
  kernel.assign(one);
  std::uint64_t informed_degree = g.degree(start);

  FloodingResult result;
  while (!kernel.all_visited() && result.rounds < max_rounds) {
    result.transmissions += informed_degree;
    const bool dense =
        kernel.begin_round(kernel.density_score(kernel.frontier_size()));
    if (dense) {
      kernel.scatter_frontier_scan(
          [&](core::FrontierKernel::DenseLane& lane, graph::VertexId u) {
            for (const graph::VertexId v : g.neighbors(u))
              if (!kernel.is_visited(v)) lane.emit(v);
          });
    } else {
      auto sink = kernel.growth_sink();
      kernel.for_each_in_frontier([&](graph::VertexId u) {
        for (const graph::VertexId v : g.neighbors(u)) sink.emit(v);
      });
    }
    const std::uint32_t newly =
        kernel.commit(FrontierKernel::Commit::kReplace);
    ++result.rounds;
    if (newly == 0) break;  // disconnected graph: cannot progress
    kernel.for_each_in_frontier(
        [&](graph::VertexId v) { informed_degree += g.degree(v); });
  }
  result.completed = kernel.all_visited();
  return result;
}

}  // namespace cobra::baselines
