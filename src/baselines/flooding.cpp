#include "baselines/flooding.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/bitset.hpp"

namespace cobra::baselines {

FloodingResult flooding_cover(const graph::Graph& g, graph::VertexId start,
                              std::uint64_t max_rounds) {
  COBRA_CHECK(start < g.num_vertices());
  const graph::VertexId n = g.num_vertices();

  util::DynamicBitset informed(n);
  informed.set(start);
  std::vector<graph::VertexId> frontier{start};
  std::uint64_t informed_degree = g.degree(start);
  std::uint32_t remaining = n - 1;

  FloodingResult result;
  std::vector<graph::VertexId> next;
  while (remaining > 0 && result.rounds < max_rounds) {
    result.transmissions += informed_degree;
    next.clear();
    for (const graph::VertexId u : frontier)
      for (const graph::VertexId v : g.neighbors(u))
        if (informed.set_and_test(v)) {
          next.push_back(v);
          informed_degree += g.degree(v);
          --remaining;
        }
    frontier.swap(next);
    ++result.rounds;
    if (frontier.empty()) break;  // disconnected graph: cannot progress
  }
  result.completed = (remaining == 0);
  return result;
}

}  // namespace cobra::baselines
