// Simple random walk (the COBRA process with b = 1).
//
// The paper's motivation: a single walk has cover time Omega(n log n) on
// every graph (and Theta(n^2)-ish on paths/cycles), which COBRA's branching
// beats by orders of magnitude at a constant-factor transmission overhead.
// A dedicated single-particle implementation is used instead of
// CobraProcess(b=1) because one particle needs no set bookkeeping
// (~10x faster), letting baselines run at the same scales as COBRA.
//
// Draw protocol: one 64-bit word per step from the replicate stream, fed
// to the shared NeighborSampler. A single particle has no frontier, so
// every engine runs the identical loop (BaselineOptions::engine is
// accepted for uniformity and validated, nothing more).
#pragma once

#include <cstdint>
#include <optional>

#include "baselines/baseline.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::baselines {

/// Outcome of one walk run.
struct WalkResult {
  std::uint64_t steps = 0;  ///< rounds (= transmissions for a single walk)
  bool completed = false;   ///< all vertices visited / target hit
};

/// Cover time of a simple random walk from `start`; gives up after
/// `max_steps`.
WalkResult random_walk_cover(const graph::Graph& g, graph::VertexId start,
                             rng::Rng& rng, std::uint64_t max_steps,
                             const BaselineOptions& options = {});

/// Hitting time start -> target.
WalkResult random_walk_hit(const graph::Graph& g, graph::VertexId start,
                           graph::VertexId target, rng::Rng& rng,
                           std::uint64_t max_steps,
                           const BaselineOptions& options = {});

/// Expected cover-time reference values for sanity checks:
/// K_n: (n-1) H_{n-1} (coupon collector); cycle C_n: n(n-1)/2;
/// path P_n: Theta(n^2) (we use the known asymptotic n^2).
double expected_cover_complete(std::uint64_t n);
double expected_cover_cycle(std::uint64_t n);

}  // namespace cobra::baselines
