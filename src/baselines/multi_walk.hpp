// k independent parallel random walks (Alon et al. [1], Elsässer-Sauerwald
// [7] in the paper's references): the natural non-coalescing competitor to
// COBRA. All k walks move simultaneously each round from a common start.
//
// Draw protocol: one 64-bit round key per round; walk i's move is derived
// from (round key, i) through the frontier kernel's keyed draws — keyed by
// the PARTICLE index, not the vertex, so two walks sharing a vertex still
// move independently. Particles have no frontier representation, so every
// engine runs the identical loop.
#pragma once

#include <cstdint>

#include "baselines/baseline.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::baselines {

/// Outcome of one k-walk cover run.
struct MultiWalkResult {
  std::uint64_t rounds = 0;         ///< synchronised rounds until cover
  std::uint64_t transmissions = 0;  ///< k per round
  bool completed = false;           ///< all vertices visited
};

/// Cover time of k independent walks started at `start`.
MultiWalkResult multi_walk_cover(const graph::Graph& g, graph::VertexId start,
                                 std::uint32_t k, rng::Rng& rng,
                                 std::uint64_t max_rounds,
                                 const BaselineOptions& options = {});

}  // namespace cobra::baselines
