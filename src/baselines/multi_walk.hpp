// k independent parallel random walks (Alon et al. [1], Elsässer-Sauerwald
// [7] in the paper's references): the natural non-coalescing competitor to
// COBRA. All k walks move simultaneously each round from a common start.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::baselines {

struct MultiWalkResult {
  std::uint64_t rounds = 0;
  std::uint64_t transmissions = 0;  // k per round
  bool completed = false;
};

/// Cover time of k independent walks started at `start`.
MultiWalkResult multi_walk_cover(const graph::Graph& g, graph::VertexId start,
                                 std::uint32_t k, rng::Rng& rng,
                                 std::uint64_t max_rounds);

}  // namespace cobra::baselines
