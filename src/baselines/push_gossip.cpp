#include "baselines/push_gossip.hpp"

#include "util/assert.hpp"

namespace cobra::baselines {

GossipResult push_gossip_cover(const graph::Graph& g, graph::VertexId start,
                               rng::Rng& rng, std::uint64_t max_rounds,
                               const BaselineOptions& options) {
  COBRA_CHECK(start < g.num_vertices());
  COBRA_CHECK(g.min_degree() >= 1);
  using core::FrontierKernel;
  FrontierKernel::Config cfg;
  cfg.engine = core::resolve_engine(options.engine);
  cfg.draw_hash = options.draw_hash;
  cfg.dense_density = options.dense_density;
  cfg.kernel_threads = core::resolve_kernel_threads(options.kernel_threads);
  cfg.sampler = options.sampler;
  FrontierKernel kernel(g, cfg);
  const graph::VertexId one[] = {start};
  kernel.assign(one);
  const core::NeighborSampler& sampler = kernel.sampler();

  GossipResult result;
  while (!kernel.all_visited() && result.rounds < max_rounds) {
    // Synchronous semantics: pushes this round come from vertices informed
    // before it — the frontier snapshot the kernel iterates.
    const std::uint32_t senders = kernel.frontier_size();
    const std::uint64_t round_key = rng.next_u64();
    const bool dense = kernel.begin_round(kernel.density_score(senders));
    if (dense) {
      kernel.scatter_frontier_scan(
          [&](core::FrontierKernel::DenseLane& lane, graph::VertexId u) {
            const graph::VertexId v =
                sampler.sample(u, lane.draws(round_key, u).next_word());
            if (!kernel.is_visited(v)) lane.emit(v);
          });
    } else {
      auto sink = kernel.growth_sink();
      kernel.for_each_in_frontier([&](graph::VertexId u) {
        sink.emit(sampler.sample(u, kernel.draws(round_key, u).next_word()));
      });
    }
    kernel.commit(FrontierKernel::Commit::kAccumulate);
    ++result.rounds;
    result.transmissions += senders;
  }
  result.completed = kernel.all_visited();
  return result;
}

}  // namespace cobra::baselines
