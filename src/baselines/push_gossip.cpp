#include "baselines/push_gossip.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/bitset.hpp"

namespace cobra::baselines {

GossipResult push_gossip_cover(const graph::Graph& g, graph::VertexId start,
                               rng::Rng& rng, std::uint64_t max_rounds) {
  COBRA_CHECK(start < g.num_vertices());
  COBRA_CHECK(g.min_degree() >= 1);

  util::DynamicBitset informed(g.num_vertices());
  informed.set(start);
  std::vector<graph::VertexId> informed_list{start};
  std::uint32_t remaining = g.num_vertices() - 1;

  GossipResult result;
  while (remaining > 0 && result.rounds < max_rounds) {
    // Snapshot: pushes this round come from vertices informed before it.
    const std::size_t senders = informed_list.size();
    for (std::size_t i = 0; i < senders; ++i) {
      const graph::VertexId u = informed_list[i];
      const auto nbrs = g.neighbors(u);
      const graph::VertexId v =
          nbrs[static_cast<std::size_t>(rng.below(nbrs.size()))];
      if (informed.set_and_test(v)) {
        informed_list.push_back(v);
        --remaining;
      }
    }
    ++result.rounds;
    result.transmissions += senders;
  }
  result.completed = (remaining == 0);
  return result;
}

}  // namespace cobra::baselines
