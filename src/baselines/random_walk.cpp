#include "baselines/random_walk.hpp"

#include "util/assert.hpp"
#include "util/bitset.hpp"
#include "util/math.hpp"

namespace cobra::baselines {

namespace {

std::shared_ptr<const core::NeighborSampler> walk_sampler(
    const graph::Graph& g, const BaselineOptions& options) {
  core::resolve_engine(options.engine);  // validate the session engine
  if (options.sampler) {
    COBRA_CHECK_MSG(&options.sampler->graph() == &g &&
                        options.sampler->laziness() == 0.0,
                    "shared NeighborSampler must match the graph with "
                    "laziness 0");
    return options.sampler;
  }
  return std::make_shared<const core::NeighborSampler>(g, 0.0);
}

}  // namespace

WalkResult random_walk_cover(const graph::Graph& g, graph::VertexId start,
                             rng::Rng& rng, std::uint64_t max_steps,
                             const BaselineOptions& options) {
  COBRA_CHECK(start < g.num_vertices());
  COBRA_CHECK(g.min_degree() >= 1);
  const auto sampler = walk_sampler(g, options);
  util::DynamicBitset visited(g.num_vertices());
  visited.set(start);
  std::uint32_t remaining = g.num_vertices() - 1;
  graph::VertexId u = start;
  WalkResult result;
  while (remaining > 0 && result.steps < max_steps) {
    u = sampler->sample(u, rng.next_u64());
    ++result.steps;
    if (visited.set_and_test(u)) --remaining;
  }
  result.completed = (remaining == 0);
  return result;
}

WalkResult random_walk_hit(const graph::Graph& g, graph::VertexId start,
                           graph::VertexId target, rng::Rng& rng,
                           std::uint64_t max_steps,
                           const BaselineOptions& options) {
  COBRA_CHECK(start < g.num_vertices() && target < g.num_vertices());
  COBRA_CHECK(g.min_degree() >= 1);
  const auto sampler = walk_sampler(g, options);
  graph::VertexId u = start;
  WalkResult result;
  result.completed = (u == target);
  while (!result.completed && result.steps < max_steps) {
    u = sampler->sample(u, rng.next_u64());
    ++result.steps;
    result.completed = (u == target);
  }
  return result;
}

double expected_cover_complete(std::uint64_t n) {
  COBRA_CHECK(n >= 2);
  return static_cast<double>(n - 1) * util::harmonic(n - 1);
}

double expected_cover_cycle(std::uint64_t n) {
  COBRA_CHECK(n >= 3);
  // Classic result: cover time of the n-cycle is n(n-1)/2 from any start.
  return static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
}

}  // namespace cobra::baselines
