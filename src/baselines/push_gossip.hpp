// Push rumour spreading: every round, every INFORMED vertex pushes to one
// uniform random neighbour, and informed vertices stay informed.
//
// This is the classic epidemic broadcast the paper's introduction contrasts
// with COBRA: push reaches everyone in O(log n) on good expanders but its
// per-round transmission count grows to n (every informed vertex keeps
// sending forever), whereas COBRA sends only b messages per *currently
// active* vertex and lets information die out locally.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::baselines {

struct GossipResult {
  std::uint64_t rounds = 0;
  std::uint64_t transmissions = 0;
  bool completed = false;
};

/// Rounds until all vertices are informed, starting from `start`.
GossipResult push_gossip_cover(const graph::Graph& g, graph::VertexId start,
                               rng::Rng& rng, std::uint64_t max_rounds);

}  // namespace cobra::baselines
