// Push rumour spreading: every round, every INFORMED vertex pushes to one
// uniform random neighbour, and informed vertices stay informed.
//
// This is the classic epidemic broadcast the paper's introduction contrasts
// with COBRA: push reaches everyone in O(log n) on good expanders but its
// per-round transmission count grows to n (every informed vertex keeps
// sending forever), whereas COBRA sends only b messages per *currently
// active* vertex and lets information die out locally.
//
// Runs on the frontier kernel with the informed set as a monotone
// frontier: destinations are keyed by (round key, vertex), so reference,
// sparse, dense and auto are bit-for-bit identical; dense rounds scan the
// informed bitset in ascending id order and merge new adopters
// word-parallel.
#pragma once

#include <cstdint>

#include "baselines/baseline.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::baselines {

/// Outcome of one push-gossip broadcast.
struct GossipResult {
  std::uint64_t rounds = 0;         ///< rounds until all informed
  std::uint64_t transmissions = 0;  ///< one per informed vertex per round
  bool completed = false;           ///< all vertices informed
};

/// Rounds until all vertices are informed, starting from `start`.
GossipResult push_gossip_cover(const graph::Graph& g, graph::VertexId start,
                               rng::Rng& rng, std::uint64_t max_rounds,
                               const BaselineOptions& options = {});

}  // namespace cobra::baselines
