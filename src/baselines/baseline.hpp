// Shared configuration for the baseline protocols (random walk, k walks,
// flooding, push/pull gossip).
//
// Every baseline runs on the process-agnostic frontier kernel
// (core/frontier_kernel.hpp): destinations come from the shared
// NeighborSampler and all per-(round, entity) randomness is keyed, so for
// each protocol the reference, sparse, dense and auto engines produce
// bit-for-bit identical results at a fixed seed — the engine only selects
// the frontier representation. The particle protocols (single/multi walk)
// have no frontier to represent, so their engines coincide trivially; the
// set protocols (flooding, push gossip, pull gossip) get real dense paths.
#pragma once

#include <memory>

#include "core/frontier_kernel.hpp"
#include "core/process.hpp"

namespace cobra::baselines {

/// Options accepted by every baseline cover function.
struct BaselineOptions {
  /// Stepping engine; kDefault defers to --engine / COBRA_ENGINE.
  core::Engine engine = core::Engine::kDefault;
  /// Keyed hash for the per-(round, entity) draws (kDefault -> mix64).
  core::DrawHash draw_hash = core::DrawHash::kDefault;
  /// Auto-switch threshold: dense frontier once |frontier| >= this
  /// fraction of n (2x hysteresis on the way down), as in ProcessOptions.
  double dense_density = 1.0 / 32.0;
  /// In-round kernel lane count; 0 defers to --kernel-threads /
  /// COBRA_KERNEL_THREADS, as in ProcessOptions::kernel_threads. Results
  /// are bit-identical at every setting.
  int kernel_threads = 0;
  /// Optional pre-built destination sampler (laziness 0), shared across
  /// replicates; must match the graph. When null, each call builds one.
  std::shared_ptr<const core::NeighborSampler> sampler;
};

}  // namespace cobra::baselines
