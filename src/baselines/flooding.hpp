// Deterministic flooding: every informed vertex sends to ALL neighbours
// every round. Covers in exactly ecc(start) rounds — the round-optimal
// broadcast — at the maximal transmission cost. The third corner of the
// rounds/traffic trade-off triangle next to COBRA and the random walk.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace cobra::baselines {

struct FloodingResult {
  std::uint64_t rounds = 0;          // == eccentricity of the start
  std::uint64_t transmissions = 0;   // sum over rounds of d(informed set)
  bool completed = false;
};

/// Deterministic, no randomness needed.
FloodingResult flooding_cover(const graph::Graph& g, graph::VertexId start,
                              std::uint64_t max_rounds);

}  // namespace cobra::baselines
