// Deterministic flooding: every informed vertex sends to ALL neighbours
// every round. Covers in exactly ecc(start) rounds — the round-optimal
// broadcast — at the maximal transmission cost. The third corner of the
// rounds/traffic trade-off triangle next to COBRA and the random walk.
//
// Runs on the frontier kernel: the BFS layer is the frontier, the informed
// set is the visited accumulator. No randomness is involved, so every
// engine is trivially bit-identical; the engine still selects the layer
// representation (vector vs bitset with word-parallel informed merges).
#pragma once

#include <cstdint>

#include "baselines/baseline.hpp"
#include "graph/graph.hpp"

namespace cobra::baselines {

/// Outcome of one flooding broadcast.
struct FloodingResult {
  std::uint64_t rounds = 0;         ///< == eccentricity of the start
  std::uint64_t transmissions = 0;  ///< sum over rounds of d(informed set)
  bool completed = false;           ///< all vertices informed
};

/// Deterministic, no randomness needed.
FloodingResult flooding_cover(const graph::Graph& g, graph::VertexId start,
                              std::uint64_t max_rounds,
                              const BaselineOptions& options = {});

}  // namespace cobra::baselines
