#include "sim/experiment.hpp"

#include <iostream>

#include "sim/monte_carlo.hpp"
#include "util/env.hpp"

namespace cobra::sim {

Experiment::Experiment(std::string id, std::string title,
                       std::vector<std::string> columns)
    : Experiment(std::move(id), std::move(title), std::move(columns),
                 ExperimentOutput{}) {}

Experiment::Experiment(std::string id, std::string title,
                       std::vector<std::string> columns,
                       const ExperimentOutput& out)
    : id_(std::move(id)),
      title_(std::move(title)),
      table_(columns),
      console_(out.console) {
  if (out.write_csv) {
    csv_path_ =
        out.csv_path.empty() ? "bench_results/" + id_ + ".csv" : out.csv_path;
    csv_ = std::make_unique<util::CsvWriter>(
        csv_path_, std::move(columns),
        out.append ? util::CsvWriter::Mode::kAppend
                   : util::CsvWriter::Mode::kTruncate);
  }
}

Experiment& Experiment::row() {
  table_.row();
  if (csv_) csv_->row();
  return *this;
}

Experiment& Experiment::add(const std::string& cell) {
  table_.add(cell);
  if (csv_) csv_->add(cell);
  return *this;
}

Experiment& Experiment::add(const char* cell) {
  return add(std::string(cell));
}

Experiment& Experiment::add(double value, int decimals) {
  table_.add(value, decimals);
  if (csv_) csv_->add(value);
  return *this;
}

Experiment& Experiment::add(std::int64_t value) {
  table_.add(value);
  if (csv_) csv_->add(value);
  return *this;
}

Experiment& Experiment::add(std::uint64_t value) {
  table_.add(value);
  if (csv_) csv_->add(value);
  return *this;
}

Experiment& Experiment::add(int value) {
  return add(static_cast<std::int64_t>(value));
}

Experiment& Experiment::add_formatted(const std::string& console_text,
                                      const std::string& csv_text) {
  table_.add(console_text);
  if (csv_) csv_->add(csv_text);
  return *this;
}

Experiment& Experiment::rule() {
  table_.rule();
  return *this;
}

void Experiment::note(const std::string& text) { notes_.push_back(text); }

void Experiment::finish() {
  if (finished_) return;
  finished_ = true;
  if (console_) {
    std::cout << "\n=== " << id_ << " ===\n"
              << title_ << "\n"
              << "seed=" << util::global_seed() << " scale=" << util::scale()
              << " workers=" << worker_count()
              << " engine=" << util::engine() << "\n\n";
    table_.print(std::cout);
    for (const std::string& n : notes_) std::cout << "  * " << n << '\n';
    if (csv_) std::cout << "  -> " << csv_path_ << '\n';
  }
  if (csv_) csv_->close();
}

std::uint64_t default_replicates(std::uint64_t base) {
  return static_cast<std::uint64_t>(util::scaled(
      static_cast<std::int64_t>(base), /*min_value=*/4));
}

}  // namespace cobra::sim
