#include "sim/experiment.hpp"

#include <iostream>

#include "sim/monte_carlo.hpp"
#include "util/env.hpp"

namespace cobra::sim {

Experiment::Experiment(std::string id, std::string title,
                       std::vector<std::string> columns)
    : id_(std::move(id)), title_(std::move(title)), table_(columns) {
  csv_ = std::make_unique<util::CsvWriter>("bench_results/" + id_ + ".csv",
                                           std::move(columns));
}

Experiment& Experiment::row() {
  table_.row();
  csv_->row();
  return *this;
}

Experiment& Experiment::add(const std::string& cell) {
  table_.add(cell);
  csv_->add(cell);
  return *this;
}

Experiment& Experiment::add(const char* cell) {
  return add(std::string(cell));
}

Experiment& Experiment::add(double value, int decimals) {
  table_.add(value, decimals);
  csv_->add(value);
  return *this;
}

Experiment& Experiment::add(std::int64_t value) {
  table_.add(value);
  csv_->add(value);
  return *this;
}

Experiment& Experiment::add(std::uint64_t value) {
  table_.add(value);
  csv_->add(value);
  return *this;
}

Experiment& Experiment::add(int value) {
  return add(static_cast<std::int64_t>(value));
}

Experiment& Experiment::rule() {
  table_.rule();
  return *this;
}

void Experiment::note(const std::string& text) { notes_.push_back(text); }

void Experiment::finish() {
  if (finished_) return;
  finished_ = true;
  std::cout << "\n=== " << id_ << " ===\n"
            << title_ << "\n"
            << "seed=" << util::global_seed() << " scale=" << util::scale()
            << " workers=" << worker_count() << "\n\n";
  table_.print(std::cout);
  for (const std::string& n : notes_) std::cout << "  * " << n << '\n';
  std::cout << "  -> bench_results/" << id_ << ".csv\n";
  csv_->close();
}

std::uint64_t default_replicates(std::uint64_t base) {
  return static_cast<std::uint64_t>(util::scaled(
      static_cast<std::int64_t>(base), /*min_value=*/4));
}

}  // namespace cobra::sim
