// Empirical survival analysis for "with high probability" statements.
//
// The paper's bounds are w.h.p. statements: P(cover > T_bound) <= n^{-c}.
// Operationally that is a claim about the survival function of the cover
// time. This module computes empirical survival curves S(t) = P(X > t) and
// exceedance probabilities at multiples of a bound, with Wilson confidence
// intervals, so experiments can report "the p such that P(cover > a*bound)
// <= p" directly.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.hpp"

namespace cobra::sim {

struct SurvivalPoint {
  double t = 0.0;
  double probability = 0.0;  // P(X > t)
};

/// Survival curve evaluated at every distinct sample value (right-continuous
/// step function; last point has probability 0).
std::vector<SurvivalPoint> survival_curve(std::vector<double> samples);

/// P(X > t) for a single threshold, with a Wilson interval.
struct Exceedance {
  double threshold = 0.0;
  std::uint64_t exceeding = 0;
  std::uint64_t total = 0;
  double probability = 0.0;
  Interval ci;  // 95% Wilson
};
Exceedance exceedance_probability(const std::vector<double>& samples,
                                  double threshold);

/// Smallest t with P(X > t) <= alpha (the empirical (1-alpha)-quantile as a
/// w.h.p. round count).
double whp_round_count(const std::vector<double>& samples, double alpha);

}  // namespace cobra::sim
