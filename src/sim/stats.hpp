// Statistics for experiment reporting: summaries, quantiles, confidence
// intervals, proportion tests and log-log regression for exponent fits.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.hpp"

namespace cobra::sim {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // sample variance (n-1)
double stddev(const std::vector<double>& xs);

/// q-quantile (0 <= q <= 1) with linear interpolation; copies and sorts.
double quantile(std::vector<double> xs, double q);

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};
Summary summarize(const std::vector<double>& xs);

/// Ordinary least squares y = slope x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Fits y = a * x^b by OLS in log-log space; returns {slope = b,
/// intercept = ln a, r2}. Requires positive data.
LinearFit loglog_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Wilson score interval for a binomial proportion (z = 1.96 is 95%).
struct Interval {
  double low = 0.0;
  double high = 0.0;
  [[nodiscard]] bool contains(double p) const { return low <= p && p <= high; }
  [[nodiscard]] bool overlaps(const Interval& other) const {
    return low <= other.high && other.low <= high;
  }
};
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z = 1.96);

/// Two-proportion z statistic (pooled). |z| < threshold => compatible.
double two_proportion_z(std::uint64_t k1, std::uint64_t n1,
                        std::uint64_t k2, std::uint64_t n2);

/// Percentile-bootstrap confidence interval for the mean.
Interval bootstrap_mean_ci(const std::vector<double>& xs,
                           std::uint32_t resamples, double alpha,
                           rng::Rng& rng);

}  // namespace cobra::sim
