// Parallel Monte-Carlo replicate runner.
//
// Replicate i always receives the RNG stream (seed, i) from the Philox
// counter construction (rng/stream.hpp), so results are bitwise identical
// for any thread count or schedule. OpenMP dynamic scheduling when
// available; a ThreadPool fallback otherwise; serial under either when the
// thread cap is 1.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rng/rng.hpp"

namespace cobra::sim {

/// Runs body(replicate, rng) for replicate in [0, count). The body must be
/// thread-safe w.r.t. shared state (typically it writes only to its own
/// index of a pre-sized results vector).
void parallel_replicates(std::uint64_t count, std::uint64_t seed,
                         const std::function<void(std::uint64_t, rng::Rng&)>&
                             body);

/// Convenience: collects one double per replicate.
std::vector<double> run_replicates(
    std::uint64_t count, std::uint64_t seed,
    const std::function<double(std::uint64_t, rng::Rng&)>& body);

/// The worker count parallel_replicates will use (env COBRA_THREADS cap).
int worker_count();

}  // namespace cobra::sim
