#include "sim/monte_carlo.hpp"

#include <algorithm>

#ifdef COBRA_HAVE_OPENMP
#include <omp.h>
#endif

#include "rng/stream.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"

namespace cobra::sim {

int worker_count() { return util::max_threads(); }

void parallel_replicates(
    std::uint64_t count, std::uint64_t seed,
    const std::function<void(std::uint64_t, rng::Rng&)>& body) {
  if (count == 0) return;
  const int workers =
      static_cast<int>(std::min<std::uint64_t>(count,
                                               static_cast<std::uint64_t>(
                                                   worker_count())));
  if (workers <= 1) {
    for (std::uint64_t i = 0; i < count; ++i) {
      rng::Rng rng = rng::make_stream(seed, i);
      body(i, rng);
    }
    return;
  }
#ifdef COBRA_HAVE_OPENMP
  // Dynamic schedule: replicate costs are heavy-tailed (cover times), so
  // static chunking would straggle.
#pragma omp parallel for schedule(dynamic, 1) num_threads(workers)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(count); ++i) {
    rng::Rng rng = rng::make_stream(seed, static_cast<std::uint64_t>(i));
    body(static_cast<std::uint64_t>(i), rng);
  }
#else
  util::ThreadPool pool(static_cast<std::size_t>(workers));
  pool.parallel_for_index(static_cast<std::size_t>(count),
                          [&](std::size_t i) {
                            rng::Rng rng = rng::make_stream(seed, i);
                            body(i, rng);
                          });
#endif
}

std::vector<double> run_replicates(
    std::uint64_t count, std::uint64_t seed,
    const std::function<double(std::uint64_t, rng::Rng&)>& body) {
  std::vector<double> results(count, 0.0);
  parallel_replicates(count, seed, [&](std::uint64_t i, rng::Rng& rng) {
    results[i] = body(i, rng);
  });
  return results;
}

}  // namespace cobra::sim
