#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace cobra::sim {

double mean(const std::vector<double>& xs) {
  COBRA_CHECK(!xs.empty());
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  COBRA_CHECK(xs.size() >= 2);
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) {
  return std::sqrt(variance(xs));
}

double quantile(std::vector<double> xs, double q) {
  COBRA_CHECK(!xs.empty());
  COBRA_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary summarize(const std::vector<double>& xs) {
  COBRA_CHECK(!xs.empty());
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  std::vector<double> sorted(xs);
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  auto interp = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.p25 = interp(0.25);
  s.median = interp(0.5);
  s.p75 = interp(0.75);
  s.p95 = interp(0.95);
  return s;
}

LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  COBRA_CHECK(xs.size() == ys.size() && xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  COBRA_CHECK_MSG(std::fabs(denom) > 1e-30, "degenerate x data");
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 1e-30 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit loglog_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  COBRA_CHECK(xs.size() == ys.size() && xs.size() >= 2);
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    COBRA_CHECK_MSG(xs[i] > 0.0 && ys[i] > 0.0,
                    "loglog_fit needs positive data");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return linear_fit(lx, ly);
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) {
  COBRA_CHECK(trials >= 1 && successes <= trials);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / denom;
  return {std::max(0.0, centre - half), std::min(1.0, centre + half)};
}

double two_proportion_z(std::uint64_t k1, std::uint64_t n1,
                        std::uint64_t k2, std::uint64_t n2) {
  COBRA_CHECK(n1 >= 1 && n2 >= 1 && k1 <= n1 && k2 <= n2);
  const double p1 = static_cast<double>(k1) / static_cast<double>(n1);
  const double p2 = static_cast<double>(k2) / static_cast<double>(n2);
  const double pooled =
      static_cast<double>(k1 + k2) / static_cast<double>(n1 + n2);
  const double se =
      std::sqrt(pooled * (1 - pooled) *
                (1.0 / static_cast<double>(n1) + 1.0 / static_cast<double>(n2)));
  if (se < 1e-300) return 0.0;  // both proportions identical (0 or 1)
  return (p1 - p2) / se;
}

Interval bootstrap_mean_ci(const std::vector<double>& xs,
                           std::uint32_t resamples, double alpha,
                           rng::Rng& rng) {
  COBRA_CHECK(!xs.empty() && resamples >= 10);
  COBRA_CHECK(alpha > 0.0 && alpha < 1.0);
  std::vector<double> means(resamples);
  for (std::uint32_t r = 0; r < resamples; ++r) {
    double s = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i)
      s += xs[static_cast<std::size_t>(rng.below(xs.size()))];
    means[r] = s / static_cast<double>(xs.size());
  }
  return {quantile(means, alpha / 2), quantile(means, 1.0 - alpha / 2)};
}

}  // namespace cobra::sim
