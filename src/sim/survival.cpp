#include "sim/survival.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cobra::sim {

std::vector<SurvivalPoint> survival_curve(std::vector<double> samples) {
  COBRA_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  std::vector<SurvivalPoint> curve;
  std::size_t i = 0;
  while (i < samples.size()) {
    std::size_t j = i;
    while (j < samples.size() && samples[j] == samples[i]) ++j;
    // After value samples[i], the fraction of samples strictly greater.
    curve.push_back({samples[i],
                     static_cast<double>(samples.size() - j) / n});
    i = j;
  }
  return curve;
}

Exceedance exceedance_probability(const std::vector<double>& samples,
                                  double threshold) {
  COBRA_CHECK(!samples.empty());
  Exceedance e;
  e.threshold = threshold;
  e.total = samples.size();
  for (const double x : samples)
    if (x > threshold) ++e.exceeding;
  e.probability =
      static_cast<double>(e.exceeding) / static_cast<double>(e.total);
  e.ci = wilson_interval(e.exceeding, e.total);
  return e;
}

double whp_round_count(const std::vector<double>& samples, double alpha) {
  COBRA_CHECK(alpha > 0.0 && alpha < 1.0);
  return quantile(samples, 1.0 - alpha);
}

}  // namespace cobra::sim
