// Experiment harness shared by the bench/exp_* binaries.
//
// Wraps a console Table plus a CSV archive (bench_results/<name>.csv) and
// standardises the banner (seed, scale, workers) so every experiment run is
// reproducible from its printout.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace cobra::sim {

class Experiment {
 public:
  /// `id` names the experiment (e.g. "exp_hypercube"); `title` is the
  /// paper claim being reproduced; `columns` is the shared table/CSV header.
  Experiment(std::string id, std::string title,
             std::vector<std::string> columns);

  /// Starts a new row (mirrored to CSV).
  Experiment& row();
  Experiment& add(const std::string& cell);
  Experiment& add(const char* cell);
  Experiment& add(double value, int decimals = 3);
  Experiment& add(std::int64_t value);
  Experiment& add(std::uint64_t value);
  Experiment& add(int value);

  /// Horizontal rule in the console table.
  Experiment& rule();

  /// Free-form note printed under the table (e.g. fitted exponents).
  void note(const std::string& text);

  /// Prints banner + table + notes to stdout and closes the CSV.
  void finish();

 private:
  std::string id_;
  std::string title_;
  util::Table table_;
  std::unique_ptr<util::CsvWriter> csv_;
  std::vector<std::string> notes_;
  bool finished_ = false;
};

/// Default replicate count scaled by COBRA_SCALE.
std::uint64_t default_replicates(std::uint64_t base);

}  // namespace cobra::sim
