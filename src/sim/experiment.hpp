// Experiment harness shared by the bench/exp_* binaries and the runner.
//
// Wraps a console Table plus a CSV archive (bench_results/<name>.csv) and
// standardises the banner (seed, scale, workers) so every experiment run is
// reproducible from its printout. The runner subsystem drives the same
// class with an explicit ExperimentOutput sink: a custom archive path,
// append mode (resumable sweeps continue an existing fragment), or console/
// CSV channels switched off individually.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace cobra::sim {

/// Where an Experiment's rows go. Defaults reproduce the historical
/// behaviour: truncate bench_results/<id>.csv and print the table on
/// finish().
struct ExperimentOutput {
  /// Archive path; empty means "bench_results/<id>.csv".
  std::string csv_path;
  /// When false no CSV is written at all (console-only rendering).
  bool write_csv = true;
  /// Reopen an existing archive instead of truncating it (resume state:
  /// rows already on disk are kept and new rows are appended).
  bool append = false;
  /// Print banner + table + notes to stdout on finish().
  bool console = true;
};

class Experiment {
 public:
  /// `id` names the experiment (e.g. "exp_hypercube"); `title` is the
  /// paper claim being reproduced; `columns` is the shared table/CSV header.
  Experiment(std::string id, std::string title,
             std::vector<std::string> columns);
  Experiment(std::string id, std::string title,
             std::vector<std::string> columns, const ExperimentOutput& out);

  /// Starts a new row (mirrored to CSV).
  Experiment& row();
  Experiment& add(const std::string& cell);
  Experiment& add(const char* cell);
  Experiment& add(double value, int decimals = 3);
  Experiment& add(std::int64_t value);
  Experiment& add(std::uint64_t value);
  Experiment& add(int value);

  /// Adds one cell with independent console and CSV representations. The
  /// runner uses this to replay buffered cell rows without re-deriving the
  /// per-column decimal formatting.
  Experiment& add_formatted(const std::string& console_text,
                            const std::string& csv_text);

  /// Horizontal rule in the console table.
  Experiment& rule();

  /// Free-form note printed under the table (e.g. fitted exponents).
  void note(const std::string& text);

  /// Prints banner + table + notes to stdout (unless the output sink
  /// disabled the console) and closes the CSV.
  void finish();

 private:
  std::string id_;
  std::string title_;
  util::Table table_;
  std::string csv_path_;
  std::unique_ptr<util::CsvWriter> csv_;
  std::vector<std::string> notes_;
  bool console_ = true;
  bool finished_ = false;
};

/// Default replicate count scaled by COBRA_SCALE.
std::uint64_t default_replicates(std::uint64_t base);

}  // namespace cobra::sim
