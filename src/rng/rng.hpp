// Rng: the library-wide random source.
//
// A thin facade over Xoshiro256** adding the distributions the simulators
// need: unbiased bounded integers (Lemire's multiply-with-rejection),
// uniform doubles, Bernoulli trials, Fisher-Yates shuffling and sampling
// without replacement. All simulation code takes an Rng& so experiments can
// inject deterministic streams.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/xoshiro256.hpp"
#include "util/assert.hpp"

namespace cobra::rng {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}
  explicit Rng(const std::array<std::uint64_t, 4>& state) : engine_(state) {}

  std::uint64_t next_u64() { return engine_.next(); }
  std::uint32_t next_u32() {
    return static_cast<std::uint32_t>(engine_.next() >> 32);
  }

  // UniformRandomBitGenerator interface.
  using result_type = std::uint64_t;
  std::uint64_t operator()() { return engine_.next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

  /// Uniform integer in [0, bound); bound >= 1.
  /// Lemire 2019 multiply-shift with rejection: exactly uniform, one
  /// multiplication in the common case.
  std::uint64_t below(std::uint64_t bound) {
    COBRA_DCHECK(bound >= 1);
    __extension__ using u128 = unsigned __int128;
    std::uint64_t x = next_u64();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    COBRA_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Uniform element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    COBRA_DCHECK(!items.empty());
    return items[static_cast<std::size_t>(below(items.size()))];
  }

  /// In-place Fisher-Yates shuffle.
  template <typename It>
  void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const std::uint64_t j = below(i);
      std::swap(first[static_cast<std::ptrdiff_t>(i - 1)],
                first[static_cast<std::ptrdiff_t>(j)]);
    }
  }

  /// k distinct indices uniformly from [0, n) (Floyd's algorithm is overkill
  /// here; partial Fisher-Yates over an index array keeps it simple and
  /// exact). Requires k <= n.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return engine_.state();
  }

 private:
  Xoshiro256ss engine_;
};

}  // namespace cobra::rng
