// Deterministic per-replicate random streams.
//
// Monte-Carlo replicate i must see the same randomness no matter how many
// threads run the experiment or in which order replicates are scheduled.
// We derive each replicate's Xoshiro state from the counter-based Philox
// function keyed by (seed, replicate): independent by construction, cheap
// (two Philox blocks per replicate), and bitwise reproducible.
#pragma once

#include <array>
#include <cstdint>

#include "rng/philox.hpp"
#include "rng/rng.hpp"

namespace cobra::rng {

/// Returns the Rng for Monte-Carlo replicate `stream_id` of experiment
/// `seed`. Distinct (seed, stream_id) pairs yield independent streams.
inline Rng make_stream(std::uint64_t seed, std::uint64_t stream_id) {
  PhiloxRng source(seed, stream_id);
  std::array<std::uint64_t, 4> state;
  do {
    for (auto& word : state) word = source.next();
    // Xoshiro's all-zero state is a fixed point; astronomically unlikely,
    // but regenerate rather than assume.
  } while (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0);
  return Rng(state);
}

/// Derives a child seed for a named sub-experiment, so that e.g. the graph
/// generator and the process simulator never share a stream.
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) {
  return mix64(seed ^ (0x9E3779B97F4A7C15ull + salt * 0xBF58476D1CE4E5B9ull));
}

}  // namespace cobra::rng
