// Xoshiro256** 1.0 (Blackman & Vigna, 2018; public-domain reference).
//
// The workhorse sequential generator: 256-bit state, passes BigCrush,
// ~1 ns per 64-bit output. jump() advances 2^128 steps for coarse-grained
// stream splitting (we normally derive per-replicate streams via Philox
// instead; see rng/stream.hpp).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "rng/splitmix64.hpp"

namespace cobra::rng {

class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a 64-bit seed via SplitMix64, as the
  /// reference implementation recommends.
  explicit constexpr Xoshiro256ss(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
    // All-zero state is invalid (fixed point); SplitMix64 cannot produce
    // four zero outputs in a row from any seed, so no further check needed.
  }

  explicit constexpr Xoshiro256ss(const std::array<std::uint64_t, 4>& state)
      : state_(state) {}

  constexpr std::uint64_t next() {
    const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (std::shuffle et al.).
  constexpr std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

  /// Advances the state by 2^128 steps (reference jump polynomial).
  constexpr void jump() {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
        0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (const std::uint64_t word : kJump)
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (1ull << bit))
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        next();
      }
    state_ = acc;
  }

  [[nodiscard]] constexpr const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cobra::rng
