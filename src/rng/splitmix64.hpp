// SplitMix64 (Steele, Lea, Flood 2014; public-domain reference by Vigna).
//
// Used only for seeding: it turns an arbitrary 64-bit seed into a
// well-distributed stream, which initialises Xoshiro256** state and mixes
// (seed, stream) pairs. Never used as the main generator.
#pragma once

#include <cstdint>

namespace cobra::rng {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// One-shot SplitMix64 finalizer: a decent 64-bit mixing function.
constexpr std::uint64_t mix64(std::uint64_t x) {
  return SplitMix64(x).next();
}

}  // namespace cobra::rng
