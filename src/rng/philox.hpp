// Philox4x32-10 counter-based RNG (Salmon, Moraes, Dror, Shaw, SC'11).
//
// Counter-based generators map (key, counter) -> 128 random bits with no
// sequential state, which makes parallel Monte-Carlo reproducible: replicate
// i always consumes the key-stream (seed, i) regardless of which thread runs
// it or in what order. This is the HPC-standard design (Random123, cuRAND).
//
// Verified against the Random123 known-answer vectors in tests/test_rng.cpp.
#pragma once

#include <array>
#include <cstdint>

namespace cobra::rng {

struct PhiloxBlock {
  std::array<std::uint32_t, 4> x;
};

/// One 10-round Philox4x32 evaluation: (counter, key) -> 4x32 bits.
constexpr PhiloxBlock philox4x32(std::array<std::uint32_t, 4> ctr,
                                 std::array<std::uint32_t, 2> key) {
  constexpr std::uint32_t kMul0 = 0xD2511F53u;
  constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
  constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;
  for (int round = 0; round < 10; ++round) {
    if (round != 0) {
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    const std::uint64_t p0 = static_cast<std::uint64_t>(kMul0) * ctr[0];
    const std::uint64_t p1 = static_cast<std::uint64_t>(kMul1) * ctr[2];
    const std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
    const std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
    const std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
    const std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
    ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
  }
  return PhiloxBlock{ctr};
}

/// Streaming engine over the Philox keyed function.
///
/// The 128-bit counter is split (stream_id : block): distinct stream ids give
/// provably disjoint counter ranges, hence statistically independent streams
/// under the Philox security claim.
class PhiloxRng {
 public:
  using result_type = std::uint64_t;

  PhiloxRng(std::uint64_t seed, std::uint64_t stream_id)
      : key_{static_cast<std::uint32_t>(seed),
             static_cast<std::uint32_t>(seed >> 32)},
        stream_id_(stream_id) {}

  std::uint64_t next() {
    if (buffered_ == 0) refill();
    --buffered_;
    return buffer_[buffered_];
  }

  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

 private:
  void refill() {
    const std::array<std::uint32_t, 4> ctr = {
        static_cast<std::uint32_t>(block_),
        static_cast<std::uint32_t>(block_ >> 32),
        static_cast<std::uint32_t>(stream_id_),
        static_cast<std::uint32_t>(stream_id_ >> 32)};
    const PhiloxBlock out = philox4x32(ctr, key_);
    buffer_[0] =
        (static_cast<std::uint64_t>(out.x[1]) << 32) | out.x[0];
    buffer_[1] =
        (static_cast<std::uint64_t>(out.x[3]) << 32) | out.x[2];
    buffered_ = 2;
    ++block_;
  }

  std::array<std::uint32_t, 2> key_;
  std::uint64_t stream_id_;
  std::uint64_t block_ = 0;
  std::array<std::uint64_t, 2> buffer_{};
  int buffered_ = 0;
};

}  // namespace cobra::rng
