// Walker alias method for O(1) sampling from a fixed discrete distribution.
//
// Used by weighted-start experiments (sampling a start vertex proportional
// to degree, i.e. the random-walk stationary distribution) and by the
// Barabasi-Albert generator.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.hpp"

namespace cobra::rng {

class AliasTable {
 public:
  /// Builds the table from non-negative weights with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  /// Samples an index with probability weight[i] / sum(weights).
  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return prob_.size(); }

  /// Exact sampling probability of index i (for tests).
  [[nodiscard]] double probability(std::uint32_t i) const;

 private:
  std::vector<double> prob_;        // acceptance threshold per column
  std::vector<std::uint32_t> alias_;  // fallback index per column
  std::vector<double> weight_norm_;   // normalised input (for probability())
};

}  // namespace cobra::rng
