// Walker alias method for O(1) sampling from a fixed discrete distribution.
//
// Used by weighted-start experiments (sampling a start vertex proportional
// to degree, i.e. the random-walk stationary distribution), by the
// Barabasi-Albert generator, and — degree-bucketed, one table per distinct
// degree — by the frontier kernel (core/frontier_kernel.hpp) for batched
// push-destination draws across every spreading process.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.hpp"

namespace cobra::rng {

/// Immutable alias table over indices 0..n-1 with probabilities
/// proportional to the construction weights. Sampling is O(1), const and
/// lock-free, so one table may serve many threads.
class AliasTable {
 public:
  /// Builds the table from non-negative weights with a positive sum
  /// (Vose's numerically stable construction).
  explicit AliasTable(const std::vector<double>& weights);

  /// Samples an index with probability weight[i] / sum(weights), consuming
  /// two draws (column choice + acceptance test) from `rng`.
  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

  /// Samples an index from a single uniform 64-bit word: the high 32 bits
  /// pick the column by fixed-point multiply, the low 32 bits run the
  /// acceptance test. Exact up to 2^-32 quantisation per draw — negligible
  /// against Monte-Carlo noise, and a pure function of `word`, which is
  /// what the counter-based COBRA engines need for replayable batched
  /// draws. Requires size() < 2^32.
  [[nodiscard]] std::uint32_t sample_word(std::uint64_t word) const {
    const auto column = static_cast<std::uint32_t>(
        ((word >> 32) * static_cast<std::uint64_t>(prob_.size())) >> 32);
    const double accept =
        static_cast<double>(word & 0xFFFFFFFFull) * 0x1.0p-32;
    return accept < prob_[column] ? column : alias_[column];
  }

  /// Number of indices in the distribution's support.
  [[nodiscard]] std::size_t size() const { return prob_.size(); }

  /// Exact sampling probability of index i (for tests).
  [[nodiscard]] double probability(std::uint32_t i) const;

 private:
  std::vector<double> prob_;          // acceptance threshold per column
  std::vector<std::uint32_t> alias_;  // fallback index per column
  std::vector<double> weight_norm_;   // normalised input (for probability())
};

}  // namespace cobra::rng
