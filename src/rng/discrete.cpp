#include "rng/discrete.hpp"

#include <numeric>

#include "util/assert.hpp"
#include "util/metrics.hpp"

namespace cobra::rng {

namespace {

// Alias-table telemetry (cold sites: builds happen once per distinct
// degree per graph, stream samples only on the legacy Rng path — the
// word-path sample_word stays uninstrumented and is accounted for by
// kernel.emissions).
struct AliasIds {
  util::MetricId builds;
  util::MetricId build_slots;
  util::MetricId stream_samples;
};

const AliasIds& alias_ids() {
  static const AliasIds ids = [] {
    util::MetricsRegistry& reg = util::MetricsRegistry::instance();
    return AliasIds{reg.counter("rng.alias_builds"),
                    reg.counter("rng.alias_build_slots"),
                    reg.counter("rng.alias_stream_samples")};
  }();
  return ids;
}

}  // namespace

AliasTable::AliasTable(const std::vector<double>& weights) {
  COBRA_CHECK(!weights.empty());
  if (util::metrics_collecting()) {
    util::MetricsRegistry& reg = util::MetricsRegistry::instance();
    reg.add(alias_ids().builds, 1);
    reg.add(alias_ids().build_slots, weights.size());
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  COBRA_CHECK_MSG(total > 0.0, "alias table needs a positive weight sum");
  for (const double w : weights) COBRA_CHECK_MSG(w >= 0.0, "negative weight");

  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0u);
  weight_norm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) weight_norm_[i] = weights[i] / total;

  // Vose's stable construction: split columns into under/over-full stacks.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weight_norm_[i] * static_cast<double>(n);

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::uint32_t AliasTable::sample(Rng& rng) const {
  util::count_if_collecting(alias_ids().stream_samples);
  const auto column =
      static_cast<std::uint32_t>(rng.below(prob_.size()));
  return rng.uniform01() < prob_[column] ? column : alias_[column];
}

double AliasTable::probability(std::uint32_t i) const {
  COBRA_CHECK(i < weight_norm_.size());
  return weight_norm_[i];
}

}  // namespace cobra::rng
