#include "rng/rng.hpp"

#include <numeric>

namespace cobra::rng {

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  COBRA_CHECK(k <= n);
  std::vector<std::uint32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0u);
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j =
        i + static_cast<std::uint32_t>(below(static_cast<std::uint64_t>(n - i)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace cobra::rng
