// Conductance phi(G) = min over cuts S (with d(S) <= m) of E(S, S_bar)/d(S).
//
// The paper compares its Theorem 1.2 against the SPAA'16 bound
// O((r^4 / phi^2) log^2 n), and uses Cheeger's inequality 1 - lambda >= phi^2/2
// to relate the two. We provide:
//   * exact conductance by subset enumeration (n <= 24, test oracle),
//   * a sweep-cut upper bound from a spectral-ish ordering (large graphs).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace cobra::spectral {

/// Exact conductance by enumerating all 2^(n-1) cuts. Requires 2 <= n <= 24.
double exact_conductance(const graph::Graph& g);

/// Conductance of the specific cut S (S non-empty, proper).
double cut_conductance(const graph::Graph& g,
                       const std::vector<graph::VertexId>& s);

/// Sweep cut: sorts vertices by `score`, evaluates every prefix cut, returns
/// the best conductance found (an upper bound on phi). With a Fiedler-like
/// score this is the Cheeger rounding; with any score it is still valid.
double sweep_conductance(const graph::Graph& g,
                         const std::vector<double>& score);

/// Convenience: sweep over the second eigenvector direction obtained from a
/// few deflated power iterations. Upper bound on phi.
double estimate_conductance(const graph::Graph& g, std::uint64_t seed = 1);

}  // namespace cobra::spectral
