#include "spectral/lanczos.hpp"

#include <cmath>
#include <vector>

#include "spectral/tridiag.hpp"
#include "util/assert.hpp"

namespace cobra::spectral {

namespace {

void apply_normalized_adjacency(const graph::Graph& g,
                                const std::vector<double>& inv_sqrt_deg,
                                const std::vector<double>& x,
                                std::vector<double>& y) {
  const graph::VertexId n = g.num_vertices();
  for (graph::VertexId u = 0; u < n; ++u) {
    double acc = 0.0;
    for (const graph::VertexId v : g.neighbors(u)) acc += x[v] * inv_sqrt_deg[v];
    y[u] = acc * inv_sqrt_deg[u];
  }
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace

LanczosResult lanczos_extremes(const graph::Graph& g, rng::Rng& rng,
                               std::uint32_t max_steps, double tolerance) {
  const graph::VertexId n = g.num_vertices();
  COBRA_CHECK(n >= 2);
  COBRA_CHECK_MSG(g.min_degree() >= 1, "isolated vertex");
  max_steps = std::min<std::uint32_t>(max_steps, n);

  std::vector<double> inv_sqrt_deg(n);
  std::vector<double> principal(n);
  for (graph::VertexId u = 0; u < n; ++u) {
    const double d = static_cast<double>(g.degree(u));
    inv_sqrt_deg[u] = 1.0 / std::sqrt(d);
    principal[u] = std::sqrt(d);
  }
  {
    const double pn = norm(principal);
    for (double& value : principal) value /= pn;
  }

  std::vector<std::vector<double>> basis;  // orthonormal Lanczos vectors
  std::vector<double> alpha, beta;

  std::vector<double> v(n), w(n);
  for (double& value : v) value = rng.uniform01() - 0.5;
  auto orthogonalize = [&](std::vector<double>& x) {
    const double c = dot(x, principal);
    for (graph::VertexId u = 0; u < n; ++u) x[u] -= c * principal[u];
    for (const auto& q : basis) {
      const double cq = dot(x, q);
      for (graph::VertexId u = 0; u < n; ++u) x[u] -= cq * q[u];
    }
  };
  orthogonalize(v);
  {
    const double vn = norm(v);
    COBRA_CHECK(vn > 1e-12);
    for (double& value : v) value /= vn;
  }

  LanczosResult result;
  double prev_lambda = -1.0;
  for (std::uint32_t step = 0; step < max_steps; ++step) {
    basis.push_back(v);
    apply_normalized_adjacency(g, inv_sqrt_deg, v, w);
    const double a = dot(w, v);
    alpha.push_back(a);
    // w <- w - a v - beta_prev v_prev, then full reorthogonalisation.
    for (graph::VertexId u = 0; u < n; ++u) w[u] -= a * v[u];
    orthogonalize(w);
    const double b = norm(w);
    result.steps = step + 1;

    const auto ritz = tridiagonal_eigenvalues(
        alpha, std::vector<double>(beta.begin(), beta.end()));
    result.mu2 = ritz.back();
    result.mu_min = ritz.front();
    result.lambda = std::max(std::fabs(result.mu2), std::fabs(result.mu_min));

    if (b < 1e-12) {
      // Krylov space exhausted: Ritz values are exact on the complement.
      result.converged = true;
      return result;
    }
    if (step >= 8 && std::fabs(result.lambda - prev_lambda) <
                         tolerance * std::max(1.0, result.lambda)) {
      result.converged = true;
      return result;
    }
    prev_lambda = result.lambda;

    beta.push_back(b);
    for (graph::VertexId u = 0; u < n; ++u) v[u] = w[u] / b;
  }
  result.converged = false;
  return result;
}

}  // namespace cobra::spectral
