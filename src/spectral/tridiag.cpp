#include "spectral/tridiag.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace cobra::spectral {

namespace {
double hypot_stable(double a, double b) { return std::hypot(a, b); }
}  // namespace

std::vector<double> tridiagonal_eigenvalues(std::vector<double> diag,
                                            std::vector<double> off) {
  const std::size_t n = diag.size();
  if (n == 0) return {};
  COBRA_CHECK(off.size() + 1 == n || (n == 1 && off.empty()));
  if (n == 1) return diag;

  // Classic TQLI (Numerical Recipes / EISPACK tql1) without eigenvectors.
  std::vector<double>& d = diag;
  std::vector<double> e(n, 0.0);
  std::copy(off.begin(), off.end(), e.begin());  // e[0..n-2], e[n-1] = 0

  for (std::size_t l = 0; l < n; ++l) {
    int iterations = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        COBRA_CHECK_MSG(++iterations <= 64,
                        "tridiagonal QL failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);  // Wilkinson shift
        double r = hypot_stable(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = hypot_stable(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
        }
        if (r == 0.0 && m > l + 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  std::sort(d.begin(), d.end());
  return d;
}

}  // namespace cobra::spectral
