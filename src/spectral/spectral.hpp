// Facade for the paper's spectral quantities.
//
// lambda(G) = max_{i>=2} |mu_i| of the random-walk matrix P = D^{-1} A
// (the paper's "second largest eigenvalue in absolute value"), and the
// eigenvalue gap 1 - lambda, which drives Theorem 1.2.
//
// Also provides closed-form spectra for the standard families (used both by
// tests as ground truth and by experiments to avoid iterative solves).
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"

namespace cobra::spectral {

struct SpectralInfo {
  double lambda = 0.0;  // max_{i >= 2} |mu_i|
  double gap = 0.0;     // 1 - lambda
  bool exact = false;   // dense solve (true) vs iterative (false)
};

/// Computes lambda(G). Dense Jacobi for n <= `dense_threshold`; Lanczos
/// (power-iteration fallback) above. `seed` controls iterative start
/// vectors only.
SpectralInfo compute_lambda(const graph::Graph& g, std::uint64_t seed = 1,
                            graph::VertexId dense_threshold = 256);

/// Memoised compute_lambda: results are cached process-wide, keyed by
/// (Graph::fingerprint, seed, dense_threshold), so sharded cells that
/// rebuild an identical graph — same generator, generator seed and scale —
/// reuse one Lanczos/Jacobi solve instead of recomputing the spectrum.
/// Thread-safe; the experiment drivers call this instead of
/// compute_lambda.
SpectralInfo compute_lambda_cached(const graph::Graph& g,
                                   std::uint64_t seed = 1,
                                   graph::VertexId dense_threshold = 256);

/// Hit/miss counters of the compute_lambda_cached cache (tests and cost
/// accounting).
struct SpectralCacheStats {
  std::size_t hits = 0;     ///< calls answered from the cache
  std::size_t misses = 0;   ///< calls that ran a solve
  std::size_t entries = 0;  ///< distinct (graph, seed, threshold) keys held
};

/// Current cache counters.
SpectralCacheStats spectral_cache_stats();

/// Drops all cached spectra and resets the counters (tests).
void clear_spectral_cache();

/// Closed-form lambda for families with known walk spectra. Returns nullopt
/// if the name/parameters are not one of the known cases.
/// Known: complete(n), cycle(n), hypercube(d), star(n),
/// complete_bipartite(a,b), path(n) and torus_power(side, dim) second
/// eigenvalue (see lambda2 below).
std::optional<double> theory_lambda(const graph::Graph& g);

// Individual closed forms (walk matrix P eigenvalues).
double lambda_complete(graph::VertexId n);        // 1/(n-1)
double lambda_cycle(graph::VertexId n);           // even n: 1; odd: cos(pi/n)
double lambda2_cycle(graph::VertexId n);          // cos(2 pi / n)
double lambda_hypercube(std::uint32_t d);         // 1 (bipartite)
double lambda2_hypercube(std::uint32_t d);        // 1 - 2/d
double lambda_lazy_hypercube(std::uint32_t d);    // 1 - 1/d  ((I+P)/2)
double lambda_complete_bipartite();               // 1
double lambda_path(graph::VertexId n);            // 1 (bipartite)
double lambda2_path(graph::VertexId n);           // cos(pi/(n-1))
double lambda2_torus(graph::VertexId side, std::uint32_t dim);
double lambda_petersen();                         // 2/3

/// Gap condition of Theorems 1.2/1.5: 1 - lambda > C sqrt(log n / n).
/// Returns (1 - lambda) / sqrt(log n / n), the margin factor experiments
/// report next to their results.
double gap_condition_margin(double lambda, graph::VertexId n);

}  // namespace cobra::spectral
