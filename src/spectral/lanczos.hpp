// Lanczos iteration on the normalised adjacency restricted to the
// complement of the principal eigenvector.
//
// Gives both extreme eigenvalues (mu_2 from above, mu_n from below) in one
// run, which the paper's lambda = max(|mu_2|, |mu_n|) needs. Full
// reorthogonalisation keeps the basis clean; the Krylov dimension is small
// (<= 200), so the O(k^2 n) cost is irrelevant next to simulation time.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace cobra::spectral {

struct LanczosResult {
  double mu2 = 0.0;   // largest eigenvalue on the complement (= mu_2 of N)
  double mu_min = 0.0;  // smallest eigenvalue of N
  double lambda = 0.0;  // max(|mu2|, |mu_min|)
  std::uint32_t steps = 0;
  bool converged = false;
};

LanczosResult lanczos_extremes(const graph::Graph& g, rng::Rng& rng,
                               std::uint32_t max_steps = 200,
                               double tolerance = 1e-10);

}  // namespace cobra::spectral
