// Random-walk mixing analysis.
//
// The paper's eigenvalue gap 1 - lambda is exactly the reciprocal of the
// walk's relaxation time; the PODC'16 and Theorem 1.2 bounds trade powers of
// it. This module supplies:
//   * the spectral mixing-time bound  t_mix(eps) <= t_rel ln(1/(eps pi_min)),
//   * the exact total-variation mixing time of the (lazy) walk, computed by
//     evolving the distribution with repeated sparse mat-vecs (no sampling),
// so experiments can relate measured COBRA/BIPS times to how fast the
// underlying single walk actually mixes.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace cobra::spectral {

/// Relaxation time 1/(1 - lambda); lambda < 1 required.
double relaxation_time(double lambda);

/// Spectral upper bound on the eps-mixing time of a reversible chain:
/// t_rel * ln(1/(eps * pi_min)), with pi_min = min_u deg(u)/2m.
double mixing_time_bound(const graph::Graph& g, double lambda,
                         double eps = 0.25);

/// One exact step of the walk distribution: next[v] = sum_{u ~ v} x[u]/d(u),
/// with per-step laziness (stay probability) `laziness`.
void walk_distribution_step(const graph::Graph& g,
                            const std::vector<double>& x,
                            std::vector<double>& next,
                            double laziness = 0.0);

/// Total-variation distance between a distribution and the stationary
/// distribution pi(u) = deg(u)/2m.
double tv_distance_to_stationary(const graph::Graph& g,
                                 const std::vector<double>& x);

/// Exact eps-mixing time of the lazy random walk from `source`: the first t
/// with TV(P^t delta_source, pi) <= eps. Deterministic (repeated mat-vec);
/// cost O(t m). Returns max_steps + 1 if not mixed within the budget.
std::uint64_t exact_mixing_time(const graph::Graph& g,
                                graph::VertexId source, double eps = 0.25,
                                double laziness = 0.5,
                                std::uint64_t max_steps = 1u << 20);

}  // namespace cobra::spectral
