// Dense symmetric eigenvalue machinery (exact oracle for small graphs).
//
// The large-graph path (power iteration / Lanczos) is validated against the
// cyclic Jacobi solver here, which is slow (O(n^3) per sweep) but
// unconditionally robust and accurate to machine precision.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace cobra::spectral {

/// Row-major dense symmetric matrix.
class DenseSymmetric {
 public:
  explicit DenseSymmetric(std::size_t n) : n_(n), a_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  double& at(std::size_t i, std::size_t j) { return a_[i * n_ + j]; }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return a_[i * n_ + j];
  }

  void set_symmetric(std::size_t i, std::size_t j, double value) {
    at(i, j) = value;
    at(j, i) = value;
  }

 private:
  std::size_t n_;
  std::vector<double> a_;
};

/// All eigenvalues of a symmetric matrix, ascending, via cyclic Jacobi
/// rotations. Destroys no input (works on a copy).
std::vector<double> jacobi_eigenvalues(DenseSymmetric a,
                                       double tolerance = 1e-12,
                                       int max_sweeps = 64);

/// The random-walk-normalised adjacency N = D^{-1/2} A D^{-1/2} of g as a
/// dense matrix. N is symmetric and similar to the walk matrix P = D^{-1}A,
/// so they share eigenvalues; 1 is always the top eigenvalue.
DenseSymmetric normalized_adjacency_dense(const graph::Graph& g);

/// Eigenvalues of the walk matrix of g (ascending), exact via Jacobi.
std::vector<double> walk_spectrum_dense(const graph::Graph& g);

}  // namespace cobra::spectral
