#include "spectral/spectral.hpp"

#include <cmath>
#include <numbers>
#include <unordered_map>

#include "rng/splitmix64.hpp"
#include "rng/stream.hpp"
#include "spectral/dense.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/power.hpp"
#include "util/annotations.hpp"
#include "util/assert.hpp"
#include "util/metrics.hpp"

namespace cobra::spectral {

SpectralInfo compute_lambda(const graph::Graph& g, std::uint64_t seed,
                            graph::VertexId dense_threshold) {
  SpectralInfo info;
  const graph::VertexId n = g.num_vertices();
  COBRA_CHECK(n >= 2);
  if (n <= dense_threshold) {
    const auto spectrum = walk_spectrum_dense(g);  // ascending
    const double mu2 = spectrum[spectrum.size() - 2];
    const double mu_min = spectrum.front();
    info.lambda = std::max(std::fabs(mu2), std::fabs(mu_min));
    info.exact = true;
  } else {
    rng::Rng rng = rng::make_stream(seed, /*stream_id=*/0x5eed);
    const LanczosResult lz = lanczos_extremes(g, rng);
    if (lz.converged) {
      info.lambda = lz.lambda;
    } else {
      // Lanczos hit its step cap without stabilising; fall back to the
      // squared power iteration, which is slower but monotone.
      rng::Rng rng2 = rng::make_stream(seed, /*stream_id=*/0x5eed + 1);
      info.lambda = power_lambda(g, rng2).lambda;
    }
    info.exact = false;
  }
  info.lambda = std::min(1.0, std::max(0.0, info.lambda));
  info.gap = 1.0 - info.lambda;
  return info;
}

namespace {

// Process-wide spectrum cache. Guarded by a mutex: cells run sequentially,
// but examples and future drivers may solve from worker threads.
struct SpectralCache {
  util::Mutex mutex;
  std::unordered_map<std::uint64_t, SpectralInfo> entries
      COBRA_GUARDED_BY(mutex);
  std::size_t hits COBRA_GUARDED_BY(mutex) = 0;
  std::size_t misses COBRA_GUARDED_BY(mutex) = 0;
};

SpectralCache& spectral_cache() {
  static SpectralCache cache;
  return cache;
}

// Registry mirror of the cache counters (telemetry sidecars; the struct
// stats above stay authoritative for the introspection API).
util::MetricId spectral_metric(const char* which) {
  return util::MetricsRegistry::instance().counter(which);
}

util::MetricId spectral_hit_id() {
  static const util::MetricId id = spectral_metric("spectral.cache_hits");
  return id;
}

util::MetricId spectral_miss_id() {
  static const util::MetricId id = spectral_metric("spectral.cache_misses");
  return id;
}

}  // namespace

SpectralInfo compute_lambda_cached(const graph::Graph& g, std::uint64_t seed,
                                   graph::VertexId dense_threshold) {
  const std::uint64_t key =
      rng::mix64(g.fingerprint() ^ rng::mix64(seed) ^
                 rng::mix64(0x5BEC7247ull + dense_threshold));
  SpectralCache& cache = spectral_cache();
  {
    const util::MutexLock lock(cache.mutex);
    const auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      ++cache.hits;
      util::count_if_collecting(spectral_hit_id());
      return it->second;
    }
  }
  // Solve outside the lock: spectra of large graphs take seconds, and two
  // threads racing on the same key at worst duplicate one solve.
  const SpectralInfo info = compute_lambda(g, seed, dense_threshold);
  {
    const util::MutexLock lock(cache.mutex);
    ++cache.misses;
    cache.entries.emplace(key, info);
  }
  util::count_if_collecting(spectral_miss_id());
  return info;
}

SpectralCacheStats spectral_cache_stats() {
  SpectralCache& cache = spectral_cache();
  const util::MutexLock lock(cache.mutex);
  return SpectralCacheStats{cache.hits, cache.misses, cache.entries.size()};
}

void clear_spectral_cache() {
  SpectralCache& cache = spectral_cache();
  const util::MutexLock lock(cache.mutex);
  cache.entries.clear();
  cache.hits = 0;
  cache.misses = 0;
}

double lambda_complete(graph::VertexId n) {
  COBRA_CHECK(n >= 2);
  return 1.0 / static_cast<double>(n - 1);
}

double lambda_cycle(graph::VertexId n) {
  COBRA_CHECK(n >= 3);
  if (n % 2 == 0) return 1.0;  // bipartite: mu_min = -1
  return std::cos(std::numbers::pi / static_cast<double>(n));
}

double lambda2_cycle(graph::VertexId n) {
  COBRA_CHECK(n >= 3);
  return std::cos(2.0 * std::numbers::pi / static_cast<double>(n));
}

double lambda_hypercube(std::uint32_t d) {
  COBRA_CHECK(d >= 1);
  return 1.0;  // bipartite
}

double lambda2_hypercube(std::uint32_t d) {
  COBRA_CHECK(d >= 1);
  return 1.0 - 2.0 / static_cast<double>(d);
}

double lambda_lazy_hypercube(std::uint32_t d) {
  COBRA_CHECK(d >= 1);
  return 1.0 - 1.0 / static_cast<double>(d);
}

double lambda_complete_bipartite() { return 1.0; }

double lambda_path(graph::VertexId n) {
  COBRA_CHECK(n >= 2);
  return 1.0;  // bipartite
}

double lambda2_path(graph::VertexId n) {
  COBRA_CHECK(n >= 2);
  // Normalised adjacency of P_n has eigenvalues cos(k pi/(n-1)), k=0..n-1.
  return std::cos(std::numbers::pi / static_cast<double>(n - 1));
}

double lambda2_torus(graph::VertexId side, std::uint32_t dim) {
  COBRA_CHECK(side >= 3 && dim >= 1);
  // Walk eigenvalues are averages of per-axis cycle eigenvalues:
  // mu = (1/D) sum_j cos(2 pi k_j / side); the second largest takes one
  // k_j = 1 and the rest 0.
  const double c = std::cos(2.0 * std::numbers::pi / static_cast<double>(side));
  const double d = static_cast<double>(dim);
  return ((d - 1.0) + c) / d;
}

double lambda_petersen() { return 2.0 / 3.0; }

std::optional<double> theory_lambda(const graph::Graph& g) {
  const std::string& name = g.name();
  const graph::VertexId n = g.num_vertices();
  auto starts_with = [&](const char* prefix) {
    return name.rfind(prefix, 0) == 0;
  };
  if (starts_with("complete_bipartite(")) return lambda_complete_bipartite();
  if (starts_with("complete(")) return lambda_complete(n);
  if (starts_with("cycle(")) return lambda_cycle(n);
  if (starts_with("path(")) return lambda_path(n);
  if (starts_with("star(")) return 1.0;  // K_{1,n-1} is complete bipartite
  if (starts_with("hypercube(")) return lambda_hypercube(1);
  if (name == "petersen") return lambda_petersen();
  return std::nullopt;
}

double gap_condition_margin(double lambda, graph::VertexId n) {
  COBRA_CHECK(n >= 2);
  const double threshold =
      std::sqrt(std::log(static_cast<double>(n)) / static_cast<double>(n));
  return (1.0 - lambda) / threshold;
}

}  // namespace cobra::spectral
