#include "spectral/power.hpp"

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace cobra::spectral {

namespace {

/// y = N x for N = D^{-1/2} A D^{-1/2}, computed edge-wise on the CSR graph.
void apply_normalized_adjacency(const graph::Graph& g,
                                const std::vector<double>& inv_sqrt_deg,
                                const std::vector<double>& x,
                                std::vector<double>& y) {
  const graph::VertexId n = g.num_vertices();
  for (graph::VertexId u = 0; u < n; ++u) {
    double acc = 0.0;
    for (const graph::VertexId v : g.neighbors(u)) acc += x[v] * inv_sqrt_deg[v];
    y[u] = acc * inv_sqrt_deg[u];
  }
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace

PowerResult power_lambda(const graph::Graph& g, rng::Rng& rng,
                         std::uint32_t max_iterations, double tolerance) {
  const graph::VertexId n = g.num_vertices();
  COBRA_CHECK(n >= 2);
  COBRA_CHECK_MSG(g.min_degree() >= 1, "isolated vertex");

  std::vector<double> inv_sqrt_deg(n);
  std::vector<double> principal(n);  // unit eigenvector for eigenvalue 1
  for (graph::VertexId u = 0; u < n; ++u) {
    const double d = static_cast<double>(g.degree(u));
    inv_sqrt_deg[u] = 1.0 / std::sqrt(d);
    principal[u] = std::sqrt(d);
  }
  {
    const double pn = norm(principal);
    for (double& value : principal) value /= pn;
  }

  auto project_out_principal = [&](std::vector<double>& x) {
    const double c = dot(x, principal);
    for (graph::VertexId u = 0; u < n; ++u) x[u] -= c * principal[u];
  };

  std::vector<double> x(n), tmp(n), y(n);
  for (double& value : x) value = rng.uniform01() - 0.5;
  project_out_principal(x);
  double xn = norm(x);
  // A start vector accidentally parallel to principal is measure-zero, but
  // guard anyway.
  if (xn < 1e-12) {
    x[0] = 1.0;
    project_out_principal(x);
    xn = norm(x);
  }
  for (double& value : x) value /= xn;

  PowerResult result;
  double prev_estimate = -1.0;
  for (std::uint32_t it = 1; it <= max_iterations; ++it) {
    // One N^2 application with re-projection (numerical drift control).
    apply_normalized_adjacency(g, inv_sqrt_deg, x, tmp);
    apply_normalized_adjacency(g, inv_sqrt_deg, tmp, y);
    project_out_principal(y);
    const double growth = norm(y);  // ~ lambda^2
    result.iterations = it;
    if (growth < 1e-300) {
      // N^2 x == 0: lambda is (numerically) zero on the complement, e.g.
      // complete graph K_2... cannot happen for connected n >= 2 with m >= 1
      // except degenerate rounding; report 0.
      result.lambda = 0.0;
      result.converged = true;
      return result;
    }
    for (graph::VertexId u = 0; u < n; ++u) x[u] = y[u] / growth;
    const double estimate = std::sqrt(growth);
    if (std::fabs(estimate - prev_estimate) <
        tolerance * std::max(1.0, estimate)) {
      result.lambda = std::min(1.0, estimate);
      result.converged = true;
      return result;
    }
    prev_estimate = estimate;
  }
  result.lambda = std::min(1.0, std::max(0.0, prev_estimate));
  result.converged = false;
  return result;
}

}  // namespace cobra::spectral
